package trace

import "sync"

// Arena hands out fixed-size event batches and takes them back, so the hot
// path of the dataflow (staging buffers, captures, filter scratch) reuses a
// small ring of slabs instead of allocating per stage or per run.  Ownership
// is explicit: a batch obtained from Get belongs to the caller until it is
// returned with Put, after which the caller must not touch it again.  Arenas
// are safe for concurrent use — per-shard stacks of a sharded run draw from
// one shared arena.
type Arena[T any] struct {
	mu   sync.Mutex
	size int
	free [][]T

	gets   uint64
	reuses uint64
}

// NewArena returns an arena handing out batches of batchSize elements.
// A non-positive batchSize selects DefaultBufferSize.
func NewArena[T any](batchSize int) *Arena[T] {
	if batchSize <= 0 {
		batchSize = DefaultBufferSize
	}
	return &Arena[T]{size: batchSize}
}

// BatchSize returns the fixed length of every batch the arena hands out.
func (a *Arena[T]) BatchSize() int { return a.size }

// Get transfers ownership of one full-length batch to the caller, reusing a
// returned slab when one is free and allocating otherwise.
func (a *Arena[T]) Get() []T {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.reuses++
		return b
	}
	return make([]T, a.size)
}

// Put returns ownership of a batch to the arena.  The batch must have come
// from Get on an arena of the same batch size (its capacity is the contract);
// nil and foreign-sized slices are dropped so double-bookkeeping bugs degrade
// to garbage, not corruption.
func (a *Arena[T]) Put(b []T) {
	if cap(b) < a.size {
		return
	}
	b = b[:a.size]
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, b)
}

// Gets returns how many batches have been handed out.
func (a *Arena[T]) Gets() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets
}

// Reuses returns how many Gets were satisfied from returned slabs instead of
// fresh allocations; steady state is Reuses == Gets.
func (a *Arena[T]) Reuses() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reuses
}

// Free returns how many slabs are currently parked in the arena.
func (a *Arena[T]) Free() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}
