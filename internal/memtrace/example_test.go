package memtrace_test

import (
	"fmt"

	"nvscavenger/internal/memtrace"
)

// Example instruments a tiny two-phase program and reads back the
// per-object metrics the paper's analysis builds on.
func Example() {
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})

	// Pre-computing phase: build a coefficient table (global) and a state
	// vector (heap).
	coeffs, coeffObj := tr.GlobalF64("coefficients", 128)
	state, stateObj := tr.HeapF64("state", "example.go:17", 128)
	for i := 0; i < 128; i++ {
		coeffs.Store(i, float64(i))
		state.Store(i, 0)
	}

	// Main loop: read the table, update the state, with stack scratch.
	for step := 1; step <= 4; step++ {
		tr.BeginIteration()
		frame := tr.Enter("update")
		scratch := frame.LocalF64(8)
		for i := 0; i < 8; i++ {
			scratch.Store(i, float64(step))
		}
		for i := 0; i < 128; i++ {
			state.Store(i, state.Load(i)+coeffs.Load(i)*scratch.Load(i%8))
		}
		tr.Leave()
		tr.EndIteration()
	}
	if err := tr.Close(); err != nil {
		panic(err)
	}

	fmt.Printf("coefficients read-only in loop: %v\n", coeffObj.LoopReadOnly())
	fmt.Printf("state loop r/w ratio: %.0f\n", stateObj.LoopReadWriteRatio())
	fmt.Printf("state touched in %d of %d iterations\n",
		stateObj.TouchedIterations(), tr.MainLoopIterations())
	fmt.Printf("state access pattern: %v\n", stateObj.AccessPattern())
	// Output:
	// coefficients read-only in loop: true
	// state loop r/w ratio: 1
	// state touched in 4 of 4 iterations
	// state access pattern: sequential
}
