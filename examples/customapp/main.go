// Custom application: shows how to bring your own workload to the whole
// pipeline.  A conjugate-gradient solver on a sparse Poisson system is
// written against the apps.App interface; it then runs through the
// instrumentation substrate, the placement advisor, and the latency-
// sensitivity model — the full paper methodology on new code.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/pipeline"
)

// cgApp solves A x = b with conjugate gradients, where A is the 1D Poisson
// operator (2 on the diagonal, -1 off).  The operator application walks the
// vector with a stencil; the dot products and AXPYs stream the Krylov
// vectors — a memory pattern between S3D's and Nek5000's.
type cgApp struct {
	n              int
	x, b, r, p, ap memtrace.F64
	residual       float64
}

func (c *cgApp) Name() string        { return "cg" }
func (c *cgApp) Description() string { return "conjugate-gradient Poisson solver (custom app)" }

func (c *cgApp) Setup(tr *memtrace.Tracer) error {
	c.x, _ = tr.HeapF64("x", "cg.go:40", c.n)
	c.b, _ = tr.HeapF64("b", "cg.go:41", c.n)
	c.r, _ = tr.HeapF64("r", "cg.go:42", c.n)
	c.p, _ = tr.HeapF64("p", "cg.go:43", c.n)
	c.ap, _ = tr.HeapF64("Ap", "cg.go:44", c.n)
	for i := 0; i < c.n; i++ {
		c.b.Store(i, 1)
		c.x.Store(i, 0)
		c.r.Store(i, 1) // r = b - A*0
		c.p.Store(i, 1)
	}
	tr.Compute(uint64(4 * c.n))
	return nil
}

// Step performs one CG iteration.
func (c *cgApp) Step(tr *memtrace.Tracer, iter int) error {
	_ = tr.Enter("cg_iter")
	defer tr.Leave()

	// Ap = A p (tridiagonal stencil).
	for i := 0; i < c.n; i++ {
		v := 2 * c.p.Load(i)
		if i > 0 {
			v -= c.p.Load(i - 1)
		}
		if i < c.n-1 {
			v -= c.p.Load(i + 1)
		}
		c.ap.Store(i, v)
	}
	tr.Compute(uint64(4 * c.n))

	dot := func(a, b memtrace.F64) float64 {
		s := 0.0
		for i := 0; i < c.n; i++ {
			s += a.Load(i) * b.Load(i)
		}
		tr.Compute(uint64(2 * c.n))
		return s
	}
	rr := dot(c.r, c.r)
	pap := dot(c.p, c.ap)
	if pap == 0 {
		return fmt.Errorf("cg: breakdown at iteration %d", iter)
	}
	alpha := rr / pap
	for i := 0; i < c.n; i++ {
		c.x.Add(i, alpha*c.p.Load(i))
		c.r.Add(i, -alpha*c.ap.Load(i))
	}
	tr.Compute(uint64(4 * c.n))
	rrNew := dot(c.r, c.r)
	beta := rrNew / rr
	for i := 0; i < c.n; i++ {
		c.p.Store(i, c.r.Load(i)+beta*c.p.Load(i))
	}
	tr.Compute(uint64(3 * c.n))
	c.residual = math.Sqrt(rrNew)
	return nil
}

func (c *cgApp) Post(*memtrace.Tracer) error { return nil }

func (c *cgApp) Check() error {
	if math.IsNaN(c.residual) || math.IsInf(c.residual, 0) {
		return fmt.Errorf("cg: residual diverged")
	}
	return nil
}

func main() {
	const n = 200000
	const iters = 10

	// 1. Characterize with NV-SCAVENGER.
	app := &cgApp{n: n}
	stack := pipeline.MustBuild(pipeline.Config{StackMode: memtrace.FastStack})
	tr := stack.Tracer
	if err := apps.Run(app, tr, iters); err != nil {
		log.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG on %d unknowns: residual %.3e after %d iterations\n\n", n, app.residual, iters)

	plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
	fmt.Println("placement advice:")
	for _, adv := range plan.Advices {
		m := adv.Metrics
		fmt.Printf("  %-4s %8.1f KB  r/w %6.2f -> %-10s %s\n",
			adv.Object.Name, float64(m.SizeBytes)/1024, m.ReadWriteRatio, adv.Target, adv.Reason)
	}

	// 2. Latency sensitivity of the same code.
	fmt.Println("\nmemory latency sensitivity:")
	var base float64
	for _, lat := range []float64{10, 12, 20, 100} {
		// The core consumes the batched performance-event stream directly.
		c := cpusim.MustNew(cpusim.PaperConfig(lat))
		run := &cgApp{n: n}
		perfStack := pipeline.MustBuild(pipeline.Config{Perf: c})
		if err := apps.Run(run, perfStack.Tracer, 2); err != nil {
			log.Fatal(err)
		}
		if err := perfStack.Close(); err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = c.Cycles()
		}
		fmt.Printf("  %5.0f ns -> %12.0f cycles (%.3fx)\n", lat, c.Cycles(), c.Cycles()/base)
	}
}
