// Package kernels provides the shared numerical building blocks of the four
// mini-applications.  Every kernel computes on instrumented arrays, so each
// floating-point load/store appears in the access stream, and accounts its
// arithmetic through Tracer.Compute so the reference-rate denominator and
// the performance model see a realistic instruction mix.
package kernels

import (
	"math"

	"nvscavenger/internal/memtrace"
)

// RNG is a small deterministic xorshift64* generator.  The mini-apps must
// not depend on math/rand's global state: runs have to be reproducible for
// the experiment harness.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; a zero seed is replaced by a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("kernels: Intn with non-positive n") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	return int(r.Uint64() % uint64(n))
}

// FillRandom stores uniform values in [lo, hi) into a traced array.
func FillRandom(a memtrace.F64, rng *RNG, lo, hi float64) {
	for i := 0; i < a.Len(); i++ {
		a.Store(i, lo+(hi-lo)*rng.Float64())
	}
}

// MatMulLocal computes C = A x B for n x n matrices held in stack (or any
// traced) storage: the spectral-element operator application pattern.
// Reads 2n^3 elements, writes n^2, so the kernel's stack read/write ratio
// is ~2n.
func MatMulLocal(tr *memtrace.Tracer, a, b, c memtrace.F64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a.Load(i*n+k) * b.Load(k*n+j)
			}
			tr.Compute(uint64(2 * n)) // n multiply-adds
			c.Store(i*n+j, sum)
		}
	}
}

// DotLocal returns the dot product of two traced arrays (2n reads, 0
// writes).
func DotLocal(tr *memtrace.Tracer, a, b memtrace.F64) float64 {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a.Load(i) * b.Load(i)
	}
	tr.Compute(uint64(2 * n))
	return sum
}

// AxpyLocal computes y += alpha*x (n reads of x, n read-modify-writes of y).
func AxpyLocal(tr *memtrace.Tracer, alpha float64, x, y memtrace.F64) {
	n := x.Len()
	if y.Len() < n {
		n = y.Len()
	}
	for i := 0; i < n; i++ {
		y.Add(i, alpha*x.Load(i))
	}
	tr.Compute(uint64(2 * n))
}

// Stencil7 applies one Jacobi sweep of a 7-point 3D stencil on an
// nx*ny*nz grid: dst = (1-6w)*src + w*sum(neighbours).  Interior points
// read 7 and write 1; the boundary is copied through.
func Stencil7(tr *memtrace.Tracer, src, dst memtrace.F64, nx, ny, nz int, w float64) {
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i == 0 || j == 0 || k == 0 || i == nx-1 || j == ny-1 || k == nz-1 {
					dst.Store(idx(i, j, k), src.Load(idx(i, j, k)))
					continue
				}
				center := src.Load(idx(i, j, k))
				sum := src.Load(idx(i-1, j, k)) + src.Load(idx(i+1, j, k)) +
					src.Load(idx(i, j-1, k)) + src.Load(idx(i, j+1, k)) +
					src.Load(idx(i, j, k-1)) + src.Load(idx(i, j, k+1))
				dst.Store(idx(i, j, k), (1-6*w)*center+w*sum)
			}
			tr.Compute(uint64(8 * nz))
		}
	}
}

// LegendreTable fills table with the Legendre polynomials P_0..P_{deg}
// evaluated at the given traced abscissae: table[d*len(x)+i] = P_d(x_i).
// This is CAM's transform-constant construction.
func LegendreTable(tr *memtrace.Tracer, xs memtrace.F64, table memtrace.F64, deg int) {
	n := xs.Len()
	for i := 0; i < n; i++ {
		x := xs.Load(i)
		p0, p1 := 1.0, x
		table.Store(0*n+i, p0)
		if deg >= 1 {
			table.Store(1*n+i, p1)
		}
		for d := 2; d <= deg; d++ {
			p := ((2*float64(d)-1)*x*p1 - (float64(d)-1)*p0) / float64(d)
			table.Store(d*n+i, p)
			p0, p1 = p1, p
		}
		tr.Compute(uint64(5 * deg))
	}
}

// InterpolateLookup performs a table-driven linear interpolation, S3D's
// chemistry-rate pattern: for each query q in [0,1), it reads two adjacent
// table entries and blends them.  Reads 2 per query plus the query itself.
func InterpolateLookup(tr *memtrace.Tracer, table memtrace.F64, queries memtrace.F64, out memtrace.F64) {
	n := table.Len()
	for i := 0; i < queries.Len(); i++ {
		q := queries.Load(i)
		q -= math.Floor(q)
		pos := q * float64(n-1)
		lo := int(pos)
		frac := pos - float64(lo)
		v := table.Load(lo)*(1-frac) + table.Load(lo+1)*frac
		out.Store(i, v)
	}
	tr.Compute(uint64(6 * queries.Len()))
}

// StackReader performs a tuned read-heavy pass over a stack-resident array:
// it writes each element once and then reads the array `reads` times,
// producing a stack read/write ratio of ~reads.  Routines with interpolation
// coefficients and cached temporaries — CAM's high-ratio stack pattern —
// reduce to this shape.  Returns a checksum so the work cannot be elided.
func StackReader(tr *memtrace.Tracer, local memtrace.F64, reads int) float64 {
	for i := 0; i < local.Len(); i++ {
		local.Store(i, float64(i%17)+0.5)
	}
	sum := 0.0
	for r := 0; r < reads; r++ {
		for i := 0; i < local.Len(); i++ {
			sum += local.Load(i)
		}
		tr.Compute(uint64(local.Len()))
	}
	return sum
}

// GatherScatter models the particle-in-cell field access pattern: for each
// index in idx, read field[idx] (gather) and accumulate into accum[idx]
// (scatter: read+write).  The resulting field-array read/write ratio is ~2.
func GatherScatter(tr *memtrace.Tracer, field memtrace.F64, accum memtrace.F64, idx memtrace.I64, weight float64) float64 {
	sum := 0.0
	n := idx.Len()
	for i := 0; i < n; i++ {
		j := int(idx.Load(i)) % field.Len()
		if j < 0 {
			j += field.Len()
		}
		v := field.Load(j)
		sum += v
		accum.Add(j%accum.Len(), weight*v)
	}
	tr.Compute(uint64(4 * n))
	return sum
}

// Tridiag solves a tridiagonal system in place with the Thomas algorithm:
// the vertical-column physics solve in atmosphere models.  diag, lower,
// upper and rhs are traced arrays of length n; the solution lands in rhs.
// Scratch must be at least n long (typically a stack local).
func Tridiag(tr *memtrace.Tracer, lower, diag, upper, rhs, scratch memtrace.F64, n int) {
	// Forward sweep.
	beta := diag.Load(0)
	rhs.Store(0, rhs.Load(0)/beta)
	for i := 1; i < n; i++ {
		scratch.Store(i, upper.Load(i-1)/beta)
		beta = diag.Load(i) - lower.Load(i)*scratch.Load(i)
		rhs.Store(i, (rhs.Load(i)-lower.Load(i)*rhs.Load(i-1))/beta)
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		rhs.Add(i, -scratch.Load(i+1)*rhs.Load(i+1))
	}
	tr.Compute(uint64(8 * n))
}
