// Package trace defines the memory-event model shared by the NV-SCAVENGER
// instrumentation substrate, the cache hierarchy simulator, and the memory
// power simulator.
//
// The central type is Access, a single dynamic memory reference (address,
// size, operation).  Accesses are produced by the instrumented mini-apps,
// filtered by the cache simulator into main-memory Transactions, and replayed
// through the DRAMSim-like power model.
//
// The package also implements the buffered trace pipeline described in
// §III-D of the paper: references are staged into a fixed-size memory buffer
// and handed to the consumer in batches, which amortizes per-access overhead
// and reduces interference with the traced program's own data cache.
package trace

import (
	"fmt"

	"nvscavenger/internal/resilience"
)

// Op is the kind of a memory operation.
type Op uint8

const (
	// Read is a load from memory.
	Read Op = iota
	// Write is a store to memory.
	Write
)

// String returns "R" for Read and "W" for Write.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Segment identifies which region of the simulated address space an address
// belongs to.  The instrumentation tool analyzes stack, heap and global data
// separately (paper §III).
type Segment uint8

const (
	// SegUnknown marks addresses outside all registered regions.
	SegUnknown Segment = iota
	// SegGlobal is the static data segment.
	SegGlobal
	// SegHeap is the dynamic allocation arena.
	SegHeap
	// SegStack is the downward-growing program stack.
	SegStack
)

// String names the segment the way the paper's tables do.
func (s Segment) String() string {
	switch s {
	case SegGlobal:
		return "global"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return "unknown"
}

// Access is one dynamic memory reference.
type Access struct {
	// Addr is the simulated virtual address of the first byte touched.
	Addr uint64
	// Size is the number of bytes touched (1..255).
	Size uint8
	// Op says whether the reference is a load or a store.
	Op Op
}

// IsWrite reports whether the access is a store.
func (a Access) IsWrite() bool { return a.Op == Write }

// End returns the address one past the last byte touched.
func (a Access) End() uint64 { return a.Addr + uint64(a.Size) }

// Transaction is a main-memory request that survived the cache hierarchy:
// a last-level-cache miss (read) or a dirty eviction / writeback (write).
// Transactions are always one cache line long.
type Transaction struct {
	// Addr is the line-aligned physical address.
	Addr uint64
	// Write is true for writebacks, false for fill reads.
	Write bool
	// Cycle is the (approximate) CPU cycle at which the request was issued.
	// A zero cycle means "no timing information"; the power simulator then
	// processes requests at full speed and reports average power, exactly as
	// §IV describes for trace-driven runs.
	Cycle uint64
}

// Sink consumes batches of accesses.  Flush is called with a full (or final,
// possibly short) buffer; the callee must not retain the slice.
type Sink interface {
	Flush(batch []Access) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(batch []Access) error

// Flush calls f(batch).
func (f SinkFunc) Flush(batch []Access) error { return f(batch) }

// TxSink consumes batches of main-memory transactions — the post-cache
// mirror of Sink.  Every stage boundary of the memory-event dataflow moves
// events in batches (accesses, transactions, performance events), so the
// per-event interface-call overhead of the §III-D memory-buffer
// optimization is paid once per batch at every hop, not just the first.
// The callee must not retain the slice.
type TxSink interface {
	FlushTx(batch []Transaction) error
}

// TxSinkFunc adapts a function to the TxSink interface.
type TxSinkFunc func(batch []Transaction) error

// FlushTx calls f(batch).
func (f TxSinkFunc) FlushTx(batch []Transaction) error { return f(batch) }

// PerfEvent is one entry of the performance-event stream: a memory
// reference preceded by Gap non-memory (ALU/branch) instructions.  The
// trace-driven CPU timing model consumes these in program order.
type PerfEvent struct {
	// Gap is the number of non-memory instructions retired since the
	// previous reference.
	Gap uint64
	// Access is the memory reference itself.
	Access Access
}

// PerfSink consumes batches of performance events, so references and
// instruction gaps travel in the same flush as the rest of the dataflow.
type PerfSink interface {
	FlushEvents(batch []PerfEvent) error
}

// PerfSinkFunc adapts a function to the PerfSink interface.
type PerfSinkFunc func(batch []PerfEvent) error

// FlushEvents calls f(batch).
func (f PerfSinkFunc) FlushEvents(batch []PerfEvent) error { return f(batch) }

// DefaultBufferSize is the number of accesses staged before the buffer is
// handed to the sink.  Large enough to amortize the call, small enough to
// stay cache-resident.
const DefaultBufferSize = 1 << 14

// Buffer stages accesses and flushes them to a Sink in batches (§III-D).
type Buffer struct {
	sink    Sink
	buf     []Access
	n       int
	err     error
	dropped uint64
	arena   *Arena[Access]
	retry   resilience.RetryPolicy
	retries uint64
	trips   uint64
	// Flushes counts how many times the staging buffer was drained; used by
	// the instrumentation-overhead benchmarks.
	Flushes uint64
}

// NewBuffer returns a Buffer of the given capacity flushing into sink.
// A non-positive size selects DefaultBufferSize.
func NewBuffer(sink Sink, size int) *Buffer {
	if size <= 0 {
		size = DefaultBufferSize
	}
	return &Buffer{sink: sink, buf: make([]Access, size)}
}

// NewArenaBuffer returns a Buffer whose staging slab is drawn from the arena
// instead of freshly allocated; Release hands it back when the buffer is
// retired.  Batch size is the arena's.
func NewArenaBuffer(sink Sink, a *Arena[Access]) *Buffer {
	return &Buffer{sink: sink, buf: a.Get(), arena: a}
}

// Add stages one access, flushing if the buffer fills.  Errors from the sink
// are sticky and reported by Close; once a sink has failed it is never
// invoked again — subsequent batches are dropped and counted in Dropped.
func (b *Buffer) Add(a Access) {
	b.buf[b.n] = a
	b.n++
	if b.n == len(b.buf) {
		b.flush()
	}
}

// Err returns the first error reported by the sink, if any.
func (b *Buffer) Err() error { return b.err }

// Dropped returns the number of accesses discarded after the sink's first
// error (a failed sink is never called again).
func (b *Buffer) Dropped() uint64 { return b.dropped }

// SetRetry switches the buffer into recoverable mode: a failing flush is
// retried per the policy before the error trips sticky.  The zero policy
// (one attempt) is the historical fail-fast behaviour.
func (b *Buffer) SetRetry(p resilience.RetryPolicy) { b.retry = p }

// Retries returns how many flush retries the recoverable mode performed.
func (b *Buffer) Retries() uint64 { return b.retries }

// Trips returns 1 once the sink error has tripped sticky, else 0.  Kept a
// counter so the obs export reads the same for buffers and breakers.
func (b *Buffer) Trips() uint64 { return b.trips }

func (b *Buffer) flush() {
	if b.n == 0 {
		return
	}
	if b.err != nil {
		b.dropped += uint64(b.n)
		b.n = 0
		return
	}
	b.Flushes++
	r, err := b.retry.Do(func() error { return b.sink.Flush(b.buf[:b.n]) })
	b.retries += uint64(r)
	if err != nil {
		b.err = err
		b.trips++
	}
	b.n = 0
}

// Flush drains any staged accesses to the sink without closing the buffer;
// sharded tracers call it at iteration-ownership boundaries so a batch never
// mixes events from two owners.
func (b *Buffer) Flush() error {
	b.flush()
	return b.err
}

// Close drains any staged accesses and returns the first sink error.
func (b *Buffer) Close() error {
	b.flush()
	return b.err
}

// Release returns an arena-drawn staging slab to its arena.  The buffer must
// not be used afterwards; Release on a buffer with a private slab is a no-op.
func (b *Buffer) Release() {
	if b.arena != nil && b.buf != nil {
		b.arena.Put(b.buf)
		b.buf = nil
	}
}

// DefaultTxBufferSize is the number of transactions staged before a
// TxBuffer flushes.  The post-cache stream is one to three orders of
// magnitude thinner than the access stream, so the batch is smaller.
const DefaultTxBufferSize = 1 << 12

// TxBuffer stages main-memory transactions and flushes them to a TxSink in
// batches — the post-cache mirror of Buffer.  The cache hierarchy stages its
// line fills and writebacks here instead of invoking its sink per
// transaction.
type TxBuffer struct {
	sink    TxSink
	buf     []Transaction
	n       int
	err     error
	dropped uint64
	arena   *Arena[Transaction]
	retry   resilience.RetryPolicy
	retries uint64
	trips   uint64
	// Flushes counts how many times the staging buffer was drained.
	Flushes uint64
}

// NewTxBuffer returns a TxBuffer of the given capacity flushing into sink.
// A non-positive size selects DefaultTxBufferSize.
func NewTxBuffer(sink TxSink, size int) *TxBuffer {
	if size <= 0 {
		size = DefaultTxBufferSize
	}
	return &TxBuffer{sink: sink, buf: make([]Transaction, size)}
}

// NewArenaTxBuffer returns a TxBuffer whose staging slab is drawn from the
// arena; Release hands it back when the buffer is retired.
func NewArenaTxBuffer(sink TxSink, a *Arena[Transaction]) *TxBuffer {
	return &TxBuffer{sink: sink, buf: a.Get(), arena: a}
}

// Add stages one transaction, flushing if the buffer fills.  Errors from
// the sink are sticky and reported by Close; once a sink has failed it is
// never invoked again — subsequent batches are dropped and counted.
func (b *TxBuffer) Add(t Transaction) {
	b.buf[b.n] = t
	b.n++
	if b.n == len(b.buf) {
		b.flush()
	}
}

// Err returns the first error reported by the sink, if any.
func (b *TxBuffer) Err() error { return b.err }

// Dropped returns the number of transactions discarded after the sink's
// first error.
func (b *TxBuffer) Dropped() uint64 { return b.dropped }

// SetRetry switches the buffer into recoverable mode: a failing flush is
// retried per the policy before the error trips sticky.
func (b *TxBuffer) SetRetry(p resilience.RetryPolicy) { b.retry = p }

// Retries returns how many flush retries the recoverable mode performed.
func (b *TxBuffer) Retries() uint64 { return b.retries }

// Trips returns 1 once the sink error has tripped sticky, else 0.
func (b *TxBuffer) Trips() uint64 { return b.trips }

func (b *TxBuffer) flush() {
	if b.n == 0 {
		return
	}
	if b.err != nil {
		b.dropped += uint64(b.n)
		b.n = 0
		return
	}
	b.Flushes++
	r, err := b.retry.Do(func() error { return b.sink.FlushTx(b.buf[:b.n]) })
	b.retries += uint64(r)
	if err != nil {
		b.err = err
		b.trips++
	}
	b.n = 0
}

// Flush drains any staged transactions to the sink without closing the
// buffer; the hierarchy calls it after its end-of-run Drain.
func (b *TxBuffer) Flush() error {
	b.flush()
	return b.err
}

// Close drains any staged transactions and returns the first sink error.
func (b *TxBuffer) Close() error {
	b.flush()
	return b.err
}

// Release returns an arena-drawn staging slab to its arena.  The buffer must
// not be used afterwards; Release on a buffer with a private slab is a no-op.
func (b *TxBuffer) Release() {
	if b.arena != nil && b.buf != nil {
		b.arena.Put(b.buf)
		b.buf = nil
	}
}

// Stats accumulates aggregate counts over an access stream.  It doubles as a
// Sink so it can terminate a pipeline.
type Stats struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrite uint64
}

// Observe adds one access to the totals.
func (s *Stats) Observe(a Access) {
	if a.Op == Write {
		s.Writes++
		s.BytesWrite += uint64(a.Size)
	} else {
		s.Reads++
		s.BytesRead += uint64(a.Size)
	}
}

// Flush implements Sink.
func (s *Stats) Flush(batch []Access) error {
	for _, a := range batch {
		s.Observe(a)
	}
	return nil
}

// Total returns the total number of references.
func (s *Stats) Total() uint64 { return s.Reads + s.Writes }

// ReadWriteRatio returns reads/writes; if there are no writes it returns
// +Inf-like sentinel: the read count itself (callers treat a ratio above any
// threshold as "read-only" when Writes==0).
func (s *Stats) ReadWriteRatio() float64 {
	if s.Writes == 0 {
		if s.Reads == 0 {
			return 0
		}
		return float64(s.Reads)
	}
	return float64(s.Reads) / float64(s.Writes)
}
