package apps

import (
	"errors"
	"strings"
	"testing"

	"nvscavenger/internal/memtrace"
)

// fakeApp is a controllable App for framework tests.
type fakeApp struct {
	name                string
	setupErr, stepErr   error
	postErr, checkErr   error
	setupCalls          int
	stepCalls, stepIter []int
	postCalls           int
	checkCalls          int
	observedIters       []int
}

func (f *fakeApp) Name() string        { return f.name }
func (f *fakeApp) Description() string { return "fake app for tests" }

func (f *fakeApp) Setup(tr *memtrace.Tracer) error {
	f.setupCalls++
	f.observedIters = append(f.observedIters, tr.Iteration())
	return f.setupErr
}

func (f *fakeApp) Step(tr *memtrace.Tracer, iter int) error {
	f.stepCalls = append(f.stepCalls, iter)
	f.observedIters = append(f.observedIters, tr.Iteration())
	return f.stepErr
}

func (f *fakeApp) Post(tr *memtrace.Tracer) error {
	f.postCalls++
	f.observedIters = append(f.observedIters, tr.Iteration())
	return f.postErr
}

func (f *fakeApp) Check() error {
	f.checkCalls++
	return f.checkErr
}

func newTracer() *memtrace.Tracer { return memtrace.New(memtrace.Config{}) }

func TestRunPhaseProtocol(t *testing.T) {
	app := &fakeApp{name: "fake"}
	if err := Run(app, newTracer(), 3); err != nil {
		t.Fatal(err)
	}
	if app.setupCalls != 1 || app.postCalls != 1 || app.checkCalls != 1 {
		t.Fatalf("phase calls = %d/%d/%d", app.setupCalls, app.postCalls, app.checkCalls)
	}
	if len(app.stepCalls) != 3 || app.stepCalls[0] != 1 || app.stepCalls[2] != 3 {
		t.Fatalf("step iterations = %v, want [1 2 3]", app.stepCalls)
	}
	// Setup observes iteration 0; steps observe 1..3; post observes 0.
	want := []int{0, 1, 2, 3, 0}
	for i, w := range want {
		if app.observedIters[i] != w {
			t.Fatalf("observed tracer iterations = %v, want %v", app.observedIters, want)
		}
	}
}

func TestRunRejectsZeroIterations(t *testing.T) {
	if err := Run(&fakeApp{name: "x"}, newTracer(), 0); err == nil {
		t.Fatal("zero iterations must error")
	}
}

func TestRunPropagatesPhaseErrors(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name string
		app  *fakeApp
		want string
	}{
		{"setup", &fakeApp{name: "a", setupErr: boom}, "setup"},
		{"step", &fakeApp{name: "a", stepErr: boom}, "step"},
		{"post", &fakeApp{name: "a", postErr: boom}, "post"},
		{"check", &fakeApp{name: "a", checkErr: boom}, "boom"},
	}
	for _, tc := range cases {
		err := Run(tc.app, newTracer(), 2)
		if err == nil {
			t.Errorf("%s: error not propagated", tc.name)
			continue
		}
		if !errors.Is(err, boom) && !strings.Contains(err.Error(), "boom") {
			t.Errorf("%s: error chain broken: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the phase", tc.name, err)
		}
	}
}

func TestRunStopsAtFirstStepError(t *testing.T) {
	app := &fakeApp{name: "a", stepErr: errors.New("boom")}
	_ = Run(app, newTracer(), 5)
	if len(app.stepCalls) != 1 {
		t.Fatalf("run continued after step failure: %v", app.stepCalls)
	}
	if app.postCalls != 0 || app.checkCalls != 0 {
		t.Fatal("later phases must not run after a step failure")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	// The production apps register via init() in their own packages, which
	// this test package does not import; register a scoped factory here.
	Register("test-only-app", func(scale float64) App { return &fakeApp{name: "test-only-app"} })
	defer delete(registry, "test-only-app")

	app, err := New("test-only-app", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "test-only-app" {
		t.Fatalf("name = %q", app.Name())
	}
	if len(Names()) != len(names)+1 {
		t.Fatal("Names should include the new registration")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("definitely-not-registered", 1); err == nil {
		t.Fatal("unknown app must error")
	}
	Register("scale-check-app", func(scale float64) App { return &fakeApp{name: "s"} })
	defer delete(registry, "scale-check-app")
	if _, err := New("scale-check-app", 0); err == nil {
		t.Fatal("non-positive scale must error")
	}
	if _, err := New("scale-check-app", -1); err == nil {
		t.Fatal("negative scale must error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register("dup-app", func(scale float64) App { return &fakeApp{name: "d"} })
	defer delete(registry, "dup-app")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("dup-app", func(scale float64) App { return &fakeApp{name: "d"} })
}

func TestNamesSorted(t *testing.T) {
	Register("zz-app", func(scale float64) App { return &fakeApp{name: "z"} })
	Register("aa-app", func(scale float64) App { return &fakeApp{name: "a"} })
	defer delete(registry, "zz-app")
	defer delete(registry, "aa-app")
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

type inputApp struct{ fakeApp }

func (*inputApp) Input() string { return "grid 60x60x60" }

func TestInputOf(t *testing.T) {
	if got := InputOf(&fakeApp{name: "plain"}); got != "default" {
		t.Fatalf("InputOf without describer = %q", got)
	}
	if got := InputOf(&inputApp{}); got != "grid 60x60x60" {
		t.Fatalf("InputOf = %q", got)
	}
}
