package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestRetryZeroValueIsSingleAttempt(t *testing.T) {
	var p RetryPolicy
	calls := 0
	boom := errors.New("boom")
	retries, err := p.Do(func() error { calls++; return boom })
	if calls != 1 || retries != 0 || !errors.Is(err, boom) {
		t.Fatalf("calls=%d retries=%d err=%v, want 1/0/boom", calls, retries, err)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := RetryPolicy{Attempts: 4}
	calls := 0
	retries, err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}
}

func TestRetryExhaustsAndReturnsLastError(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	var last error
	calls := 0
	retries, err := p.Do(func() error {
		calls++
		last = errors.New("fail")
		return last
	})
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}
	if !errors.Is(err, last) {
		t.Fatalf("err = %v, want the last failure", err)
	}
}

// TestRetryBackoffSchedule: the wait sequence is a deterministic function of
// the retry index — retry i sleeps Backoff[min(i, len-1)].
func TestRetryBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 5,
		Backoff:  []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := p.Do(func() error { return errors.New("always") }); err == nil {
		t.Fatal("want exhaustion error")
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestBreakerStickyTrip: FailureThreshold consecutive failures open the
// breaker and calls are rejected until the cooldown elapses.
func TestBreakerStickyTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 3})
	if b.State() != Closed {
		t.Fatal("breaker must start closed")
	}
	b.Failure()
	if b.State() != Closed {
		t.Fatal("one failure below threshold must not trip")
	}
	b.Failure()
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open/1", b.State(), b.Trips())
	}
	// Cooldown: the next three calls are rejected.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("call %d during cooldown must be rejected", i)
		}
	}
	if b.Rejected() != 3 {
		t.Fatalf("rejected = %d, want 3", b.Rejected())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown the next call is admitted as
// a probe; success closes the breaker, failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 2})
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold-1 breaker must trip on first failure")
	}
	if b.Allow() || b.Allow() {
		t.Fatal("cooldown calls must be rejected")
	}
	if !b.Allow() {
		t.Fatal("post-cooldown call must be admitted as the half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Probe fails: straight back to open, counted as a second trip.
	b.Failure()
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d, want open/2", b.State(), b.Trips())
	}
	// Run the cooldown again; this time the probe succeeds.
	if b.Allow() || b.Allow() {
		t.Fatal("second cooldown must reject")
	}
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

// TestBreakerSuccessResetsFailureStreak: the threshold counts *consecutive*
// failures; an interleaved success resets the streak.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 1})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures must not trip")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("two consecutive failures must trip")
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	err := Recover(func() error { panic("worker died") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "worker died" {
		t.Fatalf("Value = %v, want the panic payload", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("stack trace must be captured")
	}
	if pe.Error() != "recovered panic: worker died" {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestRecoverPassesThroughResults(t *testing.T) {
	if err := Recover(func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	boom := errors.New("boom")
	if err := Recover(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the returned error unchanged", err)
	}
}
