package memtrace

import (
	"fmt"
	"sort"

	"nvscavenger/internal/trace"
)

// Global-segment instrumentation (paper §III-C).
//
// Globals are identified by symbol name, base address and size — the
// information libdwarf extracts from the executable.  FORTRAN common blocks
// let different program units view one shared block under different names
// and partitions, so distinct symbols can overlap in memory; overlapping
// globals are merged into a single object whose range is the union of the
// individual ranges and whose name combines the member names.

// globalBase is the simulated base address of the static data segment.
const globalBase uint64 = 0x0000_0040_0000

const globalAlign = 16

type globalState struct {
	brk   uint64
	order []*Object
}

func newGlobalState() globalState {
	return globalState{brk: globalBase}
}

// Global registers a global symbol of size bytes at the next free static
// address and returns its object.
func (t *Tracer) Global(name string, size uint64) *Object {
	if size == 0 {
		panic("memtrace: Global of size 0") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	base := t.globals.brk
	t.globals.brk += (size + globalAlign - 1) &^ uint64(globalAlign-1)
	return t.GlobalAt(name, base, size)
}

// GlobalAt registers a global symbol with an explicit base address, which is
// how FORTRAN common-block aliases are declared.  If the new range overlaps
// existing globals, all overlapping objects are merged: the resulting object
// covers the union of the ranges, its name is the combined symbol name, and
// accumulated statistics are summed.
func (t *Tracer) GlobalAt(name string, base, size uint64) *Object {
	if size == 0 {
		panic("memtrace: GlobalAt of size 0") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	if base >= heapBase {
		panic(fmt.Sprintf("memtrace: global %q at %#x collides with heap segment", name, base)) //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	lo, hi := base, base+size
	var overlapped []*Object
	for _, g := range t.globals.order {
		if g.Base < hi && lo < g.Base+g.Size {
			overlapped = append(overlapped, g)
		}
	}
	if len(overlapped) == 0 {
		obj := t.reg.newObject(Object{
			Name:      name,
			Segment:   trace.SegGlobal,
			Base:      base,
			Size:      size,
			AllocIter: t.iter,
		})
		t.globals.order = append(t.globals.order, obj)
		t.reg.insert(obj)
		if hi > t.globals.brk {
			t.globals.brk = (hi + globalAlign - 1) &^ uint64(globalAlign-1)
		}
		return obj
	}

	// Merge: extend the first overlapped object to the union range, fold the
	// other overlapped objects into it, and combine the symbol names.
	merged := overlapped[0]
	t.reg.remove(merged)
	names := []string{merged.Name}
	if merged.Base < lo {
		lo = merged.Base
	}
	if end := merged.Base + merged.Size; end > hi {
		hi = end
	}
	for _, g := range overlapped[1:] {
		t.reg.remove(g)
		names = append(names, g.Name)
		if g.Base < lo {
			lo = g.Base
		}
		if end := g.Base + g.Size; end > hi {
			hi = end
		}
		merged.total.Reads += g.total.Reads
		merged.total.Writes += g.total.Writes
		for i := 0; i < g.Iterations(); i++ {
			s := g.Iter(i)
			merged.record(i, false, s.Reads)
			merged.record(i, true, s.Writes)
			// record() double-counts into total; undo that.
			merged.total.Reads -= s.Reads
			merged.total.Writes -= s.Writes
		}
		g.Dead = true
		t.removeGlobal(g)
	}
	names = append(names, name)
	sort.Strings(names)
	merged.Name = joinNames(names)
	merged.Base = lo
	merged.Size = hi - lo
	t.reg.insert(merged)
	if end := merged.Base + merged.Size; end > t.globals.brk {
		t.globals.brk = (end + globalAlign - 1) &^ uint64(globalAlign-1)
	}
	return merged
}

func (t *Tracer) removeGlobal(g *Object) {
	for i, o := range t.globals.order {
		if o == g {
			t.globals.order = append(t.globals.order[:i], t.globals.order[i+1:]...)
			return
		}
	}
}

func joinNames(names []string) string {
	out := ""
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if out != "" {
			out += "+"
		}
		out += n
	}
	return out
}

// GlobalF64 registers an n-element float64 global array.
func (t *Tracer) GlobalF64(name string, n int) (F64, *Object) {
	obj := t.Global(name, uint64(n)*8)
	return F64{t: t, base: obj.Base, data: make([]float64, n)}, obj
}

// GlobalI64 registers an n-element int64 global array.
func (t *Tracer) GlobalI64(name string, n int) (I64, *Object) {
	obj := t.Global(name, uint64(n)*8)
	return I64{t: t, base: obj.Base, data: make([]int64, n)}, obj
}

// GlobalObjects returns the live global objects in registration order
// (merged common blocks appear once).
func (t *Tracer) GlobalObjects() []*Object {
	out := make([]*Object, len(t.globals.order))
	copy(out, t.globals.order)
	return out
}
