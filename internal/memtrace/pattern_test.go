package memtrace

import (
	"testing"
	"testing/quick"
)

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{
		PatternUnknown: "unknown", PatternSequential: "sequential",
		PatternStrided: "strided", PatternRandom: "random",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("Pattern(%d) = %q, want %q", p, p.String(), w)
		}
	}
}

func TestSequentialPattern(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("seq", 256)
	tr.BeginIteration()
	for i := 0; i < 256; i++ {
		_ = a.Load(i)
	}
	if got := obj.AccessPattern(); got != PatternSequential {
		t.Fatalf("pattern = %v, want sequential", got)
	}
}

func TestStridedPattern(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("stride", 4096)
	tr.BeginIteration()
	for i := 0; i < 4096; i += 16 { // 128-byte stride
		_ = a.Load(i)
	}
	if got := obj.AccessPattern(); got != PatternStrided {
		t.Fatalf("pattern = %v, want strided", got)
	}
}

func TestRandomPattern(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("rand", 4096)
	tr.BeginIteration()
	h := uint64(12345)
	for i := 0; i < 500; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		_ = a.Load(int(h % 4096))
	}
	if got := obj.AccessPattern(); got != PatternRandom {
		t.Fatalf("pattern = %v, want random", got)
	}
}

func TestUnknownPatternFewRefs(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("few", 64)
	tr.BeginIteration()
	_ = a.Load(0)
	_ = a.Load(5)
	if got := obj.AccessPattern(); got != PatternUnknown {
		t.Fatalf("pattern = %v, want unknown for <8 classified refs", got)
	}
}

func TestReverseWalkIsSequential(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("rev", 256)
	tr.BeginIteration()
	for i := 255; i >= 0; i-- {
		_ = a.Load(i)
	}
	if got := obj.AccessPattern(); got != PatternSequential {
		t.Fatalf("pattern = %v, want sequential (|delta| = 8)", got)
	}
}

func TestPatternCountsConsistent(t *testing.T) {
	tr := New(Config{})
	a, obj := tr.GlobalF64("mix", 512)
	tr.BeginIteration()
	n := 0
	for i := 0; i < 512; i++ {
		_ = a.Load(i)
		n++
	}
	seq, strided, random := obj.PatternCounts()
	// First reference establishes the base and is not classified.
	if seq+strided+random != uint64(n-1) {
		t.Fatalf("pattern counts %d+%d+%d != %d classified refs", seq, strided, random, n-1)
	}
}

// Property: classified reference count always equals refs-1 for an object
// that is the sole target of accesses.
func TestQuickPatternConservation(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		tr := New(Config{})
		a, obj := tr.GlobalF64("p", 65536)
		tr.BeginIteration()
		for _, off := range offsets {
			_ = a.Load(int(off))
		}
		seq, strided, random := obj.PatternCounts()
		return seq+strided+random == uint64(len(offsets))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
