package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nvscavenger/internal/lint"
)

func TestUnknownPassErrors(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-passes", "nope"}, &buf)
	if err == nil {
		t.Fatal("want error for -passes nope")
	}
	if !strings.Contains(err.Error(), `unknown pass "nope"`) {
		t.Errorf("error should name the unknown pass: %v", err)
	}
}

func TestListPasses(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range lint.PassNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing pass %q:\n%s", name, buf.String())
		}
	}
}

func TestJSONDiagnostics(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-json", "testdata/bad"}, &buf)
	if err == nil {
		t.Fatal("want non-nil error when findings exist")
	}
	if !strings.Contains(err.Error(), "1 finding(s) in 1 package(s)") {
		t.Errorf("exit error should count findings: %v", err)
	}
	var diags []lint.Diagnostic
	if jerr := json.Unmarshal(buf.Bytes(), &diags); jerr != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", jerr, buf.String())
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pass != "errcontract" || d.File != "cmd/nvlint/testdata/bad/bad.go" || d.Line == 0 || d.Col == 0 || !strings.Contains(d.Message, "discarded") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

func TestTextDiagnosticsAndExit(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-passes", "errcontract", "testdata/bad"}, &buf)
	if err == nil {
		t.Fatal("want non-nil error when findings exist")
	}
	want := "cmd/nvlint/testdata/bad/bad.go:9:14: [errcontract]"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("text output should contain %q:\n%s", want, buf.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"."}, &buf); err != nil {
		t.Fatalf("nvlint on its own package should be clean: %v\n%s", err, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", buf.String())
	}
}

func TestStatsOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stats", "."}, &buf); err != nil {
		t.Fatalf("run -stats: %v\n%s", err, buf.String())
	}
	for _, name := range lint.PassNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-stats output missing pass %q:\n%s", name, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "finding(s)") {
		t.Errorf("-stats output should count findings:\n%s", buf.String())
	}
}

// TestDiffFiltersUnchangedFiles pins the -diff contract: the bad fixture
// is committed and untouched, so its finding is filtered out against
// HEAD and the run exits clean.
func TestDiffFiltersUnchangedFiles(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-diff", "HEAD", "testdata/bad"}, &buf); err != nil {
		t.Fatalf("-diff HEAD should filter the unchanged fixture's finding: %v\n%s", err, buf.String())
	}
}

func TestDiffBadRefErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-diff", "no-such-ref", "testdata/bad"}, &buf); err == nil {
		t.Fatal("want error for an unknown -diff base ref")
	}
}
