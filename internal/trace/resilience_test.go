package trace

import (
	"errors"
	"testing"

	"nvscavenger/internal/resilience"
)

// flakyTxSink fails its first failN flushes, then succeeds.
type flakyTxSink struct {
	failN   int
	calls   int
	flushed int
}

func (s *flakyTxSink) FlushTx(batch []Transaction) error {
	s.calls++
	if s.calls <= s.failN {
		return errors.New("transient sink failure")
	}
	s.flushed += len(batch)
	return nil
}

// TestTxBufferRetryRecovers: in recoverable mode a transiently failing
// sink is retried within the same flush — no events are dropped and no
// sticky trip happens.
func TestTxBufferRetryRecovers(t *testing.T) {
	sink := &flakyTxSink{failN: 2}
	b := NewTxBuffer(sink, 4)
	b.SetRetry(resilience.RetryPolicy{Attempts: 3})
	for i := 0; i < 4; i++ {
		b.Add(Transaction{Addr: uint64(i) * 64})
	}
	if err := b.Close(); err != nil {
		t.Fatalf("recoverable flush failed: %v", err)
	}
	if sink.flushed != 4 {
		t.Fatalf("flushed = %d, want 4", sink.flushed)
	}
	if b.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", b.Retries())
	}
	if b.Trips() != 0 || b.Dropped() != 0 {
		t.Fatalf("trips/dropped = %d/%d, want 0/0", b.Trips(), b.Dropped())
	}
}

// TestTxBufferRetryExhaustionTripsSticky: when the sink outlasts the retry
// budget the error trips sticky exactly as in fail-fast mode — later
// batches are dropped and counted, the sink is never called again.
func TestTxBufferRetryExhaustionTripsSticky(t *testing.T) {
	sink := &flakyTxSink{failN: 1 << 30}
	b := NewTxBuffer(sink, 2)
	b.SetRetry(resilience.RetryPolicy{Attempts: 3})
	b.Add(Transaction{})
	b.Add(Transaction{}) // fills: flush fails 3 times, trips
	if b.Err() == nil {
		t.Fatal("exhausted retries must trip the sticky error")
	}
	if sink.calls != 3 {
		t.Fatalf("sink calls = %d, want 3 (retry budget)", sink.calls)
	}
	if b.Retries() != 2 || b.Trips() != 1 {
		t.Fatalf("retries/trips = %d/%d, want 2/1", b.Retries(), b.Trips())
	}
	// Post-trip batches are dropped without touching the sink; the failing
	// batch itself is not counted (legacy semantics).
	b.Add(Transaction{})
	b.Add(Transaction{})
	if sink.calls != 3 {
		t.Fatalf("sink called after trip: %d calls", sink.calls)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", b.Dropped())
	}
}

// flakySink is the access-stream mirror of flakyTxSink.
type flakySink struct {
	failN   int
	calls   int
	flushed int
}

func (s *flakySink) Flush(batch []Access) error {
	s.calls++
	if s.calls <= s.failN {
		return errors.New("transient sink failure")
	}
	s.flushed += len(batch)
	return nil
}

// TestBufferRetryRecovers: the access buffer mirrors the TxBuffer's
// recoverable mode.
func TestBufferRetryRecovers(t *testing.T) {
	sink := &flakySink{failN: 1}
	b := NewBuffer(sink, 2)
	b.SetRetry(resilience.RetryPolicy{Attempts: 2})
	b.Add(Access{Addr: 1, Size: 8})
	b.Add(Access{Addr: 2, Size: 8})
	if err := b.Close(); err != nil {
		t.Fatalf("recoverable flush failed: %v", err)
	}
	if sink.flushed != 2 || b.Retries() != 1 || b.Trips() != 0 {
		t.Fatalf("flushed/retries/trips = %d/%d/%d, want 2/1/0", sink.flushed, b.Retries(), b.Trips())
	}
}

// TestBufferZeroPolicyIsFailFast: without SetRetry the behaviour is
// byte-identical to the historical fail-fast buffer.
func TestBufferZeroPolicyIsFailFast(t *testing.T) {
	sink := &flakySink{failN: 1 << 30}
	b := NewBuffer(sink, 2)
	b.Add(Access{Size: 1})
	b.Add(Access{Size: 1})
	if b.Err() == nil {
		t.Fatal("first failure must trip immediately")
	}
	if sink.calls != 1 {
		t.Fatalf("sink calls = %d, want 1 (no retry by default)", sink.calls)
	}
	if b.Retries() != 0 || b.Trips() != 1 {
		t.Fatalf("retries/trips = %d/%d, want 0/1", b.Retries(), b.Trips())
	}
}
