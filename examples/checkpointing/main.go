// Checkpointing study: the paper's §I motivation, quantified.  Sweep the
// machine from petascale to exascale node counts and compare application
// efficiency when checkpointing to a shared parallel filesystem versus to
// node-local byte-addressable NVRAM, using Table I's per-task footprints.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/checkpoint"
)

func main() {
	base := checkpoint.System{
		StateBytesPerNode: 824e6, // Nek5000's Table I footprint per task
		NodeMTBFHours:     50000,
		RestartSeconds:    10,
	}
	targets := []checkpoint.Target{checkpoint.ParallelFS(), checkpoint.NodeNVRAM()}
	nodes := []int{1000, 10000, 100000, 500000, 1000000}

	pts, err := checkpoint.Sweep(base, nodes, targets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("checkpoint/restart efficiency (Daly-optimal intervals)")
	fmt.Printf("%10s %14s | %12s %12s %10s | %12s %12s %10s\n",
		"nodes", "sys MTBF", "PFS delta", "PFS tau", "PFS eff", "NV delta", "NV tau", "NV eff")
	for _, pt := range pts {
		pfs, nv := pt.Results[0], pt.Results[1]
		fmt.Printf("%10d %12.1fs | %11.1fs %11.1fs %9.1f%% | %11.2fs %11.1fs %9.1f%%\n",
			pt.Nodes, pfs.SystemMTBFSeconds,
			pfs.DeltaSeconds, pfs.IntervalSeconds, pfs.Efficiency*100,
			nv.DeltaSeconds, nv.IntervalSeconds, nv.Efficiency*100)
	}
	fmt.Println("\nshared-filesystem checkpointing collapses at exascale; node-local NVRAM does not (§I)")
}
