// Package fixture exercises every metricname finding.
package fixture

import "nvscavenger/internal/obs"

// Register touches every naming rule.
func Register(reg *obs.Registry, dynamic string) {
	reg.Counter("fixture_runs_total").Inc()               // ok
	reg.Counter("fixture_refs").Inc()                     // counter without _total
	reg.Gauge("Fixture-Ratio").Set(1)                     // grammar violation
	reg.Histogram("fixture_wall_seconds", nil).Observe(1) // ok
	reg.Counter(dynamic + "_total").Inc()                 // non-literal name
	reg.Gauge("fixture_runs_total").Set(1)                // kind collision with the counter
}
