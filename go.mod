module nvscavenger

go 1.22
