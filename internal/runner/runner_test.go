package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvscavenger/internal/obs"
)

func key(app string) Key {
	return Key{App: app, Mode: "fast", Scale: 1, Iterations: 10}
}

func TestDoMemoizes(t *testing.T) {
	e := New(Config{Jobs: 2})
	var execs atomic.Int64
	fn := func(ctx context.Context) (any, uint64, error) {
		execs.Add(1)
		return 42, 7, nil
	}
	for i := 0; i < 3; i++ {
		v, err := e.Do(context.Background(), key("gtc"), fn)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("value = %v", v)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	m := e.Metrics()
	if m.Misses != 1 || m.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", m.Hits, m.Misses)
	}
	if len(m.Runs) != 1 || m.Runs[0].Refs != 7 {
		t.Fatalf("run records = %+v", m.Runs)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(Config{Jobs: 8})
	var execs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, uint64, error) {
		execs.Add(1)
		<-release
		return "shared", 1, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Do(context.Background(), key("cam"), fn)
		}(i)
	}
	// Let every caller reach the cache before releasing the one execution.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (single-flight)", got)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].(string) != "shared" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
}

func TestDoBoundsWorkers(t *testing.T) {
	e := New(Config{Jobs: 2})
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Do(context.Background(), key(fmt.Sprintf("app%d", i)),
				func(ctx context.Context) (any, uint64, error) {
					n := inFlight.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(5 * time.Millisecond)
					inFlight.Add(-1)
					return i, 0, nil
				})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency = %d, want <= 2", p)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	e := New(Config{Jobs: 1})
	boom := errors.New("boom")
	calls := 0
	fn := func(ctx context.Context) (any, uint64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return "ok", 1, nil
	}
	if _, err := e.Do(context.Background(), key("s3d"), fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := e.Do(context.Background(), key("s3d"), fn)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if v.(string) != "ok" {
		t.Fatalf("v = %v", v)
	}
	if m := e.Metrics(); m.Errors != 1 {
		t.Fatalf("errors = %d, want 1", m.Errors)
	}
}

func TestDoContextCancelledBeforeStart(t *testing.T) {
	e := New(Config{Jobs: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Do(ctx, key("gtc"), func(ctx context.Context) (any, uint64, error) {
		t.Error("fn must not run on a cancelled context")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoContextCancelledWhileQueued(t *testing.T) {
	e := New(Config{Jobs: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), key("hog"), func(ctx context.Context) (any, uint64, error) {
		close(started)
		<-block
		return nil, 0, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, key("queued"), func(ctx context.Context) (any, uint64, error) {
			return nil, 0, nil
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Do did not honor cancellation")
	}
	close(block)
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	e := New(Config{Jobs: 1, Progress: func(ev Event) {
		mu.Lock()
		kinds[ev.Kind]++
		mu.Unlock()
	}})
	fn := func(ctx context.Context) (any, uint64, error) { return 1, 2, nil }
	if _, err := e.Do(context.Background(), key("gtc"), fn); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), key("gtc"), fn); err != nil {
		t.Fatal(err)
	}
	if kinds[EventStart] != 1 || kinds[EventDone] != 1 || kinds[EventCached] != 1 {
		t.Fatalf("events = %v", kinds)
	}
}

func TestCollectOrderAndError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Collect(context.Background(), items, func(ctx context.Context, i int) (int, error) {
		time.Sleep(time.Duration(7-i) * time.Millisecond) // finish out of order
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	boom := errors.New("boom")
	_, err = Collect(context.Background(), items, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Second):
			return i, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root cause", err)
	}
}

func TestMetricsWallSummary(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 3; i++ {
		_, err := e.Do(context.Background(), key(fmt.Sprintf("a%d", i)),
			func(ctx context.Context) (any, uint64, error) { return i, 10, nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.TotalRefs() != 30 {
		t.Fatalf("total refs = %d", m.TotalRefs())
	}
	sum := m.WallSummary()
	if sum.Count() != 3 || sum.Total() < 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestJoinedFailureNotCached locks in the accounting fix: a waiter that
// joins an in-flight execution which subsequently fails must receive the
// error, must not be counted as a cache hit, and must not see an
// EventCached — it is a joined failure, counted distinctly.
func TestJoinedFailureNotCached(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	e := New(Config{Jobs: 2, Progress: func(ev Event) {
		mu.Lock()
		kinds[ev.Kind]++
		mu.Unlock()
	}})

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Do(context.Background(), key("cam"), func(ctx context.Context) (any, uint64, error) {
			close(started)
			<-release
			return nil, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("executor err = %v, want boom", err)
		}
	}()
	<-started

	// Join the in-flight execution, then let it fail.
	joined := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), key("cam"), func(ctx context.Context) (any, uint64, error) {
			t.Error("joiner must not execute")
			return nil, 0, nil
		})
		joined <- err
	}()
	// Give the joiner time to reach the in-flight entry before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-joined; !errors.Is(err, boom) {
		t.Fatalf("joined err = %v, want boom", err)
	}
	wg.Wait()

	m := e.Metrics()
	if m.Hits != 0 {
		t.Errorf("hits = %d, want 0 (joined failure is not a hit)", m.Hits)
	}
	if m.JoinedFailures != 1 {
		t.Errorf("joined failures = %d, want 1", m.JoinedFailures)
	}
	if m.Errors != 1 {
		t.Errorf("errors = %d, want 1", m.Errors)
	}
	mu.Lock()
	defer mu.Unlock()
	if kinds[EventCached] != 0 {
		t.Errorf("EventCached emitted %d times for a failed run, want 0", kinds[EventCached])
	}
	if kinds[EventError] != 1 {
		t.Errorf("EventError = %d, want 1", kinds[EventError])
	}
}

// TestJoinedSuccessIsHit is the counterpart: joining an execution that
// succeeds still counts as a hit and emits EventCached (after resolution).
func TestJoinedSuccessIsHit(t *testing.T) {
	e := New(Config{Jobs: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	go e.Do(context.Background(), key("gtc"), func(ctx context.Context) (any, uint64, error) {
		close(started)
		<-release
		return "v", 1, nil
	})
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := e.Do(context.Background(), key("gtc"), func(ctx context.Context) (any, uint64, error) {
			t.Error("joiner must not execute")
			return nil, 0, nil
		})
		if err != nil || v.(string) != "v" {
			t.Errorf("joined = %v, %v", v, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done
	if m := e.Metrics(); m.Hits != 1 || m.JoinedFailures != 0 {
		t.Fatalf("hits/joinedFailures = %d/%d, want 1/0", m.Hits, m.JoinedFailures)
	}
}

// TestKeyStringDistinguishesSweeps locks in the label fix: keys differing
// only in Scale or Iterations must render differently, while the
// calibrated defaults keep the short form.
func TestKeyStringDistinguishesSweeps(t *testing.T) {
	def := Key{App: "cam", Mode: "fast", Scale: 1.0, Iterations: 10}
	if got := def.String(); got != "cam/fast" {
		t.Errorf("default key = %q, want cam/fast", got)
	}
	cases := []Key{
		{App: "cam", Mode: "fast", Scale: 0.25, Iterations: 10},
		{App: "cam", Mode: "fast", Scale: 1.0, Iterations: 3},
		{App: "cam", Mode: "fast", Scale: 0.25, Iterations: 3},
		{App: "cam", Mode: "fast", Scale: 0.25, Iterations: 3, Profile: "p"},
	}
	seen := map[string]Key{def.String(): def}
	for _, k := range cases {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("keys %+v and %+v collide as %q", prev, k, s)
		}
		seen[s] = k
	}
	if got := cases[0].String(); got != "cam/fast@s0.25" {
		t.Errorf("scale sweep key = %q, want cam/fast@s0.25", got)
	}
	if got := cases[1].String(); got != "cam/fast@i3" {
		t.Errorf("iteration sweep key = %q, want cam/fast@i3", got)
	}
}

// TestEngineRegistryCounters checks the engine publishes its accounting
// into the shared registry next to the per-run wall-time histogram.
func TestEngineRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Jobs: 2, Metrics: reg})
	fn := func(ctx context.Context) (any, uint64, error) { return 1, 5, nil }
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), key("s3d"), fn); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if v, _ := s.Counter("runner_misses_total"); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
	if v, _ := s.Counter("runner_hits_total"); v != 2 {
		t.Errorf("hits = %d, want 2", v)
	}
	if v, _ := s.Counter("runner_refs_total"); v != 5 {
		t.Errorf("refs = %d, want 5", v)
	}
	found := false
	for _, h := range s.Histograms {
		if h.Name == "runner_run_wall_seconds" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing runner_run_wall_seconds histogram: %+v", s.Histograms)
	}
}
