package memtrace

import (
	"fmt"
	"math"
	"testing"

	"nvscavenger/internal/trace"
)

// perfCapture collects the full performance-event stream.
type perfCapture struct {
	events []trace.PerfEvent
}

func (p *perfCapture) FlushEvents(batch []trace.PerfEvent) error {
	p.events = append(p.events, batch...)
	return nil
}

// perfWorkload interleaves compute gaps with stores: 4096 references with 3
// compute instructions ahead of each.  4096 is a multiple of every tested
// period, so the final reference is observed under each modulo gate and the
// gap invariant holds with an empty tail.
func perfWorkload(tr *Tracer) {
	arr, _ := tr.GlobalF64("a", 64)
	tr.BeginIteration()
	for k := 0; k < 4096; k++ {
		tr.Compute(3)
		arr.Store(k%64, float64(k))
	}
}

// TestSamplingGateKeepsPerfGapAccounting is the regression test for the
// sampling-gate perf bug: a sampled-out reference retires an instruction
// but used to early-return before perfGap accumulation, so perf-event gap
// sums undercounted true retired instructions by exactly the skipped
// references.  At any period, sum(Gap) + len(events) + the pending tail
// must equal Instructions(), and with the workload ending on an observed
// reference the tail is empty, making sum(Gap)+len(events) invariant
// across periods.
func TestSamplingGateKeepsPerfGapAccounting(t *testing.T) {
	var want uint64
	for _, period := range []int{1, 2, 4, 8, 16, 64} {
		sink := &perfCapture{}
		tr := New(Config{Perf: sink, Sample: SampleSpec{Mode: SamplePeriodic, Rate: uint64(period)}})
		perfWorkload(tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var gaps uint64
		for _, ev := range sink.events {
			gaps += ev.Gap
		}
		sum := gaps + uint64(len(sink.events)) + tr.PendingPerfGap()
		if sum != tr.Instructions() {
			t.Errorf("period %d: sum(Gap)+events+tail = %d, want %d retired instructions",
				period, sum, tr.Instructions())
		}
		if tr.PendingPerfGap() != 0 {
			t.Errorf("period %d: workload ends on an observed reference, tail = %d",
				period, tr.PendingPerfGap())
		}
		if period == 1 {
			want = gaps + uint64(len(sink.events))
		} else if got := gaps + uint64(len(sink.events)); got != want {
			t.Errorf("period %d: sum(Gap)+len(events) = %d, want %d (invariant across periods)",
				period, got, want)
		}
	}
}

// TestSamplingGatePerfAccountingRandomModes extends the invariant to the
// seeded modes, where the tail is generally non-empty.
func TestSamplingGatePerfAccountingRandomModes(t *testing.T) {
	for _, spec := range []SampleSpec{
		{Mode: SampleBernoulli, Rate: 16, Seed: 7},
		{Mode: SampleBytes, Rate: 1024, Seed: 7},
	} {
		sink := &perfCapture{}
		tr := New(Config{Perf: sink, Sample: spec})
		perfWorkload(tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var gaps uint64
		for _, ev := range sink.events {
			gaps += ev.Gap
		}
		sum := gaps + uint64(len(sink.events)) + tr.PendingPerfGap()
		if sum != tr.Instructions() {
			t.Errorf("%s: sum(Gap)+events+tail = %d, want %d", spec, sum, tr.Instructions())
		}
		if tr.Sampled+tr.SampledOut != 4096 {
			t.Errorf("%s: Sampled %d + SampledOut %d != 4096 references",
				spec, tr.Sampled, tr.SampledOut)
		}
	}
}

// estimatorWorkload touches two objects with known reference counts: a is
// stored 8192 times and read 8192 times, b is stored 2048 times.
func estimatorWorkload(tr *Tracer) {
	a, _ := tr.GlobalF64("a", 64)
	b, _ := tr.GlobalF64("b", 64)
	tr.BeginIteration()
	for k := 0; k < 8192; k++ {
		a.Store(k%64, 1)
		_ = a.Load(k % 64)
		if k%4 == 0 {
			b.Store(k%64, 2)
		}
	}
}

func objByName(tr *Tracer, name string) *Object {
	for _, o := range tr.Objects() {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// TestEstimatorRescalesWithinTolerance: estimator-scaled sampled counts
// must land near the perfect profiler's counts for every mode — the
// alloc-prof-sim relative-error methodology at the unit-test scale.
func TestEstimatorRescalesWithinTolerance(t *testing.T) {
	full := New(Config{})
	estimatorWorkload(full)
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	trueA := float64(objByName(full, "a").Total().Refs()) // 16384
	trueB := float64(objByName(full, "b").Total().Refs()) // 2048

	for _, spec := range []SampleSpec{
		{Mode: SamplePeriodic, Rate: 16},
		{Mode: SampleBernoulli, Rate: 16, Seed: 1},
		{Mode: SampleBytes, Rate: 256, Seed: 1},
	} {
		tr := New(Config{Sample: spec})
		estimatorWorkload(tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		est := tr.Estimator()
		for _, tc := range []struct {
			name string
			want float64
		}{{"a", trueA}, {"b", trueB}} {
			o := objByName(tr, tc.name)
			got := est.Total(o).Refs()
			rel := math.Abs(got-tc.want) / tc.want
			if rel > 0.15 {
				t.Errorf("%s: object %s estimated %.0f refs, true %.0f (rel err %.2f)",
					spec, tc.name, got, tc.want, rel)
			}
		}
		// The estimated series must sum (approximately) to the estimated
		// total: series and totals are scaled consistently.
		o := objByName(tr, "a")
		var seriesSum float64
		for _, v := range est.IterSeries(o) {
			seriesSum += v
		}
		if total := est.Total(o).Refs(); math.Abs(seriesSum-total) > 1e-6*total {
			t.Errorf("%s: series sums to %.2f, total %.2f", spec, seriesSum, total)
		}
	}
}

// TestEstimatorFullRunIsIdentity: with sampling off every factor is 1 and
// estimates equal the exact counters.
func TestEstimatorFullRunIsIdentity(t *testing.T) {
	tr := New(Config{})
	estimatorWorkload(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	est := tr.Estimator()
	for _, o := range tr.Objects() {
		if f := est.Factor(o); f != 1 {
			t.Errorf("object %s factor = %g, want 1", o.Name, f)
		}
		if got, want := est.Total(o), o.Total(); got.Reads != float64(want.Reads) || got.Writes != float64(want.Writes) {
			t.Errorf("object %s estimate %+v != exact %+v", o.Name, got, want)
		}
	}
}

// TestSamplingDeterministicBySeed: equal specs reproduce the observation
// stream exactly; different seeds produce different streams.
func TestSamplingDeterministicBySeed(t *testing.T) {
	observe := func(spec SampleSpec) (uint64, []uint64) {
		tr := New(Config{Sample: spec})
		estimatorWorkload(tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var perObj []uint64
		for _, o := range tr.Objects() {
			perObj = append(perObj, o.Total().Refs())
		}
		return tr.Sampled, perObj
	}
	spec := SampleSpec{Mode: SampleBernoulli, Rate: 32, Seed: 9}
	n1, o1 := observe(spec)
	n2, o2 := observe(spec)
	if n1 != n2 || fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", n1, o1, n2, o2)
	}
	n3, _ := observe(SampleSpec{Mode: SampleBernoulli, Rate: 32, Seed: 10})
	if n3 == n1 {
		t.Fatalf("seeds 9 and 10 observed identical counts (%d); gate ignores the seed?", n1)
	}
}

// TestBernoulliObservesNearRate: the acceptance probability must track
// 1/Rate closely over a long stream.
func TestBernoulliObservesNearRate(t *testing.T) {
	tr := New(Config{Sample: SampleSpec{Mode: SampleBernoulli, Rate: 8, Seed: 3}})
	estimatorWorkload(tr) // 18432 references
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	total := tr.Sampled + tr.SampledOut
	want := float64(total) / 8
	if got := float64(tr.Sampled); math.Abs(got-want) > 0.1*want {
		t.Errorf("bernoulli 1/8 observed %d of %d, want ~%.0f", tr.Sampled, total, want)
	}
}

func TestSampleSpecParseRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"period:rate=16",
		"bernoulli:rate=64,seed=7",
		"bytes:rate=4096,seed=42",
	}
	for _, text := range cases {
		spec, err := ParseSampleSpec(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if got := spec.String(); got != text {
			t.Errorf("round trip %q -> %q", text, got)
		}
	}
	if spec, err := ParseSampleSpec(""); err != nil || spec.Enabled() {
		t.Errorf("empty spec = %v, %v; want disabled", spec, err)
	}
	for _, bad := range []string{"bernoulli", "bernoulli:rate=1", "bogus:rate=4", "period:every=2", "period:rate=x"} {
		if _, err := ParseSampleSpec(bad); err == nil {
			t.Errorf("%q must not parse", bad)
		}
	}
}

// TestByteSamplingFindsLargeObjectsFirst: byte-threshold selection spends
// its observation budget proportionally to byte traffic, so an object
// touched with larger accesses is observed at least as reliably as its
// reference share suggests.
func TestByteSamplingWeightsByBytes(t *testing.T) {
	tr := New(Config{Sample: SampleSpec{Mode: SampleBytes, Rate: 512, Seed: 5}})
	estimatorWorkload(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Sampled == 0 {
		t.Fatal("byte sampling observed nothing")
	}
	// 18432 refs * 8 bytes / 512-byte mean threshold ~ 288 observations.
	total := tr.Sampled + tr.SampledOut
	want := float64(total) * 8 / 512
	if got := float64(tr.Sampled); math.Abs(got-want) > 0.25*want {
		t.Errorf("byte sampling observed %d of %d, want ~%.0f", tr.Sampled, total, want)
	}
}
