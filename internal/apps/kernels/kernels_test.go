package kernels

import (
	"math"
	"testing"

	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func newTracer() *memtrace.Tracer {
	return memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) should cover all values, saw %d", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestMatMulLocalCorrect(t *testing.T) {
	tr := newTracer()
	n := 4
	g, _ := tr.GlobalF64("a", n*n)
	h, _ := tr.GlobalF64("b", n*n)
	c, _ := tr.GlobalF64("c", n*n)
	rng := NewRNG(3)
	raw := func(a memtrace.F64) []float64 { return a.Raw() }
	FillRandom(g, rng, -1, 1)
	FillRandom(h, rng, -1, 1)
	MatMulLocal(tr, g, h, c, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += raw(g)[i*n+k] * raw(h)[k*n+j]
			}
			if got := raw(c)[i*n+j]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("C[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMatMulReadWriteShape(t *testing.T) {
	tr := newTracer()
	n := 8
	a, _ := tr.GlobalF64("a", n*n)
	b, _ := tr.GlobalF64("b", n*n)
	tr.BeginIteration()
	c, cobj := tr.GlobalF64("c", n*n)
	MatMulLocal(tr, a, b, c, n)
	// c receives exactly n^2 writes and no reads from the kernel.
	if got := cobj.Total(); got.Writes != uint64(n*n) || got.Reads != 0 {
		t.Fatalf("C stats = %+v", got)
	}
	seg := tr.SegmentStats(trace.SegGlobal, 1)
	wantReads := uint64(2 * n * n * n)
	if seg.Reads != wantReads {
		t.Fatalf("reads = %d, want %d", seg.Reads, wantReads)
	}
}

func TestDotLocal(t *testing.T) {
	tr := newTracer()
	a, _ := tr.GlobalF64("a", 5)
	b, _ := tr.GlobalF64("b", 5)
	for i := 0; i < 5; i++ {
		a.Store(i, float64(i))
		b.Store(i, 2)
	}
	if got := DotLocal(tr, a, b); got != 20 {
		t.Fatalf("dot = %v, want 20", got)
	}
}

func TestAxpyLocal(t *testing.T) {
	tr := newTracer()
	x, _ := tr.GlobalF64("x", 4)
	y, _ := tr.GlobalF64("y", 4)
	for i := 0; i < 4; i++ {
		x.Store(i, 1)
		y.Store(i, float64(i))
	}
	AxpyLocal(tr, 3, x, y)
	for i := 0; i < 4; i++ {
		if got := y.Raw()[i]; got != float64(i)+3 {
			t.Fatalf("y[%d] = %v", i, got)
		}
	}
}

func TestStencil7ConservesConstantField(t *testing.T) {
	tr := newTracer()
	nx, ny, nz := 6, 6, 6
	src, _ := tr.GlobalF64("src", nx*ny*nz)
	dst, _ := tr.GlobalF64("dst", nx*ny*nz)
	src.Fill(5)
	Stencil7(tr, src, dst, nx, ny, nz, 0.1)
	for i, v := range dst.Raw() {
		if math.Abs(v-5) > 1e-12 {
			t.Fatalf("dst[%d] = %v, want 5 (constant field is a fixed point)", i, v)
		}
	}
}

func TestStencil7Smooths(t *testing.T) {
	tr := newTracer()
	nx, ny, nz := 8, 8, 8
	src, _ := tr.GlobalF64("src", nx*ny*nz)
	dst, _ := tr.GlobalF64("dst", nx*ny*nz)
	src.Fill(0)
	mid := (4*ny+4)*nz + 4
	src.Store(mid, 100)
	Stencil7(tr, src, dst, nx, ny, nz, 0.1)
	if got := dst.Raw()[mid]; got >= 100 || got <= 0 {
		t.Fatalf("peak should shrink: %v", got)
	}
	if got := dst.Raw()[mid+1]; got <= 0 {
		t.Fatalf("neighbour should rise: %v", got)
	}
}

func TestLegendreTable(t *testing.T) {
	tr := newTracer()
	xs, _ := tr.GlobalF64("xs", 3)
	xs.Store(0, 0)
	xs.Store(1, 1)
	xs.Store(2, 0.5)
	deg := 3
	table, _ := tr.GlobalF64("leg", (deg+1)*3)
	LegendreTable(tr, xs, table, deg)
	raw := table.Raw()
	// P2(x) = (3x^2-1)/2, P3(x) = (5x^3-3x)/2
	if math.Abs(raw[2*3+0]-(-0.5)) > 1e-12 {
		t.Fatalf("P2(0) = %v, want -0.5", raw[2*3+0])
	}
	if math.Abs(raw[3*3+1]-1) > 1e-12 {
		t.Fatalf("P3(1) = %v, want 1", raw[3*3+1])
	}
	if math.Abs(raw[3*3+2]-(-0.4375)) > 1e-12 {
		t.Fatalf("P3(0.5) = %v, want -0.4375", raw[3*3+2])
	}
}

func TestInterpolateLookup(t *testing.T) {
	tr := newTracer()
	table, _ := tr.GlobalF64("tab", 11) // f(x) = 10x over [0,1]
	for i := 0; i <= 10; i++ {
		table.Store(i, float64(i))
	}
	q, _ := tr.GlobalF64("q", 2)
	q.Store(0, 0.25)
	q.Store(1, 0.85)
	out, _ := tr.GlobalF64("out", 2)
	InterpolateLookup(tr, table, q, out)
	if got := out.Raw()[0]; math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("interp(0.25) = %v, want 2.5", got)
	}
	if got := out.Raw()[1]; math.Abs(got-8.5) > 1e-9 {
		t.Fatalf("interp(0.85) = %v, want 8.5", got)
	}
}

func TestStackReaderRatio(t *testing.T) {
	tr := newTracer()
	tr.BeginIteration()
	f := tr.Enter("reader")
	local := f.LocalF64(100)
	sum := StackReader(tr, local, 20)
	tr.Leave()
	if sum == 0 {
		t.Fatal("checksum must be nonzero")
	}
	s := tr.SegmentStats(trace.SegStack, 1)
	ratio := float64(s.Reads) / float64(s.Writes)
	if ratio < 19 || ratio > 21 {
		t.Fatalf("stack r/w ratio = %v, want ~20", ratio)
	}
}

func TestGatherScatter(t *testing.T) {
	tr := newTracer()
	tr.BeginIteration()
	field, fobj := tr.GlobalF64("field", 16)
	accum, _ := tr.GlobalF64("accum", 16)
	idx, _ := tr.GlobalI64("idx", 8)
	field.Fill(2)
	for i := 0; i < 8; i++ {
		idx.Store(i, int64(i*2))
	}
	sum := GatherScatter(tr, field, accum, idx, 0.5)
	if sum != 16 {
		t.Fatalf("gather sum = %v, want 16", sum)
	}
	for i := 0; i < 8; i++ {
		if got := accum.Raw()[i*2]; got != 1 {
			t.Fatalf("accum[%d] = %v, want 1", i*2, got)
		}
	}
	if fobj.Total().Writes != 16 { // Fill writes only
		t.Fatalf("field writes = %d, want 16 (gather must not write)", fobj.Total().Writes)
	}
}

func TestTridiagSolvesSystem(t *testing.T) {
	tr := newTracer()
	n := 16
	lower, _ := tr.GlobalF64("lo", n)
	diag, _ := tr.GlobalF64("d", n)
	upper, _ := tr.GlobalF64("up", n)
	rhs, _ := tr.GlobalF64("rhs", n)
	scratch, _ := tr.GlobalF64("scratch", n)
	// -1 / 2 / -1 Poisson matrix with a known solution x = all ones:
	// rhs = A*1: interior 0, ends 1.
	for i := 0; i < n; i++ {
		lower.Store(i, -1)
		diag.Store(i, 2)
		upper.Store(i, -1)
		rhs.Store(i, 0)
	}
	rhs.Store(0, 1)
	rhs.Store(n-1, 1)
	Tridiag(tr, lower, diag, upper, rhs, scratch, n)
	for i := 0; i < n; i++ {
		if got := rhs.Raw()[i]; math.Abs(got-1) > 1e-9 {
			t.Fatalf("x[%d] = %v, want 1", i, got)
		}
	}
}

func TestKernelsAccountCompute(t *testing.T) {
	tr := newTracer()
	a, _ := tr.GlobalF64("a", 16)
	b, _ := tr.GlobalF64("b", 16)
	c, _ := tr.GlobalF64("c", 16)
	before := tr.Instructions()
	MatMulLocal(tr, a, b, c, 4)
	after := tr.Instructions()
	memRefs := uint64(2*4*4*4 + 4*4)
	if after-before <= memRefs {
		t.Fatal("kernel must account compute instructions beyond its memory references")
	}
}
