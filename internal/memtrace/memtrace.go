// Package memtrace is the NV-SCAVENGER instrumentation substrate.
//
// The original tool (paper §III) instruments every instruction of a native
// binary with PIN and statistically reports NVRAM-relevant access patterns
// per memory object in the stack, heap and global data segments.  Go has no
// dynamic binary instrumentation ecosystem, so this package substitutes an
// instrumented-memory API over a simulated address space: the mini
// applications allocate arrays through a traced allocator, announce routine
// entry/exit to a shadow call stack, and perform loads/stores through traced
// accessors.  The resulting event stream — (address, size, op) plus program
// context — is identical in content to what PIN-level instrumentation
// observes, and all attribution machinery from §III is implemented on top of
// it: stack frame attribution in fast and slow modes, heap signatures with
// dead-object flags, common-block merging, a bucketed object index with
// dynamic rebalancing, an LRU software object cache, and buffered trace
// hand-off to the cache simulator.
package memtrace

import (
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/trace"
)

// Config controls a Tracer.
type Config struct {
	// StackMode selects whole-stack (fast) or per-frame (slow) stack
	// attribution.  Default FastStack.
	StackMode StackMode
	// ObjectCacheSize is the capacity of the LRU software object cache on
	// the attribution path.  Negative disables the cache; zero selects the
	// default (8 entries).
	ObjectCacheSize int
	// BufferSize is the capacity of the staging buffer in front of Sink.
	// Zero selects trace.DefaultBufferSize.
	BufferSize int
	// Sink optionally receives the raw access stream in batches (typically
	// the cache hierarchy simulator).  Nil disables trace hand-off; the
	// tracer then only maintains per-object statistics.
	Sink trace.Sink
	// StackReserve is the simulated stack size in bytes.  Zero selects
	// 256 MiB, plenty for the mini-apps (scientific codes commonly raise
	// their stack limits, §III-A).
	StackReserve uint64
	// Perf optionally receives the performance-event stream: each memory
	// reference together with the number of non-memory instructions retired
	// since the previous reference.  Events are staged into a buffer the
	// size of BufferSize and delivered in batches, so references and
	// instruction gaps travel in the same flush as the raw trace.  The
	// trace-driven CPU timing simulator consumes this stream for the
	// latency-sensitivity study (§V).
	Perf trace.PerfSink
	// Sample selects the sampled-tracing discipline: periodic, Bernoulli
	// or byte-threshold selection over a seeded PRNG (see SampleSpec).
	// The zero value observes every reference.  Sampled-out references
	// still retire an instruction and accumulate into the performance-event
	// gap, so perf-event streams sum to true retired instructions at any
	// rate; use Estimator to rescale the observed per-object counters into
	// estimates of the true values.
	Sample SampleSpec
	// Window restricts recording to a contiguous span of the iteration
	// space for intra-run sharding.  The tracer still replays every event
	// deterministically (so cache, sampler and attribution state evolve
	// exactly as in a full run) but only records statistics and emits
	// trace/perf events for iterations it owns.  Nil records everything.
	Window *Window
	// Arena optionally supplies the staging slab for the Sink buffer from a
	// shared batch arena instead of a private allocation; it is used when
	// BufferSize is zero or equal to the arena's batch size.  Call
	// ReleaseBuffers after Close to hand the slab back.
	Arena *trace.Arena[trace.Access]
}

// Window is a contiguous slice of a run's iteration space owned by one shard
// of a sharded execution.  Main-loop iterations are 1-based; a shard owns
// [Start, End] inclusive.  Exactly one shard sets First (it owns the
// pre-computing phase, iteration 0 before the main loop) and exactly one sets
// Last (it owns the post-processing phase).  The Last shard additionally
// maintains full attribution state (registry lookups, pattern-delta chains)
// for references outside its span, so its structural state — object index,
// LRU cache, pattern counters — finishes identical to a full run's.
type Window struct {
	Start, End  int
	First, Last bool
	// OnOwnership, when set, is invoked after every ownership flip, once
	// the staging buffer has been flushed (a batch never mixes events from
	// two owners); sharded stacks use it to mute the cache hierarchy's
	// statistics outside the owned span.
	OnOwnership func(owned bool)
}

// contains reports whether the window owns main-loop iteration i.
func (w *Window) contains(i int) bool { return i >= w.Start && i <= w.End }

// PerfSink is the batched performance-event consumer contract; it is
// trace.PerfSink, aliased here for call sites that configure a Tracer.
type PerfSink = trace.PerfSink

// Tracer observes the access stream of one instrumented program.
type Tracer struct {
	cfg Config
	reg *registry
	buf *trace.Buffer

	// perfBuf stages performance events for batched delivery to cfg.Perf;
	// perfErr is the sink's first error (sticky, reported by Close, and
	// short-circuiting like trace.Buffer).
	perfBuf []trace.PerfEvent
	perfErr error
	// PerfDropped counts events discarded after a perf-sink error.
	PerfDropped uint64
	// PerfFlushes counts perf-buffer drains (benchmarks read it).
	PerfFlushes uint64

	// iteration state
	iter       int
	iterInstrs []uint64 // retired instructions per iteration
	instrs     uint64   // instructions in the current iteration

	// per-segment, per-iteration reference counters (Table V input)
	segIter map[trace.Segment][]trace.Stats

	// stack state
	frames     []frame
	sp         uint64
	maxSP      uint64
	minSP      uint64
	stackLimit uint64
	stackObj   *Object // fast-mode whole-stack object

	// slow-mode routine registry
	routines     map[string]*Object
	routineOrder []*Object

	heap    heapState
	globals globalState

	// Unknown counts references that fall outside every known region.
	Unknown uint64

	// perfGap accumulates Compute instructions since the last reference.
	perfGap uint64

	// sampleTick counts references for the periodic sampling gate.
	sampleTick uint64
	// sampler holds the seeded gate state of the randomized modes.
	sampler sampler
	// sampleBytes accumulates observed access bytes per object under byte
	// sampling; the Estimator reads it to convert byte weights back into
	// reference counts.
	sampleBytes map[ObjectID]uint64
	// Sampled counts references actually observed (== all references when
	// sampling is off).
	Sampled uint64
	// SampledOut counts references the gate skipped (retired but
	// unobserved); Sampled+SampledOut is the true reference count.
	SampledOut uint64

	// win is the owned iteration window (nil = own everything); owned
	// caches whether the current iteration falls inside it.
	win   *Window
	owned bool

	closed bool
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	cacheSize := cfg.ObjectCacheSize
	switch {
	case cacheSize == 0:
		cacheSize = defaultCacheSize
	case cacheSize < 0:
		cacheSize = 0
	}
	reserve := cfg.StackReserve
	if reserve == 0 {
		reserve = 256 << 20
	}
	spec := cfg.Sample
	t := &Tracer{
		cfg:        cfg,
		reg:        newRegistry(cacheSize),
		sp:         stackBase,
		maxSP:      stackBase,
		minSP:      stackBase,
		stackLimit: stackBase - reserve,
		routines:   map[string]*Object{},
		heap:       newHeapState(),
		globals:    newGlobalState(),
		segIter:    map[trace.Segment][]trace.Stats{},
		iterInstrs: []uint64{0},
		sampler:    newSampler(spec),
		win:        cfg.Window,
		owned:      cfg.Window == nil || cfg.Window.First,
	}
	if spec.Mode == SampleBytes && spec.Enabled() {
		t.sampleBytes = map[ObjectID]uint64{}
	}
	if cfg.StackMode == FastStack {
		t.stackObj = t.reg.newObject(Object{
			Name:    "stack",
			Segment: trace.SegStack,
		})
	}
	if cfg.Sink != nil {
		if cfg.Arena != nil && (cfg.BufferSize <= 0 || cfg.BufferSize == cfg.Arena.BatchSize()) {
			t.buf = trace.NewArenaBuffer(cfg.Sink, cfg.Arena)
		} else {
			t.buf = trace.NewBuffer(cfg.Sink, cfg.BufferSize)
		}
	}
	if cfg.Perf != nil {
		size := cfg.BufferSize
		if size <= 0 {
			size = trace.DefaultBufferSize
		}
		t.perfBuf = make([]trace.PerfEvent, 0, size)
	}
	return t
}

// Iteration returns the current iteration number (0 = pre/post phase).
func (t *Tracer) Iteration() int { return t.iter }

// BeginIteration enters the next main-loop timestep.  The first call moves
// from the pre-computing phase (iteration 0) to iteration 1.
func (t *Tracer) BeginIteration() {
	t.finishIterationAccounting()
	t.iter = len(t.iterInstrs)
	t.iterInstrs = append(t.iterInstrs, 0)
	t.instrs = 0
	if t.win != nil {
		t.setOwned(t.win.contains(t.iter))
	}
}

// EndIteration closes the current timestep and returns to no particular
// iteration until the next BeginIteration; accesses made between iterations
// are charged to the just-finished timestep (loop bookkeeping).
func (t *Tracer) EndIteration() {
	// Accounting is finalized lazily by the next BeginIteration/Close so
	// that inter-iteration bookkeeping still lands in a defined slot.
}

// PostPhase returns to iteration 0 for the post-processing phase.
func (t *Tracer) PostPhase() {
	t.finishIterationAccounting()
	t.iter = 0
	t.instrs = t.iterInstrs[0]
	if t.win != nil {
		t.setOwned(t.win.Last)
	}
}

// setOwned flips iteration ownership.  The staging buffer is drained before
// the flip so a batch never mixes events recorded under two owners — the
// downstream hierarchy's mute state must match every event in a batch.
func (t *Tracer) setOwned(owned bool) {
	if owned == t.owned {
		return
	}
	if t.buf != nil {
		// The sink error is sticky inside the buffer and re-surfaced by
		// Close; this flush only aligns batches to the ownership boundary.
		//nvlint:ignore errcontract sticky buffer error is reported by Tracer.Close
		_ = t.buf.Flush()
	}
	t.owned = owned
	if t.win.OnOwnership != nil {
		t.win.OnOwnership(owned)
	}
}

func (t *Tracer) finishIterationAccounting() {
	t.iterInstrs[t.iter] = t.instrs
	// Stamp the iteration's instruction count into every object touched in
	// it, establishing the reference-rate denominator.
	for _, o := range t.reg.allObjects() {
		if o.Iterations() > t.iter {
			s := &o.perIter[t.iter]
			if s.Refs() > 0 {
				s.Instructions = t.iterInstrs[t.iter]
			}
		}
	}
}

// Compute accounts n non-memory (ALU/branch) instructions.  Mini-app kernels
// call it to model the computation between memory references; the count
// feeds the reference-rate metric and the performance simulator.
func (t *Tracer) Compute(n uint64) {
	t.instrs += n
	t.perfGap += n
}

// Instructions returns total instructions retired so far across iterations.
func (t *Tracer) Instructions() uint64 {
	var sum uint64
	for i, v := range t.iterInstrs {
		if i == t.iter {
			sum += t.instrs
		} else {
			sum += v
		}
	}
	return sum
}

// IterationInstructions returns instructions retired in iteration i.
func (t *Tracer) IterationInstructions(i int) uint64 {
	if i == t.iter {
		return t.instrs
	}
	if i < 0 || i >= len(t.iterInstrs) {
		return 0
	}
	return t.iterInstrs[i]
}

// access is the single entry point for every memory reference.
func (t *Tracer) access(addr uint64, size uint8, op trace.Op) {
	t.instrs++ // a reference is one retired instruction

	if t.sampler.spec.Enabled() && !t.sampler.observe(&t.sampleTick, size) {
		// The reference retired but is not observed: it belongs in the
		// instruction gap of the next observed perf event, so gap sums
		// still add up to true retired instructions at any rate (a
		// sampled-out reference used to vanish from the perf stream,
		// silently drifting the CPU timing study).
		t.perfGap++
		if t.owned {
			t.SampledOut++
		}
		return
	}
	if !t.owned {
		// Out-of-span reference of a sharded replay: the event still flows
		// to the (muted) cache hierarchy so simulator state stays exact,
		// and it resets the perf gap as if its event had been emitted (the
		// owning shard emits it), but nothing is recorded here.  The Last
		// shard additionally replays attribution so its object index, LRU
		// cache and pattern chains finish identical to a full run's.
		if t.win.Last {
			var obj *Object
			switch t.classify(addr) {
			case trace.SegStack:
				obj = t.attributeStack(addr)
			case trace.SegHeap, trace.SegGlobal:
				obj = t.reg.lookup(addr)
			}
			if obj != nil {
				obj.notePattern(addr)
			}
		}
		t.perfGap = 0
		if t.buf != nil {
			t.buf.Add(trace.Access{Addr: addr, Size: size, Op: op})
		}
		return
	}
	t.Sampled++

	seg := t.classify(addr)
	stats := t.segIter[seg]
	for len(stats) <= t.iter {
		stats = append(stats, trace.Stats{})
	}
	stats[t.iter].Observe(trace.Access{Addr: addr, Size: size, Op: op})
	t.segIter[seg] = stats

	var obj *Object
	switch seg {
	case trace.SegStack:
		obj = t.attributeStack(addr)
	case trace.SegHeap, trace.SegGlobal:
		obj = t.reg.lookup(addr)
	}
	if obj != nil {
		obj.record(t.iter, op == trace.Write, 1)
		obj.notePattern(addr)
		if t.sampleBytes != nil {
			t.sampleBytes[obj.ID] += uint64(size)
		}
	} else if seg == trace.SegUnknown {
		t.Unknown++
	}

	if t.buf != nil {
		t.buf.Add(trace.Access{Addr: addr, Size: size, Op: op})
	}
	if t.cfg.Perf != nil {
		t.perfBuf = append(t.perfBuf, trace.PerfEvent{Gap: t.perfGap, Access: trace.Access{Addr: addr, Size: size, Op: op}})
		t.perfGap = 0
		if len(t.perfBuf) == cap(t.perfBuf) {
			t.flushPerf()
		}
	}
}

// Sample returns the tracer's effective sampling configuration (the
// disabled spec for full runs).
func (t *Tracer) Sample() SampleSpec { return t.sampler.spec }

// PendingPerfGap returns the instructions retired since the last observed
// reference that have not yet been attached to a perf event (the tail of
// the stream).  sum(event gaps) + observed events + PendingPerfGap equals
// total retired instructions at any sampling rate.
func (t *Tracer) PendingPerfGap() uint64 { return t.perfGap }

// flushPerf drains the staged performance events to the perf sink; errors
// are sticky and short-circuit further delivery.
func (t *Tracer) flushPerf() {
	if len(t.perfBuf) == 0 {
		return
	}
	if t.perfErr != nil {
		t.PerfDropped += uint64(len(t.perfBuf))
		t.perfBuf = t.perfBuf[:0]
		return
	}
	t.PerfFlushes++
	if err := t.cfg.Perf.FlushEvents(t.perfBuf); err != nil {
		t.perfErr = err
	}
	t.perfBuf = t.perfBuf[:0]
}

// classify maps an address to its segment by the region layout.
func (t *Tracer) classify(addr uint64) trace.Segment {
	switch {
	case t.isStackAddr(addr):
		return trace.SegStack
	case addr >= heapBase && addr < t.heap.brk:
		return trace.SegHeap
	case addr >= globalBase && addr < t.globals.brk:
		return trace.SegGlobal
	}
	return trace.SegUnknown
}

// SegmentStats returns the aggregate counters for one segment in iteration
// i (zero value if none).
func (t *Tracer) SegmentStats(seg trace.Segment, iter int) trace.Stats {
	s := t.segIter[seg]
	if iter < 0 || iter >= len(s) {
		return trace.Stats{}
	}
	return s[iter]
}

// SegmentTotals returns counters for one segment summed over a range of
// iterations [from, to].
func (t *Tracer) SegmentTotals(seg trace.Segment, from, to int) trace.Stats {
	var out trace.Stats
	for i := from; i <= to; i++ {
		s := t.SegmentStats(seg, i)
		out.Reads += s.Reads
		out.Writes += s.Writes
		out.BytesRead += s.BytesRead
		out.BytesWrite += s.BytesWrite
	}
	return out
}

// MainLoopIterations returns the number of main-loop timesteps recorded.
func (t *Tracer) MainLoopIterations() int { return len(t.iterInstrs) - 1 }

// Objects returns every object ever registered (stack routines, heap
// signatures, globals) in registration order.
func (t *Tracer) Objects() []*Object {
	objs := t.reg.allObjects()
	out := make([]*Object, 0, len(objs))
	for _, o := range objs {
		if o.Segment == trace.SegGlobal {
			// merged-away common-block members are dead; skip them
			if o.Dead {
				continue
			}
		}
		out = append(out, o)
	}
	return out
}

// StackObjects returns the stack-frame objects: in slow mode one per
// routine, in fast mode the single whole-stack object.
func (t *Tracer) StackObjects() []*Object {
	if t.cfg.StackMode == FastStack {
		return []*Object{t.stackObj}
	}
	out := make([]*Object, len(t.routineOrder))
	copy(out, t.routineOrder)
	return out
}

// StackHighWater returns the deepest stack extent in bytes.
func (t *Tracer) StackHighWater() uint64 { return stackBase - t.minSP }

// Footprint returns the total bytes of all registered data: global and heap
// object sizes plus the deepest stack extent.  This is the "memory footprint
// per task" of Table I.
func (t *Tracer) Footprint() uint64 {
	var sum uint64
	for _, o := range t.globals.order {
		sum += o.Size
	}
	seen := map[ObjectID]struct{}{}
	for _, o := range t.heap.order {
		if _, dup := seen[o.ID]; dup {
			continue
		}
		seen[o.ID] = struct{}{}
		sum += o.Size
	}
	sum += t.StackHighWater()
	return sum
}

// RegistryStats exposes attribution-path counters for the ablation
// benchmarks: total lookups, software-cache hits, objects scanned in
// buckets, and rebalance events.
func (t *Tracer) RegistryStats() (lookups, cacheHits, scanned, rebalances uint64) {
	return t.reg.Lookups, t.reg.CacheHits, t.reg.Scanned, t.reg.Rebalances
}

// SetSinkRetry switches the access staging buffer into recoverable mode:
// failing sink flushes are retried per the policy before tripping sticky.
// No-op for sinkless tracers.
func (t *Tracer) SetSinkRetry(p resilience.RetryPolicy) {
	if t.buf != nil {
		t.buf.SetRetry(p)
	}
}

// SinkDropped returns the accesses dropped after the sink tripped.
func (t *Tracer) SinkDropped() uint64 {
	if t.buf == nil {
		return 0
	}
	return t.buf.Dropped()
}

// SinkRetries returns the sink-flush retries the recoverable mode
// performed.
func (t *Tracer) SinkRetries() uint64 {
	if t.buf == nil {
		return 0
	}
	return t.buf.Retries()
}

// SinkTrips returns 1 once the sink error has tripped sticky, else 0.
func (t *Tracer) SinkTrips() uint64 {
	if t.buf == nil {
		return 0
	}
	return t.buf.Trips()
}

// Close finalizes iteration accounting and flushes the trace and
// performance-event buffers, returning the first sink error.
func (t *Tracer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.finishIterationAccounting()
	var err error
	if t.buf != nil {
		err = t.buf.Close()
	}
	if t.cfg.Perf != nil {
		t.flushPerf()
		if err == nil {
			err = t.perfErr
		}
	}
	return err
}

// ReleaseBuffers hands arena-drawn staging slabs back to their arena.  Call
// only after Close; the tracer must not trace afterwards.
func (t *Tracer) ReleaseBuffers() {
	if t.buf != nil {
		t.buf.Release()
	}
}
