// Package checkpoint quantifies the checkpointing motivation of the
// paper's introduction: "NVRAM could provide substantial bandwidth for
// checkpointing and ... would drastically reduce latency.  This will become
// increasingly important in exascale systems, given the resiliency
// challenge and limited external I/O bandwidth" (§I).
//
// It implements the standard first-order checkpoint/restart efficiency
// model (Young's and Daly's optimal checkpoint intervals) for two targets:
// a shared parallel filesystem, whose aggregate bandwidth is divided among
// all nodes, and node-local byte-addressable NVRAM, whose bandwidth scales
// with the machine.  Sweeping node count from petascale to exascale
// exhibits the crossover the paper argues for: filesystem checkpointing
// efficiency collapses as the machine grows, NVRAM checkpointing does not.
package checkpoint

import (
	"fmt"
	"math"
)

// Target is a checkpoint destination.
type Target struct {
	Name string
	// AggregateBandwidth is the total bytes/second the target sustains
	// across the whole machine.  Zero means the bandwidth is per-node.
	AggregateBandwidth float64
	// PerNodeBandwidth is the bytes/second each node sustains into the
	// target (node-local NVRAM).  Zero means the target is shared.
	PerNodeBandwidth float64
	// WriteLatency is the fixed per-checkpoint overhead (metadata,
	// barrier, commit), in seconds.
	WriteLatency float64
}

// Validate rejects targets with no bandwidth at all.
func (t Target) Validate() error {
	if t.AggregateBandwidth <= 0 && t.PerNodeBandwidth <= 0 {
		return fmt.Errorf("checkpoint: target %q has no bandwidth", t.Name)
	}
	if t.AggregateBandwidth > 0 && t.PerNodeBandwidth > 0 {
		return fmt.Errorf("checkpoint: target %q has both aggregate and per-node bandwidth", t.Name)
	}
	if t.WriteLatency < 0 {
		return fmt.Errorf("checkpoint: target %q has negative latency", t.Name)
	}
	return nil
}

// ParallelFS returns a Jaguar-era parallel filesystem target (~240 GB/s
// aggregate, as the Spider filesystem sustained around the paper's time).
func ParallelFS() Target {
	return Target{Name: "parallel-fs", AggregateBandwidth: 240e9, WriteLatency: 5}
}

// NodeNVRAM returns a node-local NVRAM DIMM target: a few GB/s per node
// (paper §I: NVRAM brings checkpointing under hardware control with
// drastically reduced latency).
func NodeNVRAM() Target {
	return Target{Name: "node-nvram", PerNodeBandwidth: 4e9, WriteLatency: 0.01}
}

// System describes the machine and application.
type System struct {
	// Nodes is the machine size.
	Nodes int
	// StateBytesPerNode is the per-task checkpoint volume (Table I's
	// memory footprints are the natural choice).
	StateBytesPerNode float64
	// NodeMTBFHours is the mean time between failures of one node.
	NodeMTBFHours float64
	// RestartSeconds is the fixed reboot/relaunch cost after a failure;
	// reading the checkpoint back is charged separately at the target's
	// bandwidth (restart from node-local NVRAM is as fast as writing it,
	// which is the §I argument for hardware-controlled checkpointing).
	RestartSeconds float64
}

// Validate rejects degenerate systems.
func (s System) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("checkpoint: non-positive node count")
	}
	if s.StateBytesPerNode <= 0 {
		return fmt.Errorf("checkpoint: non-positive state size")
	}
	if s.NodeMTBFHours <= 0 {
		return fmt.Errorf("checkpoint: non-positive MTBF")
	}
	if s.RestartSeconds < 0 {
		return fmt.Errorf("checkpoint: negative restart time")
	}
	return nil
}

// SystemMTBFSeconds returns the machine-level MTBF: node MTBF divided by
// the node count (independent exponential failures).
func (s System) SystemMTBFSeconds() float64 {
	return s.NodeMTBFHours * 3600 / float64(s.Nodes)
}

// CheckpointSeconds returns delta, the time to write one global checkpoint
// to the target.
func CheckpointSeconds(s System, t Target) float64 {
	var bw float64
	if t.PerNodeBandwidth > 0 {
		// Node-local writes proceed in parallel: the global checkpoint
		// takes one node's time.
		bw = t.PerNodeBandwidth
		return s.StateBytesPerNode/bw + t.WriteLatency
	}
	// Shared target: all nodes funnel through the aggregate bandwidth.
	bw = t.AggregateBandwidth
	return float64(s.Nodes)*s.StateBytesPerNode/bw + t.WriteLatency
}

// YoungInterval returns Young's optimal checkpoint interval
// sqrt(2 * delta * MTBF).
func YoungInterval(deltaSeconds, mtbfSeconds float64) float64 {
	if deltaSeconds <= 0 || mtbfSeconds <= 0 {
		return 0
	}
	return math.Sqrt(2 * deltaSeconds * mtbfSeconds)
}

// DalyInterval returns Daly's higher-order optimum, which corrects Young's
// formula when delta is not small against the MTBF:
//
//	tau = sqrt(2 delta M) * (1 + sqrt(delta/(2M))/3 + delta/(9M)) - delta
//
// falling back to M when delta > 2M (checkpointing cannot keep up).
func DalyInterval(deltaSeconds, mtbfSeconds float64) float64 {
	if deltaSeconds <= 0 || mtbfSeconds <= 0 {
		return 0
	}
	if deltaSeconds > 2*mtbfSeconds {
		return mtbfSeconds
	}
	root := math.Sqrt(2 * deltaSeconds * mtbfSeconds)
	corr := 1 + math.Sqrt(deltaSeconds/(2*mtbfSeconds))/3 + deltaSeconds/(9*mtbfSeconds)
	tau := root*corr - deltaSeconds
	if tau <= 0 {
		return deltaSeconds
	}
	return tau
}

// Result is the efficiency estimate for one system/target pair.
type Result struct {
	Target            string
	DeltaSeconds      float64 // one checkpoint
	IntervalSeconds   float64 // Daly-optimal compute segment
	SystemMTBFSeconds float64
	// Efficiency is the fraction of wall-clock time spent on useful
	// computation: 1 - checkpoint overhead - expected rework - restart.
	Efficiency float64
}

// Evaluate computes the checkpoint efficiency of a system on a target.
func Evaluate(s System, t Target) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	delta := CheckpointSeconds(s, t)
	mtbf := s.SystemMTBFSeconds()
	tau := DalyInterval(delta, mtbf)
	// First-order waste model: per segment of length tau we pay delta of
	// checkpoint time; a failure arrives every MTBF on average, costing
	// half a segment of rework plus the restart (reboot + checkpoint
	// read-back at the target's bandwidth).
	restart := s.RestartSeconds + delta
	waste := delta/(tau+delta) + (tau/2+restart)/mtbf
	eff := 1 - waste
	if eff < 0 {
		eff = 0
	}
	return Result{
		Target:            t.Name,
		DeltaSeconds:      delta,
		IntervalSeconds:   tau,
		SystemMTBFSeconds: mtbf,
		Efficiency:        eff,
	}, nil
}

// SweepPoint compares targets at one machine size.
type SweepPoint struct {
	Nodes   int
	Results []Result
}

// Sweep evaluates every target across machine sizes.
func Sweep(base System, nodes []int, targets []Target) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(nodes))
	for _, n := range nodes {
		s := base
		s.Nodes = n
		pt := SweepPoint{Nodes: n}
		for _, t := range targets {
			r, err := Evaluate(s, t)
			if err != nil {
				return nil, err
			}
			pt.Results = append(pt.Results, r)
		}
		out = append(out, pt)
	}
	return out, nil
}
