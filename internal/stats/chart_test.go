package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestHBarWidths(t *testing.T) {
	if got := HBar(5, 10, 10); utf8.RuneCountInString(got) != 10 {
		t.Fatalf("bar width = %d runes, want 10", utf8.RuneCountInString(got))
	}
	if got := HBar(10, 10, 8); got != strings.Repeat("█", 8) {
		t.Fatalf("full bar = %q", got)
	}
	if got := HBar(0, 10, 4); strings.ContainsRune(got, '█') {
		t.Fatalf("empty bar contains full cells: %q", got)
	}
	if HBar(1, 1, 0) != "" {
		t.Fatal("zero width should render empty")
	}
}

func TestHBarClamping(t *testing.T) {
	if got := HBar(100, 10, 4); got != "████" {
		t.Fatalf("over-max should clamp to full: %q", got)
	}
	if got := HBar(-5, 10, 4); strings.ContainsRune(got, '█') {
		t.Fatalf("negative value should clamp to empty: %q", got)
	}
	if got := HBar(5, 0, 4); strings.ContainsRune(got, '█') {
		t.Fatalf("non-positive max should clamp to empty: %q", got)
	}
}

func TestBarRow(t *testing.T) {
	out := BarRow([]string{"aa", "b"}, []float64{2, 4}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "aa ") || !strings.HasPrefix(lines[1], "b  ") {
		t.Fatalf("labels misaligned:\n%s", out)
	}
	if !strings.Contains(lines[1], "████████") {
		t.Fatalf("max row should be a full bar:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(got) != 4 {
		t.Fatalf("length = %d", utf8.RuneCountInString(got))
	}
	if []rune(got)[0] != '▁' || []rune(got)[3] != '█' {
		t.Fatalf("extremes wrong: %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("flat series = %q", got)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty series should render empty")
	}
	if got := Sparkline([]float64{math.NaN(), 1}); []rune(got)[0] != ' ' {
		t.Fatalf("NaN should render as space: %q", got)
	}
	if got := Sparkline([]float64{math.NaN(), math.NaN()}); got != "  " {
		t.Fatalf("all-NaN = %q", got)
	}
}

// Property: HBar output always has exactly `width` runes and is monotone in
// filled cells.
func TestQuickHBar(t *testing.T) {
	f := func(v, m float64, w uint8) bool {
		width := int(w%40) + 1
		v, m = math.Abs(v), math.Abs(m)
		if math.IsNaN(v) || math.IsNaN(m) || math.IsInf(v, 0) || math.IsInf(m, 0) {
			return true
		}
		bar := HBar(v, m, width)
		return utf8.RuneCountInString(bar) == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
