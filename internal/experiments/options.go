package experiments

import (
	"context"
	"time"

	"nvscavenger/internal/faults"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/runner"
)

// Option configures a Session.  NewSession applies options in order, so a
// later option overrides an earlier one:
//
//	experiments.NewSession(
//		experiments.WithScale(0.25),
//		experiments.WithIterations(10),
//		experiments.WithJobs(4),
//		experiments.WithContext(ctx),
//	)
//
// The legacy Options struct also implements Option, so pre-redesign call
// sites — NewSession(Options{Scale: 0.25, Iterations: 10}) — keep
// compiling unchanged.
type Option interface {
	apply(*config)
}

// config is the resolved Session configuration.
type config struct {
	scale      float64
	iterations int
	apps       []string
	jobs       int
	ctx        context.Context
	progress   func(runner.Event)
	metrics    *obs.Registry
	fault      faults.Spec
	degrade    bool
	retry      resilience.RetryPolicy
	cache      *runner.Cache
	clock      func() time.Time
	sample     memtrace.SampleSpec
	shards     int
}

func defaultConfig() config {
	return config{
		scale:      1.0,
		iterations: 10,
		apps:       AppNames,
		ctx:        context.Background(),
	}
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithScale sets the problem scale for every experiment (1.0 is the
// calibrated default; non-positive values are ignored).
func WithScale(scale float64) Option {
	return optionFunc(func(c *config) {
		if scale > 0 {
			c.scale = scale
		}
	})
}

// WithIterations sets the number of main-loop iterations to instrument
// (default 10, the paper's collection window; non-positive values are
// ignored).
func WithIterations(n int) Option {
	return optionFunc(func(c *config) {
		if n > 0 {
			c.iterations = n
		}
	})
}

// WithApps restricts the application set the multi-app exhibits cover.
// The default is the paper's four (AppNames); exhibits with a fixed app
// list (Figure 7, Figure 12) intersect it with this set.
func WithApps(names ...string) Option {
	return optionFunc(func(c *config) {
		if len(names) > 0 {
			c.apps = append([]string(nil), names...)
		}
	})
}

// WithContext installs the context threaded through every instrumented
// run; cancelling it aborts queued runs immediately and executing runs at
// the next main-loop iteration boundary.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	})
}

// WithJobs bounds the number of concurrently executing instrumented runs.
// The default (0) selects GOMAXPROCS; 1 reproduces the old strictly
// sequential behaviour.
func WithJobs(n int) Option {
	return optionFunc(func(c *config) { c.jobs = n })
}

// WithProgress installs a streaming progress callback for run-level
// events (start, done, cached, error).  The callback is invoked from
// worker goroutines and must be safe for concurrent use.
func WithProgress(fn func(runner.Event)) Option {
	return optionFunc(func(c *config) { c.progress = fn })
}

// WithMetrics installs the observability registry the session and its
// engine publish into — runner counters and wall-time histograms plus the
// per-run cachesim/dramsim/memtrace exports.  The default (nil) gives the
// session a private registry, readable through MetricsSnapshot.
func WithMetrics(reg *obs.Registry) Option {
	return optionFunc(func(c *config) {
		if reg != nil {
			c.metrics = reg
		}
	})
}

// WithFaults arms the session's deterministic fault injector (chaos runs):
// the spec's target layer fails per its every/prob schedule in each
// instrumented run.  Arming faults also switches the session into degraded
// mode — a failed app yields a partial exhibit with a per-app error
// annotation (see RunErrors) instead of aborting the sweep.  Injection is
// seeded, so the same spec produces byte-identical degraded reports at any
// jobs count.
func WithFaults(spec faults.Spec) Option {
	return optionFunc(func(c *config) {
		if spec.Enabled() {
			c.fault = spec
			c.degrade = true
		}
	})
}

// WithDegraded switches the session into graceful-degradation mode without
// arming faults: any genuinely failing app run is annotated and skipped
// rather than aborting the whole sweep.
func WithDegraded() Option {
	return optionFunc(func(c *config) { c.degrade = true })
}

// WithClock overrides the wall clock of the session's engine (see
// runner.WithClock): progress-event timestamps and per-run wall metrics
// read it.  The nvserved daemon passes its service clock through so a
// job's event stream is deterministic under an injected fake clock; the
// default (nil) keeps the engine's real clock.
func WithClock(now func() time.Time) Option {
	return optionFunc(func(c *config) { c.clock = now })
}

// WithRunCache shares a single-flight run cache across sessions: engines
// built over the same cache deduplicate identically keyed runs even when
// the sessions differ in context, progress sink or metrics registry.  The
// nvserved daemon gives every job its own session (so per-job cancellation
// stays isolated) but one shared cache per fault partition, so concurrent
// clients never recompute a run.  The default (nil) keeps a private cache.
//
// The cache keys on app/mode/scale/iterations only, so sessions sharing
// one must agree on everything else that shapes a run's output — use
// JobSpec.RunCacheKey to partition.
func WithRunCache(cache *runner.Cache) Option {
	return optionFunc(func(c *config) { c.cache = cache })
}

// WithSample switches every instrumented run of the session to seeded
// sampled tracing (see memtrace.SampleSpec): the tracer observes a
// deterministic subset of the reference stream and exhibits compute over
// the observed counters.  Sampled runs are keyed separately from full
// runs, so a shared run cache never serves a sampled product to a full
// session or vice versa.  The §III-D caveat applies: sampling loses
// access information for rarely touched objects — ProfilerErrorStudy
// quantifies exactly how much at any rate.  A disabled spec is ignored.
func WithSample(spec memtrace.SampleSpec) Option {
	return optionFunc(func(c *config) {
		if spec.Enabled() {
			c.sample = spec
		}
	})
}

// WithShards splits every instrumented run's iteration space across n
// per-shard stacks (see pipeline.BuildSharded): each shard replays the app
// deterministically and records only its owned span, and the session merges
// the shards into one result byte-identical to the unsharded run.  Because
// the products are identical, sharded and unsharded runs share run-cache
// entries.  Values below 2 keep the single-stack path; sessions with armed
// faults ignore sharding (fault injection targets the one live pipeline of
// a run, which selective replay would multiply).
func WithShards(n int) Option {
	return optionFunc(func(c *config) {
		if n > 1 {
			c.shards = n
		}
	})
}

// WithRetry installs a per-run retry policy on the session's engine: a
// failed (or panicked) instrumented run is re-executed up to attempts
// times before its error is reported.  Values below 2 are ignored (one
// attempt is the default).
func WithRetry(attempts int) Option {
	return optionFunc(func(c *config) {
		if attempts > 1 {
			c.retry = resilience.RetryPolicy{Attempts: attempts}
		}
	})
}

// apply lets the legacy struct act as an Option.
//
// Deprecated: construct sessions with functional options instead, e.g.
// NewSession(WithScale(0.25), WithIterations(10)).
func (o Options) apply(c *config) {
	o = o.withDefaults()
	c.scale = o.Scale
	c.iterations = o.Iterations
}
