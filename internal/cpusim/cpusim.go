// Package cpusim is a trace-driven out-of-order core timing model, standing
// in for the PTLsim full-system simulations of §V.
//
// The paper uses PTLsim only to vary the main-memory access latency
// (10/12/20/100 ns, Table IV) and observe the application slowdown, with
// read latency assumed equal to write latency (so results are a performance
// lower bound).  The mechanisms that let applications tolerate long memory
// latency are exactly the ones this model captures:
//
//   - overlap with computation: independent instructions issue while loads
//     are outstanding, bounded by the reorder-buffer window;
//   - memory-level parallelism: multiple misses overlap, bounded by the
//     miss-buffer depth (Table III: 64 entries);
//   - locality filtering: a two-level cache hierarchy (Table II) turns most
//     references into 1- or 5-cycle hits (Table III) so that only last-level
//     misses see the technology-dependent latency.
//
// The core retires instructions in order through a circular reorder buffer:
// an instruction can issue only when an issue slot and a reorder-buffer
// entry are free, and retires no earlier than its predecessor.
package cpusim

import (
	"fmt"

	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/trace"
)

// Config parametrizes the core, following Table III of the paper.
type Config struct {
	// FreqGHz is the core clock (Table III: 2.266 GHz).
	FreqGHz float64
	// IssueWidth is instructions issued per cycle.
	IssueWidth int
	// ROB is the reorder-buffer (instruction window) depth.
	ROB int
	// MissBuffer bounds simultaneously outstanding main-memory misses
	// (Table III: 64).
	MissBuffer int
	// L1HitCycles and L2HitCycles are the hit latencies (Table III: 1, 5).
	L1HitCycles int
	L2HitCycles int
	// MemLatencyNS is the main-memory access latency under study; reads and
	// writes share it, as §V assumes.
	MemLatencyNS float64
	// PrefetchStreams is the number of sequential streams the hardware
	// prefetcher tracks.  A miss that continues a tracked stream has been
	// fetched ahead of use and is charged the L2 hit latency instead of the
	// memory latency — the prefetching §V names among the mechanisms that
	// hide memory access time.  Zero disables the prefetcher (negative
	// also disables; use the ablation benchmarks to compare).
	PrefetchStreams int
	// Cache configures the two-level hierarchy (defaults to Table II).
	Cache cachesim.Config
	// MemSink optionally receives the main-memory transactions generated
	// by the core's cache misses in batches, each stamped with the core's
	// cycle at issue.  Feeding these to a dramsim.MemorySystem with
	// CPUFreqGHz set couples the timing and power simulators, §IV's
	// integrated mode.  Wrap a legacy per-transaction consumer with
	// cachesim.PerTx.
	MemSink trace.TxSink
}

// PaperConfig returns the Table II/III configuration with the given memory
// latency.
func PaperConfig(memLatencyNS float64) Config {
	return Config{
		FreqGHz:         2.266,
		IssueWidth:      4,
		ROB:             128,
		MissBuffer:      64,
		L1HitCycles:     1,
		L2HitCycles:     5,
		MemLatencyNS:    memLatencyNS,
		PrefetchStreams: 16,
		Cache:           cachesim.PaperConfig(),
	}
}

func (c Config) validate() error {
	if c.FreqGHz <= 0 {
		return fmt.Errorf("cpusim: non-positive frequency %v", c.FreqGHz)
	}
	if c.IssueWidth <= 0 || c.ROB <= 0 || c.MissBuffer <= 0 {
		return fmt.Errorf("cpusim: non-positive core resources %+v", c)
	}
	if c.L1HitCycles <= 0 || c.L2HitCycles < c.L1HitCycles {
		return fmt.Errorf("cpusim: implausible hit latencies %+v", c)
	}
	if c.MemLatencyNS <= 0 {
		return fmt.Errorf("cpusim: non-positive memory latency")
	}
	return nil
}

// Core is the timing model.  It implements the batched trace.PerfSink
// contract the instrumentation tracer flushes into (FlushEvents), and the
// per-event Event(gap, access) entry point for direct drivers; events must
// arrive in program order either way.
type Core struct {
	cfg Config
	hw  *cachesim.Hierarchy

	memLatCycles float64

	// clockQ is the next issue slot in quarter^-1 cycles: we track issue
	// bandwidth as fractional cycles (1/IssueWidth per instruction).
	clock float64
	// retire[i%ROB] is the retire cycle of the i-th most recent instruction.
	retire []float64
	pos    int
	filled int
	// lastRetire enforces in-order retirement.
	lastRetire float64

	// outstanding main-memory misses: completion cycles, FIFO (completions
	// are monotone because issue is monotone and latency constant).
	misses []float64
	mHead  int
	mCount int

	// stream prefetcher: last line address per tracked stream.
	streams   []uint64
	streamRot int

	// statistics
	instrs       uint64
	memRefs      uint64
	l1Hits       uint64
	l2Hits       uint64
	memAccess    uint64
	prefetchHits uint64 // memory misses hidden by the stream prefetcher
	robStalls    uint64 // issues delayed by a full window
	missStalls   uint64 // issues delayed by a full miss buffer
	// stall-cycle attribution: cycles the issue clock jumped while waiting
	// on the window or the miss buffer.
	robStallCycles  float64
	missStallCycles float64
}

// New builds a Core.
func New(cfg Config) (*Core, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Cache.L1.SizeBytes == 0 {
		cfg.Cache = cachesim.PaperConfig()
	}
	hw, err := cachesim.New(cfg.Cache, cfg.MemSink)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:          cfg,
		hw:           hw,
		memLatCycles: cfg.MemLatencyNS * cfg.FreqGHz,
		retire:       make([]float64, cfg.ROB),
		misses:       make([]float64, cfg.MissBuffer),
	}
	if cfg.PrefetchStreams > 0 {
		c.streams = make([]uint64, cfg.PrefetchStreams)
	}
	if cfg.MemSink != nil {
		// Stamp outgoing transactions with the core clock at issue time;
		// delivery stays batched, so the downstream power simulator sees
		// real timing without a per-transaction interface call.
		hw.SetCycleSource(func() uint64 { return uint64(c.clock) })
	}
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// issueOne issues a single instruction with the given execution latency and
// returns its retire cycle.
func (c *Core) issueOne(lat float64, isMemMiss bool) float64 {
	// Claim an issue slot.
	c.clock += 1.0 / float64(c.cfg.IssueWidth)
	issue := c.clock

	// The reorder buffer must have a free entry: the instruction ROB
	// positions ago must have retired.
	if c.filled == c.cfg.ROB {
		if oldest := c.retire[c.pos]; oldest > issue {
			c.robStallCycles += oldest - issue
			issue = oldest
			c.clock = issue
			c.robStalls++
		}
	} else {
		c.filled++
	}

	// A main-memory miss needs a miss-buffer entry.
	if isMemMiss {
		if c.mCount == c.cfg.MissBuffer {
			if head := c.misses[c.mHead]; head > issue {
				c.missStallCycles += head - issue
				issue = head
				c.clock = issue
				c.missStalls++
			}
			c.mHead = (c.mHead + 1) % c.cfg.MissBuffer
			c.mCount--
		}
		c.misses[(c.mHead+c.mCount)%c.cfg.MissBuffer] = issue + lat
		c.mCount++
	}

	done := issue + lat
	if done < c.lastRetire {
		done = c.lastRetire // in-order retirement
	}
	c.lastRetire = done
	c.retire[c.pos] = done
	c.pos = (c.pos + 1) % c.cfg.ROB
	c.instrs++
	return done
}

// Event consumes one memory reference preceded by gap compute instructions
// (the memtrace PerfSink contract).
func (c *Core) Event(gap uint64, a trace.Access) {
	for i := uint64(0); i < gap; i++ {
		c.issueOne(1, false)
	}
	c.memRefs++
	lvl := c.hw.Access(a)
	var lat float64
	isMiss := false
	switch lvl {
	case cachesim.ServicedL1:
		lat = float64(c.cfg.L1HitCycles)
		c.l1Hits++
	case cachesim.ServicedL2:
		lat = float64(c.cfg.L2HitCycles)
		c.l2Hits++
	default:
		if c.prefetched(a.Addr) {
			// The stream prefetcher fetched this line ahead of use; the
			// demand access finds it in (or on its way to) the L2.
			lat = float64(c.cfg.L2HitCycles)
			c.prefetchHits++
		} else {
			lat = c.memLatCycles
			isMiss = true
			c.memAccess++
		}
	}
	if a.IsWrite() {
		// Stores retire through the store buffer: the cache state is
		// updated, but the instruction occupies its window slot for only a
		// hit latency — writes are not on the critical path (§V's uniform
		// read/write latency is applied to loads; buffered stores make the
		// model's tolerance of write latency explicit).
		if lat > float64(c.cfg.L2HitCycles) {
			lat = float64(c.cfg.L2HitCycles)
			isMiss = false
		}
	}
	c.issueOne(lat, isMiss)
}

// FlushEvents implements trace.PerfSink: one batch of the instruction-
// interleaved reference stream, delivered from the tracer's staging buffer
// so references and gaps travel in the same flush.
func (c *Core) FlushEvents(batch []trace.PerfEvent) error {
	for _, ev := range batch {
		c.Event(ev.Gap, ev.Access)
	}
	return nil
}

// Finish flushes the hierarchy's staged transaction batch into MemSink.
// Call once at end of replay when a MemSink is attached; without one it is
// a no-op.
func (c *Core) Finish() error {
	if err := c.hw.FlushTx(); err != nil {
		return err
	}
	return c.hw.Err()
}

// prefetched reports whether a missing line continues one of the tracked
// sequential streams, and allocates a new stream (round-robin) otherwise.
func (c *Core) prefetched(addr uint64) bool {
	if len(c.streams) == 0 {
		return false
	}
	line := addr >> 6
	for i, s := range c.streams {
		if line == s+1 || line == s {
			c.streams[i] = line
			return line != s // re-touching the same line is not a stream hit
		}
	}
	c.streams[c.streamRot] = line
	c.streamRot = (c.streamRot + 1) % len(c.streams)
	return false
}

// Cycles returns the cycle at which the last instruction retires.
func (c *Core) Cycles() float64 { return c.lastRetire }

// Seconds converts Cycles to wall-clock seconds at the configured frequency.
func (c *Core) Seconds() float64 { return c.Cycles() / (c.cfg.FreqGHz * 1e9) }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles() == 0 {
		return 0
	}
	return float64(c.instrs) / c.Cycles()
}

// Stats summarizes a finished run.
type Stats struct {
	Instructions uint64
	MemRefs      uint64
	L1Hits       uint64
	L2Hits       uint64
	MemAccesses  uint64
	PrefetchHits uint64
	ROBStalls    uint64
	MissStalls   uint64
	// ROBStallCycles and MissStallCycles attribute issue-clock jumps to
	// their cause; their sum over Cycles is the structural-stall share.
	ROBStallCycles  float64
	MissStallCycles float64
	Cycles          float64
	IPC             float64
}

// Stats returns the run summary.
func (c *Core) Stats() Stats {
	return Stats{
		Instructions:    c.instrs,
		MemRefs:         c.memRefs,
		L1Hits:          c.l1Hits,
		L2Hits:          c.l2Hits,
		MemAccesses:     c.memAccess,
		PrefetchHits:    c.prefetchHits,
		ROBStalls:       c.robStalls,
		MissStalls:      c.missStalls,
		ROBStallCycles:  c.robStallCycles,
		MissStallCycles: c.missStallCycles,
		Cycles:          c.Cycles(),
		IPC:             c.IPC(),
	}
}

// SweepResult is one point of a latency sweep.
type SweepResult struct {
	Device       string
	MemLatencyNS float64
	Cycles       float64
	// Normalized is Cycles relative to the first (baseline) sweep point.
	Normalized float64
}

// Sweep runs the same event stream against each memory latency and returns
// the runtimes normalized to the first entry (Figure 12's presentation).
// replay must re-generate the identical event stream into the supplied sink
// on every call.
func Sweep(devices []string, latenciesNS []float64, replay func(sink trace.PerfSink)) ([]SweepResult, error) {
	if len(devices) != len(latenciesNS) {
		return nil, fmt.Errorf("cpusim: %d devices but %d latencies", len(devices), len(latenciesNS))
	}
	out := make([]SweepResult, 0, len(latenciesNS))
	var base float64
	for i, lat := range latenciesNS {
		core, err := New(PaperConfig(lat))
		if err != nil {
			return nil, err
		}
		replay(core)
		cy := core.Cycles()
		if i == 0 {
			base = cy
		}
		norm := 0.0
		if base > 0 {
			norm = cy / base
		}
		out = append(out, SweepResult{Device: devices[i], MemLatencyNS: lat, Cycles: cy, Normalized: norm})
	}
	return out, nil
}
