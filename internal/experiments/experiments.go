// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII).  It wires the mini-applications through the
// NV-SCAVENGER substrate, the cache hierarchy, the memory power simulator
// and the CPU timing model, and returns the data each exhibit plots.
//
// A Session schedules its instrumented runs on a concurrent experiment
// engine (internal/runner): independent app runs fan out across a bounded
// worker pool, identical runs are deduplicated by a keyed single-flight
// cache, and every run reports wall time and references/sec.  Exhibits
// sharing one instrumented run (Tables I/V, Figures 3-11) therefore still
// execute it once, exactly as the old memoizing Session did — but the
// many independent runs behind Table I/V/VI and Figures 7/12 now run in
// parallel (§III-D: "We run the three tools in parallel to collect memory
// access patterns").
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/core"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
	"nvscavenger/internal/trace"

	// Register the four mini-applications.
	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

// AppNames is the paper's application order.
var AppNames = []string{"nek5000", "cam", "gtc", "s3d"}

// Options scales the experiment suite.  The zero value is replaced by the
// calibrated defaults (scale 1.0, 10 iterations — the paper collects data
// for the first 10 iterations of each main loop, §VII).
//
// Deprecated: Options survives as a constructor shim — it implements
// Option, so NewSession(Options{...}) still compiles.  New code should use
// the functional options (WithScale, WithIterations, ...).
type Options struct {
	Scale      float64
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	return o
}

// Run is one memoized instrumented execution.
type Run struct {
	App       apps.App
	Tracer    *memtrace.Tracer
	Hierarchy *cachesim.Hierarchy
	// Transactions is the cache-filtered main-memory trace (fast runs only).
	Transactions []trace.Transaction
}

// Session schedules the exhibits' instrumented runs on a shared engine.
// Unlike its pre-runner ancestor, a Session is safe for concurrent exhibit
// calls: runs are deduplicated with single-flight semantics, so concurrent
// requests for the same run share one execution.
type Session struct {
	cfg  config
	opts Options // effective scale/iterations, the legacy view
	eng  *runner.Engine

	mu       sync.Mutex
	failures map[string]string // run key -> first error, the degraded-report annotations
}

// NewSession returns a Session configured by the given options (see
// Option).  With no options it uses the calibrated defaults: scale 1.0,
// 10 iterations, all four apps, GOMAXPROCS workers.
func NewSession(opts ...Option) *Session {
	cfg := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o.apply(&cfg)
		}
	}
	if cfg.metrics == nil {
		cfg.metrics = obs.NewRegistry()
	}
	s := &Session{
		cfg:      cfg,
		opts:     Options{Scale: cfg.scale, Iterations: cfg.iterations},
		failures: map[string]string{},
	}
	// Every failed engine run — whatever exhibit requested it — passes
	// through the progress stream, so failure recording hooks there rather
	// than at each call site.
	progress := cfg.progress
	var engOpts []runner.Option
	if cfg.clock != nil {
		engOpts = append(engOpts, runner.WithClock(cfg.clock))
	}
	s.eng = runner.New(runner.Config{
		Jobs:    cfg.jobs,
		Metrics: cfg.metrics,
		Retry:   cfg.retry,
		Cache:   cfg.cache,
		Progress: func(ev runner.Event) {
			if ev.Kind == runner.EventError {
				s.noteFailure(ev.Key.String(), ev.Err)
			}
			if progress != nil {
				progress(ev)
			}
		},
	}, engOpts...)
	return s
}

// noteFailure records a run failure for the degraded report.  Cancellations
// are not failures (they are how sibling runs are told to stop), and the
// first error per key wins — re-requesting an uncached failed run repeats
// the identical error, so first-wins keeps the annotation deterministic.
func (s *Session) noteFailure(key string, err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.failures[key]; !ok {
		s.failures[key] = err.Error()
	}
}

// RunError is one failed run in a degraded sweep.  It is part of the
// versioned JobResult wire shape (see SchemaVersion).
type RunError struct {
	// Key is the runner key of the failed run (e.g. "gtc/fast@s0.05@i3").
	Key string `json:"key"`
	// Err is the failure message.
	Err string `json:"error"`
}

// RunErrors returns the per-run error annotations accumulated so far,
// sorted by key — the "Degraded runs" section of a chaos report.
func (s *Session) RunErrors() []RunError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunError, 0, len(s.failures))
	for k, e := range s.failures {
		out = append(out, RunError{Key: k, Err: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Degraded reports whether the session runs in graceful-degradation mode
// (armed faults or WithDegraded).
func (s *Session) Degraded() bool { return s.cfg.degrade }

// do schedules one keyed run on the engine, arming the worker-crash fault
// when the session's spec targets workers.  The crash decision is a pure
// hash of (seed, key), so the same runs fail at any jobs count.
func (s *Session) do(ctx context.Context, key runner.Key, fn runner.Func) (any, error) {
	if s.cfg.fault.Is(faults.TargetWorker) {
		fn = faults.Worker(s.cfg.fault, key.String(), fn)
	}
	return s.eng.Do(ctx, key, fn)
}

// chaos injects the session's fault spec into a pipeline configuration:
// sink faults attach a failing transaction sink behind the cache stage,
// access faults attach a failing access tap, and perf faults wrap the
// performance-event sink.  With no armed fault the config is untouched, so
// healthy builds stay byte-identical.
func (s *Session) chaos(cfg *pipeline.Config) {
	f := s.cfg.fault
	switch {
	case f.Is(faults.TargetSink) && cfg.Cache != nil:
		cfg.TxSinks = append(cfg.TxSinks, faults.TxSink(f, trace.TxSinkFunc(
			func([]trace.Transaction) error { return nil })))
	case f.Is(faults.TargetAccess):
		cfg.AccessTaps = append(cfg.AccessTaps, faults.Sink(f, trace.SinkFunc(
			func([]trace.Access) error { return nil })))
	case f.Is(faults.TargetPerf) && cfg.Perf != nil:
		cfg.Perf = faults.PerfSink(f, cfg.Perf)
	}
}

// Options returns the session's effective options.
func (s *Session) Options() Options { return s.opts }

// Metrics returns the run-level observability snapshot: cache hit/miss
// counters and per-run wall time and reference throughput.
func (s *Session) Metrics() runner.Metrics { return s.eng.Metrics() }

// MetricsRegistry returns the registry the session and its engine publish
// into: runner run/hit/miss/error counters and per-run wall-time
// histograms, plus the per-run cachesim/memtrace exports (labelled by app
// and mode) and the dramsim command counters of the power replays.
func (s *Session) MetricsRegistry() *obs.Registry { return s.cfg.metrics }

// MetricsSnapshot renders the aggregated observability state: one
// deterministic snapshot covering every run the exhibits executed so far.
func (s *Session) MetricsSnapshot() obs.Snapshot { return s.cfg.metrics.Snapshot() }

// Jobs returns the session's worker-pool bound.
func (s *Session) Jobs() int { return s.eng.Jobs() }

func (s *Session) ctx() context.Context { return s.cfg.ctx }

// appNames returns the configured application set.
func (s *Session) appNames() []string { return s.cfg.apps }

// subset intersects an exhibit's fixed app list with the configured set,
// preserving the fixed order.
func (s *Session) subset(fixed []string) []string {
	have := map[string]bool{}
	for _, n := range s.cfg.apps {
		have[n] = true
	}
	out := make([]string, 0, len(fixed))
	for _, n := range fixed {
		if have[n] {
			out = append(out, n)
		}
	}
	return out
}

func (s *Session) key(app, mode, profile string) runner.Key {
	// A session-wide sampling spec changes what every instrumented run
	// produces, so it becomes part of the run identity: sampled runs never
	// exchange cached products with full runs (or with runs sampled
	// differently), even across sessions sharing one run cache.
	if s.cfg.sample.Enabled() {
		suffix := "sample=" + s.cfg.sample.String()
		if profile == "" {
			profile = suffix
		} else {
			profile += "@" + suffix
		}
	}
	return runner.Key{
		App:        app,
		Mode:       mode,
		Scale:      s.opts.Scale,
		Iterations: s.opts.Iterations,
		Profile:    profile,
	}
}

// collectApps fans per-app work out across the engine's worker pool and
// returns the results in input order, so any report built from them is
// byte-identical to a sequential run.  In degraded mode a failed app does
// not abort its siblings: its row is dropped from the result (the failure
// is annotated via RunErrors) and only the parent context's cancellation
// still aborts.
func collectApps[T any](s *Session, names []string, f func(ctx context.Context, name string) (T, error)) ([]T, error) {
	if !s.cfg.degrade {
		return runner.Collect(s.ctx(), names, f)
	}
	res, errs := runner.CollectPartial(s.ctx(), names, f)
	out := make([]T, 0, len(res))
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			continue // annotated through the engine's progress stream
		}
		out = append(out, res[i])
	}
	return out, nil
}

// Fast returns the memoized fast-stack-mode run of an app, with the cache
// hierarchy attached and the filtered memory trace captured.  Concurrent
// calls for the same app share one execution.
func (s *Session) Fast(name string) (*Run, error) { return s.fast(s.ctx(), name) }

func (s *Session) fast(ctx context.Context, name string) (*Run, error) {
	v, err := s.do(ctx, s.key(name, "fast", ""), func(ctx context.Context) (any, uint64, error) {
		run, err := s.runFast(ctx, name)
		if err != nil {
			return nil, 0, err
		}
		return run, run.Tracer.Sampled, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Run), nil
}

// shards returns the effective shard count for instrumented runs: sessions
// with armed faults stay on the single-stack path (fault injection targets
// the one live pipeline of a run, which selective replay would multiply).
func (s *Session) shards() int {
	if s.cfg.fault.Enabled() {
		return 1
	}
	return s.cfg.shards
}

// runSharded executes one run as a sharded replay: every shard replays the
// app from the start (apps are deterministic in (name, scale)), records its
// owned iteration span, and Merge folds the shards into a stack
// byte-identical to the single-stack run.  The returned app is the last
// shard's — the one that replayed the whole program.
func (s *Session) runSharded(ctx context.Context, name string, pcfg pipeline.Config, shards int) (*pipeline.Stack, apps.App, error) {
	ss, err := pipeline.BuildSharded(pcfg, s.opts.Iterations, shards)
	if err != nil {
		return nil, nil, err
	}
	var app apps.App
	for k := 0; k < ss.Shards(); k++ {
		a, err := apps.New(name, s.opts.Scale)
		if err == nil {
			err = apps.RunContext(ctx, a, ss.Stack(k).Tracer, ss.RunIterations(k))
		}
		if err != nil {
			//nvlint:ignore errcontract best-effort cleanup; the run error is reported
			_ = ss.Close()
			return nil, nil, err
		}
		app = a
	}
	merged, err := ss.Merge()
	if err != nil {
		return nil, nil, err
	}
	return merged, app, nil
}

func (s *Session) runFast(ctx context.Context, name string) (*Run, error) {
	labels := []obs.Label{obs.L("app", name), obs.L("mode", "fast")}
	cacheCfg := cachesim.PaperConfig()
	pcfg := pipeline.Config{
		StackMode: memtrace.FastStack,
		Sample:    s.cfg.sample,
		Cache:     &cacheCfg,
		CaptureTx: true,
		Metrics:   s.cfg.metrics,
		Labels:    labels,
	}
	s.chaos(&pcfg)
	var stack *pipeline.Stack
	var app apps.App
	if k := s.shards(); k > 1 {
		var err error
		stack, app, err = s.runSharded(ctx, name, pcfg, k)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		app, err = apps.New(name, s.opts.Scale)
		if err != nil {
			return nil, err
		}
		stack, err = pipeline.Build(pcfg)
		if err != nil {
			return nil, err
		}
		if err := apps.RunContext(ctx, app, stack.Tracer, s.opts.Iterations); err != nil {
			return nil, err
		}
		if err := stack.Close(); err != nil {
			return nil, err
		}
	}
	stack.Hierarchy.ExportMetrics(s.cfg.metrics, labels...)
	stack.Tracer.ExportMetrics(s.cfg.metrics, labels...)
	return &Run{App: app, Tracer: stack.Tracer, Hierarchy: stack.Hierarchy, Transactions: stack.Transactions()}, nil
}

// Slow returns the memoized slow-stack-mode run (per-frame attribution).
func (s *Session) Slow(name string) (*Run, error) { return s.slow(s.ctx(), name) }

func (s *Session) slow(ctx context.Context, name string) (*Run, error) {
	v, err := s.do(ctx, s.key(name, "slow", ""), func(ctx context.Context) (any, uint64, error) {
		run, err := s.runSlow(ctx, name)
		if err != nil {
			return nil, 0, err
		}
		return run, run.Tracer.Sampled, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Run), nil
}

func (s *Session) runSlow(ctx context.Context, name string) (*Run, error) {
	pcfg := pipeline.Config{StackMode: memtrace.SlowStack, Sample: s.cfg.sample}
	s.chaos(&pcfg)
	var stack *pipeline.Stack
	var app apps.App
	if k := s.shards(); k > 1 && len(pcfg.AccessTaps) == 0 {
		var err error
		stack, app, err = s.runSharded(ctx, name, pcfg, k)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		app, err = apps.New(name, s.opts.Scale)
		if err != nil {
			return nil, err
		}
		stack, err = pipeline.Build(pcfg)
		if err != nil {
			return nil, err
		}
		if err := apps.RunContext(ctx, app, stack.Tracer, s.opts.Iterations); err != nil {
			return nil, err
		}
		if err := stack.Close(); err != nil {
			return nil, err
		}
	}
	stack.Tracer.ExportMetrics(s.cfg.metrics, obs.L("app", name), obs.L("mode", "slow"))
	return &Run{App: app, Tracer: stack.Tracer}, nil
}

// Warm populates every memoized run the exhibits need, fanning the
// instrumented executions out across the worker pool — the same trick the
// original tool uses to amortize instrumentation time (§III-D).  It
// returns the first error encountered.
func (s *Session) Warm() error {
	type job struct{ mode, name string }
	jobs := make([]job, 0, len(s.appNames())+1)
	for _, name := range s.appNames() {
		jobs = append(jobs, job{"fast", name})
	}
	if len(s.subset([]string{"cam"})) > 0 {
		jobs = append(jobs, job{"slow", "cam"})
	}
	warmOne := func(ctx context.Context, j job) (struct{}, error) {
		var err error
		if j.mode == "fast" {
			_, err = s.fast(ctx, j.name)
		} else {
			_, err = s.slow(ctx, j.name)
		}
		if err != nil {
			return struct{}{}, fmt.Errorf("%s %s: %w", j.mode, j.name, err)
		}
		return struct{}{}, nil
	}
	if s.cfg.degrade {
		// Degraded warm-up: failed runs are annotated (RunErrors) and the
		// exhibits degrade per app; only the parent's cancellation aborts.
		_, errs := runner.CollectPartial(s.ctx(), jobs, warmOne)
		for _, err := range errs {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
		}
		return nil
	}
	_, err := runner.Collect(s.ctx(), jobs, warmOne)
	return err
}

// Table1Row is one application characteristics row (Table I).
type Table1Row struct {
	App         string
	Input       string
	Description string
	FootprintMB float64
}

// Table1 reproduces Table I.  The app runs fan out in parallel.
func (s *Session) Table1() ([]Table1Row, error) {
	return collectApps(s, s.appNames(), func(ctx context.Context, name string) (Table1Row, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			App:         name,
			Input:       apps.InputOf(run.App),
			Description: run.App.Description(),
			FootprintMB: float64(run.Tracer.Footprint()) / (1 << 20),
		}, nil
	})
}

// Table5Row is one stack-analysis row (Table V).
type Table5Row struct {
	App string
	core.StackRow
}

// Table5 reproduces Table V with the fast version of the tool.
func (s *Session) Table5() ([]Table5Row, error) {
	return collectApps(s, s.appNames(), func(ctx context.Context, name string) (Table5Row, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return Table5Row{}, err
		}
		return Table5Row{App: name, StackRow: core.StackAnalysis(run.Tracer)}, nil
	})
}

// Figure2 reproduces the CAM per-frame stack analysis with the slow tool.
func (s *Session) Figure2() ([]core.ObjectRecord, core.Figure2Stats, error) {
	run, err := s.Slow("cam")
	if err != nil {
		return nil, core.Figure2Stats{}, err
	}
	recs := core.StackFrameRecords(run.Tracer)
	return recs, core.SummarizeFrames(recs), nil
}

// ObjectFigure reproduces one of Figures 3-6: the per-object read/write
// ratios, reference rates and sizes for the named app's global+heap data.
func (s *Session) ObjectFigure(name string) ([]core.ObjectRecord, error) {
	run, err := s.Fast(name)
	if err != nil {
		return nil, err
	}
	return core.ObjectRecords(run.Tracer), nil
}

// Figure7 reproduces the cumulative memory-usage distributions.  The paper
// plots Nek5000, CAM and S3D; GTC is omitted because its objects are evenly
// touched.
func (s *Session) Figure7() (map[string][]core.UsagePoint, error) {
	names := s.subset([]string{"nek5000", "cam", "s3d"})
	type named struct {
		name string
		pts  []core.UsagePoint
	}
	res, err := collectApps(s, names, func(ctx context.Context, name string) (named, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return named{}, err
		}
		return named{name: name, pts: core.UsageCDF(run.Tracer)}, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]core.UsagePoint{}
	for _, r := range res {
		out[r.name] = r.pts
	}
	return out, nil
}

// VarianceFigure reproduces one of Figures 8-11 for the named app: the
// distributions of the normalized read/write ratio and reference rate.
func (s *Session) VarianceFigure(name string) (ratio, rate [][]float64, err error) {
	run, err := s.Fast(name)
	if err != nil {
		return nil, nil, err
	}
	return core.VarianceDistribution(run.Tracer, core.VarianceRWRatio),
		core.VarianceDistribution(run.Tracer, core.VarianceRefRate), nil
}

// Table6Row is one normalized-power row (Table VI).
type Table6Row struct {
	App        string
	Reports    []dramsim.PowerReport // DDR3, PCRAM, STTRAM, MRAM
	Normalized []float64
}

// Table6 reproduces Table VI: the filtered memory trace of each app is
// replayed through the power simulator for each device profile and the
// average power is normalized to DDR3.  The per-app replays fan out in
// parallel and are cached under their own run key.
func (s *Session) Table6() ([]Table6Row, error) {
	return collectApps(s, s.appNames(), func(ctx context.Context, name string) (Table6Row, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return Table6Row{}, err
		}
		v, err := s.do(ctx, s.key(name, "power", "table4-profiles"), func(ctx context.Context) (any, uint64, error) {
			if len(run.Transactions) == 0 {
				return nil, 0, fmt.Errorf("experiments: %s produced no memory transactions", name)
			}
			reps, err := dramsim.Compare(dramsim.PaperGeometry(), dramsim.OpenPage, dramsim.Profiles(), run.Transactions)
			if err != nil {
				return nil, 0, err
			}
			for _, rep := range reps {
				rep.ExportMetrics(s.cfg.metrics, obs.L("app", name))
			}
			row := Table6Row{App: name, Reports: reps, Normalized: dramsim.Normalize(reps)}
			return row, uint64(len(run.Transactions)) * uint64(len(reps)), nil
		})
		if err != nil {
			return Table6Row{}, err
		}
		return v.(Table6Row), nil
	})
}

// Figure12Latencies are the Table IV performance-simulation points.
var Figure12Latencies = []float64{10, 12, 20, 100}

// Figure12Devices name the sweep points in Table IV order.
var Figure12Devices = []string{"DRAM", "MRAM", "STTRAM", "PCRAM"}

// Figure12Row holds one app's latency sweep.
type Figure12Row struct {
	App     string
	Results []cpusim.SweepResult
}

// Figure12 reproduces the performance-sensitivity study.  As in §VII-E,
// only one iteration of the main loop is simulated, and only for two
// applications (Nek5000 and CAM); the two sweeps run in parallel.  The app
// is re-executed for each memory latency with the timing model attached;
// runs are deterministic, so every sweep point sees the identical
// reference stream.
func (s *Session) Figure12() ([]Figure12Row, error) {
	return collectApps(s, s.subset([]string{"nek5000", "cam"}), func(ctx context.Context, name string) (Figure12Row, error) {
		res, err := s.latencySweep(ctx, name)
		if err != nil {
			return Figure12Row{}, err
		}
		return Figure12Row{App: name, Results: res}, nil
	})
}

// countingPerf forwards performance-event batches and counts the references
// the sweep observed (the runner's throughput metric).
func countingPerf(sink trace.PerfSink, refs *uint64) trace.PerfSink {
	return trace.PerfSinkFunc(func(batch []trace.PerfEvent) error {
		*refs += uint64(len(batch))
		return sink.FlushEvents(batch)
	})
}

func (s *Session) latencySweep(ctx context.Context, name string) ([]cpusim.SweepResult, error) {
	v, err := s.do(ctx, s.key(name, "perf-sweep", "table4-latencies"), func(ctx context.Context) (any, uint64, error) {
		var refs uint64
		var runErr error
		replay := func(sink trace.PerfSink) {
			if runErr != nil {
				return
			}
			app, err := apps.New(name, s.opts.Scale)
			if err != nil {
				runErr = err
				return
			}
			pcfg := pipeline.Config{
				StackMode: memtrace.FastStack,
				Perf:      countingPerf(sink, &refs),
			}
			s.chaos(&pcfg)
			stack, err := pipeline.Build(pcfg)
			if err != nil {
				runErr = err
				return
			}
			if err := apps.RunContext(ctx, app, stack.Tracer, 1); err != nil {
				runErr = err
				return
			}
			if err := stack.Close(); err != nil {
				runErr = err
			}
		}
		res, err := cpusim.Sweep(Figure12Devices, Figure12Latencies, replay)
		if err != nil {
			return nil, 0, err
		}
		if runErr != nil {
			return nil, 0, runErr
		}
		return res, refs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]cpusim.SweepResult), nil
}

// Placement runs the §II placement analysis: the NVRAM-suitable share of
// each app's working set under the category-2 policy (the abstract's "31%
// and 27%" headline for Nek5000 and CAM).
func (s *Session) Placement() (map[string]core.PlacementSummary, error) {
	type named struct {
		name string
		plan core.PlacementSummary
	}
	res, err := collectApps(s, s.appNames(), func(ctx context.Context, name string) (named, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return named{}, err
		}
		return named{name: name, plan: core.Plan(run.Tracer, core.DefaultPolicy(core.Category2))}, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]core.PlacementSummary{}
	for _, r := range res {
		out[r.name] = r.plan
	}
	return out, nil
}
