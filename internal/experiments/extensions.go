package experiments

import (
	"fmt"
	"strings"

	"nvscavenger/internal/checkpoint"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/hybrid"
	"nvscavenger/internal/wear"
)

// Extension exhibits: studies beyond the paper's tables and figures that
// its discussion motivates — hybrid-memory budget sweeps (§II/§VIII),
// checkpointing at scale (§I), and wear leveling (§II endurance).

// HybridPoint is one DRAM-budget point of the hybrid sweep.
type HybridPoint struct {
	BudgetPages  int
	Report       hybrid.Report
	AvgLatencyNS float64
}

// HybridSweep replays an app's cache-filtered traffic through the dynamic
// page-placement system at increasing DRAM budgets.
func (s *Session) HybridSweep(app string, budgets []int) ([]HybridPoint, error) {
	run, err := s.Fast(app)
	if err != nil {
		return nil, err
	}
	epoch := len(run.Transactions) / 10
	if epoch < 5000 {
		epoch = 5000
	}
	out := make([]HybridPoint, 0, len(budgets))
	for _, budget := range budgets {
		sys, err := hybrid.New(hybrid.Config{
			DRAMBudgetPages:   budget,
			EpochTransactions: epoch,
		})
		if err != nil {
			return nil, err
		}
		for _, tx := range run.Transactions {
			if err := sys.Transaction(tx); err != nil {
				return nil, err
			}
		}
		rep := sys.Report()
		out = append(out, HybridPoint{BudgetPages: budget, Report: rep, AvgLatencyNS: rep.AvgLatencyNS})
	}
	return out, nil
}

// FormatHybridSweep renders the sweep.
func FormatHybridSweep(app string, pts []HybridPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid DRAM+PCRAM dynamic page placement: %s budget sweep\n", app)
	fmt.Fprintf(&b, "%12s %10s %10s %12s %12s %14s %12s\n",
		"DRAM budget", "DRAM pages", "migrations", "DRAM svc %", "NV write %", "avg lat (ns)", "bg saving %")
	for _, p := range pts {
		r := p.Report
		fmt.Fprintf(&b, "%12d %10d %10d %11.1f%% %11.1f%% %14.2f %11.1f%%\n",
			p.BudgetPages, r.DRAMPages, r.Promotions+r.Demotions,
			r.DRAMServiceFraction*100, r.NVRAMWriteShare*100,
			r.AvgLatencyNS, r.BackgroundSaving*100)
	}
	return b.String()
}

// CheckpointStudy evaluates §I's checkpointing argument with the measured
// Table I footprint of the given app scaled back to the paper's per-task
// size.
func (s *Session) CheckpointStudy(app string, nodes []int) ([]checkpoint.SweepPoint, error) {
	run, err := s.Fast(app)
	if err != nil {
		return nil, err
	}
	// Scale the measured footprint back up to the paper's per-task size
	// (DESIGN.md: problem sizes are the paper's divided by ~64/scale).
	perTask := float64(run.Tracer.Footprint()) * 64 / s.opts.Scale
	base := checkpoint.System{
		StateBytesPerNode: perTask,
		NodeMTBFHours:     50000,
		RestartSeconds:    10,
	}
	return checkpoint.Sweep(base, nodes,
		[]checkpoint.Target{checkpoint.ParallelFS(), checkpoint.NodeNVRAM()})
}

// FormatCheckpointStudy renders the sweep.
func FormatCheckpointStudy(app string, pts []checkpoint.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint/restart efficiency at scale (state = %s footprint per task)\n", app)
	fmt.Fprintf(&b, "%10s %14s | %12s %10s | %12s %10s\n",
		"nodes", "sys MTBF (s)", "PFS delta", "PFS eff", "NVRAM delta", "NVRAM eff")
	for _, pt := range pts {
		pfs, nv := pt.Results[0], pt.Results[1]
		fmt.Fprintf(&b, "%10d %14.1f | %11.1fs %9.1f%% | %11.2fs %9.1f%%\n",
			pt.Nodes, pfs.SystemMTBFSeconds,
			pfs.DeltaSeconds, pfs.Efficiency*100,
			nv.DeltaSeconds, nv.Efficiency*100)
	}
	return b.String()
}

// WearRow compares the two line-placement schemes for one write stream.
type WearRow struct {
	Stream    string
	Scheme    wear.Scheme
	Imbalance float64
	Lifetime  float64
}

// WearStudy tracks the writeback stream of the app's hottest heap object
// under static and Start-Gap placement, plus a synthetic skewed stream over
// the same region.
func (s *Session) WearStudy(app string) ([]WearRow, error) {
	run, err := s.Fast(app)
	if err != nil {
		return nil, err
	}
	// Hottest written heap/global object by main-loop writes.
	var hottest struct {
		base, size uint64
		writes     uint64
	}
	for _, o := range run.Tracer.Objects() {
		if o.Size < 64*64 { // need at least 64 lines
			continue
		}
		if w := o.LoopStats().Writes; w > hottest.writes {
			hottest.base, hottest.size, hottest.writes = o.Base, o.Size, w
		}
	}
	if hottest.size == 0 {
		return nil, fmt.Errorf("experiments: %s has no sizable written object", app)
	}
	lines := int(hottest.size / 64)

	prof := dramsim.PCRAM()
	var out []WearRow
	track := func(stream string, addrs []uint64) error {
		for _, scheme := range []wear.Scheme{wear.Static, wear.StartGap} {
			tr, err := wear.NewTracker(wear.Config{
				BaseAddr: hottest.base, Lines: lines, Scheme: scheme, GapMovePeriod: 10,
			})
			if err != nil {
				return err
			}
			for _, a := range addrs {
				tr.Write(a)
			}
			rep := tr.Report()
			out = append(out, WearRow{
				Stream: stream, Scheme: scheme,
				Imbalance: rep.Imbalance, Lifetime: tr.LifetimeWrites(prof),
			})
		}
		return nil
	}

	var measured []uint64
	for _, tx := range run.Transactions {
		if tx.Write && tx.Addr >= hottest.base && tx.Addr < hottest.base+hottest.size {
			measured = append(measured, tx.Addr)
		}
	}
	if err := track("measured writebacks", measured); err != nil {
		return nil, err
	}

	h := uint64(1)
	skewed := make([]uint64, 0, 200000)
	for i := 0; i < 200000; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		line := h % uint64(lines)
		if i%2 == 0 {
			line = h % 8
		}
		skewed = append(skewed, hottest.base+line*64)
	}
	if err := track("skewed hot-spot", skewed); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatWearStudy renders the comparison.
func FormatWearStudy(app string, rows []WearRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wear leveling on %s's hottest written region (PCRAM endurance)\n", app)
	fmt.Fprintf(&b, "%-22s %-10s %12s %18s\n", "stream", "scheme", "imbalance", "lifetime (writes)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-10s %12.2f %18.2e\n", r.Stream, r.Scheme, r.Imbalance, r.Lifetime)
	}
	return b.String()
}
