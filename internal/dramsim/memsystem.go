package dramsim

import (
	"fmt"
	"io"

	"nvscavenger/internal/trace"
)

// Config assembles a memory system.
type Config struct {
	Geometry Geometry
	Profile  DeviceProfile
	Policy   RowPolicy
	// CPUFreqGHz, when positive, enables timestamped replay: each
	// transaction's Cycle field is converted to time and the request is
	// not issued before it.  This is §IV's integrated mode — with timing
	// information from a full-system simulator, power estimates become
	// accurate instead of full-speed upper bounds on loading.  Zero keeps
	// the trace-driven full-speed mode.
	CPUFreqGHz float64
	// Scheduling selects in-order or FR-FCFS transaction ordering.
	Scheduling Scheduling
	// WindowSize is the FR-FCFS reorder window (default 32; ignored for
	// in-order scheduling).
	WindowSize int
}

// PaperConfig returns the Table III/IV system for one device profile.
func PaperConfig(prof DeviceProfile) Config {
	return Config{Geometry: PaperGeometry(), Profile: prof, Policy: OpenPage}
}

// PowerReport is the output of one simulation: the average power by
// component, in milliwatts, plus the underlying event counts.
type PowerReport struct {
	Device string

	// Average power components (mW).
	BurstMW      float64 // cost of reading/writing memory cells
	ActPreMW     float64 // activation/precharge power
	BackgroundMW float64 // peripheral + cell standby
	RefreshMW    float64 // zero for NVRAM
	TotalMW      float64

	// Energy totals (pJ) and bookkeeping.
	BurstEnergyPJ  float64
	ActPreEnergyPJ float64
	ElapsedNS      float64
	Reads, Writes  uint64
	Activates      uint64
	RowHits        uint64
	RowMisses      uint64

	// BandwidthGBs is the achieved data bandwidth (GB/s) over the run; the
	// loading effect of Table VI is this number moving with device speed.
	BandwidthGBs float64
	// BusUtilization is the fraction of elapsed time the data bus spent
	// bursting.
	BusUtilization float64
}

// RowHitRatio returns row-buffer hits over all accesses.
func (r PowerReport) RowHitRatio() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// MemorySystem is the top-level module: it accepts main-memory transactions
// (from trace files or from the cache simulator) and produces a PowerReport.
// It implements the cachesim TxSink contract via Transaction, so a cache
// hierarchy can feed it directly.
type MemorySystem struct {
	cfg  Config
	ctl  *controller
	done bool
	// window holds pending transactions under FR-FCFS scheduling.
	window []trace.Transaction
}

// New builds a MemorySystem.
func New(cfg Config) (*MemorySystem, error) {
	if cfg.CPUFreqGHz < 0 {
		return nil, fmt.Errorf("dramsim: negative CPU frequency %v", cfg.CPUFreqGHz)
	}
	ctl, err := newController(cfg.Geometry, cfg.Profile, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.CPUFreqGHz > 0 {
		ctl.psPerCycle = 1000 / cfg.CPUFreqGHz // ps per CPU cycle
	}
	if cfg.Scheduling == FRFCFS && cfg.WindowSize == 0 {
		cfg.WindowSize = 32
	}
	if cfg.WindowSize < 0 {
		return nil, fmt.Errorf("dramsim: negative reorder window")
	}
	return &MemorySystem{cfg: cfg, ctl: ctl}, nil
}

// Transaction services one main-memory request.  Under FR-FCFS the request
// enters the reorder window; a transaction is issued once the window fills,
// preferring row hits over older row misses.
func (m *MemorySystem) Transaction(t trace.Transaction) error {
	if m.done {
		return fmt.Errorf("dramsim: transaction after Report")
	}
	if m.cfg.Scheduling != FRFCFS {
		m.ctl.enqueue(t)
		return nil
	}
	m.window = append(m.window, t)
	if len(m.window) >= m.cfg.WindowSize {
		m.issueBest()
	}
	return nil
}

// FlushTx services a batch of main-memory requests in order.  It implements
// trace.TxSink, so the memory system can terminate a batched transaction
// pipeline directly (the cache hierarchy and the pipeline combinators hand
// over their staging buffer in one call instead of one interface call per
// transaction).
func (m *MemorySystem) FlushTx(batch []trace.Transaction) error {
	for _, t := range batch {
		if err := m.Transaction(t); err != nil {
			return err
		}
	}
	return nil
}

// issueBest removes and services the first-ready transaction: the oldest
// row hit, or the oldest transaction when nothing hits an open row.
func (m *MemorySystem) issueBest() {
	pick := 0
	for i, t := range m.window {
		if m.ctl.isRowHit(t) {
			pick = i
			break
		}
	}
	t := m.window[pick]
	m.window = append(m.window[:pick], m.window[pick+1:]...)
	m.ctl.enqueue(t)
}

// drainWindow issues everything still pending (end of trace).
func (m *MemorySystem) drainWindow() {
	for len(m.window) > 0 {
		m.issueBest()
	}
}

// ReplayTrace feeds every transaction from a binary trace stream.
func (m *MemorySystem) ReplayTrace(r *trace.Reader) (int, error) {
	if r.Kind() != trace.KindTransaction {
		return 0, fmt.Errorf("dramsim: trace stream is not a transaction trace")
	}
	n := 0
	for {
		t, err := r.ReadTransaction()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := m.Transaction(t); err != nil {
			return n, err
		}
		n++
	}
}

// Report computes the average-power report over everything processed so
// far.  In the absence of timing information the controller has processed
// requests at full speed, so the report is the average memory power in the
// sense of §IV.
func (m *MemorySystem) Report() PowerReport {
	m.drainWindow()
	m.done = true
	s := m.ctl.snapshot()
	p := m.cfg.Profile

	burstPJ := float64(s.Reads)*p.ReadEnergyPJ() + float64(s.Writes)*p.WriteEnergyPJ()
	actPJ := float64(s.Activates) * p.ActPreEnergyPJ()
	elapsedNS := float64(s.ElapsedPS) / psPerNS

	rep := PowerReport{
		Device:         p.Name,
		BurstEnergyPJ:  burstPJ,
		ActPreEnergyPJ: actPJ,
		ElapsedNS:      elapsedNS,
		Reads:          s.Reads,
		Writes:         s.Writes,
		Activates:      s.Activates,
		RowHits:        s.RowHits,
		RowMisses:      s.RowMisses,
	}
	rep.BackgroundMW = p.PeripheralMW + p.CellStandbyMW
	rep.RefreshMW = p.RefreshMW
	if elapsedNS > 0 {
		// pJ / ns = mW
		rep.BurstMW = burstPJ / elapsedNS
		rep.ActPreMW = actPJ / elapsedNS
		bytes := float64(s.Reads+s.Writes) * float64(m.cfg.Geometry.LineBytes)
		rep.BandwidthGBs = bytes / elapsedNS // B/ns == GB/s
		rep.BusUtilization = float64(s.Reads+s.Writes) * p.BurstNS / elapsedNS
	}
	rep.TotalMW = rep.BurstMW + rep.ActPreMW + rep.BackgroundMW + rep.RefreshMW
	return rep
}

// Compare runs the same transaction sequence against each profile and
// returns the power reports in profile order.  The convenience wrapper used
// by the Table VI harness.
func Compare(geom Geometry, policy RowPolicy, profiles []DeviceProfile, txs []trace.Transaction) ([]PowerReport, error) {
	out := make([]PowerReport, 0, len(profiles))
	for _, p := range profiles {
		m, err := New(Config{Geometry: geom, Profile: p, Policy: policy})
		if err != nil {
			return nil, err
		}
		for _, t := range txs {
			if err := m.Transaction(t); err != nil {
				return nil, err
			}
		}
		out = append(out, m.Report())
	}
	return out, nil
}

// Normalize divides each report's total power by the first report's total,
// producing the Table VI presentation (power normalized to DDR3).
func Normalize(reports []PowerReport) []float64 {
	out := make([]float64, len(reports))
	if len(reports) == 0 || reports[0].TotalMW == 0 {
		return out
	}
	base := reports[0].TotalMW
	for i, r := range reports {
		out[i] = r.TotalMW / base
	}
	return out
}
