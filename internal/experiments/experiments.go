// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII).  It wires the mini-applications through the
// NV-SCAVENGER substrate, the cache hierarchy, the memory power simulator
// and the CPU timing model, and returns the data each exhibit plots.
//
// A Session memoizes app runs so that the many exhibits sharing one
// instrumented run (Tables I/V, Figures 3-11) do not re-execute it.
package experiments

import (
	"fmt"
	"sync"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/core"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"

	// Register the four mini-applications.
	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

// AppNames is the paper's application order.
var AppNames = []string{"nek5000", "cam", "gtc", "s3d"}

// Options scales the experiment suite.  The zero value is replaced by the
// calibrated defaults (scale 1.0, 10 iterations — the paper collects data
// for the first 10 iterations of each main loop, §VII).
type Options struct {
	Scale      float64
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	return o
}

// Run is one memoized instrumented execution.
type Run struct {
	App       apps.App
	Tracer    *memtrace.Tracer
	Hierarchy *cachesim.Hierarchy
	// Transactions is the cache-filtered main-memory trace (fast runs only).
	Transactions []trace.Transaction
}

// Session memoizes runs across exhibits.  A Session is not safe for
// concurrent exhibit calls; use Warm to populate the caches in parallel
// up front (the paper's tools run in parallel the same way, §III-D).
type Session struct {
	opts Options
	mu   sync.Mutex
	fast map[string]*Run
	slow map[string]*Run
}

// NewSession returns a Session with the given options.
func NewSession(opts Options) *Session {
	return &Session{opts: opts.withDefaults(), fast: map[string]*Run{}, slow: map[string]*Run{}}
}

// Options returns the session's effective options.
func (s *Session) Options() Options { return s.opts }

type txCapture struct{ txs []trace.Transaction }

func (c *txCapture) Transaction(t trace.Transaction) error {
	c.txs = append(c.txs, t)
	return nil
}

// Fast returns the memoized fast-stack-mode run of an app, with the cache
// hierarchy attached and the filtered memory trace captured.
func (s *Session) Fast(name string) (*Run, error) {
	s.mu.Lock()
	r, ok := s.fast[name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	run, err := s.runFast(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.fast[name] = run
	s.mu.Unlock()
	return run, nil
}

func (s *Session) runFast(name string) (*Run, error) {
	app, err := apps.New(name, s.opts.Scale)
	if err != nil {
		return nil, err
	}
	cap := &txCapture{}
	hier := cachesim.MustNew(cachesim.PaperConfig(), cap)
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack, Sink: hier})
	if err := apps.Run(app, tr, s.opts.Iterations); err != nil {
		return nil, err
	}
	hier.Drain()
	if err := hier.Err(); err != nil {
		return nil, err
	}
	return &Run{App: app, Tracer: tr, Hierarchy: hier, Transactions: cap.txs}, nil
}

// Slow returns the memoized slow-stack-mode run (per-frame attribution).
func (s *Session) Slow(name string) (*Run, error) {
	s.mu.Lock()
	r, ok := s.slow[name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	run, err := s.runSlow(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.slow[name] = run
	s.mu.Unlock()
	return run, nil
}

func (s *Session) runSlow(name string) (*Run, error) {
	app, err := apps.New(name, s.opts.Scale)
	if err != nil {
		return nil, err
	}
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.SlowStack})
	if err := apps.Run(app, tr, s.opts.Iterations); err != nil {
		return nil, err
	}
	return &Run{App: app, Tracer: tr}, nil
}

// Warm populates every memoized run the exhibits need, executing the
// instrumented runs concurrently — the same trick the original tool uses
// to amortize instrumentation time (§III-D: "We run the three tools in
// parallel to collect memory access patterns").  It returns the first
// error encountered.
func (s *Session) Warm() error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(AppNames)+1)
	for _, name := range AppNames {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := s.Fast(name); err != nil {
				errCh <- fmt.Errorf("fast %s: %w", name, err)
			}
		}(name)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Slow("cam"); err != nil {
			errCh <- fmt.Errorf("slow cam: %w", err)
		}
	}()
	wg.Wait()
	close(errCh)
	return <-errCh
}

// Table1Row is one application characteristics row (Table I).
type Table1Row struct {
	App         string
	Input       string
	Description string
	FootprintMB float64
}

// Table1 reproduces Table I.
func (s *Session) Table1() ([]Table1Row, error) {
	out := make([]Table1Row, 0, len(AppNames))
	for _, name := range AppNames {
		run, err := s.Fast(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{
			App:         name,
			Input:       apps.InputOf(run.App),
			Description: run.App.Description(),
			FootprintMB: float64(run.Tracer.Footprint()) / (1 << 20),
		})
	}
	return out, nil
}

// Table5Row is one stack-analysis row (Table V).
type Table5Row struct {
	App string
	core.StackRow
}

// Table5 reproduces Table V with the fast version of the tool.
func (s *Session) Table5() ([]Table5Row, error) {
	out := make([]Table5Row, 0, len(AppNames))
	for _, name := range AppNames {
		run, err := s.Fast(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Table5Row{App: name, StackRow: core.StackAnalysis(run.Tracer)})
	}
	return out, nil
}

// Figure2 reproduces the CAM per-frame stack analysis with the slow tool.
func (s *Session) Figure2() ([]core.ObjectRecord, core.Figure2Stats, error) {
	run, err := s.Slow("cam")
	if err != nil {
		return nil, core.Figure2Stats{}, err
	}
	recs := core.StackFrameRecords(run.Tracer)
	return recs, core.SummarizeFrames(recs), nil
}

// ObjectFigure reproduces one of Figures 3-6: the per-object read/write
// ratios, reference rates and sizes for the named app's global+heap data.
func (s *Session) ObjectFigure(name string) ([]core.ObjectRecord, error) {
	run, err := s.Fast(name)
	if err != nil {
		return nil, err
	}
	return core.ObjectRecords(run.Tracer), nil
}

// Figure7 reproduces the cumulative memory-usage distributions.  The paper
// plots Nek5000, CAM and S3D; GTC is omitted because its objects are evenly
// touched.
func (s *Session) Figure7() (map[string][]core.UsagePoint, error) {
	out := map[string][]core.UsagePoint{}
	for _, name := range []string{"nek5000", "cam", "s3d"} {
		run, err := s.Fast(name)
		if err != nil {
			return nil, err
		}
		out[name] = core.UsageCDF(run.Tracer)
	}
	return out, nil
}

// VarianceFigure reproduces one of Figures 8-11 for the named app: the
// distributions of the normalized read/write ratio and reference rate.
func (s *Session) VarianceFigure(name string) (ratio, rate [][]float64, err error) {
	run, err := s.Fast(name)
	if err != nil {
		return nil, nil, err
	}
	return core.VarianceDistribution(run.Tracer, core.VarianceRWRatio),
		core.VarianceDistribution(run.Tracer, core.VarianceRefRate), nil
}

// Table6Row is one normalized-power row (Table VI).
type Table6Row struct {
	App        string
	Reports    []dramsim.PowerReport // DDR3, PCRAM, STTRAM, MRAM
	Normalized []float64
}

// Table6 reproduces Table VI: the filtered memory trace of each app is
// replayed through the power simulator for each device profile and the
// average power is normalized to DDR3.
func (s *Session) Table6() ([]Table6Row, error) {
	out := make([]Table6Row, 0, len(AppNames))
	for _, name := range AppNames {
		run, err := s.Fast(name)
		if err != nil {
			return nil, err
		}
		if len(run.Transactions) == 0 {
			return nil, fmt.Errorf("experiments: %s produced no memory transactions", name)
		}
		reps, err := dramsim.Compare(dramsim.PaperGeometry(), dramsim.OpenPage, dramsim.Profiles(), run.Transactions)
		if err != nil {
			return nil, err
		}
		out = append(out, Table6Row{App: name, Reports: reps, Normalized: dramsim.Normalize(reps)})
	}
	return out, nil
}

// Figure12Latencies are the Table IV performance-simulation points.
var Figure12Latencies = []float64{10, 12, 20, 100}

// Figure12Devices name the sweep points in Table IV order.
var Figure12Devices = []string{"DRAM", "MRAM", "STTRAM", "PCRAM"}

// Figure12Row holds one app's latency sweep.
type Figure12Row struct {
	App     string
	Results []cpusim.SweepResult
}

// Figure12 reproduces the performance-sensitivity study.  As in §VII-E,
// only one iteration of the main loop is simulated, and only for two
// applications (Nek5000 and CAM).  The app is re-executed for each memory
// latency with the timing model attached; runs are deterministic, so every
// sweep point sees the identical reference stream.
func (s *Session) Figure12() ([]Figure12Row, error) {
	out := []Figure12Row{}
	for _, name := range []string{"nek5000", "cam"} {
		res, err := s.latencySweep(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure12Row{App: name, Results: res})
	}
	return out, nil
}

type perfAdapter struct {
	sink interface {
		Event(uint64, trace.Access)
	}
}

func (p perfAdapter) Event(gap uint64, a trace.Access) { p.sink.Event(gap, a) }

func (s *Session) latencySweep(name string) ([]cpusim.SweepResult, error) {
	var runErr error
	replay := func(sink interface {
		Event(uint64, trace.Access)
	}) {
		app, err := apps.New(name, s.opts.Scale)
		if err != nil {
			runErr = err
			return
		}
		tr := memtrace.New(memtrace.Config{
			StackMode: memtrace.FastStack,
			Perf:      perfAdapter{sink: sink},
		})
		if err := apps.Run(app, tr, 1); err != nil {
			runErr = err
		}
	}
	res, err := cpusim.Sweep(Figure12Devices, Figure12Latencies, replay)
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Placement runs the §II placement analysis: the NVRAM-suitable share of
// each app's working set under the category-2 policy (the abstract's "31%
// and 27%" headline for Nek5000 and CAM).
func (s *Session) Placement() (map[string]core.PlacementSummary, error) {
	out := map[string]core.PlacementSummary{}
	for _, name := range AppNames {
		run, err := s.Fast(name)
		if err != nil {
			return nil, err
		}
		out[name] = core.Plan(run.Tracer, core.DefaultPolicy(core.Category2))
	}
	return out, nil
}
