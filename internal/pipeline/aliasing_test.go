package pipeline

// The Stage contract says "the callee must not retain the slice": a batch
// is the caller's buffer, reused for the very next batch the moment Flush
// returns.  A stage that keeps a reference instead of copying what it
// needs works in unit tests (where each batch is a fresh slice) and then
// corrupts data under the real tracer, whose staging buffer is recycled —
// exactly the bug class the arena refactor makes easier to write.
//
// This file is an aliasing detector over every in-tree Stage/Sink
// implementation: drive a deterministic batch stream through each consumer
// twice — once untouched, once overwriting every batch with poison right
// after Flush returns — and require the final observable state to be
// byte-identical.  Any divergence means the consumer read the caller's
// slice after handing control back.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/trace"
)

// poisonRun executes the harness for one consumer: build returns the flush
// entry point and a finalizer rendering every observable output of the
// consumer as a string.
func poisonRun[T any](t *testing.T, name string, batches func() [][]T, poison T,
	build func(t *testing.T) (flush func([]T) error, state func() string)) {
	t.Helper()
	run := func(poisonAfter bool) string {
		flush, state := build(t)
		for _, batch := range batches() {
			if err := flush(batch); err != nil {
				t.Fatalf("%s: flush: %v", name, err)
			}
			if poisonAfter {
				for i := range batch {
					batch[i] = poison
				}
			}
		}
		return state()
	}
	want := run(false)
	got := run(true)
	if got != want {
		t.Errorf("%s: observable state diverged after poisoning flushed batches — the consumer aliases the caller's slice\nclean:    %.300s\npoisoned: %.300s",
			name, want, got)
	}
}

// lcg is a tiny deterministic generator for batch contents.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g >> 16)
}

// accessBatches returns a few deterministic raw-access batches of uneven
// length, addresses spanning enough lines to exercise cache state.
func accessBatches() [][]trace.Access {
	var g lcg = 42
	batches := make([][]trace.Access, 5)
	for b := range batches {
		batch := make([]trace.Access, 61+37*b)
		for i := range batch {
			r := g.next()
			op := trace.Read
			if r&3 == 0 {
				op = trace.Write
			}
			batch[i] = trace.Access{Addr: 0x10000 + r%16384*8, Size: 8, Op: op}
		}
		batches[b] = batch
	}
	return batches
}

// txBatches returns deterministic main-memory transaction batches.
func txBatches() [][]trace.Transaction {
	var g lcg = 7
	batches := make([][]trace.Transaction, 4)
	cycle := uint64(0)
	for b := range batches {
		batch := make([]trace.Transaction, 53+29*b)
		for i := range batch {
			r := g.next()
			cycle += r % 11
			batch[i] = trace.Transaction{Addr: 0x40000 + r%4096*64, Cycle: cycle, Write: r&1 == 0}
		}
		batches[b] = batch
	}
	return batches
}

// perfBatches returns deterministic performance-event batches.
func perfBatches() [][]trace.PerfEvent {
	var g lcg = 99
	batches := make([][]trace.PerfEvent, 4)
	for b := range batches {
		batch := make([]trace.PerfEvent, 47+23*b)
		for i := range batch {
			r := g.next()
			op := trace.Read
			if r&3 == 0 {
				op = trace.Write
			}
			batch[i] = trace.PerfEvent{
				Gap:    r % 7,
				Access: trace.Access{Addr: 0x20000 + r%8192*8, Size: 8, Op: op},
			}
		}
		batches[b] = batch
	}
	return batches
}

var (
	poisonAccess = trace.Access{Addr: 0xdeadbeefdeadbeef, Size: 255, Op: trace.Write}
	poisonTx     = trace.Transaction{Addr: 0xdeadbeefdeadbeef, Cycle: ^uint64(0), Write: true}
	poisonPerf   = trace.PerfEvent{Gap: ^uint64(0), Access: trace.Access{Addr: 0xdeadbeefdeadbeef, Size: 255, Op: trace.Write}}
)

// metricsState renders a registry snapshot for state comparison.
func metricsState(reg *obs.Registry) string {
	var sb strings.Builder
	if err := reg.Snapshot().WriteText(&sb); err != nil {
		return "metrics: " + err.Error()
	}
	return sb.String()
}

// TestNoBatchAliasingCombinators covers the generic pipeline combinators
// and captures.
func TestNoBatchAliasingCombinators(t *testing.T) {
	poisonRun(t, "Capture", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			c := &Capture[trace.Access]{}
			return c.Flush, func() string { return fmt.Sprint(c.Items) }
		})
	poisonRun(t, "TxCapture", txBatches, poisonTx,
		func(t *testing.T) (func([]trace.Transaction) error, func() string) {
			c := &TxCapture{}
			return c.FlushTx, func() string { return fmt.Sprint(c.Items) }
		})
	poisonRun(t, "Tee", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			a, b := &Capture[trace.Access]{}, &Capture[trace.Access]{}
			tee := Tee[trace.Access](a, b)
			return tee.Flush, func() string { return fmt.Sprint(a.Items, b.Items) }
		})
	poisonRun(t, "Filter", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			c := &Capture[trace.Access]{}
			f := Filter(func(a trace.Access) bool { return a.Op == trace.Write }, c)
			return f.Flush, func() string { return fmt.Sprint(c.Items) }
		})
	poisonRun(t, "FilterWithArena", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			c := &Capture[trace.Access]{}
			f := FilterWithArena(func(a trace.Access) bool { return a.Op == trace.Read }, c,
				trace.NewArena[trace.Access](trace.DefaultBufferSize))
			return f.Flush, func() string { return fmt.Sprint(c.Items) }
		})
	poisonRun(t, "Counted", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			reg := obs.NewRegistry()
			c := &Capture[trace.Access]{}
			s := Counted[trace.Access](reg, "aliasing", c)
			return s.Flush, func() string { return fmt.Sprint(c.Items) + metricsState(reg) }
		})
	poisonRun(t, "Resilient", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			reg := obs.NewRegistry()
			c := &Capture[trace.Access]{}
			// Fail every batch's first attempt: the retry path re-reads the
			// batch within the same Flush call, which the contract allows —
			// but nothing may survive past the return.
			fail := true
			flaky := StageFunc[trace.Access](func(batch []trace.Access) error {
				if fail {
					fail = false
					return fmt.Errorf("transient")
				}
				fail = true
				return c.Flush(batch)
			})
			s := Resilient[trace.Access](reg, "aliasing",
				resilience.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}}, nil, flaky)
			return s.Flush, func() string { return fmt.Sprint(c.Items) + metricsState(reg) }
		})
	poisonRun(t, "ChunkCapture", txBatches, poisonTx,
		func(t *testing.T) (func([]trace.Transaction) error, func() string) {
			cc := NewTxChunkCapture(trace.NewArena[trace.Transaction](128))
			return cc.FlushTx, func() string {
				var sb strings.Builder
				fmt.Fprintf(&sb, "len=%d ", cc.Len())
				if err := cc.Deliver(func(batch []trace.Transaction) error {
					fmt.Fprint(&sb, batch)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				cc.Release()
				return sb.String()
			}
		})
	poisonRun(t, "PerfChunkCapture", perfBatches, poisonPerf,
		func(t *testing.T) (func([]trace.PerfEvent) error, func() string) {
			pc := NewPerfChunkCapture(trace.NewArena[trace.PerfEvent](128))
			return pc.FlushEvents, func() string {
				var sb strings.Builder
				if err := pc.Deliver(func(batch []trace.PerfEvent) error {
					fmt.Fprint(&sb, batch)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				pc.Release()
				return sb.String()
			}
		})
}

// TestNoBatchAliasingTraceSinks covers the trace package's terminal sinks:
// the stats tap and the binary stream writers.
func TestNoBatchAliasingTraceSinks(t *testing.T) {
	poisonRun(t, "trace.Stats", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			s := &trace.Stats{}
			return s.Flush, func() string { return fmt.Sprintf("%+v", *s) }
		})
	poisonRun(t, "trace.Writer/access", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			var sb strings.Builder
			w := trace.NewAccessWriter(&sb)
			return w.Flush, func() string {
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%d:%x", w.Count(), sb.String())
			}
		})
	poisonRun(t, "trace.Writer/tx", txBatches, poisonTx,
		func(t *testing.T) (func([]trace.Transaction) error, func() string) {
			var sb strings.Builder
			w := trace.NewTransactionWriter(&sb)
			return w.FlushTx, func() string {
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%d:%x", w.Count(), sb.String())
			}
		})
}

// TestNoBatchAliasingSimulators covers the simulator stages: the cache
// hierarchy (access batches in, transaction batches out), the per-tx
// adapter, the power model and the timing model.
func TestNoBatchAliasingSimulators(t *testing.T) {
	poisonRun(t, "cachesim.Hierarchy", accessBatches, poisonAccess,
		func(t *testing.T) (func([]trace.Access) error, func() string) {
			c := &TxCapture{}
			h, err := cachesim.New(cachesim.PaperConfig(), c)
			if err != nil {
				t.Fatal(err)
			}
			return h.Flush, func() string {
				if err := h.Drain(); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprint(h.L1Stats(), h.L2Stats(), h.MemReads, h.MemWrites, c.Items)
			}
		})
	poisonRun(t, "cachesim.PerTx", txBatches, poisonTx,
		func(t *testing.T) (func([]trace.Transaction) error, func() string) {
			var sb strings.Builder
			sink := cachesim.PerTx(cachesim.TxSinkFunc(func(tx trace.Transaction) error {
				fmt.Fprint(&sb, tx)
				return nil
			}))
			return sink.FlushTx, func() string { return sb.String() }
		})
	poisonRun(t, "dramsim.MemorySystem", txBatches, poisonTx,
		func(t *testing.T) (func([]trace.Transaction) error, func() string) {
			m, err := dramsim.New(dramsim.PaperConfig(dramsim.DDR3()))
			if err != nil {
				t.Fatal(err)
			}
			return m.FlushTx, func() string { return fmt.Sprintf("%+v", m.Report()) }
		})
	poisonRun(t, "cpusim.Core", perfBatches, poisonPerf,
		func(t *testing.T) (func([]trace.PerfEvent) error, func() string) {
			c := &TxCapture{}
			cfg := cpusim.PaperConfig(70)
			cfg.MemSink = c
			core, err := cpusim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return core.FlushEvents, func() string {
				return fmt.Sprintf("%+v %v", core.Stats(), c.Items)
			}
		})
}
