package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

func TestF64Helpers(t *testing.T) {
	tr := newFast(t)
	a, obj := tr.GlobalF64("arr", 16)
	if a.Len() != 16 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Base() != obj.Base {
		t.Fatal("Base mismatch")
	}
	a.Fill(3)
	if obj.Total().Writes != 16 {
		t.Fatalf("Fill writes = %d, want 16", obj.Total().Writes)
	}
	for _, v := range a.Raw() {
		if v != 3 {
			t.Fatal("Fill did not set values")
		}
	}
	sub := a.Slice(4, 8)
	if sub.Len() != 4 {
		t.Fatalf("slice len = %d", sub.Len())
	}
	sub.Store(0, 9)
	if a.Raw()[4] != 9 {
		t.Fatal("slice must alias the parent storage")
	}
	// Slice accesses are attributed to the parent object.
	if obj.Total().Writes != 17 {
		t.Fatalf("slice write not attributed: %d", obj.Total().Writes)
	}
}

func TestF32Arrays(t *testing.T) {
	tr := newFast(t)
	g, gobj := tr.GlobalF32("g32", 8)
	h, hobj := tr.HeapF32("h32", "a.go:1", 8)
	if gobj.Size != 32 || hobj.Size != 32 {
		t.Fatalf("f32 sizes = %d/%d, want 32 bytes", gobj.Size, hobj.Size)
	}
	tr.BeginIteration()
	g.Store(0, 1.5)
	if got := g.Load(0); got != 1.5 {
		t.Fatalf("f32 roundtrip = %v", got)
	}
	g.Add(0, 0.5)
	if g.Raw()[0] != 2.0 {
		t.Fatal("f32 Add failed")
	}
	h.Store(7, 4)
	if h.Len() != 8 || h.Base() != hobj.Base {
		t.Fatal("f32 heap helpers inconsistent")
	}
	// 4-byte access sizes flow through to segment stats.
	s := tr.SegmentStats(trace.SegGlobal, 1)
	if s.BytesWrite != 8 { // two 4-byte stores
		t.Fatalf("global bytes written = %d, want 8", s.BytesWrite)
	}
}

func TestLocalF32OnStack(t *testing.T) {
	tr := newSlow(t)
	tr.BeginIteration()
	f := tr.Enter("f32kernel")
	l := f.LocalF32(10)
	for i := 0; i < 10; i++ {
		l.Store(i, float32(i))
	}
	sum := float32(0)
	for i := 0; i < 10; i++ {
		sum += l.Load(i)
	}
	tr.Leave()
	if sum != 45 {
		t.Fatalf("sum = %v", sum)
	}
	st := tr.SegmentStats(trace.SegStack, 1)
	if st.Reads != 10 || st.Writes != 10 {
		t.Fatalf("stack stats = %d/%d", st.Reads, st.Writes)
	}
}

func TestRegistryStatsExposed(t *testing.T) {
	tr := newFast(t)
	g, _ := tr.GlobalF64("x", 8)
	g.Store(0, 1)
	g.Store(1, 1)
	lookups, cacheHits, _, _ := tr.RegistryStats()
	if lookups < 2 {
		t.Fatalf("lookups = %d", lookups)
	}
	if cacheHits == 0 {
		t.Fatal("second access should hit the object cache")
	}
}

func TestEndIterationIsDefined(t *testing.T) {
	tr := newFast(t)
	tr.BeginIteration()
	tr.EndIteration() // bookkeeping no-op; accounting finalizes lazily
	tr.BeginIteration()
	if tr.Iteration() != 2 {
		t.Fatalf("iteration = %d", tr.Iteration())
	}
}

func TestGlobalAndHeapI64Constructors(t *testing.T) {
	tr := newFast(t)
	g, gobj := tr.GlobalI64("gi", 4)
	h, hobj := tr.HeapI64("hi", "b.go:2", 4)
	g.Store(0, 7)
	h.Store(0, 9)
	if gobj.Segment != trace.SegGlobal || hobj.Segment != trace.SegHeap {
		t.Fatal("segments wrong")
	}
	if g.Load(0) != 7 || h.Load(0) != 9 {
		t.Fatal("i64 roundtrip failed")
	}
}
