GO ?= go

.PHONY: ci lint vet build test race race-obs race-pipeline race-sampling race-served bench bench-snapshot chaos report

ci: lint vet build race-obs race-pipeline race-sampling race-served race bench chaos

# Project-native static analysis: determinism, metric naming, the error
# contract and the sticky-sink contract, over every package.  Non-zero on
# any finding; suppress at the site with //nvlint:ignore <pass> <reason>.
lint:
	$(GO) run ./cmd/nvlint ./...

# go vet does not walk cmd/nvlint's testdata fixtures, so also prove the
# lint tool itself builds.
vet:
	$(GO) vet ./...
	$(GO) build -o /dev/null ./cmd/nvlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The metrics registry and the run engine are the two packages whose hot
# paths are exercised concurrently; run them race-enabled twice so the
# schedule varies between runs.
race-obs:
	$(GO) test -race -count=2 ./internal/obs ./internal/runner

# The pipeline layer shares one stack across stages; run its tests
# race-enabled so combinator and Close paths stay clean under the detector.
race-pipeline:
	$(GO) test -race -count=2 ./internal/pipeline

# Sampled tracing promises byte-identical output at any -jobs count (the
# PRNG is seeded and per-tracer); run the sampling, estimator and
# profiler-error tests race-enabled twice so the worker schedule varies.
race-sampling:
	$(GO) test -race -count=2 -run 'Sampl|Estimat|ProfilerError' ./internal/memtrace ./internal/experiments

# The service layer is all about concurrency — shared run caches, the
# bounded queue, drain vs submit — so its tests run race-enabled twice to
# vary the schedule, daemon included.
race-served:
	$(GO) test -race -count=2 ./internal/served ./cmd/nvserved

# One pass over the pipeline-throughput and instrumentation-overhead
# benchmarks: a smoke check that the batched dataflow and its Counted
# wrappers keep working, not a timing run.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline|BenchmarkAblation(ObjectCache|Buffer)' -benchtime=1x -count=1 ./internal/pipeline .

# Record the pipeline performance baseline: run the throughput and
# instrumentation-overhead benchmarks at full benchtime and write the
# parsed results to BENCH_PIPELINE.json (committed, so regressions show
# up as diffs).  Not part of ci — timing runs need a quiet machine.
bench-snapshot:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline(Throughput|InstrumentationOverhead|SampledTracing)' -count=1 ./internal/pipeline \
		| $(GO) run ./cmd/nvbench -out BENCH_PIPELINE.json

# Chaos gate: the fault-injection and resilience packages race-enabled,
# plus one seeded degraded sweep — it must complete (exit 0) with partial
# exhibits rather than abort.
chaos:
	$(GO) test -race -count=2 ./internal/faults ./internal/resilience
	$(GO) run ./cmd/nvreport -scale 0.05 -iterations 3 -only table1,table5 \
		-fault sink:every=3,seed=7 -progress=false >/dev/null

report:
	$(GO) run ./cmd/nvreport
