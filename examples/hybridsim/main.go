// Hybrid memory simulation: run the Nek5000 proxy's cache-filtered traffic
// through the dynamic page-placement system (DRAM + PCRAM side by side,
// Ramos-style hardware-driven migration) and sweep the DRAM budget to show
// the latency/standby-power trade-off the paper's characterization informs.
//
//	go run ./examples/hybridsim
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/hybrid"
	"nvscavenger/internal/pipeline"

	_ "nvscavenger/internal/apps/nekmini"
)

func main() {
	// Capture the app's main-memory transactions once.
	app, err := apps.New("nek5000", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	cacheCfg := cachesim.PaperConfig()
	stack := pipeline.MustBuild(pipeline.Config{Cache: &cacheCfg, CaptureTx: true})
	if err := apps.Run(app, stack.Tracer, 10); err != nil {
		log.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		log.Fatal(err)
	}
	txs := stack.Transactions()
	fmt.Printf("nek5000: %d main-memory transactions captured\n\n", len(txs))

	// Sweep the DRAM partition budget.
	fmt.Printf("%12s %10s %10s %12s %12s %14s %12s\n",
		"DRAM budget", "DRAM pages", "migrations", "DRAM svc %", "NV write %", "avg lat (ns)", "bg saving %")
	for _, budget := range []int{0, 8, 32, 128, 512, 2048} {
		sys, err := hybrid.New(hybrid.Config{
			DRAMBudgetPages:   budget,
			EpochTransactions: 100000,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range txs {
			if err := sys.Transaction(t); err != nil {
				log.Fatal(err)
			}
		}
		r := sys.Report()
		fmt.Printf("%12d %10d %10d %11.1f%% %11.1f%% %14.2f %11.1f%%\n",
			budget, r.DRAMPages, r.Promotions+r.Demotions,
			r.DRAMServiceFraction*100, r.NVRAMWriteShare*100,
			r.AvgLatencyNS, r.BackgroundSaving*100)
	}
	fmt.Println("\nbounds: all-DRAM latency is the floor; background saving falls as the DRAM partition grows")
}
