package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

func TestMallocFreeLifecycle(t *testing.T) {
	tr := newFast(t)
	obj := tr.Malloc("buf", "x.go:10", 128)
	if obj.Segment != trace.SegHeap || obj.Dead {
		t.Fatalf("fresh heap object wrong: %+v", obj)
	}
	if obj.Site != "x.go:10" {
		t.Fatalf("site = %q", obj.Site)
	}
	tr.Free(obj)
	if !obj.Dead {
		t.Fatal("freed object should be dead")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	tr := newFast(t)
	obj := tr.Malloc("buf", "x.go:10", 64)
	tr.Free(obj)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	tr.Free(obj)
}

func TestFreeNonHeapPanics(t *testing.T) {
	tr := newFast(t)
	g := tr.Global("g", 64)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a global must panic")
		}
	}()
	tr.Free(g)
}

func TestZeroSizeMallocPanics(t *testing.T) {
	tr := newFast(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size malloc must panic")
		}
	}()
	tr.Malloc("z", "x.go:1", 0)
}

func TestSameSignatureSameObject(t *testing.T) {
	// Per §III-B: a region allocated each iteration with the same call
	// context and size is the same memory object; statistics accumulate.
	tr := newFast(t)
	var first *Object
	for it := 1; it <= 3; it++ {
		tr.BeginIteration()
		tr.Enter("step")
		a, obj := tr.HeapF64("scratch", "step.go:5", 16)
		if first == nil {
			first = obj
		} else if obj != first {
			t.Fatalf("iteration %d allocated a different object", it)
		}
		a.Store(0, float64(it))
		tr.Free(obj)
		tr.Leave()
	}
	if first.Total().Writes != 3 {
		t.Fatalf("accumulated writes = %d, want 3", first.Total().Writes)
	}
	if first.TouchedIterations() != 3 {
		t.Fatalf("touched iterations = %d, want 3", first.TouchedIterations())
	}
}

func TestDifferentCallstackDifferentObject(t *testing.T) {
	tr := newFast(t)
	tr.Enter("pathA")
	objA := tr.Malloc("buf", "alloc.go:1", 64)
	tr.Leave()
	tr.Enter("pathB")
	objB := tr.Malloc("buf", "alloc.go:1", 64)
	tr.Leave()
	if objA == objB {
		t.Fatal("different shadow stacks must yield different heap objects")
	}
}

func TestDifferentSizeDifferentObject(t *testing.T) {
	tr := newFast(t)
	a := tr.Malloc("buf", "alloc.go:1", 64)
	tr.Free(a)
	b := tr.Malloc("buf", "alloc.go:1", 128)
	if a == b {
		t.Fatal("different sizes must yield different heap objects")
	}
}

func TestRecycledAddressNotAttributedToDeadObject(t *testing.T) {
	tr := newFast(t)
	tr.BeginIteration()
	a, objA := tr.HeapF64("first", "a.go:1", 8)
	base := a.Base()
	a.Store(0, 1)
	tr.Free(objA)
	// The freed block is recycled for a different-signature allocation.
	b, objB := tr.HeapF64("second", "b.go:2", 8)
	if b.Base() != base {
		t.Fatalf("free list should recycle the block: got %#x want %#x", b.Base(), base)
	}
	b.Store(0, 2)
	_ = b.Load(0)
	if got := objA.Total(); got.Writes != 1 || got.Reads != 0 {
		t.Fatalf("dead object accumulated recycled-address accesses: %+v", got)
	}
	if got := objB.Total(); got.Writes != 1 || got.Reads != 1 {
		t.Fatalf("live object stats = %+v, want 1 write 1 read", got)
	}
}

func TestReallocIsFreePlusMalloc(t *testing.T) {
	tr := newFast(t)
	obj := tr.Malloc("grow", "g.go:1", 64)
	obj2 := tr.Realloc(obj, 256)
	if !obj.Dead && obj != obj2 {
		t.Fatal("old object should be dead after realloc (unless revived)")
	}
	if obj2.Size != 256 {
		t.Fatalf("new size = %d, want 256", obj2.Size)
	}
	if obj2.Dead {
		t.Fatal("realloc result must be live")
	}
}

func TestTwoLiveAllocationsSameSignature(t *testing.T) {
	tr := newFast(t)
	a := tr.Malloc("pair", "p.go:1", 32)
	b := tr.Malloc("pair", "p.go:1", 32)
	if a == b {
		t.Fatal("two simultaneously live allocations cannot share an object")
	}
	if a.Base == b.Base {
		t.Fatal("live objects must occupy distinct ranges")
	}
	tr.Free(a)
	tr.Free(b)
	// Re-allocating twice again revives both records rather than minting new ones.
	c := tr.Malloc("pair", "p.go:1", 32)
	d := tr.Malloc("pair", "p.go:1", 32)
	if c != a && c != b {
		t.Fatal("first re-allocation should revive an existing record")
	}
	if d != a && d != b {
		t.Fatal("second re-allocation should revive the other record")
	}
	if c == d {
		t.Fatal("revived records must be distinct")
	}
}

func TestHeapObjectsOrder(t *testing.T) {
	tr := newFast(t)
	tr.Malloc("a", "1", 16)
	tr.Malloc("b", "2", 16)
	tr.Malloc("c", "3", 16)
	objs := tr.HeapObjects()
	if len(objs) != 3 {
		t.Fatalf("len = %d, want 3", len(objs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if objs[i].Name != want {
			t.Fatalf("objs[%d].Name = %q, want %q", i, objs[i].Name, want)
		}
	}
}

func TestHeapAllocIterRecorded(t *testing.T) {
	tr := newFast(t)
	pre := tr.Malloc("pre", "p.go:1", 16)
	tr.BeginIteration()
	tr.BeginIteration()
	mid := tr.Malloc("mid", "m.go:1", 16)
	if pre.AllocIter != 0 {
		t.Fatalf("pre-compute allocation iter = %d, want 0", pre.AllocIter)
	}
	if mid.AllocIter != 2 {
		t.Fatalf("mid-loop allocation iter = %d, want 2", mid.AllocIter)
	}
}

func TestHeapAlignment(t *testing.T) {
	tr := newFast(t)
	a := tr.Malloc("odd", "o.go:1", 13)
	b := tr.Malloc("next", "o.go:2", 13)
	if a.Base%heapAlign != 0 || b.Base%heapAlign != 0 {
		t.Fatal("heap bases must be aligned")
	}
	if b.Base < a.Base+13 {
		t.Fatal("allocations overlap")
	}
}
