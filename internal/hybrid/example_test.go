package hybrid_test

import (
	"fmt"

	"nvscavenger/internal/hybrid"
	"nvscavenger/internal/trace"
)

// Example drives the dynamic page-placement system with a skewed workload:
// two hot pages earn DRAM residency, the cold majority stays in NVRAM.
func Example() {
	sys, err := hybrid.New(hybrid.Config{
		DRAMBudgetPages:   2,
		EpochTransactions: 1000,
	})
	if err != nil {
		panic(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 1000; i++ {
			pn := uint64(i % 2) // hot pages 0 and 1
			if i%50 == 0 {
				pn = uint64(10 + i/50) // a sprinkle of cold pages
			}
			if err := sys.Transaction(trace.Transaction{Addr: pn * 4096, Write: i%5 == 0}); err != nil {
				panic(err)
			}
		}
	}
	r := sys.Report()
	fmt.Printf("pages: %d total, %d in DRAM\n", r.Pages, r.DRAMPages)
	fmt.Printf("DRAM serves most traffic: %v\n", r.DRAMServiceFraction > 0.5)
	fmt.Printf("background saving positive: %v\n", r.BackgroundSaving > 0)
	// Output:
	// pages: 22 total, 2 in DRAM
	// DRAM serves most traffic: true
	// background saving positive: true
}
