GO ?= go

.PHONY: ci vet build test race report

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

report:
	$(GO) run ./cmd/nvreport
