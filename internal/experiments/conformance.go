package experiments

import (
	"fmt"
	"strings"

	"nvscavenger/internal/core"
)

// Check is one paper-vs-measured conformance assertion: the measured value
// must land inside [Lo, Hi], a band around the paper's reported number wide
// enough for a simulator substrate but tight enough to catch a broken
// reproduction.
type Check struct {
	Exhibit  string
	Name     string
	Paper    string // the paper's reported value, for the table
	Measured float64
	Lo, Hi   float64
}

// Pass reports whether the measurement is inside its band.
func (c Check) Pass() bool { return c.Measured >= c.Lo && c.Measured <= c.Hi }

// Conformance evaluates every headline number of the evaluation against
// its band and returns the checks in exhibit order.
func (s *Session) Conformance() ([]Check, error) {
	var out []Check
	add := func(exhibit, name, paper string, measured, lo, hi float64) {
		out = append(out, Check{Exhibit: exhibit, Name: name, Paper: paper,
			Measured: measured, Lo: lo, Hi: hi})
	}

	// Table V.
	t5, err := s.Table5()
	if err != nil {
		return nil, err
	}
	t5Bands := map[string]struct {
		paperRatio string
		rLo, rHi   float64
		paperPct   string
		pLo, pHi   float64
	}{
		"nek5000": {"6.33", 5.3, 7.4, "75.6%", 70, 81},
		"cam":     {"20.39", 17, 24, "76.3%", 70, 82},
		"gtc":     {"3.48", 2.9, 4.1, "44.3%", 38, 50},
		"s3d":     {"6.04", 5.1, 7.0, "63.1%", 56, 70},
	}
	for _, r := range t5 {
		b := t5Bands[r.App]
		add("table5", r.App+" stack r/w ratio", b.paperRatio, r.SteadyRatio, b.rLo, b.rHi)
		add("table5", r.App+" stack reference %", b.paperPct, r.ReferencePct, b.pLo, b.pHi)
	}
	var camFirst float64
	for _, r := range t5 {
		if r.App == "cam" {
			camFirst = r.FirstIterRatio
		}
	}
	add("table5", "cam first-iteration ratio", "11.46", camFirst, 9, 14)

	// Figure 2.
	_, fig2, err := s.Figure2()
	if err != nil {
		return nil, err
	}
	add("fig2", "stack objects with r/w > 10", "43.3%", fig2.CountOver10*100, 35, 50)
	add("fig2", "references from r/w > 10", "68.9%", fig2.RefsOver10*100, 60, 78)
	add("fig2", "stack objects with r/w > 50", "3.2%", fig2.CountOver50*100, 2, 7)
	add("fig2", "references from r/w > 50", "8.9%", fig2.RefsOver50*100, 5, 13)

	// Figure 7.
	cdfs, err := s.Figure7()
	if err != nil {
		return nil, err
	}
	frac0 := func(app string) float64 {
		pts := cdfs[app]
		total := pts[len(pts)-1].CumulativeMB
		if total == 0 {
			return 0
		}
		return pts[0].CumulativeMB / total * 100
	}
	add("fig7", "nek5000 untouched in loop", "24.3%", frac0("nek5000"), 18, 30)
	add("fig7", "cam untouched in loop", "11.5%", frac0("cam"), 8, 20)
	add("fig7", "s3d untouched in loop", "~1.4%", frac0("s3d"), 0, 6)

	// Figures 8-11: stable [1,2) share > 60%.
	for _, app := range AppNames {
		ratio, rate, err := s.VarianceFigure(app)
		if err != nil {
			return nil, err
		}
		add("fig8-11", app+" stable ratio share", ">60%", core.StableShare(ratio)*100, 60, 100)
		add("fig8-11", app+" stable rate share", ">60%", core.StableShare(rate)*100, 60, 100)
	}

	// Table VI.
	t6, err := s.Table6()
	if err != nil {
		return nil, err
	}
	for _, r := range t6 {
		add("table6", r.App+" PCRAM normalized power", "0.686-0.688", r.Normalized[1], 0.60, 0.73)
		add("table6", r.App+" STTRAM normalized power", "0.699-0.711", r.Normalized[2], 0.63, 0.73)
		add("table6", r.App+" MRAM normalized power", "0.701-0.730", r.Normalized[3], 0.63, 0.73)
	}

	// Figure 12.
	f12, err := s.Figure12()
	if err != nil {
		return nil, err
	}
	for _, row := range f12 {
		for _, r := range row.Results {
			switch r.MemLatencyNS {
			case 12:
				add("fig12", row.App+" slowdown at 12 ns", "negligible", r.Normalized, 0.999, 1.02)
			case 20:
				add("fig12", row.App+" slowdown at 20 ns", "< 5%", r.Normalized, 0.999, 1.05)
			case 100:
				add("fig12", row.App+" slowdown at 100 ns", "up to ~25%", r.Normalized, 1.02, 1.30)
			}
		}
	}

	// Abstract headline.
	plans, err := s.Placement()
	if err != nil {
		return nil, err
	}
	add("abstract", "nek5000 NVRAM-suitable working set", "31%",
		plans["nek5000"].NVRAMShare*100, 26, 42)
	add("abstract", "cam NVRAM-suitable working set", "27%",
		plans["cam"].NVRAMShare*100, 22, 40)

	return out, nil
}

// FormatConformance renders the check table and a pass/fail summary.
func FormatConformance(checks []Check) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Conformance: paper-vs-measured headline checks\n")
	fmt.Fprintf(&b, "%-8s %-38s %-14s %10s %18s %s\n",
		"exhibit", "check", "paper", "measured", "band", "result")
	passed := 0
	for _, c := range checks {
		result := "PASS"
		if c.Pass() {
			passed++
		} else {
			result = "FAIL"
		}
		fmt.Fprintf(&b, "%-8s %-38s %-14s %10.3f [%7.3f,%7.3f] %s\n",
			c.Exhibit, c.Name, c.Paper, c.Measured, c.Lo, c.Hi, result)
	}
	fmt.Fprintf(&b, "%d/%d checks passed\n", passed, len(checks))
	return b.String()
}
