package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	_ "nvscavenger/internal/apps/gtcmini"
)

func TestValidateApp(t *testing.T) {
	if err := ValidateApp("gtc"); err != nil {
		t.Fatalf("gtc must validate: %v", err)
	}
	if err := ValidateApp("nonesuch"); err == nil {
		t.Fatal("unknown app must be rejected")
	}
	if !strings.Contains(AppList(), "gtc") {
		t.Fatalf("AppList = %q", AppList())
	}
}

func TestRequireApp(t *testing.T) {
	fs := NewFlagSet("t")
	fs.SetOutput(io.Discard)
	if err := RequireApp(fs, ""); err == nil || !strings.Contains(err.Error(), "missing -app") {
		t.Fatalf("empty app err = %v", err)
	}
	if err := RequireApp(fs, "nonesuch"); err == nil {
		t.Fatal("unknown app must error")
	}
	if err := RequireApp(fs, "gtc"); err != nil {
		t.Fatalf("gtc: %v", err)
	}
}

func TestNewFlagSetContinuesOnError(t *testing.T) {
	fs := NewFlagSet("t")
	fs.SetOutput(io.Discard)
	if err := fs.Parse([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag must surface as an error, not exit")
	}
}

func TestWriteJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := WriteJSONFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte(`{"ok":true}`))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("data = %s", data)
	}

	if err := WriteJSONFile(filepath.Join(t.TempDir(), "no", "dir", "x.json"),
		func(io.Writer) error { return nil }); err == nil {
		t.Fatal("uncreatable path must error")
	}
}

func TestTableAligns(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable(&buf)
	tbl.Row("object", "segment", "refs")
	tbl.Rowf("%s\t%s\t%d", "zion", "heap", 12345)
	tbl.Rowf("%s\t%s\t%d", "x", "global", 7)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// Columns are aligned: "segment"/"heap"/"global" start at one offset.
	off := strings.Index(lines[0], "segment")
	if off < 0 || strings.Index(lines[1], "heap") != off || strings.Index(lines[2], "global") != off {
		t.Fatalf("columns misaligned:\n%s", buf.String())
	}
}
