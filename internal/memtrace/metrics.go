package memtrace

import "nvscavenger/internal/obs"

// ExportMetrics publishes the tracer's attribution-path statistics into
// reg: the §III-D lookup accelerations (software object cache, bucket
// index with dynamic rebalancing) plus observation totals.  These are the
// counters the ablation benchmarks read through RegistryStats, promoted to
// the shared registry so a run's instrumentation health lands next to the
// exhibit it produced.  Gauges are set idempotently per label set.
func (t *Tracer) ExportMetrics(reg *obs.Registry, labels ...obs.Label) {
	lookups, cacheHits, scanned, rebalances := t.RegistryStats()
	reg.Gauge("memtrace_lookups", labels...).Set(float64(lookups))
	reg.Gauge("memtrace_object_cache_hits", labels...).Set(float64(cacheHits))
	ratio := 0.0
	if lookups > 0 {
		ratio = float64(cacheHits) / float64(lookups)
	}
	reg.Gauge("memtrace_object_cache_hit_ratio", labels...).Set(ratio)
	reg.Gauge("memtrace_bucket_scanned", labels...).Set(float64(scanned))
	avgScan := 0.0
	if misses := lookups - cacheHits; misses > 0 {
		avgScan = float64(scanned) / float64(misses)
	}
	reg.Gauge("memtrace_bucket_scan_length", labels...).Set(avgScan)
	reg.Gauge("memtrace_rebalances", labels...).Set(float64(rebalances))
	reg.Gauge("memtrace_sampled_refs", labels...).Set(float64(t.Sampled))
	reg.Gauge("memtrace_unknown_refs", labels...).Set(float64(t.Unknown))
	reg.Gauge("memtrace_instructions", labels...).Set(float64(t.Instructions()))
	reg.Gauge("memtrace_footprint_bytes", labels...).Set(float64(t.Footprint()))
	// Staging-buffer health (zero on healthy runs): accesses lost to a
	// tripped sink plus the recoverable-mode retry/trip counts.
	reg.Gauge("memtrace_buffer_dropped", labels...).Set(float64(t.SinkDropped()))
	reg.Gauge("memtrace_buffer_retries", labels...).Set(float64(t.SinkRetries()))
	reg.Gauge("memtrace_buffer_trips", labels...).Set(float64(t.SinkTrips()))
}
