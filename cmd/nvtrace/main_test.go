package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvscavenger/internal/trace"
)

func writeSampleTrace(t *testing.T, path string, compressed bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewTransactionWriter(f)
	if compressed {
		w = trace.NewCompressedTransactionWriter(f)
	}
	for i := 0; i < 100; i++ {
		if err := w.WriteTransaction(trace.Transaction{
			Addr: uint64(i) * 64, Write: i%4 == 0, Cycle: uint64(i * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.trc")
	writeSampleTrace(t, path, false)

	var out bytes.Buffer
	if err := run([]string{"-stat", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "records: 100 (75 reads, 25 writes") {
		t.Errorf("stat output wrong:\n%s", text)
	}
	if !strings.Contains(text, "address span") {
		t.Errorf("span missing:\n%s", text)
	}
}

func TestHead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.trc")
	writeSampleTrace(t, path, false)

	var out bytes.Buffer
	if err := run([]string{"-head", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// header + 3 records
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[1], "W") {
		t.Errorf("first record should be a write:\n%s", lines[1])
	}
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "mem.trc")
	gz := filepath.Join(dir, "mem.trc.gz")
	back := filepath.Join(dir, "back.trc")
	writeSampleTrace(t, plain, false)

	var out bytes.Buffer
	if err := run([]string{"-convert", plain, gz}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	if err := run([]string{"-convert", gz, back}, &out); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(back)
	if !bytes.Equal(a, b) {
		t.Fatal("convert round trip altered the trace")
	}
}

func TestStatMetricsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.trc")
	metrics := filepath.Join(dir, "m.txt")
	writeSampleTrace(t, path, false)

	var out bytes.Buffer
	if err := run([]string{"-stat", "-metrics", metrics, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"nvtrace_records", " 100", "nvtrace_writes", " 25"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics file missing %q:\n%s", want, text)
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no mode must error")
	}
	if err := run([]string{"-stat"}, &out); err == nil {
		t.Error("missing file must error")
	}
	if err := run([]string{"-stat", "/nonexistent.trc"}, &out); err == nil {
		t.Error("unreadable file must error")
	}
	if err := run([]string{"-convert", "only-one"}, &out); err == nil {
		t.Error("convert needs two paths")
	}
}
