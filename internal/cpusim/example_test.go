package cpusim_test

import (
	"fmt"

	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/trace"
)

// Example runs the same reference stream at DRAM and PCRAM latencies and
// reports the slowdown, the §V experiment in miniature.
func Example() {
	run := func(latencyNS float64) float64 {
		core := cpusim.MustNew(cpusim.PaperConfig(latencyNS))
		for i := 0; i < 20000; i++ {
			// 30 compute instructions between strided misses.
			core.Event(30, trace.Access{Addr: uint64(i%4096) * 4096, Size: 8, Op: trace.Read})
		}
		return core.Cycles()
	}
	dram := run(10)
	pcram := run(100)
	fmt.Printf("PCRAM slower than DRAM: %v\n", pcram > dram)
	fmt.Printf("slowdown bounded by the latency ratio: %v\n", pcram/dram < 10)
	// Output:
	// PCRAM slower than DRAM: true
	// slowdown bounded by the latency ratio: true
}
