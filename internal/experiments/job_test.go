package experiments

import (
	"strings"
	"testing"
)

func TestJobSpecNormalizeValidateRoundTrip(t *testing.T) {
	spec := JobSpec{Scale: 0.25, Iterations: 5, Apps: []string{"cam"}, Exhibits: []string{"table5"}}
	norm := spec.Normalized()
	if norm.SchemaVersion != SchemaVersion {
		t.Errorf("Normalized schema_version = %d", norm.SchemaVersion)
	}
	if err := norm.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	// Zero values normalize to the calibrated defaults.
	def := JobSpec{}.Normalized()
	if def.Scale != 1.0 || def.Iterations != 10 {
		t.Errorf("defaults = scale %v, iterations %d", def.Scale, def.Iterations)
	}

	decoded, err := DecodeJobSpec(strings.NewReader(
		`{"schema_version":1,"scale":0.25,"iterations":5,"apps":["cam"],"exhibits":["table5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Scale != spec.Scale || decoded.Apps[0] != "cam" {
		t.Errorf("decoded = %+v", decoded)
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"bogus_field":1}`)); err == nil {
		t.Error("unknown field must be rejected")
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"schema_version":99}`)); err == nil {
		t.Error("future schema version must be rejected")
	}
}

func TestJobSpecRunCacheKeyPartitions(t *testing.T) {
	healthy := JobSpec{}
	if healthy.RunCacheKey() != "healthy" {
		t.Errorf("no-fault key = %q", healthy.RunCacheKey())
	}
	a := JobSpec{Fault: "sink:every=3,seed=7"}
	b := JobSpec{Fault: "sink:seed=7,every=3"}
	if a.RunCacheKey() != b.RunCacheKey() {
		t.Errorf("equivalent fault spellings partition differently: %q vs %q",
			a.RunCacheKey(), b.RunCacheKey())
	}
	if a.RunCacheKey() == healthy.RunCacheKey() {
		t.Error("faulted spec shares the healthy partition")
	}
}
