// Package cammini is the CAM proxy: a global atmosphere-physics mini-app
// (paper §VI, CAM 3.1 default test case).
//
// CAM's signature in §VII is its stack behaviour: ~76.3% of references hit
// the stack, with a read/write ratio of 20.39 in steady iterations but only
// 11.46 in the first iteration (coefficient caches are built then).  At the
// routine level (Figure 2), ~43% of stack objects have read/write ratios
// above 10 — together drawing ~69% of stack references — and ~3% exceed 50
// (~9% of references): routines that derive interpolation coefficients from
// their arguments and then read them repeatedly, routines caching temporal
// results, and routines holding computation-dependent constants.
//
// The proxy therefore models the CAM physics suite as 31 named routines,
// each owning a stack frame whose locals are written once per timestep
// (twice in timestep 1, the cache-building pass) and read a calibrated
// number of times:
//
//   - 1 routine with read ratio 60 carrying ~9% of stack references
//     (vertinterp, the interpolation-coefficient pattern);
//   - 12 routines with read ratio 35 carrying ~60% (radiation/convection
//     kernels re-reading cached temporaries);
//   - 18 routines with read ratio 10 carrying ~31% (bulk physics).
//
// Global data reproduces §VII-B's CAM inventory: read-only Legendre
// transform constants, cosine/sine longitude tables, a field-name hash
// table and look-up index arrays (~15.5% of the footprint); history
// aggregation buffers untouched during the main loop (~11.5%, Figure 7);
// and prognostic fields updated through a column-physics driver.  The
// physics buffer lives on the heap, as CAM's pbuf does.
package cammini

import (
	"fmt"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/apps/kernels"
	"nvscavenger/internal/memtrace"
)

func init() {
	apps.Register("cam", func(scale float64) apps.App { return New(scale) })
}

// routineSpec calibrates one physics routine's stack behaviour.
type routineSpec struct {
	name  string
	size  int // locals (float64 elements)
	reads int // read passes over the locals per timestep
}

// routineTable is the Figure 2 population: 31 routines; 13 with ratio > 10
// (one above 50).
func routineTable(scale float64) []routineSpec {
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 16 {
			n = 16
		}
		return n
	}
	specs := []routineSpec{{name: "vertinterp", size: sz(4000), reads: 60}}
	mid := []string{
		"radcswmx", "radclwmx", "zm_convr", "cldwat_fice", "trcab", "trcems",
		"aer_optics", "gffgch", "esinti", "radabs", "radems", "cldefr",
	}
	for _, n := range mid {
		specs = append(specs, routineSpec{name: n, size: sz(3800), reads: 35})
	}
	low := []string{
		"tphysbc", "tphysac", "vertical_diffusion", "convect_shallow",
		"stratiform_tend", "chemistry_tend", "dadadj", "cldfrc", "zenith",
		"albland", "albocean", "srfflx", "qneg3", "hycoef", "grmult",
		"hordif", "courlim", "scan2",
	}
	for _, n := range low {
		specs = append(specs, routineSpec{name: n, size: sz(4300), reads: 10})
	}
	return specs
}

// App is the CAM proxy.
type App struct {
	scale    float64
	grid     int // horizontal x vertical points per field
	routines []routineSpec

	// prognostic fields (global)
	tPhys, qPhys, uPhys, vPhys, psPhys memtrace.F64

	// read-only tables (§VII-B's CAM inventory)
	legendre, cossin, fieldHash, lookupIdx memtrace.F64

	// history buffers: untouched during the main loop (Figure 7)
	hist1, hist2 memtrace.F64

	// physics buffer on the heap (CAM pbuf)
	pbuf    memtrace.F64
	pbufObj *memtrace.Object

	checksum float64
}

// New returns a CAM proxy at the given scale (1.0 ~ 9.5 MB footprint:
// Table I's 608 MB per task divided by 64).
func New(scale float64) *App {
	g := int(110000 * scale)
	if g < 1024 {
		g = 1024
	}
	return &App{scale: scale, grid: g, routines: routineTable(scale)}
}

// Name implements apps.App.
func (a *App) Name() string { return "cam" }

// Description implements apps.App.
func (a *App) Description() string {
	return "community atmosphere model physics suite (CAM 3.1 proxy, default test case)"
}

// Setup allocates fields and builds the read-only tables (pre-computing).
func (a *App) Setup(tr *memtrace.Tracer) error {
	g := a.grid
	rng := kernels.NewRNG(23)

	a.tPhys, _ = tr.GlobalF64("t_phys", g)
	a.qPhys, _ = tr.GlobalF64("q_phys", g)
	a.uPhys, _ = tr.GlobalF64("u_phys", g)
	a.vPhys, _ = tr.GlobalF64("v_phys", g)
	a.psPhys, _ = tr.GlobalF64("ps_phys", g/8)

	// Read-only tables: ~15.5% of the footprint together.
	a.legendre, _ = tr.GlobalF64("legendre_coef", g*10/9)
	a.cossin, _ = tr.GlobalF64("cossin_lon", g/4)
	a.fieldHash, _ = tr.GlobalF64("field_hash", g/9)
	a.lookupIdx, _ = tr.GlobalF64("lookup_idx", g/5)

	// History aggregation buffers: ~11.5% of the footprint, only used in
	// post-processing.
	a.hist1, _ = tr.GlobalF64("hist_buf1", g)
	a.hist2, _ = tr.GlobalF64("hist_buf2", g*3/8)

	// Physics buffer: long-term heap, updated every step.
	a.pbuf, a.pbufObj = tr.HeapF64("pbuf", "phys_buffer.F90:210", g*2)

	fr := tr.Enter("cam_init")
	defer tr.Leave()
	_ = fr
	kernels.FillRandom(a.tPhys, rng, 250, 310)
	kernels.FillRandom(a.qPhys, rng, 0, 0.02)
	kernels.FillRandom(a.uPhys, rng, -40, 40)
	kernels.FillRandom(a.vPhys, rng, -40, 40)
	kernels.FillRandom(a.psPhys, rng, 9e4, 1.05e5)
	a.pbuf.Fill(0)

	// Legendre transform constants over Gauss-like abscissae.
	deg := 9
	npts := a.legendre.Len() / (deg + 1)
	xs := fr.LocalF64(npts)
	for i := 0; i < npts; i++ {
		xs.Store(i, -1+2*float64(i)/float64(npts-1))
	}
	kernels.LegendreTable(tr, xs, a.legendre.Slice(0, (deg+1)*npts), deg)
	for i := 0; i < a.cossin.Len(); i += 2 {
		lon := 2 * math.Pi * float64(i) / float64(a.cossin.Len())
		a.cossin.Store(i, math.Cos(lon))
		if i+1 < a.cossin.Len() {
			a.cossin.Store(i+1, math.Sin(lon))
		}
	}
	tr.Compute(uint64(a.cossin.Len() * 4))
	kernels.FillRandom(a.fieldHash, rng, 0, 1)
	for i := 0; i < a.lookupIdx.Len(); i++ {
		a.lookupIdx.Store(i, float64(i%npts))
	}
	return nil
}

// Step runs one physics timestep.
func (a *App) Step(tr *memtrace.Tracer, iter int) error {
	sum := 0.0

	// The physics routine suite: each routine fills its locals (twice in
	// the first timestep, building its coefficient caches) and re-reads
	// them reads times.
	for _, spec := range a.routines {
		fr := tr.Enter(spec.name)
		local := fr.LocalF64(spec.size)
		passes := 1
		if iter == 1 {
			passes = 2 // coefficient-cache construction
		}
		for p := 0; p < passes; p++ {
			for i := 0; i < spec.size; i++ {
				local.Store(i, float64(i%23)*0.25+float64(p))
			}
			tr.Compute(uint64(spec.size))
		}
		for r := 0; r < spec.reads; r++ {
			acc := 0.0
			for i := 0; i < spec.size; i++ {
				acc += local.Load(i)
			}
			tr.Compute(uint64(spec.size))
			sum += acc
		}
		tr.Leave()
	}

	// Column-physics driver: reads the prognostic state and the read-only
	// tables, writes tendencies back and refreshes the physics buffer.
	fr := tr.Enter("d_p_coupling")
	g := a.grid
	h := uint64(iter)*0x9E3779B97F4A7C15 + 1
	gatherFields := [4]memtrace.F64{a.tPhys, a.qPhys, a.uPhys, a.vPhys}
	for i := 0; i < g; i++ {
		leg := a.legendre.Load(i % a.legendre.Len())
		cs := a.cossin.Load(i % a.cossin.Len())
		tv := a.tPhys.Load(i)
		qv := a.qPhys.Load(i)
		tnew := tv + 0.001*leg*cs
		a.tPhys.Store(i, tnew)
		a.qPhys.Store(i, qv*0.9999)
		a.pbuf.Store(i%a.pbuf.Len(), tnew-qv)
		sum += tnew
		if i%45 == 0 {
			// Spectral-transform scatter: the transpose between grid and
			// spectral space reads the state at effectively random offsets,
			// the irregular slice of CAM's traffic that prefetching cannot
			// hide.  Spread through the column loop, each access stands
			// alone against the memory latency.
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			f := gatherFields[int(h%4)]
			sum += f.Load(int((h >> 8) % uint64(g)))
		}
	}
	tr.Compute(uint64(8 * g))
	// Wind advection referencing the index arrays.
	for i := 0; i < g; i += 4 {
		j := int(a.lookupIdx.Load(i%a.lookupIdx.Len())) % g
		v := a.vPhys.Load(j)
		a.uPhys.Store(i, a.uPhys.Load(i)+0.0001*v)
		a.vPhys.Store(j, v*0.99999)
	}
	tr.Compute(uint64(4 * g))
	tr.Leave()
	_ = fr

	a.checksum = sum
	return nil
}

// Post writes the history buffers (post-processing phase).
func (a *App) Post(tr *memtrace.Tracer) error {
	fr := tr.Enter("wshist")
	for i := 0; i < a.hist1.Len(); i++ {
		a.hist1.Store(i, a.tPhys.Load(i%a.tPhys.Len()))
	}
	for i := 0; i < a.hist2.Len(); i++ {
		a.hist2.Store(i, a.qPhys.Load(i%a.qPhys.Len()))
	}
	tr.Compute(uint64(a.hist1.Len() + a.hist2.Len()))
	tr.Leave()
	_ = fr
	return nil
}

// Check validates finiteness of the physics state.
func (a *App) Check() error {
	if math.IsNaN(a.checksum) || math.IsInf(a.checksum, 0) {
		return fmt.Errorf("cammini: checksum diverged")
	}
	for i, v := range a.tPhys.Raw() {
		if math.IsNaN(v) || v < 100 || v > 500 {
			return fmt.Errorf("cammini: temperature %d out of physical range: %v", i, v)
		}
	}
	return nil
}

// Input implements apps.InputDescriber (Table I's input column).
func (a *App) Input() string {
	return fmt.Sprintf("default test case, %d grid points, %d physics routines", a.grid, len(a.routines))
}
