package trace_test

import (
	"bytes"
	"fmt"
	"io"

	"nvscavenger/internal/trace"
)

// Example writes a compressed transaction trace and reads it back; the
// reader detects the compression automatically.
func Example() {
	var buf bytes.Buffer
	w := trace.NewCompressedTransactionWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteTransaction(trace.Transaction{Addr: uint64(i) * 64, Write: i == 1}); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		panic(err)
	}
	for {
		t, err := r.ReadTransaction()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		op := "read "
		if t.Write {
			op = "write"
		}
		fmt.Printf("%s %#08x\n", op, t.Addr)
	}
	// Output:
	// read  0x00000000
	// write 0x00000040
	// read  0x00000080
}
