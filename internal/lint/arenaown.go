package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// arenaown proves the arena slab-ownership protocol at compile time: a
// batch obtained from trace.Arena[T].Get must reach exactly one hand-off
// on every path — Put back to the arena, storage into an owning type
// (one with a Release method), a return to the caller, or a call
// annotated `//nvlint:arenaown transfer` — and must not be touched again
// after the hand-off.  Deliver/Release pairs on captures get the same
// treatment: a Deliver whose capture is not released on some path to
// return leaks its chunks out of the arena accounting, which is exactly
// the aliasing class the runtime poison harness exists to catch.
type arenaown struct {
	nopFinish
}

func init() {
	registerPass("arenaown", func() Pass { return &arenaown{} })
}

func (*arenaown) Name() string { return "arenaown" }
func (*arenaown) Doc() string {
	return "arena batches reach exactly one hand-off (Put/owning type/transfer call) on every path and are not aliased after it"
}

const arenaTransferDirective = "//nvlint:arenaown transfer"

const (
	bitOwned  uint8 = 1 << iota // batch is live and this function is responsible for it
	bitHanded                   // batch has been handed off on some path
)

// arenaToken is one tracked Get acquisition bound to a local variable.
type arenaToken struct {
	call *ast.CallExpr
	obj  types.Object
}

func (a *arenaown) Check(p *Package, r *Reporter) {
	transfers := collectTransferFuncs(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(p, r, fd, transfers)
		}
	}
}

// collectTransferFuncs gathers same-package functions annotated as
// documented ownership-transfer points.
func collectTransferFuncs(p *Package) map[*types.Func]bool {
	transfers := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, arenaTransferDirective) {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						transfers[fn] = true
					}
				}
			}
		}
	}
	return transfers
}

func (a *arenaown) checkFunc(p *Package, r *Reporter, fd *ast.FuncDecl, transfers map[*types.Func]bool) {
	parents := buildParents(fd.Body)
	var tokens []arenaToken
	hasWork := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isArenaMethod(p, call, "Get") {
			hasWork = true
			if tok, ok := a.classifyGet(p, r, call, parents, transfers); ok {
				tokens = append(tokens, tok)
			}
		}
		if isDeliverCall(p, call) {
			hasWork = true
		}
		return true
	})
	if !hasWork {
		return
	}

	g := buildCFG(fd.Body)
	a.flowTokens(p, r, g, tokens, transfers)
	a.checkDelivers(p, r, g)
}

// classifyGet decides the disposition of one Get call from its syntactic
// context.  Bindings to local variables become tracked tokens; direct
// hand-offs (owning composite literal, owner-field store, return,
// transfer call) are fine as-is; everything else is reported here.
func (a *arenaown) classifyGet(p *Package, r *Reporter, call *ast.CallExpr, parents map[ast.Node]ast.Node, transfers map[*types.Func]bool) (arenaToken, bool) {
	par, child := skipWrappers(parents, call)
	switch par := par.(type) {
	case *ast.AssignStmt:
		lhs := assignTarget(par, child)
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				r.Report(call.Pos(), "arenaown", "arena batch from Get is discarded; Put it back or hand it to an owner")
				return arenaToken{}, false
			}
			obj := p.Info.Defs[lhs]
			if obj == nil {
				obj = p.Info.Uses[lhs]
			}
			if obj == nil {
				return arenaToken{}, false
			}
			if obj.Parent() == p.Pkg.Scope() {
				r.Report(call.Pos(), "arenaown", "arena batch from Get stored in package-level var %s: slabs must stay function- or owner-scoped", lhs.Name)
				return arenaToken{}, false
			}
			return arenaToken{call: call, obj: obj}, true
		case *ast.SelectorExpr:
			if !ownsArenaBatches(p, p.Info.TypeOf(lhs.X)) {
				r.Report(call.Pos(), "arenaown",
					"arena batch from Get stored in field %s of a type with no Release method: the slab can never be handed back", lhs.Sel.Name)
			}
			return arenaToken{}, false
		default:
			r.Report(call.Pos(), "arenaown", "arena batch from Get has no trackable owner at this store")
			return arenaToken{}, false
		}
	case *ast.ValueSpec:
		if len(par.Names) == 1 {
			if obj := p.Info.Defs[par.Names[0]]; obj != nil {
				return arenaToken{call: call, obj: obj}, true
			}
		}
		return arenaToken{}, false
	case *ast.CallExpr:
		if isAppendCall(p, par) {
			gp, _ := skipWrappers(parents, par)
			if as, ok := gp.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr); ok && ownsArenaBatches(p, p.Info.TypeOf(sel.X)) {
					return arenaToken{}, false
				}
			}
			r.Report(call.Pos(), "arenaown", "arena batch appended to a collection that is not an owning field (owner types expose Release)")
			return arenaToken{}, false
		}
		if isArenaMethod(p, par, "Put") {
			return arenaToken{}, false
		}
		if f := funcObject(p, par.Fun); f != nil {
			if transfers[originFunc(f)] {
				return arenaToken{}, false
			}
			r.Report(call.Pos(), "arenaown",
				"arena batch passed to %s, which is not a documented ownership-transfer point (annotate it with %s)", f.Name(), arenaTransferDirective)
		}
		return arenaToken{}, false
	case *ast.KeyValueExpr:
		gp, _ := skipWrappers(parents, par)
		if cl, ok := gp.(*ast.CompositeLit); ok && ownsArenaBatches(p, p.Info.TypeOf(cl)) {
			return arenaToken{}, false
		}
		r.Report(call.Pos(), "arenaown", "arena batch stored in a composite literal whose type has no Release method")
		return arenaToken{}, false
	case *ast.CompositeLit:
		if !ownsArenaBatches(p, p.Info.TypeOf(par)) {
			r.Report(call.Pos(), "arenaown", "arena batch stored in a composite literal whose type has no Release method")
		}
		return arenaToken{}, false
	case *ast.ReturnStmt:
		return arenaToken{}, false
	case *ast.ExprStmt:
		r.Report(call.Pos(), "arenaown", "arena batch from Get is discarded; Put it back or hand it to an owner")
		return arenaToken{}, false
	default:
		r.Report(call.Pos(), "arenaown", "arena batch from Get has no provable single owner here")
		return arenaToken{}, false
	}
}

// flowTokens runs the may-analysis over tracked tokens: owned-at-exit is
// a leak, any use after the handed bit is set is a retained alias.
func (a *arenaown) flowTokens(p *Package, r *Reporter, g *CFG, tokens []arenaToken, transfers map[*types.Func]bool) {
	if len(tokens) == 0 {
		return
	}
	deferHanded := map[types.Object]bool{}
	for _, d := range g.Defers {
		for _, t := range tokens {
			if callHandsOff(p, d.Call, t.obj, transfers) {
				deferHanded[t.obj] = true
			}
		}
	}

	transfer := func(b *Block, in factBits[*ast.CallExpr]) factBits[*ast.CallExpr] {
		out := in.clone()
		for _, n := range b.Nodes {
			a.stepNode(p, n, tokens, transfers, out, nil)
		}
		return out
	}
	in := solveForward(g, transfer)

	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		state := in[blk].clone()
		for _, n := range blk.Nodes {
			a.stepNode(p, n, tokens, transfers, state, func(pos token.Pos, format string, args ...any) {
				if !reported[pos] {
					reported[pos] = true
					r.Report(pos, "arenaown", format, args...)
				}
			})
		}
	}

	exitState := in[g.Exit]
	for _, t := range tokens {
		if exitState[t.call]&bitOwned != 0 && !deferHanded[t.obj] {
			r.Report(t.call.Pos(), "arenaown",
				"arena batch obtained here is not handed back (Put, owning store, or transfer call) on every path to return")
		}
	}
}

// stepNode advances the token state across one CFG node; report is nil
// during fixpoint solving and non-nil during the reporting walk.
func (a *arenaown) stepNode(p *Package, n ast.Node, tokens []arenaToken, transfers map[*types.Func]bool, state factBits[*ast.CallExpr], report func(token.Pos, string, ...any)) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	for _, t := range tokens {
		// Retained alias: the batch was handed off on some path and this
		// statement still touches the binding.
		if state[t.call]&bitHanded != 0 && report != nil && usesObject(p, n, t.obj) {
			report(n.Pos(),
				"arena batch %s is used after its hand-off: the slab may already be reissued (this aliasing is what the poison harness traps at runtime)", t.obj.Name())
		}
		if nodeAcquires(n, t.call) {
			state[t.call] = bitOwned
			continue
		}
		if state[t.call]&bitOwned != 0 && stmtHandsOff(p, n, t.obj, transfers) {
			state[t.call] = bitHanded
		}
	}
}

// nodeAcquires reports whether node n contains token call as its
// acquisition site.
func nodeAcquires(n ast.Node, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if x == call {
			found = true
		}
		return !found
	})
	return found
}

// stmtHandsOff reports whether statement n hands the tracked batch off:
// a Put or transfer call taking it, a store/append into an owning field,
// a return of it, or an owning composite literal absorbing it.  Function
// literals are skipped (a closure capture is not a hand-off) and defers
// are handled separately.
func stmtHandsOff(p *Package, n ast.Node, obj types.Object, transfers map[*types.Func]bool) bool {
	handed := false
	ast.Inspect(n, func(x ast.Node) bool {
		if handed {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if callHandsOff(p, x, obj, transfers) {
				handed = true
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !exprRootedAt(p, rhs, obj) {
					continue
				}
				lhs := x.Lhs[min(i, len(x.Lhs)-1)]
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && ownsArenaBatches(p, p.Info.TypeOf(sel.X)) {
					handed = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if exprRootedAt(p, res, obj) {
					handed = true
					return false
				}
			}
		case *ast.CompositeLit:
			if !ownsArenaBatches(p, p.Info.TypeOf(x)) {
				return true
			}
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if exprRootedAt(p, el, obj) {
					handed = true
					return false
				}
			}
		}
		return true
	})
	return handed
}

// callHandsOff reports whether the call consumes the batch: Arena.Put
// with it as an argument, a transfer-annotated function, or an append
// whose result lands in an owning field (checked by the caller).
func callHandsOff(p *Package, call *ast.CallExpr, obj types.Object, transfers map[*types.Func]bool) bool {
	takesObj := false
	for _, arg := range call.Args {
		if exprRootedAt(p, arg, obj) {
			takesObj = true
			break
		}
	}
	if !takesObj {
		return false
	}
	if isArenaMethod(p, call, "Put") {
		return true
	}
	if f := funcObject(p, call.Fun); f != nil && transfers[originFunc(f)] {
		return true
	}
	return false
}

// checkDelivers enforces the capture protocol: every Deliver on a
// releasable capture must be paired with Release on all paths to return,
// or covered by a deferred releaser.
func (a *arenaown) checkDelivers(p *Package, r *Reporter, g *CFG) {
	covered := deferredReleasers(p, g)
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			deliver, recv := findDeliver(p, n)
			if deliver == nil {
				continue
			}
			if covered {
				continue
			}
			recvObj := rootObject(p, recv)
			if recvObj == nil {
				continue
			}
			if g.reachesExitWithout(blk, i+1, func(stop ast.Node) bool {
				return nodeReleasesObj(p, stop, recvObj)
			}) {
				r.Report(deliver.Pos(), "arenaown",
					"Deliver without Release on every path to return: on error paths the capture's chunks never re-enter the arena (release on all paths or defer a releaser)")
			}
		}
	}
}

// deferredReleasers reports whether any defer in the function releases
// captures: a direct .Release() defer, or a deferred same-package
// function/method whose body calls Release.
func deferredReleasers(p *Package, g *CFG) bool {
	for _, d := range g.Defers {
		if isMethodNamed(p, d.Call, "Release") {
			return true
		}
		f := funcObject(p, d.Call.Fun)
		if f == nil || f.Pkg() != p.Pkg {
			continue
		}
		if body := funcDeclBody(p, f); body != nil && callsMethodNamed(p, body, "Release") {
			return true
		}
	}
	return false
}

// findDeliver locates a Deliver call on a releasable capture inside n,
// skipping function literals (the delivery closure itself).
func findDeliver(p *Package, n ast.Node) (*ast.CallExpr, ast.Expr) {
	var call *ast.CallExpr
	var recv ast.Expr
	ast.Inspect(n, func(x ast.Node) bool {
		if call != nil {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		c, ok := x.(*ast.CallExpr)
		if !ok || !isDeliverCall(p, c) {
			return true
		}
		sel := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		call, recv = c, sel.X
		return false
	})
	return call, recv
}

// isDeliverCall matches method calls named Deliver whose receiver type
// also exposes Release — the capture hand-off protocol.
func isDeliverCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Name() != "Deliver" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return ownsArenaBatches(p, sig.Recv().Type())
}

// nodeReleasesObj reports whether n calls .Release() on the given
// receiver object, outside function literals.
func nodeReleasesObj(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || !isMethodNamed(p, call, "Release") {
			return true
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if rootObject(p, sel.X) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// --- shared type/AST helpers ---

// isArenaMethod matches calls to trace.Arena[T] methods by name.
func isArenaMethod(p *Package, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Origin().Obj()
	return o.Name() == "Arena" && o.Pkg() != nil && strings.HasSuffix(o.Pkg().Path(), "internal/trace")
}

// ownsArenaBatches reports whether the type can own arena batches: it
// (or its pointer form) exposes a Release method to hand slabs back.
func ownsArenaBatches(p *Package, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, p.Pkg, "Release")
	_, ok := obj.(*types.Func)
	return ok
}

// isMethodNamed matches a method call by selector name with a resolved
// *types.Func receiver method.
func isMethodNamed(p *Package, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// callsMethodNamed reports whether n contains a call to a method with
// the given name.
func callsMethodNamed(p *Package, n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && isMethodNamed(p, call, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcDeclBody finds the declaration body for a same-package function.
func funcDeclBody(p *Package, f *types.Func) *ast.BlockStmt {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && p.Info.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

// rootObject resolves the base identifier of a selector chain to its
// object.
func rootObject(p *Package, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// exprRootedAt reports whether e's base identifier resolves to obj.
func exprRootedAt(p *Package, e ast.Expr, obj types.Object) bool {
	return rootObject(p, e) == obj
}

// originFunc maps an instantiated generic function back to its origin
// so annotation lookups work across instantiations.
func originFunc(f *types.Func) *types.Func {
	return f.Origin()
}

// isAppendCall matches the append builtin.
func isAppendCall(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// buildParents records each node's parent for upward classification.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipWrappers climbs past parens, slices and address-of so the
// classification sees the semantically relevant parent; it returns that
// parent and the direct child on the path to it.
func skipWrappers(parents map[ast.Node]ast.Node, n ast.Node) (ast.Node, ast.Node) {
	child := n
	par := parents[n]
	for {
		switch par.(type) {
		case *ast.ParenExpr, *ast.SliceExpr, *ast.UnaryExpr:
			child = par
			par = parents[par]
		default:
			return par, child
		}
	}
}

// assignTarget finds the LHS corresponding to the RHS child of an
// assignment.
func assignTarget(as *ast.AssignStmt, child ast.Node) ast.Expr {
	for i, rhs := range as.Rhs {
		if rhs == child && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	return as.Lhs[0]
}
