package dramsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvscavenger/internal/trace"
)

// mustNew builds a MemorySystem from a config the test knows is valid.
func mustNew(t testing.TB, cfg Config) *MemorySystem {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProfilesMatchTableIV(t *testing.T) {
	want := map[string][2]float64{
		"DDR3":   {10, 10},
		"PCRAM":  {20, 100},
		"STTRAM": {10, 20},
		"MRAM":   {12, 12},
	}
	for _, p := range Profiles() {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Name)
		}
		if p.ReadLatencyNS != w[0] || p.WriteLatencyNS != w[1] {
			t.Errorf("%s latencies = %v/%v, want %v/%v",
				p.Name, p.ReadLatencyNS, p.WriteLatencyNS, w[0], w[1])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNVRAMHasNoRefreshOrStandby(t *testing.T) {
	for _, p := range []DeviceProfile{PCRAM(), STTRAM(), MRAM()} {
		if p.RefreshMW != 0 {
			t.Errorf("%s refresh power = %v, want 0", p.Name, p.RefreshMW)
		}
		if p.CellStandbyMW != 0 {
			t.Errorf("%s cell standby = %v, want 0", p.Name, p.CellStandbyMW)
		}
		if p.PeripheralMW != DDR3().PeripheralMW {
			t.Errorf("%s peripheral power differs from DRAM: the paper assumes identical circuitry", p.Name)
		}
	}
	if DDR3().RefreshMW == 0 || DDR3().CellStandbyMW == 0 {
		t.Error("DRAM must pay refresh and cell standby power")
	}
}

func TestProfileValidate(t *testing.T) {
	p := DDR3()
	p.ReadLatencyNS = 0
	if p.Validate() == nil {
		t.Error("zero read latency must fail validation")
	}
	p = DDR3()
	p.VDD = -1
	if p.Validate() == nil {
		t.Error("negative VDD must fail validation")
	}
	p = DDR3()
	p.IWriteMA = -5
	if p.Validate() == nil {
		t.Error("negative current must fail validation")
	}
}

func TestGeometry(t *testing.T) {
	g := PaperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalBanks() != 256 {
		t.Errorf("total banks = %d, want 256 (16 ranks x 16 banks)", g.TotalBanks())
	}
	if got := g.CapacityBytes(); got != 16*16*1024*1024*64 {
		t.Errorf("capacity = %d", got)
	}
	bad := g
	bad.Rows = 1000
	if bad.Validate() == nil {
		t.Error("non-power-of-two rows must fail")
	}
	bad = g
	bad.Ranks = 0
	if bad.Validate() == nil {
		t.Error("zero ranks must fail")
	}
}

func TestAddressMappingRoundTrip(t *testing.T) {
	g := PaperGeometry()
	seen := map[Place]bool{}
	for i := 0; i < 4096; i++ {
		addr := uint64(i) * 64
		p := g.Map(addr)
		if p.Rank >= g.Ranks || p.Bank >= g.BanksPerRnk || p.Row >= g.Rows || p.Col >= g.Cols {
			t.Fatalf("mapped out of range: %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate mapping for %#x: %+v", addr, p)
		}
		seen[p] = true
	}
}

func TestConsecutiveLinesShareRow(t *testing.T) {
	g := PaperGeometry()
	p0 := g.Map(0)
	p1 := g.Map(64)
	if p0.Row != p1.Row || p0.Bank != p1.Bank || p0.Rank != p1.Rank {
		t.Fatal("consecutive lines must fall in the same open row (column-fastest ordering)")
	}
	if p1.Col != p0.Col+1 {
		t.Fatalf("columns not consecutive: %d then %d", p0.Col, p1.Col)
	}
}

func TestRowBufferHitsSequentialStream(t *testing.T) {
	m := mustNew(t, PaperConfig(DDR3()))
	for i := 0; i < 1024; i++ {
		if err := m.Transaction(trace.Transaction{Addr: uint64(i) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	if rep.RowHitRatio() < 0.99 {
		t.Fatalf("sequential stream row hit ratio = %v, want ~1 (open page)", rep.RowHitRatio())
	}
	if rep.Activates != 1 {
		t.Fatalf("activates = %d, want 1", rep.Activates)
	}
}

func TestClosedPageAlwaysActivates(t *testing.T) {
	cfg := PaperConfig(DDR3())
	cfg.Policy = ClosedPage
	m := mustNew(t, cfg)
	for i := 0; i < 100; i++ {
		if err := m.Transaction(trace.Transaction{Addr: uint64(i) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	if rep.Activates != 100 {
		t.Fatalf("closed page activates = %d, want 100", rep.Activates)
	}
	if rep.RowHits != 0 {
		t.Fatalf("closed page row hits = %d, want 0", rep.RowHits)
	}
}

func TestRowPolicyString(t *testing.T) {
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Fatal("policy strings wrong")
	}
}

func TestSlowerDeviceTakesLonger(t *testing.T) {
	txs := make([]trace.Transaction, 2000)
	rng := rand.New(rand.NewSource(42))
	for i := range txs {
		txs[i] = trace.Transaction{Addr: uint64(rng.Intn(1 << 22)), Write: i%4 == 0}
	}
	reps, err := Compare(PaperGeometry(), OpenPage, []DeviceProfile{DDR3(), PCRAM()}, txs)
	if err != nil {
		t.Fatal(err)
	}
	if reps[1].ElapsedNS <= reps[0].ElapsedNS {
		t.Fatalf("PCRAM elapsed %v <= DDR3 %v: long write latency must slow the run",
			reps[1].ElapsedNS, reps[0].ElapsedNS)
	}
}

// appLikeTrace mimics a cache-filtered scientific trace: mostly sequential
// streams over a few arrays (high row-buffer locality) with a slice of
// irregular traffic, read:write roughly 70:30.
func appLikeTrace(n int, writeFrac float64, seed int64) []trace.Transaction {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]trace.Transaction, 0, n)
	cursor := uint64(0)
	for len(txs) < n {
		if rng.Float64() < 0.85 {
			// sequential run
			runLen := rng.Intn(64) + 8
			for j := 0; j < runLen && len(txs) < n; j++ {
				cursor += 64
				txs = append(txs, trace.Transaction{Addr: cursor % (1 << 31), Write: rng.Float64() < writeFrac})
			}
		} else {
			txs = append(txs, trace.Transaction{Addr: uint64(rng.Int63n(1 << 31)), Write: rng.Float64() < writeFrac})
			cursor = uint64(rng.Int63n(1 << 31))
		}
	}
	return txs
}

// TestTableVIShape is the calibration test for the Table VI reproduction:
// every NVRAM saves at least 27% versus DDR3, and the loading effect orders
// PCRAM <= STTRAM <= MRAM.
func TestTableVIShape(t *testing.T) {
	txs := appLikeTrace(30000, 0.3, 7)
	reps, err := Compare(PaperGeometry(), OpenPage, Profiles(), txs)
	if err != nil {
		t.Fatal(err)
	}
	norm := Normalize(reps)
	if norm[0] != 1 {
		t.Fatalf("DDR3 normalization = %v, want 1", norm[0])
	}
	names := []string{"DDR3", "PCRAM", "STTRAM", "MRAM"}
	for i := 1; i < 4; i++ {
		if norm[i] > 0.73 {
			t.Errorf("%s normalized power = %.3f, want <= 0.73 (>= 27%% saving)", names[i], norm[i])
		}
		if norm[i] < 0.60 {
			t.Errorf("%s normalized power = %.3f, implausibly low (< 0.60)", names[i], norm[i])
		}
	}
	if !(norm[1] <= norm[2]+1e-9 && norm[2] <= norm[3]+1e-9) {
		t.Errorf("loading-effect ordering violated: PCRAM %.4f, STTRAM %.4f, MRAM %.4f",
			norm[1], norm[2], norm[3])
	}
}

func TestReportComponentsConsistent(t *testing.T) {
	m := mustNew(t, PaperConfig(DDR3()))
	for _, tx := range appLikeTrace(5000, 0.25, 3) {
		if err := m.Transaction(tx); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	sum := rep.BurstMW + rep.ActPreMW + rep.BackgroundMW + rep.RefreshMW
	if diff := rep.TotalMW - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TotalMW %v != component sum %v", rep.TotalMW, sum)
	}
	if rep.Reads+rep.Writes != 5000 {
		t.Fatalf("reads+writes = %d, want 5000", rep.Reads+rep.Writes)
	}
	if rep.ElapsedNS <= 0 || rep.BurstEnergyPJ <= 0 {
		t.Fatal("elapsed time and burst energy must be positive")
	}
}

func TestBandwidthAndUtilization(t *testing.T) {
	m := mustNew(t, PaperConfig(DDR3()))
	for i := 0; i < 10000; i++ {
		if err := m.Transaction(trace.Transaction{Addr: uint64(i) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	if rep.BandwidthGBs <= 0 {
		t.Fatal("bandwidth must be positive")
	}
	if rep.BusUtilization <= 0 || rep.BusUtilization > 1.0000001 {
		t.Fatalf("bus utilization = %v, want (0,1]", rep.BusUtilization)
	}
	// The theoretical peak for 64B per 6ns is ~10.67 GB/s; a row-hit
	// stream on one bank is bank-limited below that.
	if rep.BandwidthGBs > 64.0/6.0+1e-9 {
		t.Fatalf("bandwidth %v exceeds the bus peak", rep.BandwidthGBs)
	}
}

func TestLoadingEffectVisibleInBandwidth(t *testing.T) {
	txs := make([]trace.Transaction, 4000)
	for i := range txs {
		txs[i] = trace.Transaction{Addr: uint64(i) * 64, Write: i%3 == 0}
	}
	reps, err := Compare(PaperGeometry(), OpenPage, []DeviceProfile{DDR3(), PCRAM()}, txs)
	if err != nil {
		t.Fatal(err)
	}
	if reps[1].BandwidthGBs >= reps[0].BandwidthGBs {
		t.Fatalf("PCRAM bandwidth %v should trail DDR3 %v (the loading effect)",
			reps[1].BandwidthGBs, reps[0].BandwidthGBs)
	}
}

func TestTransactionAfterReportRejected(t *testing.T) {
	m := mustNew(t, PaperConfig(DDR3()))
	_ = m.Report()
	if err := m.Transaction(trace.Transaction{}); err == nil {
		t.Fatal("transactions after Report must be rejected")
	}
}

func TestReplayTrace(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewTransactionWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.WriteTransaction(trace.Transaction{Addr: uint64(i) * 64, Write: i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, PaperConfig(PCRAM()))
	n, err := m.ReplayTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("replayed %d transactions, want 100", n)
	}
	rep := m.Report()
	if rep.Reads+rep.Writes != 100 {
		t.Fatalf("report shows %d transactions", rep.Reads+rep.Writes)
	}
}

func TestReplayRejectsAccessTrace(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewAccessWriter(&buf)
	if err := w.WriteAccess(trace.Access{Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, PaperConfig(DDR3()))
	if _, err := m.ReplayTrace(r); err == nil {
		t.Fatal("access-kind trace must be rejected")
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	if got := Normalize(nil); len(got) != 0 {
		t.Fatal("empty normalize should return empty")
	}
	got := Normalize([]PowerReport{{TotalMW: 0}, {TotalMW: 5}})
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("zero base should yield zeros, not NaN")
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{Geometry: Geometry{}, Profile: DDR3()}); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
	p := DDR3()
	p.BurstNS = 0
	if _, err := New(Config{Geometry: PaperGeometry(), Profile: p}); err == nil {
		t.Fatal("bad profile must be rejected")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

// Property: completion times are monotone non-decreasing in issue order.
func TestQuickCompletionMonotone(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ctl, err := newController(PaperGeometry(), PCRAM(), OpenPage)
		if err != nil {
			return false
		}
		var prev uint64
		for i := 0; i < int(n%500)+1; i++ {
			done := ctl.enqueue(trace.Transaction{
				Addr:  uint64(rng.Int63n(1 << 32)),
				Write: rng.Intn(2) == 0,
			})
			if done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: row hits + row misses == accesses, and activates == row misses
// under open-page policy.
func TestQuickRowAccounting(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ctl, err := newController(PaperGeometry(), DDR3(), OpenPage)
		if err != nil {
			return false
		}
		count := uint64(n%400) + 1
		for i := uint64(0); i < count; i++ {
			ctl.enqueue(trace.Transaction{Addr: uint64(rng.Int63n(1 << 28))})
		}
		s := ctl.snapshot()
		return s.RowHits+s.RowMisses == count && s.Activates == s.RowMisses &&
			s.Reads == count && s.Writes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a bank-limited (single-row sequential) stream, a more
// write-heavy mix cannot be faster on PCRAM, whose writes are 5x slower
// than its reads.
func TestQuickWriteFractionSlowsPCRAM(t *testing.T) {
	f := func(seed int64) bool {
		mkElapsed := func(writeFrac float64) float64 {
			m := mustNew(t, PaperConfig(PCRAM()))
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 600; i++ {
				// Walk one row of one bank: every access contends on the
				// same bank, so device latency dominates throughput.
				m.Transaction(trace.Transaction{
					Addr:  uint64(i%1024) * 64,
					Write: rng.Float64() < writeFrac,
				})
			}
			return m.Report().ElapsedNS
		}
		return mkElapsed(0.9) >= mkElapsed(0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulingString(t *testing.T) {
	if InOrder.String() != "in-order" || FRFCFS.String() != "fr-fcfs" {
		t.Fatal("scheduling strings wrong")
	}
}

func TestFRFCFSServicesEverything(t *testing.T) {
	cfg := PaperConfig(DDR3())
	cfg.Scheduling = FRFCFS
	cfg.WindowSize = 8
	m := mustNew(t, cfg)
	for i := 0; i < 1000; i++ {
		if err := m.Transaction(trace.Transaction{Addr: uint64(i%128) * 1 << 20, Write: i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	if rep.Reads+rep.Writes != 1000 {
		t.Fatalf("serviced %d of 1000 (window not drained)", rep.Reads+rep.Writes)
	}
}

func TestFRFCFSImprovesRowHits(t *testing.T) {
	// Two interleaved row streams within one bank: in-order ping-pongs
	// between rows; FR-FCFS batches row hits within its window.
	mkTxs := func() []trace.Transaction {
		var txs []trace.Transaction
		for i := 0; i < 2000; i++ {
			row := uint64(i%2) * (1 << 26) // two distinct rows, same bank
			txs = append(txs, trace.Transaction{Addr: row + uint64(i/2%64)*64})
		}
		return txs
	}
	run := func(s Scheduling) PowerReport {
		cfg := PaperConfig(DDR3())
		cfg.Scheduling = s
		m := mustNew(t, cfg)
		for _, tx := range mkTxs() {
			if err := m.Transaction(tx); err != nil {
				t.Fatal(err)
			}
		}
		return m.Report()
	}
	inorder, frfcfs := run(InOrder), run(FRFCFS)
	if frfcfs.RowHitRatio() <= inorder.RowHitRatio() {
		t.Fatalf("FR-FCFS row hits %.3f should beat in-order %.3f",
			frfcfs.RowHitRatio(), inorder.RowHitRatio())
	}
	if frfcfs.ElapsedNS >= inorder.ElapsedNS {
		t.Fatalf("FR-FCFS elapsed %v should beat in-order %v",
			frfcfs.ElapsedNS, inorder.ElapsedNS)
	}
}

func TestFRFCFSNegativeWindowRejected(t *testing.T) {
	cfg := PaperConfig(DDR3())
	cfg.WindowSize = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative window must be rejected")
	}
}
