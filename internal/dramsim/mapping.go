package dramsim

import "fmt"

// Geometry describes the organization of the simulated memory system,
// following Table III of the paper: 2 GB across 16 ranks of 16 banks, 1024
// rows x 1024 columns per bank, device width 4, 64-bit JEDEC data bus.
type Geometry struct {
	Ranks       int
	BanksPerRnk int
	Rows        int
	Cols        int
	// LineBytes is the transaction granularity (one cache line / burst).
	LineBytes int
}

// PaperGeometry returns the Table III organization.
func PaperGeometry() Geometry {
	return Geometry{Ranks: 16, BanksPerRnk: 16, Rows: 1024, Cols: 1024, LineBytes: 64}
}

// Validate rejects degenerate geometries.
func (g Geometry) Validate() error {
	if g.Ranks <= 0 || g.BanksPerRnk <= 0 || g.Rows <= 0 || g.Cols <= 0 || g.LineBytes <= 0 {
		return fmt.Errorf("dramsim: non-positive geometry %+v", g)
	}
	for _, v := range []int{g.Ranks, g.BanksPerRnk, g.Rows, g.Cols, g.LineBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("dramsim: geometry fields must be powers of two: %+v", g)
		}
	}
	return nil
}

// TotalBanks returns ranks x banks-per-rank.
func (g Geometry) TotalBanks() int { return g.Ranks * g.BanksPerRnk }

// CapacityBytes returns the addressable capacity.
func (g Geometry) CapacityBytes() uint64 {
	return uint64(g.Ranks) * uint64(g.BanksPerRnk) * uint64(g.Rows) * uint64(g.Cols) * uint64(g.LineBytes)
}

// Place identifies the physical location of one transaction.
type Place struct {
	Rank int
	Bank int
	Row  int
	Col  int
}

// BankIndex flattens (rank, bank) into [0, TotalBanks).
func (g Geometry) BankIndex(p Place) int { return p.Rank*g.BanksPerRnk + p.Bank }

// Map decomposes a line-aligned physical address using the DRAMSim2-style
// "scheme 7" ordering row:rank:bank:column:offset, which sends consecutive
// cache lines to consecutive columns of the same open row — the arrangement
// that rewards the spatial locality scientific traces exhibit.
func (g Geometry) Map(addr uint64) Place {
	a := addr / uint64(g.LineBytes)
	col := int(a % uint64(g.Cols))
	a /= uint64(g.Cols)
	bank := int(a % uint64(g.BanksPerRnk))
	a /= uint64(g.BanksPerRnk)
	rank := int(a % uint64(g.Ranks))
	a /= uint64(g.Ranks)
	row := int(a % uint64(g.Rows))
	return Place{Rank: rank, Bank: bank, Row: row, Col: col}
}
