// Command nvreport regenerates every table and figure of the paper's
// evaluation section in one run.  The instrumented app runs behind the
// exhibits fan out across a bounded worker pool (internal/runner); -jobs
// bounds the pool and -progress streams per-run wall time and reference
// throughput to stderr.  Parallel output is byte-identical to -jobs 1.
//
// The exhibit registry and report generator live in internal/experiments
// (Exhibits, Session.WriteReport); this command is the batch frontend and
// cmd/nvserved is the service frontend over the same generator.
//
// Usage:
//
//	nvreport                     # everything, calibrated scale
//	nvreport -scale 0.25         # faster, reduced problem sizes
//	nvreport -only table5,fig12  # a subset
//	nvreport -jobs 8             # bound the worker pool explicitly
//	nvreport -metrics m.json     # also dump the observability snapshot
//	nvreport -fault sink:every=50,seed=7   # seeded chaos run, degrades gracefully
//
// Exhibits: table1, table5, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, table6, fig12, placement.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/runner"
)

func main() { cli.Main("nvreport", run) }

// progressPrinter returns a runner progress callback writing one line per
// run start/completion; it is invoked from worker goroutines, so the
// writer is serialized with a mutex.
func progressPrinter(w io.Writer) func(runner.Event) {
	var mu sync.Mutex
	start := time.Now()
	return func(ev runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		elapsed := time.Since(start).Seconds()
		switch ev.Kind {
		case runner.EventStart:
			fmt.Fprintf(w, "[%7.2fs] %-28s started\n", elapsed, ev.Key)
		case runner.EventDone:
			mrefs := 0.0
			if ev.Wall > 0 {
				mrefs = float64(ev.Refs) / 1e6 / ev.Wall.Seconds()
			}
			fmt.Fprintf(w, "[%7.2fs] %-28s done in %.2fs (%.1fM refs/s)\n",
				elapsed, ev.Key, ev.Wall.Seconds(), mrefs)
		case runner.EventError:
			fmt.Fprintf(w, "[%7.2fs] %-28s failed after %.2fs: %v\n",
				elapsed, ev.Key, ev.Wall.Seconds(), ev.Err)
		}
	}
}

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvreport")
	scale := fs.Float64("scale", 1.0, "problem scale for every experiment")
	iters := fs.Int("iterations", 10, "main-loop iterations")
	only := fs.String("only", "", "comma-separated exhibit subset (e.g. table5,fig12)")
	jobs := fs.Int("jobs", 0, "maximum concurrent instrumented runs (0 = GOMAXPROCS)")
	parallel := fs.Bool("parallel", true, "deprecated: -parallel=false is shorthand for -jobs 1")
	progress := fs.Bool("progress", true, "stream per-run progress lines to stderr")
	outdir := fs.String("outdir", "", "also write each exhibit to <outdir>/<name>.txt")
	metricsOut := fs.String("metrics", "", "write the run's observability snapshot to this file (.json for JSON, text otherwise)")
	faultSpec := fs.String("fault", "", "chaos run: deterministic fault spec, e.g. sink:every=50,seed=7 or worker:prob=0.3,seed=9 (degrades gracefully)")
	retries := fs.Int("retries", 0, "re-execute a failed instrumented run up to this many attempts")
	sampleSpec := fs.String("sample", "", "seeded sampled tracing for every instrumented run, e.g. bernoulli:rate=64,seed=7 or bytes:rate=4096 (default: observe every reference)")
	shards := fs.Int("shards", 0, "split every instrumented run across this many deterministic shards (merged results are byte-identical to -shards 1; incompatible with -fault)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards > 1 && *faultSpec != "" {
		return fmt.Errorf("-shards and -fault are incompatible (fault injection targets the one live pipeline of a run)")
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	var onlyNames []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			onlyNames = append(onlyNames, strings.TrimSpace(name))
		}
	}

	j := *jobs
	if !*parallel {
		j = 1
	}
	sessOpts := []experiments.Option{
		experiments.WithScale(*scale),
		experiments.WithIterations(*iters),
		experiments.WithJobs(j),
	}
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		sessOpts = append(sessOpts, experiments.WithFaults(spec))
	}
	if *retries > 1 {
		sessOpts = append(sessOpts, experiments.WithRetry(*retries))
	}
	if *sampleSpec != "" {
		spec, err := memtrace.ParseSampleSpec(*sampleSpec)
		if err != nil {
			return err
		}
		sessOpts = append(sessOpts, experiments.WithSample(spec))
	}
	if *shards > 1 {
		sessOpts = append(sessOpts, experiments.WithShards(*shards))
	}
	if *progress {
		sessOpts = append(sessOpts, experiments.WithProgress(progressPrinter(os.Stderr)))
	}
	sess := experiments.NewSession(sessOpts...)
	start := time.Now()

	reportCfg := experiments.ReportConfig{Only: onlyNames, Now: time.Now}
	if *outdir != "" {
		dir := *outdir
		reportCfg.Tee = func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(dir, name+".txt"))
		}
	}
	if err := sess.WriteReport(out, reportCfg); err != nil {
		return err
	}

	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, sess.MetricsSnapshot()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nvreport: wrote metrics snapshot to %s\n", *metricsOut)
	}

	if *progress {
		m := sess.Metrics()
		if sum := m.WallSummary(); sum.Count() > 0 {
			elapsed := time.Since(start).Seconds()
			agg := 0.0
			if elapsed > 0 {
				agg = float64(m.TotalRefs()) / 1e6 / elapsed
			}
			fmt.Fprintf(os.Stderr,
				"nvreport: %d runs on %d workers in %.2fs (%d cache hits), run wall mean %.2fs max %.2fs, aggregate %.1fM refs/s\n",
				sum.Count(), sess.Jobs(), elapsed, m.Hits, sum.Mean(), sum.Max(), agg)
		}
	}
	return nil
}
