// Package obs is the pipeline's observability substrate: a small,
// dependency-free metrics registry holding named, labelled counters, gauges
// and fixed-bucket histograms.
//
// Every exhibit of the paper is only as trustworthy as the counters
// underneath it — §III-D justifies on-the-fly analysis precisely because
// counter fidelity beats trace post-processing — so the instrumentation
// health of a run (cache hit rates, run throughput, queue occupancy) is
// promoted to a first-class product that lands next to the exhibit it
// produced.  The simulators (cachesim, dramsim), the instrumentation
// substrate (memtrace), the experiment engine (runner) and the Session all
// publish into one Registry, and Snapshot renders the whole set to text or
// JSON deterministically (sorted by metric identity).
//
// Counters and histograms use atomic operations only, so hot paths and
// concurrent runner workers can increment without locks; Snapshot is safe
// to call concurrently with updates and observes each metric atomically.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value dimension attached to a metric.  Two metrics with
// the same name but different label sets are distinct series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesID renders the canonical identity of a series: the metric name with
// its labels sorted by key, e.g. `runner_hits_total{key=cam/fast}`.  The
// canonical form both deduplicates registration (same name+labels always
// return the same series) and fixes the snapshot order.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions; Set overwrites, so
// re-exporting a component's statistics is idempotent.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets.  Bucket i counts
// observations <= bounds[i] (and > bounds[i-1]); one overflow bucket counts
// the rest.  Sum and Count track the full distribution.
type Histogram struct {
	bounds []float64 // sorted upper bounds; immutable after construction
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// SecondsBuckets is the default latency bucket layout for wall-time
// histograms: 1 ms to 1 min, roughly logarithmic.
var SecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}

// Registry holds the metric series of one pipeline instance.  The zero
// value is not usable; construct with NewRegistry.  Registration
// (Counter/Gauge/Histogram) takes a lock; the returned series update
// lock-free, so hot loops should register once and hold the pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]metricMeta
}

type metricMeta struct {
	name   string
	labels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		meta:       map[string]metricMeta{},
	}
}

// Counter returns the counter series for name+labels, creating it on first
// use.  The same identity always returns the same *Counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
		r.meta[id] = metricMeta{name: name, labels: sortedLabels(labels)}
	}
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
		r.meta[id] = metricMeta{name: name, labels: sortedLabels(labels)}
	}
	return g
}

// Histogram returns the histogram series for name+labels, creating it with
// the given bucket upper bounds on first use (later calls ignore buckets,
// so every caller observes into the same layout).  Unsorted bounds are
// sorted; an empty bounds slice gets SecondsBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[id]
	if !ok {
		if len(bounds) == 0 {
			bounds = SecondsBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.histograms[id] = h
		r.meta[id] = metricMeta{name: name, labels: sortedLabels(labels)}
	}
	return h
}

// CounterValue is one counter series in a snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeValue is one gauge series in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// BucketValue is one cumulative histogram bucket: Count observations were
// <= UpperBound (+Inf is rendered as the JSON string "+Inf").
type BucketValue struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramValue is one histogram series in a snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Labels  []Label       `json:"labels,omitempty"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, ordered deterministically
// by series identity so that renderings are stable across runs and across
// worker-pool sizes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.  It is safe to call
// concurrently with metric updates: each series is read atomically, so the
// snapshot never observes a torn value (cross-series consistency is only as
// strong as the caller's own quiescence).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, id := range sortedKeys(r.counters) {
		m := r.meta[id]
		s.Counters = append(s.Counters, CounterValue{Name: m.name, Labels: m.labels, Value: r.counters[id].Value()})
	}
	for _, id := range sortedKeys(r.gauges) {
		m := r.meta[id]
		s.Gauges = append(s.Gauges, GaugeValue{Name: m.name, Labels: m.labels, Value: r.gauges[id].Value()})
	}
	for _, id := range sortedKeys(r.histograms) {
		m := r.meta[id]
		h := r.histograms[id]
		hv := HistogramValue{Name: m.name, Labels: m.labels, Count: h.Count(), Sum: h.Sum()}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, BucketValue{UpperBound: ub, Count: cum})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SeriesIDs returns every series identity in the snapshot, in snapshot
// order — the "field list" a determinism check compares across runs.
func (s Snapshot) SeriesIDs() []string {
	ids := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, c := range s.Counters {
		ids = append(ids, seriesID(c.Name, c.Labels))
	}
	for _, g := range s.Gauges {
		ids = append(ids, seriesID(g.Name, g.Labels))
	}
	for _, h := range s.Histograms {
		ids = append(ids, seriesID(h.Name, h.Labels))
	}
	return ids
}

// Counter returns the value of the named counter series (false if absent).
func (s Snapshot) Counter(name string, labels ...Label) (uint64, bool) {
	id := seriesID(name, labels)
	for _, c := range s.Counters {
		if seriesID(c.Name, c.Labels) == id {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge series (false if absent).
func (s Snapshot) Gauge(name string, labels ...Label) (float64, bool) {
	id := seriesID(name, labels)
	for _, g := range s.Gauges {
		if seriesID(g.Name, g.Labels) == id {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot as one line per series:
//
//	counter runner_hits_total{key=cam/fast} 3
//	gauge   cachesim_hit_ratio{app=gtc,level=L1} 0.9713
//	hist    runner_run_wall_seconds{key=gtc/fast} count=1 sum=0.0421 mean=0.0421
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", seriesID(c.Name, c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %s %g\n", seriesID(g.Name, g.Labels), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist    %s count=%d sum=%g mean=%g\n",
			seriesID(h.Name, h.Labels), h.Count, h.Sum, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" (bare JSON
// numbers cannot express infinities).
func (b BucketValue) MarshalJSON() ([]byte, error) {
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *BucketValue) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch v := raw.LE.(type) {
	case float64:
		b.UpperBound = v
	case string:
		b.UpperBound = math.Inf(1)
	default:
		return fmt.Errorf("obs: bad bucket bound %v", raw.LE)
	}
	return nil
}

// WriteJSON renders the snapshot with stable indentation.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
