package lint

import (
	"fmt"
	"os/exec"
	"strings"
)

// ChangedFiles returns the module-relative paths git reports as changed
// against base (committed changes plus the working tree), as a set
// matching Diagnostic.File.  It shells out to plain `git diff
// --name-only` so the lint gate needs nothing beyond the git binary that
// created the repository.
func ChangedFiles(root, base string) (map[string]bool, error) {
	out, err := exec.Command("git", "-C", root, "diff", "--name-only", base).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff --name-only %s: %s", base, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff --name-only %s: %w", base, err)
	}
	changed := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			changed[line] = true
		}
	}
	return changed, nil
}
