// Package runner is the concurrent experiment engine underneath
// internal/experiments: it schedules instrumentation runs across a bounded
// worker pool, deduplicates identical runs through a keyed single-flight
// cache, and emits run-level observability — per-run wall time,
// references/sec, cache hit/miss counters and an optional streaming
// progress callback.
//
// The paper's workflow is inherently a fan-out: every exhibit re-runs the
// instrumented applications over app × stack-mode × device-profile
// combinations, and §III-D runs the collection tools in parallel for
// exactly this reason.  The engine makes that fan-out explicit and shared:
// concurrent requests for the same run join one execution, different runs
// spread across the pool, and a cancelled context aborts the runs still
// queued.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/stats"
)

// Key identifies one memoizable run: the application, the tool mode
// (fast/slow stack attribution, power replay, latency sweep, ...), the
// problem scale and iteration count, and an optional device-profile or
// parameter tag.  Two requests with equal keys share one execution.
type Key struct {
	App        string
	Mode       string
	Scale      float64
	Iterations int
	Profile    string
}

// DefaultScale and DefaultIterations are the calibrated experiment
// defaults (scale 1.0, the paper's 10-iteration collection window).
// Key.String elides them so that default runs keep their short labels.
const (
	DefaultScale      = 1.0
	DefaultIterations = 10
)

// String renders the key the way progress lines and metric labels show it.
// Scale and Iterations are included when non-default, so sweeps that vary
// only the problem scale or the iteration count stay distinguishable in
// progress output and deduplicate correctly as registry labels.
func (k Key) String() string {
	s := k.App + "/" + k.Mode
	if k.Scale != 0 && k.Scale != DefaultScale {
		s += "@s" + strconv.FormatFloat(k.Scale, 'g', -1, 64)
	}
	if k.Iterations != 0 && k.Iterations != DefaultIterations {
		s += "@i" + strconv.Itoa(k.Iterations)
	}
	if k.Profile != "" {
		s += "/" + k.Profile
	}
	return s
}

// Func produces the value for one run.  refs reports how many memory
// references (or equivalent work units) the run observed; it feeds the
// references/sec metric.
type Func func(ctx context.Context) (value any, refs uint64, err error)

// EventKind classifies progress events.
type EventKind int

const (
	// EventStart fires when a run acquires a worker slot and begins.
	EventStart EventKind = iota
	// EventDone fires when a run completes successfully.
	EventDone
	// EventCached fires when a request is served from the cache or joins
	// an execution already in flight.
	EventCached
	// EventError fires when a run fails (including cancellation).
	EventError
)

// String names the kind for log lines.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventDone:
		return "done"
	case EventCached:
		return "cached"
	case EventError:
		return "error"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one progress notification.  The callback is invoked from worker
// goroutines and must be safe for concurrent use.
//
// Events are the engine's streamable progress contract: they marshal to a
// stable JSON wire form (see EventRecord) so consumers beyond the process —
// the nvserved jobs API streams them per job — read the same payloads a
// local callback sees.  Seq and Time make a stream self-describing: Seq is
// a per-engine monotonic sequence number (gaps never occur, so a consumer
// can detect a dropped event), and Time comes from the engine's injected
// clock (WithClock), so a fake clock yields byte-identical event streams.
type Event struct {
	Kind EventKind
	Key  Key
	// Seq is the engine-wide monotonic sequence number, starting at 1.
	Seq uint64
	// Time is the emission timestamp read from the engine's clock.
	Time time.Time
	// Wall is the run's execution time (EventDone and EventError).
	Wall time.Duration
	// Refs is the run's observed reference count (EventDone).
	Refs uint64
	// Err is the failure (EventError).
	Err error
}

// EventRecord is the versionless JSON wire form of an Event: every field
// is a plain serializable type, the kind is its String name and the key its
// canonical label, so streams are stable across releases of the internal
// structs.  It is the line format of the jobs API's event stream.
type EventRecord struct {
	Kind string    `json:"kind"`
	Key  string    `json:"key"`
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// WallSeconds is the run's execution time (done and error events).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Refs is the run's observed reference count (done events).
	Refs uint64 `json:"refs,omitempty"`
	// Error carries the failure message (error events).
	Error string `json:"error,omitempty"`
}

// Record converts the event to its wire form.
func (ev Event) Record() EventRecord {
	rec := EventRecord{
		Kind:        ev.Kind.String(),
		Key:         ev.Key.String(),
		Seq:         ev.Seq,
		Time:        ev.Time,
		WallSeconds: ev.Wall.Seconds(),
		Refs:        ev.Refs,
	}
	if ev.Err != nil {
		rec.Error = ev.Err.Error()
	}
	return rec
}

// MarshalJSON renders the event's wire form.
func (ev Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(ev.Record())
}

// RunMetrics records one executed (non-cached) run.
type RunMetrics struct {
	Key  Key
	Wall time.Duration
	Refs uint64
}

// RefsPerSec is the run's observed reference throughput.
func (r RunMetrics) RefsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Refs) / r.Wall.Seconds()
}

// Metrics is a snapshot of the engine's counters.
type Metrics struct {
	// Hits counts requests served from the cache or that joined an
	// in-flight execution which then succeeded; Misses counts requests
	// that triggered an execution; Errors counts executions that failed
	// (failures are not cached, so a later request retries).
	Hits, Misses, Errors uint64
	// JoinedFailures counts requests that joined an in-flight execution
	// which then failed.  They are deliberately not Hits: the waiter
	// received an error, not a cached value.
	JoinedFailures uint64
	// Runs holds the per-run records in completion order.
	Runs []RunMetrics
}

// TotalRefs sums the observed references across all completed runs.
func (m Metrics) TotalRefs() uint64 {
	var sum uint64
	for _, r := range m.Runs {
		sum += r.Refs
	}
	return sum
}

// WallSummary aggregates the per-run wall times (seconds).
func (m Metrics) WallSummary() stats.Summary {
	var s stats.Summary
	for _, r := range m.Runs {
		s.Add(r.Wall.Seconds())
	}
	return s
}

// Cache is the keyed single-flight run store.  It used to be private to
// one Engine; extracting it lets independent engines — one per submitted
// job in the nvserved daemon, each with its own context, progress stream
// and retry policy — share one set of memoized runs, so concurrent clients
// requesting the same run still trigger exactly one execution.
//
// A Cache is safe for concurrent use by any number of engines.  Failed
// executions are removed, so a later request retries; values are stored
// forever (runs are deterministic, so a cached value never goes stale).
type Cache struct {
	mu sync.Mutex
	m  map[Key]*entry
}

// NewCache returns an empty run cache.
func NewCache() *Cache { return &Cache{m: map[Key]*entry{}} }

// Len returns the number of cached or in-flight entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Config configures an Engine.
type Config struct {
	// Jobs bounds concurrently executing runs; <= 0 selects GOMAXPROCS.
	Jobs int
	// Progress optionally receives streaming events.  It is called from
	// worker goroutines and must be safe for concurrent use.
	Progress func(Event)
	// Metrics is the registry the engine publishes its counters and
	// per-run wall-time histograms into.  Nil gets a private registry;
	// pass a shared one (the Session's) to aggregate across components.
	Metrics *obs.Registry
	// Cache is the single-flight run store.  Nil gets a private cache;
	// pass a shared one so several engines (concurrent service jobs)
	// deduplicate runs across engine instances.
	Cache *Cache
	// Retry is the per-run retry policy: a failed (or panicked) run is
	// re-executed up to the policy's attempt bound before the error is
	// reported.  Cancelled runs are never retried.  The zero value keeps
	// the engine's historical run-once behaviour.
	Retry resilience.RetryPolicy
}

// Option adjusts an Engine beyond its Config.
type Option func(*Engine)

// WithClock overrides the engine's wall clock (default time.Now).  The
// clock only feeds the per-run wall metrics — run results never depend on
// it — so tests can assert exact wall histograms under a stepped fake
// clock, and the determinism lint allowlist shrinks to the single default
// site in New.
func WithClock(now func() time.Time) Option {
	return func(e *Engine) {
		if now != nil {
			e.now = now
		}
	}
}

// Engine executes keyed runs on a bounded worker pool with single-flight
// memoization.  The zero value is not usable; construct with New.
type Engine struct {
	cfg Config
	sem chan struct{}
	reg *obs.Registry
	now func() time.Time
	seq atomic.Uint64

	// Engine-level counters live in the registry so that worker
	// goroutines update them lock-free and snapshots see them next to
	// the simulators' counters.
	hits     *obs.Counter
	misses   *obs.Counter
	errs     *obs.Counter
	joinErrs *obs.Counter
	retries  *obs.Counter
	panics   *obs.Counter

	cache *Cache

	mu   sync.Mutex
	runs []RunMetrics
}

type entry struct {
	done  chan struct{}
	value any
	err   error
}

// New returns an Engine with the given configuration.
func New(cfg Config, opts ...Option) *Engine {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache()
	}
	e := &Engine{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Jobs),
		reg:      reg,
		now:      time.Now,
		hits:     reg.Counter("runner_hits_total"),
		misses:   reg.Counter("runner_misses_total"),
		errs:     reg.Counter("runner_errors_total"),
		joinErrs: reg.Counter("runner_joined_failures_total"),
		retries:  reg.Counter("runner_retries_total"),
		panics:   reg.Counter("runner_panics_recovered_total"),
		cache:    cache,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Registry returns the registry the engine publishes into.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Jobs returns the worker-pool bound.
func (e *Engine) Jobs() int { return e.cfg.Jobs }

// Do returns the value for key, executing fn on a worker slot if no
// execution of the same key is cached or in flight; otherwise the call
// joins the existing execution and returns its result.  A failed
// execution (including cancellation) is not cached, so a later Do with
// the same key retries.  Waiters honor their own context: a caller whose
// ctx is cancelled unblocks immediately, while the execution it joined
// continues for the remaining waiters.
func (e *Engine) Do(ctx context.Context, key Key, fn Func) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := e.cache
	c.mu.Lock()
	if ent, ok := c.m[key]; ok {
		c.mu.Unlock()
		// A join is only a cache hit once the execution it joined
		// resolves successfully; emitting EventCached on entry would
		// report "cached" for runs that actually failed.
		select {
		case <-ent.done:
			if ent.err != nil {
				e.joinErrs.Inc()
				return nil, ent.err
			}
			e.hits.Inc()
			e.emit(Event{Kind: EventCached, Key: key, Time: e.now()})
			return ent.value, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &entry{done: make(chan struct{})}
	c.m[key] = ent
	e.misses.Inc()
	c.mu.Unlock()

	ent.value, ent.err = e.execute(ctx, key, fn)
	if ent.err != nil {
		c.mu.Lock()
		if c.m[key] == ent {
			delete(c.m, key)
		}
		c.mu.Unlock()
		e.errs.Inc()
	}
	close(ent.done)
	return ent.value, ent.err
}

func (e *Engine) execute(ctx context.Context, key Key, fn Func) (any, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := e.now()
	e.emit(Event{Kind: EventStart, Key: key, Time: start})
	v, refs, err := e.attempt(ctx, fn)
	// Retry transient failures per the engine policy.  Cancellation is
	// never transient, and events fire only for the final outcome so
	// progress consumers see one verdict per run.
	for i := 0; err != nil && i+1 < e.cfg.Retry.MaxAttempts(); i++ {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		e.retries.Inc()
		e.cfg.Retry.Wait(i)
		v, refs, err = e.attempt(ctx, fn)
	}
	end := e.now()
	wall := end.Sub(start)
	if err != nil {
		e.emit(Event{Kind: EventError, Key: key, Time: end, Wall: wall, Err: err})
		return nil, fmt.Errorf("runner: %s: %w", key, err)
	}
	e.mu.Lock()
	e.runs = append(e.runs, RunMetrics{Key: key, Wall: wall, Refs: refs})
	e.mu.Unlock()
	e.reg.Counter("runner_runs_total").Inc()
	e.reg.Counter("runner_refs_total").Add(refs)
	e.reg.Histogram("runner_run_wall_seconds", obs.SecondsBuckets,
		obs.L("key", key.String())).Observe(wall.Seconds())
	e.emit(Event{Kind: EventDone, Key: key, Time: end, Wall: wall, Refs: refs})
	return v, nil
}

// attempt executes fn once, containing a worker panic to this run: the
// panic surfaces as a *resilience.PanicError instead of killing the whole
// parallel sweep.  memtrace's invariant assertions still panic at their
// site; this is where the engine absorbs them.
func (e *Engine) attempt(ctx context.Context, fn Func) (v any, refs uint64, err error) {
	err = resilience.Recover(func() error {
		var ferr error
		v, refs, ferr = fn(ctx)
		return ferr
	})
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		v, refs = nil, 0
		e.panics.Inc()
	}
	return v, refs, err
}

// emit stamps the event with the engine's next sequence number and hands it
// to the progress callback.  Seq advances even without a subscriber, so a
// consumer attached mid-run still sees strictly increasing numbers.
func (e *Engine) emit(ev Event) {
	ev.Seq = e.seq.Add(1)
	if e.cfg.Progress != nil {
		e.cfg.Progress(ev)
	}
}

// Metrics returns a snapshot of the engine's counters and per-run records.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Metrics{
		Hits:           e.hits.Value(),
		Misses:         e.misses.Value(),
		Errors:         e.errs.Value(),
		JoinedFailures: e.joinErrs.Value(),
		Runs:           append([]RunMetrics(nil), e.runs...),
	}
}

// Collect applies f to every item concurrently and returns the results in
// input order.  The first failure cancels the context handed to the
// remaining calls; after all of them finish, every non-cancellation error
// is reported — a sibling that fails for its own reason after the first
// cancellation is joined into the returned error, not silently lost.
// Result order — and therefore any report built from it — is independent
// of scheduling.
func Collect[K, T any](ctx context.Context, items []K, f func(ctx context.Context, item K) (T, error)) ([]T, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i, item := range items {
		wg.Add(1)
		go func(i int, item K) {
			defer wg.Done()
			v, err := f(cctx, item)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			out[i] = v
		}(i, item)
	}
	wg.Wait()
	real := realErrors(errs)
	switch len(real) {
	case 0:
		// All failures (if any) were cancellations — either the parent
		// context died or a sibling's cancel raced a context error ahead
		// of the real failure; report the first of them.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case 1:
		// Preserve the error's identity when there is only one, so
		// callers matching with errors.Is/As see it unwrapped.
		return nil, real[0]
	default:
		return nil, errors.Join(real...)
	}
}

// CollectPartial applies f to every item concurrently *without* sibling
// cancellation: a failed item does not abort the rest.  It returns the
// results and a parallel error slice, both in input order (failed indexes
// hold T's zero value).  The degraded-sweep path of the experiment session
// uses this to keep every healthy app's exhibits when one app crashes.
func CollectPartial[K, T any](ctx context.Context, items []K, f func(ctx context.Context, item K) (T, error)) ([]T, []error) {
	out := make([]T, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i, item := range items {
		wg.Add(1)
		go func(i int, item K) {
			defer wg.Done()
			out[i], errs[i] = f(ctx, item)
		}(i, item)
	}
	wg.Wait()
	return out, errs
}

// realErrors filters a per-item error slice down to the failures that are
// not context cancellations, preserving input order.
func realErrors(errs []error) []error {
	var real []error
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		real = append(real, err)
	}
	return real
}
