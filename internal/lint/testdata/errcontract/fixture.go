// Package fixture exercises every errcontract finding.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

// open discards errors three ways and wraps with the wrong verb.
func open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fixture: open: %v", err) // %v wrap of an error
	}
	f.Close()     // bare call discards the error
	_ = f.Close() // explicit discard
	return nil
}

// boom panics outside the sanctioned contexts.
func boom() {
	panic("fixture: unreachable")
}

// MustOpen may panic: Must* constructors are the sanctioned escape hatch.
func MustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	return f
}

// report writes into an in-memory builder, which never fails.
func report(w *strings.Builder) {
	w.WriteString("ok")
}

var _ = open
var _ = boom
var _ = report
