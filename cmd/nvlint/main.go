// Command nvlint runs the repository's project-native static-analysis
// passes (internal/lint) over package patterns: determinism, metricname,
// errcontract and stickysink.  It is the source-level gate behind the
// repo's headline invariants — byte-identical reports at any -jobs count,
// replayable fault schedules, and the sticky-error sink contract.
//
// Usage:
//
//	nvlint ./...                        # everything, all passes
//	nvlint -passes determinism ./...    # a subset of passes
//	nvlint -json ./internal/trace       # machine-readable diagnostics
//	nvlint -diff main ./...             # only findings in files changed vs a ref
//	nvlint -stats ./...                 # per-pass wall time and finding counts
//	nvlint -list                        # describe the registered passes
//
// Diagnostics print one per line as file:line:col: [pass] message; the
// exit status is non-zero when any finding survives suppression.  Findings
// are suppressed at the site with `//nvlint:ignore <pass> <reason>` on the
// same or preceding line.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/lint"
)

func main() { cli.Main("nvlint", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvlint")
	passes := fs.String("passes", "", "comma-separated pass subset (default: all of "+strings.Join(lint.PassNames(), ", ")+")")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	list := fs.Bool("list", false, "list the registered passes and exit")
	diff := fs.String("diff", "", "restrict findings to files changed vs this git ref (git diff --name-only)")
	stats := fs.Bool("stats", false, "print per-pass wall time and finding counts after the diagnostics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		t := cli.NewTable(out)
		for _, name := range lint.PassNames() {
			t.Row(name, lint.PassDoc(name))
		}
		return t.Flush()
	}

	var names []string
	if *passes != "" {
		for _, name := range strings.Split(*passes, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	suite, err := lint.NewSuite(names...)
	if err != nil {
		return err
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(cwd, fs.Args()...)
	if err != nil {
		return err
	}

	diags, passStats := suite.RunStats(pkgs)
	if *diff != "" {
		changed, err := lint.ChangedFiles(loader.Root, *diff)
		if err != nil {
			return err
		}
		kept := diags[:0]
		for _, d := range diags {
			if changed[d.File] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			if _, err := fmt.Fprintln(out, d); err != nil {
				return err
			}
		}
	}
	if *stats {
		t := cli.NewTable(out)
		for _, s := range passStats {
			t.Row(s.Name, s.Duration.Round(time.Microsecond).String(), fmt.Sprintf("%d finding(s)", s.Findings))
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d finding(s) in %d package(s)", n, len(pkgs))
	}
	return nil
}
