package served

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/runner"
)

// fixedClock pins the report's generated-timestamp line so served report
// bytes are fully deterministic.
func fixedClock() func() time.Time {
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time { return at }
}

// stripTimestamp drops the generated-at line, the one part of a report
// that varies run to run — the same normalization the nvreport golden
// test applies.
func stripTimestamp(text string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "generated ") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// postJob submits a spec and returns the decoded result and status code.
func postJob(t *testing.T, ts *httptest.Server, spec string) (experiments.JobResult, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.JobResult
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("decoding submit response %q: %v", body, err)
		}
	}
	return res, resp.StatusCode
}

// get fetches a path and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// await blocks until the job with the given ID is terminal.
func await(t *testing.T, m *Manager, id string) experiments.JobResult {
	t.Helper()
	job, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s did not finish: %v", id, err)
	}
	return res
}

// TestServedReportMatchesCLIGolden is the cross-frontend determinism
// acceptance test: the report served over HTTP must match the pinned CLI
// golden byte for byte (modulo the stripped timestamp line), and a jobs=4
// submission must serve the exact same bytes as jobs=1 — the jobs-1-vs-N
// contract extended through the HTTP layer.
func TestServedReportMatchesCLIGolden(t *testing.T) {
	m := NewManager(Config{Clock: fixedClock()})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	res1, code := postJob(t, ts, `{"scale":0.05,"iterations":3,"jobs":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if res1.SchemaVersion != experiments.SchemaVersion || res1.ID == "" {
		t.Fatalf("submit response = %+v", res1)
	}
	final := await(t, m, res1.ID)
	if final.State != experiments.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}

	code, body1 := get(t, ts, "/jobs/"+res1.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report status = %d: %s", code, body1)
	}
	golden, err := os.ReadFile("../../cmd/nvreport/testdata/golden_report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripTimestamp(string(body1)), stripTimestamp(string(golden)); got != want {
		t.Errorf("served report differs from CLI golden (served %d bytes, golden %d bytes)",
			len(got), len(want))
	}

	// Same experiment at jobs=4: byte-identical including the timestamp
	// line (fixed clock), served entirely from the shared run cache.
	res2, code := postJob(t, ts, `{"scale":0.05,"iterations":3,"jobs":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status = %d", code)
	}
	if got := await(t, m, res2.ID); got.State != experiments.StateDone {
		t.Fatalf("second job state = %s (%s)", got.State, got.Error)
	}
	code, body2 := get(t, ts, "/jobs/"+res2.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("second report status = %d", code)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("jobs=1 and jobs=4 served reports differ")
	}

	// The second job's runs must all have come from the shared cache.
	snap := m.Registry().Snapshot()
	misses, _ := snap.Counter("runner_misses_total")
	hits, _ := snap.Counter("runner_hits_total")
	if hits == 0 {
		t.Error("second job produced no cache hits")
	}
	if misses == 0 {
		t.Error("no cache misses recorded at all")
	}
	if runs, _ := snap.Counter("runner_runs_total"); runs != misses {
		t.Errorf("runs = %d but misses = %d: some run executed twice", runs, misses)
	}
}

// TestSubmitValidation: malformed and invalid specs are rejected with 400
// before any work is queued.
func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Error(err)
		}
	})

	for _, spec := range []string{
		`{not json`,
		`{"scale":-1}`,
		`{"apps":["nosuchapp"]}`,
		`{"exhibits":["fig99"]}`,
		`{"mode":"turbo"}`,
		`{"fault":"sink:bogus=1"}`,
		`{"schema_version":99}`,
		`{"unknown_field":1}`,
	} {
		if _, code := postJob(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s: status = %d, want 400", spec, code)
		}
	}
	if len(m.Jobs()) != 0 {
		t.Errorf("rejected specs left %d jobs behind", len(m.Jobs()))
	}
}

// TestQueueBackpressure: with one worker held and a one-slot queue, the
// next submission must be rejected with 429 and must not register a job.
func TestQueueBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, Queue: 1, Metrics: reg})
	m.beforeRun = func(j *Job) {
		select {
		case <-gate:
		case <-j.ctx.Done():
		}
	}
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	quick := `{"exhibits":["table1"],"scale":0.05,"iterations":2}`
	a, code := postJob(t, ts, quick)
	if code != http.StatusAccepted {
		t.Fatalf("job A status = %d", code)
	}
	jobA, err := m.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return jobA.State() == experiments.StateRunning })

	b, code := postJob(t, ts, quick)
	if code != http.StatusAccepted {
		t.Fatalf("job B status = %d", code)
	}
	if _, code := postJob(t, ts, quick); code != http.StatusTooManyRequests {
		t.Fatalf("job C status = %d, want 429", code)
	}

	close(gate)
	for _, id := range []string{a.ID, b.ID} {
		if res := await(t, m, id); res.State != experiments.StateDone {
			t.Errorf("job %s state = %s (%s)", id, res.State, res.Error)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("served_jobs_rejected_total"); v != 1 {
		t.Errorf("served_jobs_rejected_total = %d, want 1", v)
	}
	if v, _ := snap.Counter("served_jobs_submitted_total"); v != 2 {
		t.Errorf("served_jobs_submitted_total = %d, want 2", v)
	}
	if len(m.Jobs()) != 2 {
		t.Errorf("job list length = %d, want 2", len(m.Jobs()))
	}
}

// TestCancel covers both cancellation paths over HTTP: a queued job turns
// terminal immediately; a running job is cancelled at its next context
// check and finishes as cancelled.
func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, Queue: 4})
	m.beforeRun = func(j *Job) {
		select {
		case <-gate:
		case <-j.ctx.Done():
		}
	}
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	quick := `{"exhibits":["table1"],"scale":0.05,"iterations":2}`
	a, _ := postJob(t, ts, quick)
	jobA, err := m.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return jobA.State() == experiments.StateRunning })
	b, _ := postJob(t, ts, quick)

	// Cancel the queued job: terminal at once, report gone.
	resp, err := http.Post(ts.URL+"/jobs/"+b.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued status = %d", resp.StatusCode)
	}
	if res := await(t, m, b.ID); res.State != experiments.StateCancelled {
		t.Errorf("queued job after cancel = %s", res.State)
	}
	if code, _ := get(t, ts, "/jobs/"+b.ID+"/report"); code != http.StatusGone {
		t.Errorf("cancelled job report status = %d, want 410", code)
	}

	// Cancel the running job mid-run, then release the worker.
	resp, err = http.Post(ts.URL+"/jobs/"+a.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if res := await(t, m, a.ID); res.State != experiments.StateCancelled {
		t.Errorf("running job after cancel = %s (%s)", res.State, res.Error)
	}

	// Cancelling an unknown job 404s.
	resp, err = http.Post(ts.URL+"/jobs/job-999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown status = %d, want 404", resp.StatusCode)
	}
}

// TestEventsStream reads the NDJSON progress stream end to end: every
// line is a well-formed runner.EventRecord, sequence numbers increase
// strictly, timestamps come from the injected clock, and the stream
// terminates once the job is done.
func TestEventsStream(t *testing.T) {
	m := NewManager(Config{Clock: fixedClock()})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	res, code := postJob(t, ts, `{"exhibits":["table5"],"scale":0.05,"iterations":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + res.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}

	var events []runner.EventRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev runner.EventRecord
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	kinds := map[string]int{}
	lastSeq := uint64(0)
	for i, ev := range events {
		kinds[ev.Kind]++
		if ev.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if !ev.Time.Equal(fixedClock()()) {
			t.Errorf("event %d: time %v not from the injected clock", i, ev.Time)
		}
	}
	if kinds["start"] == 0 || kinds["done"] == 0 {
		t.Errorf("stream missing start/done events: %v", kinds)
	}
	if res := await(t, m, res.ID); res.State != experiments.StateDone {
		t.Fatalf("job state = %s", res.State)
	}

	// Resuming from an offset skips the already-seen prefix.
	code, body := get(t, ts, "/jobs/"+res.ID+"/events?after="+fmt.Sprint(len(events)-1))
	if code != http.StatusOK {
		t.Fatalf("resumed events status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Errorf("resume after %d returned %d lines, want 1", len(events)-1, len(lines))
	}
	if code, _ := get(t, ts, "/jobs/"+res.ID+"/events?after=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad after value status = %d, want 400", code)
	}
}

// TestDrainGraceful: drain with a generous deadline lets queued and
// running jobs finish, flushes their states, and permanently stops intake
// with 503.
func TestDrainGraceful(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Workers: 1, Metrics: reg})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	quick := `{"exhibits":["table1"],"scale":0.05,"iterations":2}`
	a, _ := postJob(t, ts, quick)
	b, _ := postJob(t, ts, quick)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		job, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State() != experiments.StateDone {
			t.Errorf("job %s after drain = %s", id, job.State())
		}
	}
	if _, code := postJob(t, ts, quick); code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain status = %d, want 503", code)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("served_jobs_finished_total"); v != 2 {
		t.Errorf("served_jobs_finished_total = %d, want 2", v)
	}
	if v, _ := snap.Gauge("served_queue_depth"); v != 0 {
		t.Errorf("served_queue_depth after drain = %v, want 0", v)
	}
}

// TestDrainDeadline: a drain whose deadline expires cancels the jobs
// still in flight instead of hanging.
func TestDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := NewManager(Config{Workers: 1})
	m.beforeRun = func(j *Job) {
		select {
		case <-gate:
		case <-j.ctx.Done():
		}
	}
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	quick := `{"exhibits":["table1"],"scale":0.05,"iterations":2}`
	a, _ := postJob(t, ts, quick)
	jobA, err := m.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return jobA.State() == experiments.StateRunning })
	b, _ := postJob(t, ts, quick)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err == nil {
		t.Fatal("deadline-forced drain must report the context error")
	}
	for _, id := range []string{a.ID, b.ID} {
		job, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State() != experiments.StateCancelled {
			t.Errorf("job %s after forced drain = %s", id, job.State())
		}
	}
}

// TestMetricsEndpoint: /metrics serves the shared registry in both
// renderings, including the served_* series and the runner counters the
// job sessions published into it.
func TestMetricsEndpoint(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	res, _ := postJob(t, ts, `{"exhibits":["table1"],"scale":0.05,"iterations":2}`)
	if got := await(t, m, res.ID); got.State != experiments.StateDone {
		t.Fatalf("job state = %s", got.State)
	}

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"served_jobs_submitted_total",
		"served_jobs_finished_total",
		"served_requests_total",
		"runner_runs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %s", want)
		}
	}

	code, body = get(t, ts, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("metrics json status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics json did not parse: %v", err)
	}

	code, body = get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d %q", code, body)
	}
	var health struct {
		Status    string           `json:"status"`
		Recovered bool             `json:"recovered"`
		Recovery  *json.RawMessage `json:"recovery"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz did not parse: %v (%q)", err, body)
	}
	if health.Status != "ok" || health.Recovered || health.Recovery != nil {
		t.Errorf("healthz = %+v, want status ok and no recovery for an in-memory manager", health)
	}
}

// TestChaosResponseWriter: a writer-target fault spec on the manager
// attacks the serving path itself — the response write fails and the
// failure is counted, not swallowed.
func TestChaosResponseWriter(t *testing.T) {
	spec, err := faults.Parse("writer:every=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := NewManager(Config{Metrics: reg, Fault: spec})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	if code, _ := get(t, ts, "/metrics"); code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	if v, _ := reg.Snapshot().Counter("served_response_errors_total"); v == 0 {
		t.Error("injected writer fault was not counted")
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
