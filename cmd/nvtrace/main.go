// Command nvtrace inspects and converts binary memory-trace files (the
// format cmd/nvpower captures and replays, plain or gzip-compressed).
//
// Usage:
//
//	nvtrace -stat mem.trc            # summary: kind, records, r/w mix, span
//	nvtrace -head 10 mem.trc         # print the first N records
//	nvtrace -convert mem.trc.gz mem.trc   # recompress / decompress by suffix
//	nvtrace -stat -metrics m.txt mem.trc  # also dump the record counters
package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/trace"
)

// readBatched decodes a trace file in batches and flushes each batch into
// the given stages, so file tooling moves records with the same batched
// cadence (and pipeline stage metrics) as the live simulators.
func readBatched(r *trace.Reader, accesses pipeline.Stage[trace.Access], txs pipeline.Stage[trace.Transaction]) error {
	if r.Kind() == trace.KindAccess {
		batch := make([]trace.Access, 0, trace.DefaultTxBufferSize)
		for {
			a, err := r.ReadAccess()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			batch = append(batch, a)
			if len(batch) == cap(batch) {
				if err := accesses.Flush(batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			return accesses.Flush(batch)
		}
		return nil
	}
	batch := make([]trace.Transaction, 0, trace.DefaultTxBufferSize)
	for {
		t, err := r.ReadTransaction()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, t)
		if len(batch) == cap(batch) {
			if err := txs.Flush(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		return txs.Flush(batch)
	}
	return nil
}

func main() { cli.Main("nvtrace", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvtrace")
	stat := fs.Bool("stat", false, "print a summary of the trace")
	head := fs.Int("head", 0, "print the first N records")
	convert := fs.Bool("convert", false, "convert between plain and gzip (two file args; .gz suffix selects compression)")
	metricsOut := fs.String("metrics", "", "write the record counters to this file (.json for JSON, text otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	reg := obs.NewRegistry()
	var err error
	switch {
	case *convert:
		if len(files) != 2 {
			return fmt.Errorf("-convert needs input and output paths")
		}
		err = convertTrace(files[0], files[1], reg, out)
	case *stat || *head > 0:
		if len(files) != 1 {
			return fmt.Errorf("need exactly one trace file")
		}
		err = inspect(files[0], *stat, *head, reg, out)
	default:
		fs.Usage()
		return fmt.Errorf("need -stat, -head or -convert")
	}
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, reg.Snapshot()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	return nil
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, nil, errors.Join(err, cerr)
		}
		return nil, nil, err
	}
	return r, f, nil
}

func inspect(path string, stat bool, head int, reg *obs.Registry, out io.Writer) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close() //nvlint:ignore errcontract read-only trace file; close cannot lose data

	kind := "transaction"
	if r.Kind() == trace.KindAccess {
		kind = "access"
	}
	fmt.Fprintf(out, "%s: %s trace\n", path, kind)

	var records, writes uint64
	var minAddr, maxAddr uint64
	minAddr = ^uint64(0)
	i := 0
	account := func(addr uint64, isWrite bool, extra string) {
		if head > 0 && i < head {
			op := "R"
			if isWrite {
				op = "W"
			}
			fmt.Fprintf(out, "%8d  %s %#014x%s\n", i, op, addr, extra)
		}
		i++
		records++
		if isWrite {
			writes++
		}
		if addr < minAddr {
			minAddr = addr
		}
		if addr > maxAddr {
			maxAddr = addr
		}
	}
	ls := []obs.Label{obs.L("trace", path), obs.L("kind", kind)}
	err = readBatched(r,
		pipeline.Counted[trace.Access](reg, "inspect", pipeline.StageFunc[trace.Access](func(batch []trace.Access) error {
			for _, a := range batch {
				account(a.Addr, a.IsWrite(), fmt.Sprintf("  size %d", a.Size))
			}
			return nil
		}), ls...),
		pipeline.Counted[trace.Transaction](reg, "inspect", pipeline.StageFunc[trace.Transaction](func(batch []trace.Transaction) error {
			for _, t := range batch {
				account(t.Addr, t.Write, fmt.Sprintf("  cycle %d", t.Cycle))
			}
			return nil
		}), ls...))
	if err != nil {
		return err
	}
	if stat {
		fmt.Fprintf(out, "records: %d (%d reads, %d writes", records, records-writes, writes)
		if records > 0 {
			fmt.Fprintf(out, ", %.1f%% writes", float64(writes)/float64(records)*100)
		}
		fmt.Fprintln(out, ")")
		if records > 0 {
			fmt.Fprintf(out, "address span: [%#x, %#x] (%.1f MB)\n",
				minAddr, maxAddr, float64(maxAddr-minAddr)/(1<<20))
		}
	}
	reg.Gauge("nvtrace_records", ls...).Set(float64(records))
	reg.Gauge("nvtrace_reads", ls...).Set(float64(records - writes))
	reg.Gauge("nvtrace_writes", ls...).Set(float64(writes))
	if records > 0 {
		reg.Gauge("nvtrace_address_span_bytes", ls...).Set(float64(maxAddr - minAddr))
	}
	return nil
}

func convertTrace(src, dst string, reg *obs.Registry, out io.Writer) error {
	r, f, err := openTrace(src)
	if err != nil {
		return err
	}
	defer f.Close() //nvlint:ignore errcontract read-only trace file; close cannot lose data

	o, err := os.Create(dst)
	if err != nil {
		return err
	}
	var w *trace.Writer
	gz := strings.HasSuffix(dst, ".gz")
	switch {
	case r.Kind() == trace.KindAccess && gz:
		w = trace.NewCompressedAccessWriter(o)
	case r.Kind() == trace.KindAccess:
		w = trace.NewAccessWriter(o)
	case gz:
		w = trace.NewCompressedTransactionWriter(o)
	default:
		w = trace.NewTransactionWriter(o)
	}

	// The writer terminates both batched stage chains (trace.Writer is a
	// Sink and a TxSink); only the stream's kind runs.
	ls := []obs.Label{obs.L("src", src), obs.L("dst", dst)}
	werr := readBatched(r,
		pipeline.Counted[trace.Access](reg, "convert", pipeline.Stage[trace.Access](w), ls...),
		pipeline.Counted[trace.Transaction](reg, "convert", pipeline.TxStage(w), ls...))
	if werr == nil {
		werr = w.Close()
	}
	cerr := o.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	n := w.Count()
	reg.Gauge("nvtrace_converted_records", ls...).Set(float64(n))
	fmt.Fprintf(out, "converted %d records: %s -> %s\n", n, src, dst)
	return nil
}
