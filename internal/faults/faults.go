// Package faults is the deterministic fault injector for chaos runs: it
// wraps the simulator's existing contracts — trace sinks, pipeline stages,
// writers and run functions — with decorators that fail every Nth call or
// with a seeded probability.
//
// Determinism is the design constraint.  The paper's experiments are pinned
// byte-for-byte by golden reports, and the whole point of injecting faults
// into them is to check that *degraded* output is just as reproducible: the
// same fault spec must fail the same flushes and the same apps whether the
// sweep runs at jobs=1 or jobs=4.  So nothing here consults the wall clock
// or a global random source.  Count-based injection keeps a per-wrapped-
// instance call counter; probabilistic injection derives an xorshift stream
// from the configured seed (and, for workers, from the run key), so every
// decision is a pure function of configuration and per-instance call
// sequence — never of goroutine scheduling.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
	"nvscavenger/internal/trace"
)

// Fault targets: which layer of the stack a Spec attacks.
const (
	// TargetSink attacks the post-cache transaction sinks (TxSink).
	TargetSink = "sink"
	// TargetAccess attacks the raw access stream (Sink / access taps).
	TargetAccess = "access"
	// TargetPerf attacks the performance-event stream (PerfSink).
	TargetPerf = "perf"
	// TargetWriter attacks io.Writer trace outputs.
	TargetWriter = "writer"
	// TargetWorker attacks whole runs (runner.Func): the run returns an
	// error, or panics when the spec's mode is "panic".
	TargetWorker = "worker"
)

var validTargets = map[string]bool{
	TargetSink:   true,
	TargetAccess: true,
	TargetPerf:   true,
	TargetWriter: true,
	TargetWorker: true,
}

// ErrInjected is the base error every injected fault wraps; test with
// errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// ErrNoSpace is the disk-full shape of a short write: the error a
// mode=short writer fault wraps alongside ErrInjected, mirroring ENOSPC
// so callers can exercise their out-of-space handling.
var ErrNoSpace = errors.New("no space left on device")

// Fault modes: how a tripped fault manifests.  The zero value ("",
// spelled mode=error in specs) returns an injected error.
const (
	// ModePanic makes worker faults panic instead of returning an error.
	ModePanic = "panic"
	// ModeShort makes writer faults write a prefix of the buffer and then
	// fail with an ErrNoSpace-wrapped error — the disk-full shape.
	ModeShort = "short"
	// ModeTorn makes writer faults write a prefix of the buffer and
	// silently drop the rest while reporting full success — the
	// torn-record shape of a crash mid-write, visible only on recovery.
	ModeTorn = "torn"
)

// Spec is a parsed fault specification.  The zero value injects nothing.
type Spec struct {
	// Target names the attacked layer (Target* constants).
	Target string
	// Every trips the fault on every Nth call (1 = every call).
	Every uint64
	// Prob trips the fault on each call with this seeded probability
	// (0 < Prob <= 1).  Exactly one of Every/Prob must be set.
	Prob float64
	// Seed drives the probabilistic stream and the per-key worker
	// decision.  Defaults to 1 so "prob=0.5" alone is valid.
	Seed uint64
	// Mode selects how a tripped fault manifests (Mode* constants);
	// empty is the plain error mode.
	Mode string
}

// Enabled reports whether the spec injects anything.
func (s Spec) Enabled() bool { return s.Target != "" }

// Is reports whether the spec attacks the given target.
func (s Spec) Is(target string) bool { return s.Target == target }

// Parse reads a "target:key=value,key=value" fault specification, e.g.
// "sink:every=50,seed=7" or "worker:prob=0.5,seed=3,mode=panic".  Keys:
// every=N, prob=P, seed=S, mode=error|panic|short|torn.  Exactly one of
// every/prob is required; short and torn are disk-fault shapes and only
// apply to writer targets.
func Parse(text string) (Spec, error) {
	target, params, ok := strings.Cut(text, ":")
	if !ok {
		return Spec{}, fmt.Errorf("faults: spec %q: want target:key=value,...", text)
	}
	target = strings.TrimSpace(target)
	if !validTargets[target] {
		return Spec{}, fmt.Errorf("faults: unknown target %q (want sink, access, perf, writer or worker)", target)
	}
	spec := Spec{Target: target, Seed: 1}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: spec %q: parameter %q is not key=value", text, kv)
		}
		switch key {
		case "every":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return Spec{}, fmt.Errorf("faults: spec %q: every=%q must be a positive integer", text, val)
			}
			spec.Every = n
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return Spec{}, fmt.Errorf("faults: spec %q: prob=%q must be in (0, 1]", text, val)
			}
			spec.Prob = p
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: spec %q: seed=%q must be an integer", text, val)
			}
			spec.Seed = n
		case "mode":
			switch val {
			case "error":
				spec.Mode = "" // canonical: the zero mode is the error mode
			case ModePanic, ModeShort, ModeTorn:
				spec.Mode = val
			default:
				return Spec{}, fmt.Errorf("faults: spec %q: mode=%q must be error, panic, short or torn", text, val)
			}
		default:
			return Spec{}, fmt.Errorf("faults: spec %q: unknown parameter %q", text, key)
		}
	}
	if (spec.Every == 0) == (spec.Prob == 0) {
		return Spec{}, fmt.Errorf("faults: spec %q: exactly one of every=N or prob=P is required", text)
	}
	if (spec.Mode == ModeShort || spec.Mode == ModeTorn) && spec.Target != TargetWriter {
		return Spec{}, fmt.Errorf("faults: spec %q: mode=%s only applies to writer targets", text, spec.Mode)
	}
	return spec, nil
}

// String renders the spec in Parse's format (canonical parameter order).
func (s Spec) String() string {
	if !s.Enabled() {
		return ""
	}
	parts := []string{}
	if s.Every > 0 {
		parts = append(parts, "every="+strconv.FormatUint(s.Every, 10))
	}
	if s.Prob > 0 {
		parts = append(parts, "prob="+strconv.FormatFloat(s.Prob, 'g', -1, 64))
	}
	parts = append(parts, "seed="+strconv.FormatUint(s.Seed, 10))
	if s.Mode != "" {
		parts = append(parts, "mode="+s.Mode)
	}
	sort.Strings(parts)
	return s.Target + ":" + strings.Join(parts, ",")
}

// splitmix64 is the seed-expansion step of the xorshift family: it turns
// correlated seeds (0, 1, 2...) into well-mixed initial states.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Injector decides, call by call, whether to trip a fault.  Each decorator
// owns a private Injector, so the decision sequence is per-wrapped-instance
// and independent of how runs are scheduled across workers.  Injector is
// not safe for concurrent use; the buffers and stages it decorates are
// already single-goroutine per run.
type Injector struct {
	spec  Spec
	rng   uint64
	calls uint64
}

// NewInjector returns a fresh decision stream for the spec.
func (s Spec) NewInjector() *Injector {
	return &Injector{spec: s, rng: splitmix64(s.Seed)}
}

// next advances the xorshift64 stream.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.rng = x
	return x
}

// Trip records one call and reports whether it must fail, along with the
// 1-based call number (for error messages).
func (in *Injector) Trip() (call uint64, trip bool) {
	in.calls++
	if in.spec.Every > 0 {
		return in.calls, in.calls%in.spec.Every == 0
	}
	// Map the top 53 bits onto [0, 1): the standard uniform-double draw.
	u := float64(in.next()>>11) / float64(1<<53)
	return in.calls, u < in.spec.Prob
}

func (in *Injector) errf(what string) error {
	call, trip := in.Trip()
	if !trip {
		return nil
	}
	return fmt.Errorf("%w: %s %s call %d (%s)", ErrInjected, in.spec.Target, what, call, in.spec)
}

// TxSink wraps next with an injector failing transaction flushes.
func TxSink(spec Spec, next trace.TxSink) trace.TxSink {
	in := spec.NewInjector()
	return trace.TxSinkFunc(func(batch []trace.Transaction) error {
		if err := in.errf("flush"); err != nil {
			return err
		}
		return next.FlushTx(batch)
	})
}

// Sink wraps next with an injector failing access flushes.
func Sink(spec Spec, next trace.Sink) trace.Sink {
	in := spec.NewInjector()
	return trace.SinkFunc(func(batch []trace.Access) error {
		if err := in.errf("flush"); err != nil {
			return err
		}
		return next.Flush(batch)
	})
}

// PerfSink wraps next with an injector failing performance-event flushes.
func PerfSink(spec Spec, next trace.PerfSink) trace.PerfSink {
	in := spec.NewInjector()
	return trace.PerfSinkFunc(func(batch []trace.PerfEvent) error {
		if err := in.errf("flush"); err != nil {
			return err
		}
		return next.FlushEvents(batch)
	})
}

// Stage wraps a generic pipeline stage with an injector failing flushes;
// the batch-typed analogue of the sink decorators.
func Stage[T any](spec Spec, next pipeline.Stage[T]) pipeline.Stage[T] {
	in := spec.NewInjector()
	return pipeline.StageFunc[T](func(batch []T) error {
		if err := in.errf("flush"); err != nil {
			return err
		}
		return next.Flush(batch)
	})
}

// Writer wraps w with an injector failing writes — the disk-fault path
// for trace.Writer, the served response path and the job journal.  A
// tripped call fails by the spec's mode: the default returns an injected
// error without touching w, mode=short writes a prefix and fails with an
// ErrNoSpace-wrapped error (disk full), and mode=torn writes a prefix,
// silently drops the rest and reports full success — the on-disk shape
// of a crash mid-write, which only recovery can detect.
func Writer(spec Spec, w io.Writer) io.Writer {
	return &faultWriter{in: spec.NewInjector(), w: w}
}

type faultWriter struct {
	in *Injector
	w  io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	call, trip := fw.in.Trip()
	if !trip {
		return fw.w.Write(p)
	}
	spec := fw.in.spec
	switch spec.Mode {
	case ModeShort:
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: writer short write call %d (%s): %w", ErrInjected, call, spec, ErrNoSpace)
	case ModeTorn:
		if _, err := fw.w.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return 0, fmt.Errorf("%w: writer write call %d (%s)", ErrInjected, call, spec)
}

// Worker decorates a runner.Func with a crash fault.  Unlike the flush
// decorators, the decision cannot ride a call counter: runs execute
// concurrently and in scheduling-dependent order, so a shared counter would
// fail *different* runs at jobs=1 vs jobs=4.  Instead the decision is a
// pure hash of (seed, key): every=N fails every Nth key by hash residue,
// prob=P fails the keys whose hash lands below P.  In Panic mode the run
// panics (exercising the engine's recovery path) instead of returning the
// error.
func Worker(spec Spec, key string, fn runner.Func) runner.Func {
	if !spec.Is(TargetWorker) {
		return fn
	}
	h := splitmix64(spec.Seed ^ hashString(key))
	var trip bool
	if spec.Every > 0 {
		trip = h%spec.Every == 0
	} else {
		trip = float64(h>>11)/float64(1<<53) < spec.Prob
	}
	if !trip {
		return fn
	}
	return func(ctx context.Context) (any, uint64, error) {
		err := fmt.Errorf("%w: worker crash for run %s (%s)", ErrInjected, key, spec)
		if spec.Mode == ModePanic {
			panic(err)
		}
		return nil, 0, err
	}
}

// CrashPlan is the crash-point injector for the restart-recovery
// harness: a deterministic kill switch armed at the Nth guarded call.
// Unlike the per-call injectors above, a crash is terminal — every
// guarded call from the crash point on reports crashed, modelling a
// process that dies at one journaled transition and never comes back.
// Safe for concurrent use: the guarded calls come from whatever
// goroutine holds the journal at that moment.
type CrashPlan struct {
	at    uint64
	calls atomic.Uint64
}

// NewCrashPlan arms a crash at the at-th guarded call (1-based); 0
// never crashes but still counts calls, which is how a harness sizes
// its sweep (run once uncrashed, read Calls, then kill at 1..Calls).
func NewCrashPlan(at uint64) *CrashPlan { return &CrashPlan{at: at} }

// Crashed counts one guarded call and reports whether the crash point
// has been reached.
func (c *CrashPlan) Crashed() bool {
	n := c.calls.Add(1)
	return c.at > 0 && n >= c.at
}

// Calls returns how many guarded calls have been counted so far.
func (c *CrashPlan) Calls() uint64 { return c.calls.Load() }

// hashString is FNV-1a, inlined so the package stays free of hash/fnv's
// allocation on every run-key decision.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Rate returns the spec's nominal failure rate — 1/Every or Prob — for
// documentation and sanity checks.
func (s Spec) Rate() float64 {
	switch {
	case s.Every > 0:
		return 1 / float64(s.Every)
	case s.Prob > 0:
		return s.Prob
	}
	return 0
}

// MustParse is Parse for known-good literals (tests, examples).
func MustParse(text string) Spec {
	spec, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return spec
}
