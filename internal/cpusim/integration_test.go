package cpusim

import (
	"testing"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/trace"
)

// TestIntegratedTimingPower couples the core model with the power simulator
// (§IV: "It can be integrated into full system simulators too.  When the
// power simulator is integrated with a full system simulator that provides
// timing information, power estimates can be accurately computed").  The
// same workload priced at full speed must report a power upper bound; the
// timestamped run spreads the same energy over real program time.
func TestIntegratedTimingPower(t *testing.T) {
	workload := func(core *Core) {
		for i := 0; i < 20000; i++ {
			// Compute-bound phases between strided misses: the memory
			// system can keep pace with the request stream, so its elapsed
			// time tracks the core's.  (The core model applies a fixed
			// memory latency without bandwidth backpressure, so a
			// memory-bound stream would legitimately make the memory
			// simulator's clock outrun the core's.)
			core.Event(200, trace.Access{Addr: uint64(i%65536) * 4096, Size: 8, Op: trace.Read})
		}
	}

	// Full-speed trace mode: collect the transactions, replay untimed.
	var collected []trace.Transaction
	collectCore := MustNew(func() Config {
		cfg := PaperConfig(10)
		cfg.MemSink = txFunc(func(tx trace.Transaction) error {
			collected = append(collected, tx)
			return nil
		})
		return cfg
	}())
	workload(collectCore)
	if err := collectCore.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(collected) == 0 {
		t.Fatal("workload generated no memory traffic")
	}
	fullSpeed, err := dramsim.New(dramsim.PaperConfig(dramsim.DDR3()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range collected {
		if err := fullSpeed.Transaction(tx); err != nil {
			t.Fatal(err)
		}
	}
	fullRep := fullSpeed.Report()

	// Integrated mode: the power simulator honours the core's timestamps.
	timedCfg := dramsim.PaperConfig(dramsim.DDR3())
	timedCfg.CPUFreqGHz = 2.266
	timed, err := dramsim.New(timedCfg)
	if err != nil {
		t.Fatal(err)
	}
	timedCore := MustNew(func() Config {
		cfg := PaperConfig(10)
		cfg.MemSink = timed
		return cfg
	}())
	workload(timedCore)
	if err := timedCore.Finish(); err != nil {
		t.Fatal(err)
	}
	timedRep := timed.Report()

	if timedRep.Reads != fullRep.Reads || timedRep.Writes != fullRep.Writes {
		t.Fatalf("transaction counts diverged: %d/%d vs %d/%d",
			timedRep.Reads, timedRep.Writes, fullRep.Reads, fullRep.Writes)
	}
	if timedRep.ElapsedNS <= fullRep.ElapsedNS {
		t.Fatalf("timestamped elapsed %v must exceed full-speed %v (compute time between misses)",
			timedRep.ElapsedNS, fullRep.ElapsedNS)
	}
	// Same dynamic energy over longer time: less dynamic power -> the
	// full-speed estimate is the upper bound §IV promises.
	if timedRep.BurstMW >= fullRep.BurstMW {
		t.Fatalf("timed burst power %v should undercut full-speed %v",
			timedRep.BurstMW, fullRep.BurstMW)
	}
	// The timestamped elapsed time must roughly match the core's own run
	// time (the memory system finishes soon after the last miss issues).
	coreNS := timedCore.Cycles() / 2.266
	if timedRep.ElapsedNS < coreNS*0.5 || timedRep.ElapsedNS > coreNS*1.5 {
		t.Fatalf("memory elapsed %v ns vs core %v ns: integration timestamps inconsistent",
			timedRep.ElapsedNS, coreNS)
	}
}

// txFunc adapts a per-transaction closure to the batched trace.TxSink the
// core's hierarchy flushes into.
type txFunc func(trace.Transaction) error

func (f txFunc) FlushTx(batch []trace.Transaction) error {
	for _, t := range batch {
		if err := f(t); err != nil {
			return err
		}
	}
	return nil
}

func TestNegativeCPUFreqRejected(t *testing.T) {
	cfg := dramsim.PaperConfig(dramsim.DDR3())
	cfg.CPUFreqGHz = -1
	if _, err := dramsim.New(cfg); err == nil {
		t.Fatal("negative CPU frequency must be rejected")
	}
}

func TestMemSinkReceivesStampedTransactions(t *testing.T) {
	var cycles []uint64
	cfg := PaperConfig(10)
	cfg.MemSink = txFunc(func(tx trace.Transaction) error {
		cycles = append(cycles, tx.Cycle)
		return nil
	})
	core := MustNew(cfg)
	for i := 0; i < 2000; i++ {
		core.Event(10, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
	}
	if err := core.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(cycles) == 0 {
		t.Fatal("no transactions delivered")
	}
	var prev uint64
	for i, c := range cycles {
		if c < prev {
			t.Fatalf("timestamp %d went backwards: %d < %d", i, c, prev)
		}
		prev = c
	}
	if cycles[len(cycles)-1] == 0 {
		t.Fatal("timestamps never advanced")
	}
}
