package memtrace

import (
	"fmt"
	"hash/fnv"

	"nvscavenger/internal/trace"
)

// Heap instrumentation (paper §III-B).
//
// The tool intercepts allocation at the system-library level.  Each heap
// object is identified by a signature combining the allocation call site
// (file:line), the requested size, and the starting addresses of the
// routines active on the shadow stack at allocation time.  Memory objects
// allocated in different execution phases with the same signature appear
// within the same program context, tend to share an access pattern, and are
// therefore regarded as the same object; this shrinks the tracking set and
// ties objects back to application code.
//
// Deallocated objects carry a dead flag so that a recycled virtual address
// is never attributed to a stale object.  realloc is modelled as free
// followed by malloc.

// heapBase is the simulated base address of the allocation arena.
const heapBase uint64 = 0x2000_0000_0000

const heapAlign = 16

// heapSig is the identity of a heap allocation context.
type heapSig struct {
	site      string // "file.f90:123"
	size      uint64
	stackHash uint64 // FNV of the shadow-stack routine names
	// gen disambiguates multiple simultaneously-live allocations from the
	// same program context: the k-th concurrent allocation carries gen k.
	// The chain is deterministic, so a later phase that again performs k+1
	// live allocations from this context revives the same k+1 objects.
	gen int
}

type heapState struct {
	brk      uint64              // bump pointer
	freeList map[uint64][]uint64 // size -> reusable base addresses
	bySig    map[heapSig]*Object
	// order preserves registration order for deterministic reports.
	order []*Object
}

func newHeapState() heapState {
	return heapState{
		brk:      heapBase,
		freeList: map[uint64][]uint64{},
		bySig:    map[heapSig]*Object{},
	}
}

// stackHash fingerprints the current shadow call stack.  In the original
// tool the signature uses routine start addresses; routine names are the
// equivalent identity here.
func (t *Tracer) stackHash() uint64 {
	h := fnv.New64a()
	for _, f := range t.frames {
		// Only the routine identity matters, not the dynamic frame base: the
		// same call path must produce the same signature in every phase.
		h.Write([]byte(f.name))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func (t *Tracer) heapAddr(size uint64) uint64 {
	size = (size + heapAlign - 1) &^ uint64(heapAlign-1)
	if free := t.heap.freeList[size]; len(free) > 0 {
		base := free[len(free)-1]
		t.heap.freeList[size] = free[:len(free)-1]
		return base
	}
	base := t.heap.brk
	t.heap.brk += size
	return base
}

// Malloc simulates a heap allocation of size bytes at the given call site
// ("file:line").  name is a human label for reports.  It returns the object
// record; use the typed-array constructors (HeapF64 and friends) for data
// that the program will actually compute on.
func (t *Tracer) Malloc(name, site string, size uint64) *Object {
	if size == 0 {
		panic("memtrace: Malloc of size 0") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	sig := heapSig{site: site, size: size, stackHash: t.stackHash()}
	base := t.heapAddr(size)
	// Walk the generation chain: revive the first dead object allocated
	// from this program context, or mint a new generation if every recorded
	// one is currently live.
	for {
		obj, ok := t.heap.bySig[sig]
		if !ok {
			break
		}
		if obj.Dead {
			t.reviveHeapObject(obj, base, size)
			return obj
		}
		sig.gen++
	}
	obj := t.reg.newObject(Object{
		Name:      name,
		Segment:   trace.SegHeap,
		Base:      base,
		Size:      size,
		AllocIter: t.iter,
		Site:      site,
	})
	t.heap.bySig[sig] = obj
	t.heap.order = append(t.heap.order, obj)
	t.reg.insert(obj)
	return obj
}

func (t *Tracer) reviveHeapObject(obj *Object, base, size uint64) {
	obj.Dead = false
	obj.Base = base
	obj.Size = size
	t.reg.insert(obj)
}

// Free marks a heap object dead and releases its address range for reuse.
// Freeing an already-dead or non-heap object panics: it indicates a bug in
// the instrumented program.
func (t *Tracer) Free(obj *Object) {
	if obj.Segment != trace.SegHeap {
		panic(fmt.Sprintf("memtrace: Free of non-heap object %v", obj)) //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	if obj.Dead {
		panic(fmt.Sprintf("memtrace: double free of %v", obj)) //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	t.reg.remove(obj)
	obj.Dead = true
	size := (obj.Size + heapAlign - 1) &^ uint64(heapAlign-1)
	t.heap.freeList[size] = append(t.heap.freeList[size], obj.Base)
}

// Realloc models realloc() as a deallocation followed by a fresh allocation
// at the same call site, exactly as §III-B prescribes.
func (t *Tracer) Realloc(obj *Object, newSize uint64) *Object {
	name, site := obj.Name, obj.Site
	t.Free(obj)
	return t.Malloc(name, site, newSize)
}

// HeapF64 allocates an n-element float64 array on the simulated heap.
func (t *Tracer) HeapF64(name, site string, n int) (F64, *Object) {
	obj := t.Malloc(name, site, uint64(n)*8)
	return F64{t: t, base: obj.Base, data: make([]float64, n)}, obj
}

// HeapI64 allocates an n-element int64 array on the simulated heap.
func (t *Tracer) HeapI64(name, site string, n int) (I64, *Object) {
	obj := t.Malloc(name, site, uint64(n)*8)
	return I64{t: t, base: obj.Base, data: make([]int64, n)}, obj
}

// HeapObjects returns every heap object ever registered, in allocation
// order (dead objects included; they carry their accumulated statistics).
func (t *Tracer) HeapObjects() []*Object {
	out := make([]*Object, len(t.heap.order))
	copy(out, t.heap.order)
	return out
}
