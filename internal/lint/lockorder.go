package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder proves the repo's mutex discipline at the source level: a
// package that ever acquires one mutex while holding another must
// declare the order with a directive, the observed acquisitions must
// respect it, the combined acquisition graph must be acyclic, and every
// Lock must be released on every path to return (an explicit panic
// while holding a non-deferred lock counts as an escaping path; a
// deferred Unlock covers panic edges by construction).
//
// The declaration syntax is a package-level comment:
//
//	//nvlint:lockorder jmu > mu
//
// naming locks either by bare field name ("jmu", matching any struct
// field of that name in the package) or qualified ("Manager.jmu").
// Chains ("a > b > c") declare every implied pair.
type lockorder struct {
	nopFinish
}

func init() {
	registerPass("lockorder", func() Pass { return &lockorder{} })
}

func (*lockorder) Name() string { return "lockorder" }
func (*lockorder) Doc() string {
	return "nested mutex acquisitions follow the declared //nvlint:lockorder hierarchy and every Lock is released on all paths"
}

const lockorderPrefix = "//nvlint:lockorder"

// lockOp is one Lock/Unlock call resolved to a canonical lock key.
type lockOp struct {
	key    string
	unlock bool
	pos    token.Pos
}

// lockEdge records "from was held when to was acquired".
type lockEdge struct{ from, to string }

func (s *lockorder) Check(p *Package, r *Reporter) {
	decls := s.parseDecls(p, r)
	edges := map[lockEdge]token.Pos{}
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			s.checkFunc(p, r, body, edges)
		}
	}
	if len(edges) == 0 {
		return
	}
	s.checkEdges(p, r, decls, edges)
}

// funcBodies returns every function body in the file: declarations plus
// function literals, each analyzed as its own control-flow universe.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				bodies = append(bodies, d.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, d.Body)
		}
		return true
	})
	return bodies
}

// parseDecls extracts the package's lockorder declarations as ordered
// pairs (already transitively closed per chain), reporting malformed
// directives.
func (s *lockorder) parseDecls(p *Package, r *Reporter) []lockEdge {
	var pairs []lockEdge
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, lockorderPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, lockorderPrefix)
				names := splitChain(rest)
				if len(names) < 2 {
					r.Report(c.Pos(), "lockorder", "malformed lockorder directive: want //nvlint:lockorder <outer> > <inner> [> ...]")
					continue
				}
				for i := 0; i < len(names); i++ {
					for j := i + 1; j < len(names); j++ {
						pairs = append(pairs, lockEdge{names[i], names[j]})
					}
				}
			}
		}
	}
	return pairs
}

// splitChain parses "a > b > c" into its names; any malformed segment
// yields nil.
func splitChain(s string) []string {
	parts := strings.Split(s, ">")
	if len(parts) < 2 {
		return nil
	}
	names := make([]string, 0, len(parts))
	for _, part := range parts {
		name := strings.TrimSpace(part)
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil
		}
		names = append(names, name)
	}
	return names
}

// checkFunc walks one function body: it records acquisition-order edges
// under the may-held dataflow state and verifies unlock-on-all-paths for
// every Lock site.
func (s *lockorder) checkFunc(p *Package, r *Reporter, body *ast.BlockStmt, edges map[lockEdge]token.Pos) {
	g := buildCFG(body)
	hasOp := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if len(lockOps(p, n)) > 0 {
				hasOp = true
				break
			}
		}
	}
	if !hasOp {
		return
	}

	deferred := deferredUnlockKeys(p, g)
	transfer := func(b *Block, in factBits[string]) factBits[string] {
		out := in.clone()
		for _, n := range b.Nodes {
			for _, op := range lockOps(p, n) {
				if op.unlock {
					delete(out, op.key)
				} else {
					out[op.key] = 1
				}
			}
		}
		return out
	}
	in := solveForward(g, transfer)

	for _, blk := range g.Blocks {
		held := in[blk].clone()
		for i, n := range blk.Nodes {
			for _, op := range lockOps(p, n) {
				if op.unlock {
					delete(held, op.key)
					continue
				}
				for h := range held {
					e := lockEdge{h, op.key}
					if cur, ok := edges[e]; !ok || op.pos < cur {
						edges[e] = op.pos
					}
				}
				held[op.key] = 1
				if deferred[op.key] {
					continue
				}
				key := op.key
				if g.reachesExitWithout(blk, i+1, func(stop ast.Node) bool {
					for _, sop := range lockOps(p, stop) {
						if sop.unlock && sop.key == key {
							return true
						}
					}
					return false
				}) {
					r.Report(op.pos, "lockorder",
						"%s.Lock() is not released on every path to return (unlock on all paths or defer the Unlock)", key)
				}
			}
		}
	}
}

// checkEdges validates the observed acquisition edges against the
// declared hierarchy and reports order cycles.
func (s *lockorder) checkEdges(p *Package, r *Reporter, decls []lockEdge, edges map[lockEdge]token.Pos) {
	ordered := make([]lockEdge, 0, len(edges))
	for e := range edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return edges[ordered[i]] < edges[ordered[j]] })

	for _, e := range ordered {
		pos := edges[e]
		if e.from == e.to {
			r.Report(pos, "lockorder", "%s acquired while an acquisition of %s may still be held (self-deadlock)", e.to, e.from)
			continue
		}
		switch {
		case declaresPair(decls, e.from, e.to):
			// Declared in this direction: fine.
		case declaresPair(decls, e.to, e.from):
			r.Report(pos, "lockorder",
				"%s acquired while holding %s, reversing the declared lock order %s > %s",
				e.to, e.from, e.to, e.from)
		default:
			r.Report(pos, "lockorder",
				"%s acquired while holding %s but no order is declared; add //nvlint:lockorder %s > %s",
				e.to, e.from, shortLock(e.from), shortLock(e.to))
		}
	}

	// Cycle check over the observed graph: two observed edges that chain
	// back to their origin deadlock under the right schedule even if each
	// is individually declared somewhere.
	adj := map[string][]string{}
	for _, e := range ordered {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	if cycle := findCycle(adj); len(cycle) > 0 {
		e := lockEdge{cycle[len(cycle)-2], cycle[len(cycle)-1]}
		r.Report(edges[e], "lockorder", "acquisition-order cycle: %s", strings.Join(cycle, " -> "))
	}
}

// declaresPair reports whether the declarations order a before b,
// matching either qualified keys ("Manager.jmu") or bare field names.
func declaresPair(decls []lockEdge, a, b string) bool {
	for _, d := range decls {
		if lockNameMatches(d.from, a) && lockNameMatches(d.to, b) {
			return true
		}
	}
	return false
}

// lockNameMatches matches a declared name against a canonical lock key:
// qualified names must be equal, bare names match the key's field part.
func lockNameMatches(decl, key string) bool {
	if decl == key {
		return true
	}
	if !strings.Contains(decl, ".") {
		return shortLock(key) == decl
	}
	return false
}

// shortLock returns the field part of a qualified lock key.
func shortLock(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// findCycle returns one cycle in adj as a node path ending where it
// started, or nil.  Roots are visited in sorted order so findings are
// deterministic.
func findCycle(adj map[string][]string) []string {
	roots := make([]string, 0, len(adj))
	for k := range adj {
		roots = append(roots, k)
	}
	sort.Strings(roots)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var path []string
	var dfs func(n string) []string
	dfs = func(n string) []string {
		state[n] = visiting
		path = append(path, n)
		next := append([]string(nil), adj[n]...)
		sort.Strings(next)
		for _, m := range next {
			switch state[m] {
			case visiting:
				for i, pn := range path {
					if pn == m {
						return append(append([]string(nil), path[i:]...), m)
					}
				}
			case 0:
				if c := dfs(m); c != nil {
					return c
				}
			}
		}
		state[n] = done
		path = path[:len(path)-1]
		return nil
	}
	for _, root := range roots {
		if state[root] == 0 {
			if c := dfs(root); c != nil {
				return c
			}
		}
	}
	return nil
}

// deferredUnlockKeys collects the lock keys released by defer statements
// anywhere in the function: both `defer mu.Unlock()` and unlocks inside a
// deferred closure.  Deferred releases run on every exit path including
// panics, so these keys are exempt from the unlock-on-all-paths walk.
func deferredUnlockKeys(p *Package, g *CFG) map[string]bool {
	keys := map[string]bool{}
	for _, d := range g.Defers {
		if op, ok := asLockOp(p, d.Call); ok && op.unlock {
			keys[op.key] = true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if op, ok := asLockOp(p, call); ok && op.unlock {
						keys[op.key] = true
					}
				}
				return true
			})
		}
	}
	return keys
}

// lockOps extracts the Lock/Unlock calls directly inside n, in source
// order, skipping nested function literals (their bodies are analyzed as
// their own functions) and deferred statements (a deferred Unlock keeps
// the lock held to the end of the function by design).
func lockOps(p *Package, n ast.Node) []lockOp {
	var ops []lockOp
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := asLockOp(p, x); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// asLockOp resolves call as a sync mutex Lock/Unlock (or RLock/RUnlock)
// and derives its canonical key.
func asLockOp(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	f, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var unlock bool
	switch f.Name() {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return lockOp{}, false
	}
	key := lockKey(p, sel.X)
	if key == "" {
		return lockOp{}, false
	}
	return lockOp{key: key, unlock: unlock, pos: call.Pos()}, true
}

// lockKey canonicalizes the mutex operand: "Type.field" for a struct
// field, the variable name for locals and package vars.
func lockKey(p *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		t := p.Info.TypeOf(x.X)
		if t == nil {
			return ""
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return x.Sel.Name
		}
		return fmt.Sprintf("%s.%s", named.Obj().Name(), x.Sel.Name)
	}
	return ""
}
