package memtrace

import (
	"fmt"

	"nvscavenger/internal/trace"
)

// ObjectID identifies a memory object within one Tracer.
type ObjectID uint32

// IterStats holds the per-iteration access counters for one memory object.
// Iteration 0 is the combined pre-computing/post-processing phase; iterations
// 1..N are timesteps of the main computation loop, matching the x-axis
// convention of Figure 7 in the paper.
type IterStats struct {
	Reads  uint64
	Writes uint64
	// Instructions is the number of instructions (memory and compute)
	// retired by the program during the iteration in which these counters
	// were accumulated.  It is the denominator of the reference-rate metric
	// and is identical for all objects within one iteration.
	Instructions uint64
}

// Refs returns the total references in this iteration.
func (s IterStats) Refs() uint64 { return s.Reads + s.Writes }

// Object is an application memory object: a heap allocation identified by
// its call-site signature, a global symbol (possibly a merged FORTRAN common
// block), a routine's stack frame, or the whole program stack (fast mode).
type Object struct {
	ID      ObjectID
	Name    string
	Segment trace.Segment
	// Base and Size describe the current address range.  For recycled heap
	// signatures the range is the most recent allocation's range.
	Base uint64
	Size uint64
	// Dead is set when a heap object has been freed and not re-allocated
	// (paper §III-B: a flag marks deallocated objects so stale address
	// matches are not attributed to them).
	Dead bool
	// AllocIter records the iteration in which the object first appeared
	// (0 = pre-computing phase).
	AllocIter int
	// Site is the allocation call site for heap objects ("file:line").
	Site string

	// perIter is indexed by iteration number.
	perIter []IterStats
	// total accumulates across all iterations.
	total IterStats
	// touched counts the number of distinct main-loop iterations (>0) in
	// which the object was referenced.
	touched int

	// access-pattern tracking: the deltas between consecutive references
	// inside the object classify it as sequential, strided, or random.
	lastAddr   uint64
	lastDelta  int64
	haveLast   bool
	haveDelta  bool
	seqRefs    uint64 // |delta| <= 8 bytes (next element / same line walk)
	strideRefs uint64 // repeated constant delta > 8
	randomRefs uint64 // changing deltas
}

// String renders the object's identity and range for diagnostics.
func (o *Object) String() string {
	return fmt.Sprintf("%s[%s] base=%#x size=%d", o.Name, o.Segment, o.Base, o.Size)
}

// Contains reports whether addr falls inside the object's address range.
func (o *Object) Contains(addr uint64) bool {
	return addr >= o.Base && addr < o.Base+o.Size
}

// record attributes one access in the given iteration.
func (o *Object) record(iter int, isWrite bool, n uint64) {
	for len(o.perIter) <= iter {
		o.perIter = append(o.perIter, IterStats{})
	}
	s := &o.perIter[iter]
	wasUntouched := s.Refs() == 0
	if isWrite {
		s.Writes += n
		o.total.Writes += n
	} else {
		s.Reads += n
		o.total.Reads += n
	}
	if wasUntouched && iter > 0 {
		o.touched++
	}
}

// notePattern folds one reference address into the pattern counters.
func (o *Object) notePattern(addr uint64) {
	if !o.haveLast {
		o.haveLast = true
		o.lastAddr = addr
		return
	}
	delta := int64(addr) - int64(o.lastAddr)
	o.lastAddr = addr
	switch {
	case delta >= -8 && delta <= 8:
		o.seqRefs++
	case o.haveDelta && delta == o.lastDelta:
		o.strideRefs++
	default:
		o.randomRefs++
	}
	o.lastDelta = delta
	o.haveDelta = true
}

// Pattern is the dominant spatial access pattern of an object.
type Pattern uint8

const (
	// PatternUnknown means too few references to classify.
	PatternUnknown Pattern = iota
	// PatternSequential objects walk element by element — prefetchable and
	// row-buffer friendly, the easiest data to serve from slow NVRAM.
	PatternSequential
	// PatternStrided objects walk with a repeated constant stride.
	PatternStrided
	// PatternRandom objects jump unpredictably — their latency is exposed.
	PatternRandom
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternSequential:
		return "sequential"
	case PatternStrided:
		return "strided"
	case PatternRandom:
		return "random"
	}
	return "unknown"
}

// AccessPattern classifies the object from its reference deltas: the
// majority class wins, with ties broken toward the less NVRAM-friendly
// (more conservative) classification.
func (o *Object) AccessPattern() Pattern {
	total := o.seqRefs + o.strideRefs + o.randomRefs
	if total < 8 {
		return PatternUnknown
	}
	switch {
	case o.randomRefs*2 >= total:
		return PatternRandom
	case o.seqRefs >= o.strideRefs:
		return PatternSequential
	default:
		return PatternStrided
	}
}

// PatternCounts exposes the raw classifier inputs (sequential, strided,
// random reference counts).
func (o *Object) PatternCounts() (seq, strided, random uint64) {
	return o.seqRefs, o.strideRefs, o.randomRefs
}

// Total returns the accumulated counters across all iterations.
func (o *Object) Total() IterStats { return o.total }

// Iter returns the counters for iteration i (zero value if never touched).
func (o *Object) Iter(i int) IterStats {
	if i < 0 || i >= len(o.perIter) {
		return IterStats{}
	}
	return o.perIter[i]
}

// Iterations returns the number of iteration slots recorded (including
// iteration 0).
func (o *Object) Iterations() int { return len(o.perIter) }

// TouchedIterations returns the number of distinct main-loop iterations in
// which the object was referenced.  Objects used only in the pre/post phase
// return 0; they are NVRAM candidates by the Figure 7 analysis.
func (o *Object) TouchedIterations() int { return o.touched }

// ReadWriteRatio returns total reads / total writes.  For an object with no
// writes at all ("read-only data structures", §VII-B), it returns the read
// count, which is >= any classification threshold whenever the object was
// read at least once.
func (o *Object) ReadWriteRatio() float64 {
	if o.total.Writes == 0 {
		return float64(o.total.Reads)
	}
	return float64(o.total.Reads) / float64(o.total.Writes)
}

// LoopStats returns the counters summed over the main computation loop only
// (iterations >= 1), excluding the pre-computing/post-processing phase.
// The paper's per-object metrics are all main-loop metrics: references are
// recorded "only during the main computation loop" (§VI), so initialization
// writes do not count against a structure that the solver itself never
// writes.
func (o *Object) LoopStats() IterStats {
	var out IterStats
	for i := 1; i < len(o.perIter); i++ {
		out.Reads += o.perIter[i].Reads
		out.Writes += o.perIter[i].Writes
		out.Instructions += o.perIter[i].Instructions
	}
	return out
}

// LoopReadWriteRatio is ReadWriteRatio restricted to the main loop.
func (o *Object) LoopReadWriteRatio() float64 {
	s := o.LoopStats()
	if s.Writes == 0 {
		return float64(s.Reads)
	}
	return float64(s.Reads) / float64(s.Writes)
}

// LoopReadOnly reports whether the object was read but never written during
// the main loop — §VII-B's "read-only data structures" (initialized during
// pre-computing, read many times during computation).
func (o *Object) LoopReadOnly() bool {
	s := o.LoopStats()
	return s.Writes == 0 && s.Reads > 0
}

// LoopReferenceRate returns main-loop references per million main-loop
// instructions.
func (o *Object) LoopReferenceRate() float64 {
	s := o.LoopStats()
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Refs()) / float64(s.Instructions) * 1e6
}

// IterReadWriteRatio returns the read/write ratio within iteration i.
func (o *Object) IterReadWriteRatio(i int) float64 {
	s := o.Iter(i)
	if s.Writes == 0 {
		return float64(s.Reads)
	}
	return float64(s.Reads) / float64(s.Writes)
}

// ReadOnly reports whether the object was read but never written.
func (o *Object) ReadOnly() bool {
	return o.total.Writes == 0 && o.total.Reads > 0
}

// ReferenceRate returns total references to the object per million retired
// instructions, the paper's third metric.
func (o *Object) ReferenceRate() float64 {
	var instr uint64
	for _, s := range o.perIter {
		instr += s.Instructions
	}
	if instr == 0 {
		return 0
	}
	return float64(o.total.Refs()) / float64(instr) * 1e6
}

// IterReferenceRate returns references per million instructions within
// iteration i.
func (o *Object) IterReferenceRate(i int) float64 {
	s := o.Iter(i)
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Refs()) / float64(s.Instructions) * 1e6
}
