// Package nekmini is the Nek5000 proxy: a spectral-element incompressible
// flow mini-app (paper §VI, "2D eddy problem").
//
// Construction, mirroring what §VII reports for Nek5000:
//
//   - Element-centric kernels: every element's field values are copied into
//     stack locals, transformed with tensor-product derivative contractions
//     (dense matmul-like reads), and written back — stack references
//     dominate (target: ~75.6% of references, stack R/W ratio ~6.3).
//   - Read-only auxiliary structures (~7.1% of the footprint): inverse mass
//     matrices and "element-lagged" mass matrices built during
//     pre-computing, geometry arrays, and 70 boundary-condition records.
//   - Mass matrices with read/write ratios above 50 (~4.7% of footprint):
//     read several times per element per timestep, re-lagged (written) only
//     in the first timestep.
//   - ~24.3% of the global footprint untouched during the main loop:
//     diagonal-preconditioner setup used in pre-computing and MPI
//     aggregation buffers used in post-processing (Figure 7).
//   - Uneven per-iteration behaviour: a spectral filter runs only every
//     fourth timestep and a turbulence-statistics array is touched only in
//     timesteps 2-3, giving Nek5000 its diverse reference-rate variance
//     (Figure 8).
package nekmini

import (
	"fmt"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/apps/kernels"
	"nvscavenger/internal/memtrace"
)

func init() {
	apps.Register("nek5000", func(scale float64) apps.App { return New(scale) })
}

// polyOrder is the spectral polynomial order: N=5 gives the stack
// read/write ratio ~6.3 the calibration targets (reads ~2N^4 per
// contraction against ~N^3 writes).
const polyOrder = 5

// App is the Nek5000 proxy.
type App struct {
	scale    float64
	elements int

	// solution fields (global segment, like Nek5000's /SOLN/ commons)
	vx, vy, vz, temp, pr, rhs memtrace.F64

	// mass matrices: high read/write ratio (re-lagged in timestep 1 only)
	bm1, tmass memtrace.F64

	// read-only auxiliaries
	binvm1, bmlag, geom, bc memtrace.F64

	// derivative matrix (read-only, hot)
	dxm1 memtrace.F64

	// pre-compute-only and post-processing-only data (untouched in the
	// main loop; Figure 7's 24.3%)
	diagSetup, aggBuf memtrace.F64

	// unevenly-touched structures
	filter   memtrace.F64 // applied every 4th step
	turbHist memtrace.F64 // written only in steps 2-3

	// long-term heap work arrays (gather/scatter buffers)
	gsWork memtrace.F64
	gsObj  *memtrace.Object

	// gatherFields are the targets of the neighbour-face indirection.
	gatherFields [6]memtrace.F64

	checksum float64
}

// New returns a Nek5000 proxy at the given problem scale (1.0 = calibrated
// default, ~13 MB footprint: Table I's 824 MB per task divided by 64).
func New(scale float64) *App {
	e := int(1000 * scale)
	if e < 8 {
		e = 8
	}
	return &App{scale: scale, elements: e}
}

// Name implements apps.App.
func (a *App) Name() string { return "nek5000" }

// Description implements apps.App.
func (a *App) Description() string {
	return "spectral-element incompressible fluid flow (Nek5000 proxy, 2D eddy problem)"
}

func (a *App) npts() int { return polyOrder * polyOrder * polyOrder }

// Setup allocates and initializes every data structure (pre-computing
// phase).
func (a *App) Setup(tr *memtrace.Tracer) error {
	n3 := a.npts()
	e := a.elements
	rng := kernels.NewRNG(11)

	// Solution fields.
	a.vx, _ = tr.GlobalF64("vx", e*n3)
	a.vy, _ = tr.GlobalF64("vy", e*n3)
	a.vz, _ = tr.GlobalF64("vz", e*n3)
	a.temp, _ = tr.GlobalF64("t", e*n3)
	a.pr, _ = tr.GlobalF64("pr", e*n3)
	a.rhs, _ = tr.GlobalF64("rhs", e*n3)

	// Mass matrices (velocity and temperature).
	a.bm1, _ = tr.GlobalF64("bm1", e*n3)
	a.tmass, _ = tr.GlobalF64("tmass", e*n3/4)

	// Read-only auxiliaries: inverse mass matrix, element-lagged mass
	// matrix, geometry, boundary conditions (70 condition records).
	a.binvm1, _ = tr.GlobalF64("binvm1", e*n3/3)
	a.bmlag, _ = tr.GlobalF64("bmlag", e*n3/6)
	a.geom, _ = tr.GlobalF64("geom", e*n3/4)
	a.bc, _ = tr.GlobalF64("cbc", 70*64)

	// Derivative matrix, shared by all elements.
	a.dxm1, _ = tr.GlobalF64("dxm1", polyOrder*polyOrder)

	// Pre-compute-only and post-only data: sized so that together they are
	// ~24.3% of the footprint.
	a.diagSetup, _ = tr.GlobalF64("diag_setup", e*n3*2)
	a.aggBuf, _ = tr.GlobalF64("mpi_agg", e*n3/2)

	// Unevenly-touched structures.
	a.filter, _ = tr.GlobalF64("filt", e*n3/8)
	a.turbHist, _ = tr.GlobalF64("turb_hist", e*n3/8)

	// Long-term heap work array (gather-scatter exchange buffers).
	a.gsWork, a.gsObj = tr.HeapF64("gs_work", "gs_setup.f:88", e*8)

	// Initialization: fields get the eddy initial condition; auxiliaries
	// are derived from the mass matrix (read bm1, write the auxiliaries).
	f := tr.Enter("init_eddy")
	defer tr.Leave()
	kernels.FillRandom(a.bm1, rng, 0.5, 1.5)
	kernels.FillRandom(a.tmass, rng, 0.5, 1.5)
	kernels.FillRandom(a.geom, rng, -1, 1)
	kernels.FillRandom(a.bc, rng, 0, 1)
	kernels.FillRandom(a.dxm1, rng, -1, 1)
	for i := 0; i < a.binvm1.Len(); i++ {
		a.binvm1.Store(i, 1.0/a.bm1.Load(i%a.bm1.Len()))
	}
	for i := 0; i < a.bmlag.Len(); i++ {
		a.bmlag.Store(i, a.bm1.Load(i)*0.99)
	}
	for i := 0; i < a.vx.Len(); i++ {
		x := float64(i%n3) / float64(n3)
		a.vx.Store(i, math.Sin(2*math.Pi*x))
		a.vy.Store(i, math.Cos(2*math.Pi*x))
		a.vz.Store(i, 0)
		a.temp.Store(i, 1)
		a.pr.Store(i, 0)
		a.rhs.Store(i, 0)
	}
	tr.Compute(uint64(4 * a.vx.Len()))
	// Diagonal preconditioner setup: touched here, never again.
	kernels.FillRandom(a.diagSetup, rng, 0.9, 1.1)
	kernels.FillRandom(a.filter, rng, 0.9, 1.1)
	a.gsWork.Fill(0)
	a.gatherFields = [6]memtrace.F64{a.vx, a.vy, a.vz, a.temp, a.pr, a.rhs}
	_ = f
	return nil
}

// Step advances one timestep: a Helmholtz-like smoothing pass applied
// element by element through stack-resident locals.
func (a *App) Step(tr *memtrace.Tracer, iter int) error {
	n3 := a.npts()
	n := polyOrder

	// Re-lag the mass matrices in the first timestep only, and only where
	// properties changed (every 8th entry): with ~10 reads per entry per
	// run against 1/8 write per entry, their read/write ratio exceeds 50 —
	// the "R/W > 50" population of Figure 3.
	if iter == 1 {
		fr := tr.Enter("setprop")
		for i := 0; i < a.bm1.Len(); i++ {
			v := a.bm1.Load(i)
			if i%8 == 0 {
				a.bm1.Store(i, v*1.0001)
			}
		}
		for i := 0; i < a.tmass.Len(); i++ {
			v := a.tmass.Load(i)
			if i%8 == 0 {
				a.tmass.Store(i, v*1.0001)
			}
		}
		tr.Compute(uint64(a.bm1.Len() + a.tmass.Len()))
		tr.Leave()
		_ = fr
	}

	sum := 0.0
	for e := 0; e < a.elements; e++ {
		fr := tr.Enter("ax_helm") // the element operator kernel
		local := fr.LocalF64(n3)
		work := fr.LocalF64(n3)

		base := e * n3
		// Copy-in: global reads, stack writes.
		for i := 0; i < n3; i++ {
			local.Store(i, a.vx.Load(base+i))
		}
		// Three tensor contractions along x, y, z: for each output point,
		// read a row of the derivative matrix from the stack-resident copy
		// and a line of the local field.  The derivative matrix is first
		// staged into the frame (its global copy keeps a high ratio).
		dloc := fr.LocalF64(n * n)
		for i := 0; i < n*n; i++ {
			dloc.Store(i, a.dxm1.Load(i))
		}
		// Four passes: first derivatives along x, y, z plus the repeated
		// z pass of the Helmholtz operator's second-derivative term.
		for dim := 0; dim < 4; dim++ {
			for p := 0; p < n3; p++ {
				i := p / (n * n)
				rem := p % (n * n)
				j := rem / n
				k := rem % n
				acc := 0.0
				for m := 0; m < n; m++ {
					var q int
					switch dim % 3 {
					case 0:
						q = (m*n+j)*n + k
					case 1:
						q = (i*n+m)*n + k
					default:
						q = (i*n+j)*n + m
					}
					acc += dloc.Load(i%n*n+m) * local.Load(q)
				}
				work.Store(p, acc)
				tr.Compute(uint64(2 * n))
			}
		}
		// Element update using the mass matrix (global reads with high
		// ratio) and the inverse mass matrix (read-only).
		for i := 0; i < n3; i++ {
			w := work.Load(i) * a.bm1.Load(base+i) * a.binvm1.Load((base+i)%a.binvm1.Len())
			work.Store(i, w)
			sum += w
		}
		tr.Compute(uint64(3 * n3))
		// Neighbour-face gather: the element's boundary exchange reads
		// solution values at mesh-indirection offsets, effectively random
		// positions spread across the fields — the irregular slice of
		// Nek5000's traffic that prefetching cannot hide (§V).
		h := uint64(e+1)*0x9E3779B97F4A7C15 + uint64(iter)
		for g := 0; g < 12; g++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			f := a.gatherFields[int(h%6)]
			sum += f.Load(int((h >> 8) % uint64(a.vx.Len())))
		}
		tr.Compute(48)
		// Copy-out: stack reads, global writes.
		for i := 0; i < n3; i++ {
			a.vx.Store(base+i, a.vx.Load(base+i)+0.01*work.Load(i))
		}
		tr.Compute(uint64(2 * n3))
		tr.Leave()
	}

	// Field updates on global arrays: vy/vz/temp relaxations plus the
	// right-hand side (global traffic balancing the stack share to ~75%).
	fr := tr.Enter("makef")
	for i := 0; i < a.rhs.Len(); i++ {
		r := a.vy.Load(i)*0.5 + a.geom.Load(i%a.geom.Len())*0.1
		a.rhs.Store(i, r)
		a.vy.Add(i, 0.001*r)
		a.vz.Add(i, 0.0005*r)
	}
	tr.Compute(uint64(6 * a.rhs.Len()))
	// Temperature relaxation against the (rarely written) temperature mass
	// matrix.
	for i := 0; i < a.tmass.Len(); i++ {
		a.temp.Store(i, a.temp.Load(i)*0.999+0.001*a.tmass.Load(i))
	}
	tr.Compute(uint64(3 * a.tmass.Len()))
	// Pressure correction from the right-hand side, weighted by the
	// element-lagged mass matrix (read-only during the loop).
	for i := 0; i < a.pr.Len(); i++ {
		a.pr.Store(i, a.pr.Load(i)+0.001*a.rhs.Load(i)*a.bmlag.Load(i%a.bmlag.Len()))
	}
	tr.Compute(uint64(3 * a.pr.Len()))
	tr.Leave()
	_ = fr

	// Boundary conditions: a sweep over the 70 read-only records.
	frb := tr.Enter("bcdirvc")
	for i := 0; i < a.bc.Len(); i += 8 {
		sum += a.bc.Load(i)
	}
	tr.Compute(uint64(a.bc.Len() / 8))
	tr.Leave()
	_ = frb

	// Spectral filter: only every 4th timestep (uneven touch, Figure 8).
	if iter%4 == 0 {
		frf := tr.Enter("q_filter")
		for i := 0; i < a.filter.Len(); i++ {
			a.temp.Store(i%a.temp.Len(), a.temp.Load(i%a.temp.Len())*a.filter.Load(i))
		}
		tr.Compute(uint64(2 * a.filter.Len()))
		tr.Leave()
		_ = frf
	}
	// Turbulence history: written only in timesteps 2 and 3.
	if iter == 2 || iter == 3 {
		frt := tr.Enter("turb_stats")
		for i := 0; i < a.turbHist.Len(); i++ {
			a.turbHist.Store(i, a.vx.Load(i%a.vx.Len()))
		}
		tr.Compute(uint64(a.turbHist.Len()))
		tr.Leave()
		_ = frt
	}

	// Short-term heap scratch: allocated and freed within the timestep
	// (gather-scatter staging); same signature every timestep, so the tool
	// tracks it as one recurring object.
	frg := tr.Enter("gs_op")
	scratch, obj := tr.HeapF64("gs_stage", "gs_op.f:142", a.elements)
	for i := 0; i < scratch.Len(); i++ {
		scratch.Store(i, a.gsWork.Load(i%a.gsWork.Len()))
	}
	for i := 0; i < a.gsWork.Len(); i++ {
		a.gsWork.Store(i, scratch.Load(i%scratch.Len())*0.5)
	}
	tr.Compute(uint64(scratch.Len() + a.gsWork.Len()))
	tr.Free(obj)
	tr.Leave()
	_ = frg

	a.checksum = sum
	return nil
}

// Post aggregates results (post-processing phase): the aggregation buffers
// are touched here for the first time since allocation.
func (a *App) Post(tr *memtrace.Tracer) error {
	fr := tr.Enter("outpost")
	for i := 0; i < a.aggBuf.Len(); i++ {
		a.aggBuf.Store(i, a.vx.Load(i%a.vx.Len()))
	}
	tr.Compute(uint64(a.aggBuf.Len()))
	tr.Leave()
	_ = fr
	return nil
}

// Check validates that the run computed finite results.
func (a *App) Check() error {
	if math.IsNaN(a.checksum) || math.IsInf(a.checksum, 0) {
		return fmt.Errorf("nekmini: checksum diverged: %v", a.checksum)
	}
	for i, v := range a.vx.Raw() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("nekmini: vx[%d] diverged: %v", i, v)
		}
	}
	return nil
}

// Input implements apps.InputDescriber (Table I's input column).
func (a *App) Input() string {
	return fmt.Sprintf("2D eddy problem, %d spectral elements of order %d", a.elements, polyOrder)
}
