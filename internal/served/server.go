package served

import (
	"errors"
	"io"
	"net/http"
	"strconv"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/obs"
)

// Server is the HTTP/JSON frontend over a Manager — the nvserved jobs
// API.  Construct with NewServer and mount it as an http.Handler.
//
// Endpoints (all payloads are the versioned shapes of
// internal/experiments: JobSpec in, JobResult out):
//
//	POST   /jobs             submit a JobSpec; 202 + JobResult (state queued).
//	                         400 invalid spec, 429 queue full, 503 draining
//	                         or breaker open.
//	GET    /jobs             list every job as status JobResults, in
//	                         submission order.
//	GET    /jobs/{id}        one job's JobResult (full once terminal).
//	GET    /jobs/{id}/report the finished report, text/plain.  202 while
//	                         queued/running, 409 failed, 410 cancelled.
//	GET    /jobs/{id}/events NDJSON stream of runner.EventRecord progress
//	                         events from ?after=<seq>; stays open until the
//	                         job is terminal and the buffer is drained.
//	POST   /jobs/{id}/cancel request cancellation; 202 + status JobResult.
//	GET    /metrics          observability snapshot (text; ?format=json
//	                         for JSON).
//	GET    /healthz          liveness probe: JSON {status, recovered,
//	                         recovery} — recovery is the journal replay
//	                         summary when the manager was built with Open.
type Server struct {
	m        *Manager
	mux      *http.ServeMux
	requests func(route string) *obs.Counter
}

// NewServer returns the HTTP frontend for m.
func NewServer(m *Manager) *Server {
	s := &Server{
		m: m,
		requests: func(route string) *obs.Counter {
			return m.reg.Counter("served_requests_total", obs.L("route", route))
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the jobs API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// body returns the response body writer, wrapped with the serving-path
// fault injector when the manager config arms a writer-target spec.
func (s *Server) body(w http.ResponseWriter) io.Writer {
	if s.m.cfg.Fault.Is(faults.TargetWriter) {
		return faults.Writer(s.m.cfg.Fault, w)
	}
	return w
}

// writeJSON renders v through the shared CLI encoder, so HTTP payloads
// are byte-identical to the tools' -json files.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := cli.EncodeJSON(s.body(w), v); err != nil {
		// Headers are gone; nothing to do beyond noting the failure.
		s.m.reg.Counter("served_response_errors_total").Inc()
	}
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps a manager error onto its status code and JSON body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests("submit").Inc()
	spec, err := experiments.DecodeJobSpec(r.Body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := s.m.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, job.Result())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.requests("list").Inc()
	jobs := s.m.Jobs()
	out := make([]experiments.JobResult, 0, len(jobs))
	for _, job := range jobs {
		res := job.Result()
		// The list is a status view; full reports come from /report.
		res.Report = ""
		out = append(out, res)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.requests("get").Inc()
	job, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, job.Result())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.requests("report").Inc()
	job, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	res := job.Result()
	switch res.State {
	case experiments.StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(s.body(w), res.Report); err != nil {
			s.m.reg.Counter("served_response_errors_total").Inc()
		}
	case experiments.StateFailed:
		s.writeJSON(w, http.StatusConflict, res)
	case experiments.StateCancelled:
		s.writeJSON(w, http.StatusGone, res)
	default:
		s.writeJSON(w, http.StatusAccepted, res)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.requests("events").Inc()
	job, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "after must be a non-negative integer"})
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	body := s.body(w)
	pos := after
	for {
		events, done, err := job.Next(r.Context(), pos)
		if err != nil {
			return // client went away
		}
		for _, ev := range events {
			if err := cli.EncodeCompactJSON(body, ev); err != nil {
				s.m.reg.Counter("served_response_errors_total").Inc()
				return
			}
		}
		pos += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if done && len(events) == 0 {
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.requests("cancel").Inc()
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		s.writeError(w, err)
		return
	}
	job, err := s.m.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, job.Result())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests("metrics").Inc()
	snap := s.m.reg.Snapshot()
	write := snap.WriteText
	contentType := "text/plain; charset=utf-8"
	if r.URL.Query().Get("format") == "json" {
		write = snap.WriteJSON
		contentType = "application/json"
	}
	w.Header().Set("Content-Type", contentType)
	if err := write(s.body(w)); err != nil {
		s.m.reg.Counter("served_response_errors_total").Inc()
	}
}

// healthBody is the /healthz payload.  Recovered is hoisted to the top
// level so probes can alert on a crash-restart without digging into the
// nested summary.
type healthBody struct {
	Status    string    `json:"status"`
	Recovered bool      `json:"recovered"`
	Recovery  *Recovery `json:"recovery,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests("healthz").Inc()
	body := healthBody{Status: "ok"}
	if rec, ok := s.m.RecoveryInfo(); ok {
		body.Recovered = rec.Recovered
		body.Recovery = &rec
	}
	s.writeJSON(w, http.StatusOK, body)
}
