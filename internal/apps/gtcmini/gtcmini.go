// Package gtcmini is the GTC proxy: a gyrokinetic particle-in-cell
// turbulence mini-app (paper §VI; poloidal grid 392, one tracked particle
// species, 7 particles per cell).
//
// GTC's profile in §VII is the least NVRAM-friendly of the four codes:
//
//   - Stack references are a minority (~44.3% of references) with a low
//     read/write ratio (~3.48): per-particle interpolation weights are
//     written and consumed within tight gather/push/scatter loops.
//   - Heap data dominates (GTC is Fortran-90 with allocatable particle and
//     field arrays), and most objects have low read/write ratios — the
//     particle arrays are rewritten every push and the charge-density grid
//     is a scatter target (read-modify-write).
//   - Almost every object is touched in every timestep (the paper omits
//     GTC from Figure 7 for this reason), and reference rates are constant
//     across iterations (Figure 11).
//   - The exception: read-only auxiliary radial interpolation arrays used
//     to relate particle positions to the field grid.
//   - Short-term heap scratch (particle-shift staging) is allocated and
//     freed within each timestep.
package gtcmini

import (
	"fmt"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/apps/kernels"
	"nvscavenger/internal/memtrace"
)

func init() {
	apps.Register("gtc", func(scale float64) apps.App { return New(scale) })
}

const attrs = 6 // particle attributes: psi, theta, zeta, rho, w, vpar

// App is the GTC proxy.
type App struct {
	scale     float64
	particles int
	grid      int

	// heap arrays (Fortran-90 allocatables)
	zion, zion0       memtrace.F64 // particle phase space, current and lagged
	density, evector  memtrace.F64 // charge density and field grid
	zionObj, zion0Obj *memtrace.Object

	// read-only auxiliary radial interpolation arrays (global)
	rapidr memtrace.F64

	// small post-processing diagnostics
	diag memtrace.F64

	checksum float64
}

// New returns a GTC proxy at the given scale (1.0 ~ 3.4 MB footprint:
// Table I's 218 MB per task divided by 64).
func New(scale float64) *App {
	np := int(24000 * scale)
	if np < 256 {
		np = 256
	}
	ng := int(8000 * scale)
	if ng < 64 {
		ng = 64
	}
	return &App{scale: scale, particles: np, grid: ng}
}

// Name implements apps.App.
func (a *App) Name() string { return "gtc" }

// Description implements apps.App.
func (a *App) Description() string {
	return "gyrokinetic particle-in-cell turbulence simulation (GTC proxy)"
}

// Setup allocates particle and field arrays (pre-computing phase).
func (a *App) Setup(tr *memtrace.Tracer) error {
	np, ng := a.particles, a.grid
	rng := kernels.NewRNG(37)

	a.zion, a.zionObj = tr.HeapF64("zion", "setup.F90:311", np*attrs)
	a.zion0, a.zion0Obj = tr.HeapF64("zion0", "setup.F90:312", np*attrs)
	a.density, _ = tr.HeapF64("densityi", "setup.F90:340", ng)
	a.evector, _ = tr.HeapF64("evector", "setup.F90:344", 3*ng)
	a.rapidr, _ = tr.GlobalF64("rapid_r", ng/4)
	a.diag, _ = tr.GlobalF64("diagnosis", 2048)

	fr := tr.Enter("load")
	defer tr.Leave()
	_ = fr
	// Uniform loading with small perturbations.
	for p := 0; p < np; p++ {
		a.zion.Store(p*attrs+0, rng.Float64())           // psi
		a.zion.Store(p*attrs+1, rng.Float64()*2*math.Pi) // theta
		a.zion.Store(p*attrs+2, rng.Float64()*2*math.Pi) // zeta
		a.zion.Store(p*attrs+3, rng.Float64()*0.1)       // rho
		a.zion.Store(p*attrs+4, 1.0)                     // weight
		a.zion.Store(p*attrs+5, rng.Float64()-0.5)       // vpar
	}
	tr.Compute(uint64(6 * np))
	a.zion0.Fill(0)
	a.density.Fill(0)
	a.evector.Fill(0)
	for i := 0; i < a.rapidr.Len(); i++ {
		a.rapidr.Store(i, float64(i)/float64(a.rapidr.Len()))
	}
	tr.Compute(uint64(a.rapidr.Len()))
	return nil
}

// Step advances one PIC timestep: charge deposition (scatter), field solve,
// and particle push (gather).
func (a *App) Step(tr *memtrace.Tracer, iter int) error {
	np, ng := a.particles, a.grid
	sum := 0.0

	// Zero the charge accumulation grid.
	frz := tr.Enter("zero_density")
	a.density.Fill(0)
	tr.Compute(uint64(ng))
	tr.Leave()
	_ = frz

	// chargei: deposit particle charge onto the grid; pushi: gather the
	// field and advance the particle.  Both work through stack-resident
	// interpolation weights.
	fr := tr.Enter("chargei_pushi")
	wt := fr.LocalF64(4)
	ef := fr.LocalF64(1)
	for p := 0; p < np; p++ {
		base := p * attrs
		psi := a.zion.Load(base + 0)
		theta := a.zion.Load(base + 1)

		// Radial interpolation against the read-only auxiliary array.
		r := a.rapidr.Load(int(psi*float64(a.rapidr.Len()-1)) % a.rapidr.Len())

		// Compute the four interpolation weights (stack writes).
		cell := int(theta / (2 * math.Pi) * float64(ng-4))
		if cell < 0 {
			cell = 0
		}
		frac := theta/(2*math.Pi)*float64(ng-4) - float64(cell)
		wt.Store(0, (1-frac)*(1-r))
		wt.Store(1, frac*(1-r))
		wt.Store(2, (1-frac)*r)
		wt.Store(3, frac*r)
		tr.Compute(8)

		// Scatter: read each weight, read-modify-write the density grid.
		w := a.zion.Load(base + 4)
		for k := 0; k < 4; k++ {
			a.density.Add((cell+k)%ng, wt.Load(k)*w)
		}
		tr.Compute(8)

		// Gather: read each weight again against the field grid (two field
		// components per corner pair) and store the local field value.
		e := 0.0
		for k := 0; k < 4; k++ {
			e += wt.Load(k) * a.evector.Load((3*(cell+k))%(3*ng))
		}
		e += a.evector.Load((3*cell+1)%(3*ng)) * 0.1
		e += a.evector.Load((3*cell+2)%(3*ng)) * 0.05
		ef.Store(0, e)
		tr.Compute(12)

		// Push: advance the particle using the gathered field; the lagged
		// copy participates in the second-order (leapfrog-like) step.
		zeta := a.zion.Load(base + 2)
		rho := a.zion.Load(base + 3)
		vpar := a.zion.Load(base + 5)
		eNow := ef.Load(0)
		oldTheta := a.zion0.Load(base + 1)
		oldVpar := a.zion0.Load(base + 5)
		newTheta := math.Mod(theta+0.01*vpar+0.001*eNow+1e-4*oldTheta+2*math.Pi, 2*math.Pi)
		newVpar := vpar + 0.001*eNow + 1e-5*oldVpar
		a.zion0.Store(base+1, theta)
		a.zion0.Store(base+5, vpar)
		a.zion.Store(base+1, newTheta)
		a.zion.Store(base+2, math.Mod(zeta+0.005*vpar+1e-5*rho+2*math.Pi, 2*math.Pi))
		a.zion.Store(base+5, newVpar)
		// Weight evolution reads the weights twice more: once for the
		// delta-f increment and once for the normalization check.
		dw, norm := 0.0, 0.0
		for k := 0; k < 4; k++ {
			dw += wt.Load(k)
		}
		for k := 0; k < 4; k++ {
			norm += wt.Load(k) * 0.25
		}
		eAgain := ef.Load(0)
		a.zion.Store(base+4, w+1e-6*dw*eAgain/(1+norm))
		tr.Compute(24)
		sum += newTheta
	}
	tr.Leave()
	_ = fr

	// Field solve: smooth the density into the three field components.
	frf := tr.Enter("poisson")
	for i := 0; i < ng; i++ {
		d := a.density.Load(i)
		a.evector.Store(3*i+0, d*0.5)
		a.evector.Store(3*i+1, d*0.3)
		a.evector.Store(3*i+2, d*0.2)
	}
	tr.Compute(uint64(4 * ng))
	tr.Leave()
	_ = frf

	// Short-term heap scratch: particle-shift staging allocated and freed
	// within the step (same signature each iteration).
	frs := tr.Enter("shifti")
	stage, obj := tr.HeapF64("shift_stage", "shifti.F90:95", np/8)
	for i := 0; i < stage.Len(); i++ {
		stage.Store(i, a.zion.Load((i*attrs+1)%a.zion.Len()))
	}
	for i := 0; i < stage.Len(); i++ {
		sum += stage.Load(i)
	}
	tr.Compute(uint64(2 * stage.Len()))
	tr.Free(obj)
	tr.Leave()
	_ = frs

	a.checksum = sum
	return nil
}

// Post writes the small diagnostics history.
func (a *App) Post(tr *memtrace.Tracer) error {
	fr := tr.Enter("diagnosis")
	for i := 0; i < a.diag.Len(); i++ {
		a.diag.Store(i, a.density.Load(i%a.density.Len()))
	}
	tr.Compute(uint64(a.diag.Len()))
	tr.Leave()
	_ = fr
	return nil
}

// Check validates particle coordinates stayed in range.
func (a *App) Check() error {
	if math.IsNaN(a.checksum) || math.IsInf(a.checksum, 0) {
		return fmt.Errorf("gtcmini: checksum diverged")
	}
	raw := a.zion.Raw()
	for p := 0; p < a.particles; p++ {
		th := raw[p*attrs+1]
		if th < 0 || th >= 2*math.Pi+1e-9 {
			return fmt.Errorf("gtcmini: particle %d theta out of range: %v", p, th)
		}
	}
	return nil
}

// Input implements apps.InputDescriber (Table I's input column).
func (a *App) Input() string {
	return fmt.Sprintf("%d tracked particles on a %d-point poloidal grid", a.particles, a.grid)
}
