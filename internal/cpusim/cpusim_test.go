package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"nvscavenger/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	good := PaperConfig(10)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROB = 0 },
		func(c *Config) { c.MissBuffer = 0 },
		func(c *Config) { c.L1HitCycles = 0 },
		func(c *Config) { c.L2HitCycles = 0 }, // below L1
		func(c *Config) { c.MemLatencyNS = 0 },
	}
	for i, mutate := range cases {
		cfg := PaperConfig(10)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	MustNew(Config{})
}

func TestComputeOnlyIPCIsIssueWidth(t *testing.T) {
	core := MustNew(PaperConfig(10))
	core.Event(100000, trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	ipc := core.IPC()
	if ipc < 3.9 || ipc > 4.0 {
		t.Fatalf("compute-only IPC = %v, want ~4 (issue width)", ipc)
	}
}

func TestL1HitIsCheap(t *testing.T) {
	core := MustNew(PaperConfig(10))
	// Repeatedly touch one line: first access misses, rest hit L1.
	for i := 0; i < 1000; i++ {
		core.Event(0, trace.Access{Addr: 64, Size: 8, Op: trace.Read})
	}
	s := core.Stats()
	if s.L1Hits != 999 {
		t.Fatalf("L1 hits = %d, want 999", s.L1Hits)
	}
	// 1000 instructions, width 4, all 1-cycle: ~250 cycles + one miss.
	if s.Cycles > 300+s.Cycles*0 {
		t.Fatalf("cycles = %v, want ~250-300", s.Cycles)
	}
}

func TestMemoryLatencyMonotonicity(t *testing.T) {
	run := func(latNS float64) float64 {
		core := MustNew(PaperConfig(latNS))
		// Strided walk (one line per 4 KB page, beyond the stream
		// prefetcher's reach) over a range far larger than L2: every
		// access misses both caches.
		for i := 0; i < 20000; i++ {
			addr := uint64(i%131072) * 4096
			core.Event(2, trace.Access{Addr: addr, Size: 8, Op: trace.Read})
		}
		return core.Cycles()
	}
	c10, c12, c20, c100 := run(10), run(12), run(20), run(100)
	if !(c10 <= c12 && c12 <= c20 && c20 <= c100) {
		t.Fatalf("cycles not monotone in latency: %v %v %v %v", c10, c12, c20, c100)
	}
	if c100 <= c10 {
		t.Fatal("10x latency should cost something on a miss-heavy stream")
	}
}

func TestMLPOverlapsIndependentMisses(t *testing.T) {
	// 64 independent misses with no intervening compute should overlap in
	// the miss buffer: total time far less than 64 serialized misses.
	core := MustNew(PaperConfig(100))
	n := 64
	for i := 0; i < n; i++ {
		core.Event(0, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
	}
	memLat := 100 * 2.266
	if core.Cycles() > memLat+float64(n) {
		t.Fatalf("cycles = %v: misses did not overlap (serial would be %v)",
			core.Cycles(), float64(n)*memLat)
	}
}

func TestMissBufferLimitsMLP(t *testing.T) {
	run := func(buf int) float64 {
		cfg := PaperConfig(100)
		cfg.MissBuffer = buf
		core := MustNew(cfg)
		for i := 0; i < 256; i++ {
			core.Event(0, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
		}
		return core.Cycles()
	}
	wide, narrow := run(64), run(1)
	if narrow <= wide*2 {
		t.Fatalf("1-entry miss buffer (%v cycles) should be much slower than 64-entry (%v)", narrow, wide)
	}
	if s := func() Stats {
		cfg := PaperConfig(100)
		cfg.MissBuffer = 1
		core := MustNew(cfg)
		for i := 0; i < 256; i++ {
			core.Event(0, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
		}
		return core.Stats()
	}(); s.MissStalls == 0 {
		t.Fatal("narrow miss buffer should record miss stalls")
	}
}

func TestROBWindowLimitsOverlap(t *testing.T) {
	// A miss followed by ROB-1 dependent-free computes overlaps fully; with
	// many more computes than the window, the window fills and stalls.
	run := func(rob int) float64 {
		cfg := PaperConfig(100)
		cfg.ROB = rob
		core := MustNew(cfg)
		for i := 0; i < 50; i++ {
			core.Event(1000, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
		}
		return core.Cycles()
	}
	small, large := run(8), run(512)
	if small < large {
		t.Fatalf("smaller window should never be faster: rob8=%v rob512=%v", small, large)
	}
}

func TestStoresAreBuffered(t *testing.T) {
	// A stream of store misses must not pay full memory latency: stores
	// retire through the store buffer.
	mk := func(op trace.Op) float64 {
		core := MustNew(PaperConfig(100))
		for i := 0; i < 5000; i++ {
			core.Event(0, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: op})
		}
		return core.Cycles()
	}
	loads, stores := mk(trace.Read), mk(trace.Write)
	if stores >= loads {
		t.Fatalf("store stream (%v cycles) should be faster than load stream (%v)", stores, loads)
	}
}

func TestSecondsConversion(t *testing.T) {
	core := MustNew(PaperConfig(10))
	core.Event(22660, trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	sec := core.Seconds()
	want := core.Cycles() / 2.266e9
	if math.Abs(sec-want) > 1e-15 {
		t.Fatalf("Seconds = %v, want %v", sec, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	core := MustNew(PaperConfig(10))
	core.Event(10, trace.Access{Addr: 0, Size: 8, Op: trace.Read})       // mem miss
	core.Event(10, trace.Access{Addr: 8, Size: 8, Op: trace.Read})       // L1 hit
	core.Event(10, trace.Access{Addr: 1 << 30, Size: 8, Op: trace.Read}) // mem miss
	s := core.Stats()
	if s.Instructions != 33 {
		t.Fatalf("instructions = %d, want 33", s.Instructions)
	}
	if s.MemRefs != 3 {
		t.Fatalf("mem refs = %d, want 3", s.MemRefs)
	}
	if s.L1Hits != 1 || s.MemAccesses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", s.L1Hits, s.MemAccesses)
	}
	if s.IPC <= 0 {
		t.Fatal("IPC must be positive")
	}
}

func TestSweepNormalization(t *testing.T) {
	replay := func(sink trace.PerfSink) {
		batch := make([]trace.PerfEvent, 0, 1024)
		for i := 0; i < 5000; i++ {
			batch = append(batch, trace.PerfEvent{Gap: 5, Access: trace.Access{Addr: uint64(i%65536) * 64, Size: 8, Op: trace.Read}})
			if len(batch) == cap(batch) {
				if err := sink.FlushEvents(batch); err != nil {
					panic(err)
				}
				batch = batch[:0]
			}
		}
		if err := sink.FlushEvents(batch); err != nil {
			panic(err)
		}
	}
	res, err := Sweep(
		[]string{"DRAM", "MRAM", "STTRAM", "PCRAM"},
		[]float64{10, 12, 20, 100},
		replay,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Normalized != 1 {
		t.Fatalf("baseline normalized = %v, want 1", res[0].Normalized)
	}
	for i := 1; i < 4; i++ {
		if res[i].Normalized < res[i-1].Normalized {
			t.Fatalf("normalized runtime not monotone: %+v", res)
		}
	}
	if res[3].Normalized <= 1.0 {
		t.Fatal("PCRAM (100ns) must show some slowdown on a miss-heavy stream")
	}
}

func TestSweepLengthMismatch(t *testing.T) {
	_, err := Sweep([]string{"a"}, []float64{1, 2}, func(trace.PerfSink) {})
	if err == nil {
		t.Fatal("mismatched sweep inputs must error")
	}
}

func TestPrefetcherHidesSequentialStreams(t *testing.T) {
	run := func(streams int) Stats {
		cfg := PaperConfig(100)
		cfg.PrefetchStreams = streams
		core := MustNew(cfg)
		// A pure sequential walk over 16 MB (new line every 8 loads).
		for i := 0; i < 200000; i++ {
			core.Event(2, trace.Access{Addr: uint64(i) * 8, Size: 8, Op: trace.Read})
		}
		return core.Stats()
	}
	with, without := run(16), run(0)
	if with.PrefetchHits == 0 {
		t.Fatal("sequential stream must produce prefetch hits")
	}
	if without.PrefetchHits != 0 {
		t.Fatal("disabled prefetcher must not hit")
	}
	if with.Cycles >= without.Cycles {
		t.Fatalf("prefetcher did not help: %v >= %v", with.Cycles, without.Cycles)
	}
	// Nearly every line after the first should be covered.
	if frac := float64(with.PrefetchHits) / float64(with.PrefetchHits+with.MemAccesses); frac < 0.9 {
		t.Fatalf("prefetch coverage = %.3f on a pure stream, want > 0.9", frac)
	}
}

func TestPrefetcherIgnoresRandomAccess(t *testing.T) {
	cfg := PaperConfig(100)
	core := MustNew(cfg)
	// 4 KB-strided pseudo-random pattern: no sequential lines.
	for i := 0; i < 20000; i++ {
		core.Event(2, trace.Access{Addr: uint64((i*2654435761)%1048576) * 4096, Size: 8, Op: trace.Read})
	}
	s := core.Stats()
	if s.PrefetchHits > s.MemAccesses/20 {
		t.Fatalf("prefetcher hit %d of %d on random traffic", s.PrefetchHits, s.MemAccesses)
	}
}

// Property: cycles are monotone non-decreasing in memory latency for any
// access pattern.
func TestQuickLatencyMonotone(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8) bool {
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		if n == 0 {
			return true
		}
		run := func(lat float64) float64 {
			core := MustNew(PaperConfig(lat))
			for i := 0; i < n; i++ {
				core.Event(uint64(gaps[i]), trace.Access{Addr: uint64(addrs[i]), Size: 8, Op: trace.Read})
			}
			return core.Cycles()
		}
		return run(10) <= run(20)+1e-9 && run(20) <= run(100)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: retire cycle is monotone over the run (in-order retirement).
func TestQuickRetireMonotone(t *testing.T) {
	f := func(addrs []uint32) bool {
		core := MustNew(PaperConfig(100))
		prev := 0.0
		for _, a := range addrs {
			core.Event(uint64(a%7), trace.Access{Addr: uint64(a), Size: 8, Op: trace.Read})
			if core.Cycles() < prev {
				return false
			}
			prev = core.Cycles()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStallCycleAttribution(t *testing.T) {
	// A tight ROB with long loads: the window stalls and the attributed
	// cycles must account for a visible share of the runtime.
	cfg := PaperConfig(100)
	cfg.ROB = 8
	core := MustNew(cfg)
	for i := 0; i < 200; i++ {
		core.Event(100, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
	}
	s := core.Stats()
	if s.ROBStallCycles <= 0 {
		t.Fatal("ROB stall cycles must be attributed")
	}
	if s.ROBStallCycles > s.Cycles {
		t.Fatalf("stall cycles %v exceed total %v", s.ROBStallCycles, s.Cycles)
	}
	// A narrow miss buffer attributes miss stalls instead.
	cfg = PaperConfig(100)
	cfg.MissBuffer = 1
	core = MustNew(cfg)
	for i := 0; i < 200; i++ {
		core.Event(0, trace.Access{Addr: uint64(i) * 4096, Size: 8, Op: trace.Read})
	}
	s = core.Stats()
	if s.MissStallCycles <= 0 {
		t.Fatal("miss-buffer stall cycles must be attributed")
	}
	// With serialization, miss stalls dominate the runtime.
	if s.MissStallCycles < s.Cycles/2 {
		t.Fatalf("miss stalls %v should dominate %v cycles", s.MissStallCycles, s.Cycles)
	}
}
