package pipeline

import (
	"fmt"

	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

// ShardedStack partitions one application run's iteration space across K
// per-shard stacks — each with its own tracer, cache hierarchy and seeded
// sampler — and deterministically merges their per-object statistics, cache
// counters, transaction traces and performance streams so the result is
// byte-identical to the K=1 stack at any shard count.
//
// The execution model is selective replay: every shard replays the
// application deterministically from the start up to the end of its owned
// span, so all simulator state (cache lines, sampler PRNG, attribution
// index) evolves exactly as in a full run, but recording and emission are
// gated to the contiguous iteration span the shard owns (memtrace.Window).
// Shard 0 owns the pre-computing phase, the last shard owns the
// post-processing phase and replays to the end.  Emitted transaction and
// perf streams are captured per shard in arena chunks and concatenated in
// (shard, sequence) order at Merge.
//
// Replay is what buys exactness: sharding trades total work (shard k replays
// e_k iterations to record e_k - s_k + 1) for per-shard independence, so K
// shards can run on K cores with no cross-shard synchronization at all.
type ShardedStack struct {
	cfg        Config
	iterations int
	stacks     []*Stack
	windows    []*memtrace.Window
	txCaps     []*TxChunkCapture
	perfCaps   []*PerfChunkCapture
	merged     *Stack
}

// BuildSharded assembles shards per-shard stacks over cfg for a run of the
// given main-loop iteration count.  The shard count is clamped to
// [1, iterations].  Access taps are not supported in sharded mode (a tap
// would observe every shard's replayed prefix, not the run's stream once);
// per-shard stacks are always built fused and uninstrumented — when
// cfg.Metrics is set, Merge publishes the exact pipeline counters a K=1
// instrumented run would have recorded.
func BuildSharded(cfg Config, iterations, shards int) (*ShardedStack, error) {
	if len(cfg.AccessTaps) > 0 {
		return nil, fmt.Errorf("pipeline: sharded stacks do not support access taps")
	}
	if iterations < 1 {
		return nil, fmt.Errorf("pipeline: sharded stack needs at least one main-loop iteration, got %d", iterations)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > iterations {
		shards = iterations
	}
	if cfg.Arenas == nil {
		cfg.Arenas = NewArenas(cfg.BufferSize)
	}
	ss := &ShardedStack{cfg: cfg, iterations: iterations}
	for k := 0; k < shards; k++ {
		win := &memtrace.Window{
			Start: k*iterations/shards + 1,
			End:   (k + 1) * iterations / shards,
			First: k == 0,
			Last:  k == shards-1,
		}
		scfg := cfg
		scfg.Metrics = nil
		scfg.Labels = nil
		scfg.window = win
		scfg.CaptureTx = false
		scfg.TxSinks = nil
		scfg.Perf = nil
		if cfg.CaptureTx || len(cfg.TxSinks) > 0 {
			tc := NewTxChunkCapture(cfg.Arenas.Tx)
			ss.txCaps = append(ss.txCaps, tc)
			scfg.TxSinks = []trace.TxSink{tc}
		}
		if cfg.Perf != nil {
			pc := NewPerfChunkCapture(cfg.Arenas.Perf)
			ss.perfCaps = append(ss.perfCaps, pc)
			scfg.Perf = pc
		}
		st, err := Build(scfg)
		if err != nil {
			return nil, err
		}
		ss.stacks = append(ss.stacks, st)
		ss.windows = append(ss.windows, win)
	}
	return ss, nil
}

// Shards returns the effective shard count (after clamping).
func (s *ShardedStack) Shards() int { return len(s.stacks) }

// Stack returns shard k's stack; drive its Tracer with the application.
func (s *ShardedStack) Stack(k int) *Stack { return s.stacks[k] }

// RunIterations returns how many main-loop iterations shard k must replay:
// selective replay runs the application from the start to the end of the
// shard's owned span.
func (s *ShardedStack) RunIterations(k int) int { return s.windows[k].End }

// Merge closes every shard and folds them into one stack equivalent to a
// K=1 run: merged per-object and per-segment statistics, merged cache
// counters, the captured transaction trace concatenated in (shard, seq)
// order, and the configured TxSinks/Perf consumers fed the merged streams.
// Arena chunks are handed back as they are delivered.  Merge is idempotent;
// the shards must not be used afterwards.
func (s *ShardedStack) Merge() (*Stack, error) {
	if s.merged != nil {
		return s.merged, nil
	}
	defer s.releaseCaptures()
	var err error
	for _, st := range s.stacks {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}

	tracers := make([]*memtrace.Tracer, len(s.stacks))
	for i, st := range s.stacks {
		tracers[i] = st.Tracer
	}
	merged := &Stack{Tracer: memtrace.MergeShards(tracers), closed: true}
	if s.stacks[len(s.stacks)-1].Hierarchy != nil {
		hiers := make([]*cachesim.Hierarchy, len(s.stacks))
		for i, st := range s.stacks {
			hiers[i] = st.Hierarchy
		}
		merged.Hierarchy = cachesim.MergeShards(hiers)
	}

	if len(s.txCaps) > 0 {
		var capture *Capture[trace.Transaction]
		if s.cfg.CaptureTx {
			total := 0
			for _, c := range s.txCaps {
				total += c.Len()
			}
			capture = &Capture[trace.Transaction]{Items: make([]trace.Transaction, 0, total)}
			merged.capture = capture
		}
		for _, c := range s.txCaps {
			err := c.Deliver(func(batch []trace.Transaction) error {
				for _, sink := range s.cfg.TxSinks {
					if err := sink.FlushTx(batch); err != nil {
						return err
					}
				}
				if capture != nil {
					capture.Items = append(capture.Items, batch...)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			c.Release()
		}
	}
	if s.cfg.Perf != nil {
		for _, c := range s.perfCaps {
			if err := c.Deliver(s.cfg.Perf.FlushEvents); err != nil {
				return nil, err
			}
			c.Release()
		}
	}

	if s.cfg.Metrics != nil {
		s.publishPipelineMetrics(merged)
	}
	s.merged = merged
	return merged, nil
}

// Close aborts a sharded run, closing every shard and handing captured
// arena chunks back; Merge closes the shards itself, so Close is only
// needed on error paths.
func (s *ShardedStack) Close() error {
	var err error
	for _, st := range s.stacks {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.releaseCaptures()
	return err
}

// releaseCaptures hands every per-shard capture's chunks back to the
// arenas.  Release is idempotent, so this is safe after a successful
// Merge (which releases each capture as it is delivered) and is what
// keeps error returns from leaking chunks out of the arena accounting.
func (s *ShardedStack) releaseCaptures() {
	for _, c := range s.txCaps {
		c.Release()
	}
	for _, c := range s.perfCaps {
		c.Release()
	}
}

// publishPipelineMetrics records the pipeline_* series a K=1 Counted-
// instrumented run would have produced.  The per-shard stacks run fused and
// uninstrumented (per-batch counting on the hot path would cost what fusion
// saved), but the counts are fully determined by the merged event totals:
// the legacy buffers flush full batches plus one final partial, so batch
// counts are exact ceilings.  Publishing after the merge keeps -metrics
// output byte-identical to an unsharded run at any shard count.
func (s *ShardedStack) publishPipelineMetrics(merged *Stack) {
	// Publication order mirrors Build's Counted registration order
	// (transactions, accesses, perf) so rendered metrics snapshots list the
	// series exactly as an instrumented K=1 build would.
	if merged.Hierarchy != nil {
		if len(s.txCaps) > 0 {
			txs := merged.Hierarchy.MemReads + merged.Hierarchy.MemWrites
			PublishStageMetrics(s.cfg.Metrics, "transactions", txs, trace.DefaultTxBufferSize, s.cfg.Labels...)
		}
		PublishStageMetrics(s.cfg.Metrics, "accesses", merged.Tracer.Sampled, s.cfg.BufferSize, s.cfg.Labels...)
	}
	if s.cfg.Perf != nil {
		PublishStageMetrics(s.cfg.Metrics, "perf", merged.Tracer.Sampled, s.cfg.BufferSize, s.cfg.Labels...)
	}
}

// PublishStageMetrics records the Counted series for one stage boundary
// retroactively: the events that crossed it and the exact batch count the
// legacy staging buffers would have flushed (full batches plus one final
// partial, so an exact ceiling).  Sharded frontends use it to restore stage
// counters for consumers — like a raw-access tap — that sharded stacks
// cannot drive live.  A zero or negative bufSize selects the default
// staging-buffer capacity; a nil registry is a no-op.
func PublishStageMetrics(reg *obs.Registry, stage string, events uint64, bufSize int, labels ...obs.Label) {
	if reg == nil {
		return
	}
	if bufSize <= 0 {
		bufSize = trace.DefaultBufferSize
	}
	ls := append(append([]obs.Label{}, labels...), obs.L("stage", stage))
	reg.Counter("pipeline_batches_total", ls...).Add(ceilDiv(events, uint64(bufSize)))
	reg.Counter("pipeline_events_total", ls...).Add(events)
	reg.Counter("pipeline_errors_total", ls...).Add(0)
}

// ceilDiv returns ceil(n/d) with ceilDiv(0, d) == 0.
func ceilDiv(n, d uint64) uint64 {
	if n == 0 {
		return 0
	}
	return (n + d - 1) / d
}
