package served

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
)

// quickSpec is the cheapest real job: one exhibit at tiny scale.
func quickSpec() experiments.JobSpec {
	return experiments.JobSpec{Exhibits: []string{"table1"}, Scale: 0.05, Iterations: 2}
}

// TestSubmitAssignsOrderedIDs: IDs are deterministic and the job list
// preserves submission order.
func TestSubmitAssignsOrderedIDs(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := m.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
	}
	want := []string{"job-1", "job-2", "job-3"}
	for i, id := range ids {
		if id != want[i] {
			t.Errorf("id %d = %s, want %s", i, id, want[i])
		}
	}
	jobs := m.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("job list = %d entries", len(jobs))
	}
	for i, job := range jobs {
		if job.ID() != want[i] {
			t.Errorf("list order %d = %s, want %s", i, job.ID(), want[i])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmissionSingleFlight: many clients submitting the same
// experiment concurrently share one set of executed runs through the
// shared cache, and every job still completes with a full report.
func TestConcurrentSubmissionSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Workers: 4, Queue: 32, Metrics: reg, Clock: fixedClock()})

	const clients = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = m.Submit(quickSpec())
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var report string
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		res, err := jobs[i].Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != experiments.StateDone {
			t.Fatalf("client %d state = %s (%s)", i, res.State, res.Error)
		}
		if report == "" {
			report = res.Report
		} else if res.Report != report {
			t.Errorf("client %d report differs", i)
		}
	}

	snap := reg.Snapshot()
	runs, _ := snap.Counter("runner_runs_total")
	misses, _ := snap.Counter("runner_misses_total")
	if runs != misses {
		t.Errorf("runs = %d, misses = %d: a deduplicated run executed twice", runs, misses)
	}
	// table1 at one scale/iteration config: 4 apps, one run each.
	if runs != 4 {
		t.Errorf("executed runs = %d, want 4 (one per app, shared across %d clients)", runs, clients)
	}
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShardedJobByteIdentical: a sharded job served over the jobs API
// produces the same report bytes as the unsharded job.  Each spec runs in
// its own manager: sharded and unsharded jobs deliberately share the
// healthy run cache (the merged products are byte-identical), so a single
// manager would memoize the first job's runs and never execute the second
// path.
func TestShardedJobByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	plain := quickSpec()
	sharded := quickSpec()
	sharded.Shards = 2

	var reports []string
	for _, spec := range []experiments.JobSpec{plain, sharded} {
		m := NewManager(Config{Workers: 1})
		job, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != experiments.StateDone {
			t.Fatalf("state = %s (%s)", res.State, res.Error)
		}
		// The "generated <timestamp>" header is wall-clock; everything
		// below it must match byte for byte.
		report := res.Report
		if i := strings.Index(report, "\n"); i >= 0 {
			if j := strings.Index(report[i+1:], "\n"); j >= 0 && strings.HasPrefix(report[i+1:], "generated ") {
				report = report[:i+1] + report[i+1+j+1:]
			}
		}
		reports = append(reports, report)
		if err := m.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if reports[0] != reports[1] {
		t.Error("sharded job report diverges from unsharded job")
	}
}

// TestFaultPartitionedCaches: a chaos job must not share memoized runs
// with healthy jobs — the fault spec partitions the cache.
func TestFaultPartitionedCaches(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	healthy := quickSpec()
	chaos := quickSpec()
	chaos.Fault = "sink:every=3,seed=7"

	if m.cacheFor(healthy.RunCacheKey()) == m.cacheFor(chaos.RunCacheKey()) {
		t.Fatal("healthy and chaos jobs share a run cache")
	}
	if m.cacheFor(healthy.RunCacheKey()) != m.cacheFor(quickSpec().RunCacheKey()) {
		t.Fatal("two healthy specs got different caches")
	}
	// Canonicalized fault specs land in one partition regardless of
	// parameter spelling.
	reordered := quickSpec()
	reordered.Fault = "sink:seed=7,every=3"
	if m.cacheFor(chaos.RunCacheKey()) != m.cacheFor(reordered.RunCacheKey()) {
		t.Error("equivalent fault specs partitioned separately")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosJobDegradesGracefully: a job with an armed fault spec finishes
// as done with per-run error annotations, not as failed — the degraded
// contract of the batch tools carried into the service.
func TestChaosJobDegradesGracefully(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	spec := experiments.JobSpec{
		Exhibits:   []string{"table1", "table5"},
		Scale:      0.05,
		Iterations: 3,
		Fault:      "sink:every=3,seed=7",
	}
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != experiments.StateDone {
		t.Fatalf("chaos job state = %s (%s)", res.State, res.Error)
	}
	if len(res.RunErrors) == 0 {
		t.Error("chaos job reported no run errors")
	}
	if res.Report == "" {
		t.Error("chaos job served no report")
	}
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerRejectsWhileOpen: with the breaker armed, consecutive job
// failures open it and submissions bounce with ErrOverloaded until the
// cooldown admits a probe.
func TestBreakerRejectsWhileOpen(t *testing.T) {
	m := NewManager(Config{Workers: 1, Breaker: resilience.BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         2,
	}})
	// Trip the breaker the way runJob would after a failed job.
	m.breaker.Failure()

	if _, err := m.Submit(quickSpec()); err != ErrOverloaded {
		t.Fatalf("submit with open breaker: err = %v, want ErrOverloaded", err)
	}
	if _, err := m.Submit(quickSpec()); err != ErrOverloaded {
		t.Fatalf("second submit: err = %v, want ErrOverloaded", err)
	}
	// Cooldown elapsed (2 rejected calls): the next submission is the
	// half-open probe and goes through.
	job, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != experiments.StateDone {
		t.Fatalf("probe job state = %s", res.State)
	}
	if m.breaker.State() != resilience.Closed {
		t.Errorf("breaker after successful probe = %s, want closed", m.breaker.State())
	}
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainTwiceErrors: a second Drain reports instead of deadlocking on
// the closed queue.
func TestDrainTwiceErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(ctx); err == nil {
		t.Fatal("second drain must error")
	}
	if _, err := m.Submit(quickSpec()); err != ErrDraining {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
}
