package memtrace

import "nvscavenger/internal/trace"

// Typed arrays route every element access through the tracer, playing the
// role PIN's per-instruction instrumentation plays for a native binary: the
// tracer observes (address, size, op) for each reference while the program
// computes on real data.

// F64 is an instrumented float64 array.
type F64 struct {
	t    *Tracer
	base uint64
	data []float64
}

// Len returns the element count.
func (a F64) Len() int { return len(a.data) }

// Base returns the simulated base address.
func (a F64) Base() uint64 { return a.base }

// Load returns element i, recording an 8-byte read.
func (a F64) Load(i int) float64 {
	a.t.access(a.base+uint64(i)*8, 8, trace.Read)
	return a.data[i]
}

// Store sets element i, recording an 8-byte write.
func (a F64) Store(i int, v float64) {
	a.t.access(a.base+uint64(i)*8, 8, trace.Write)
	a.data[i] = v
}

// Add adds v to element i (one read plus one write, as the generated code
// for a load-modify-store would issue).
func (a F64) Add(i int, v float64) {
	a.t.access(a.base+uint64(i)*8, 8, trace.Read)
	a.t.access(a.base+uint64(i)*8, 8, trace.Write)
	a.data[i] += v
}

// Fill stores v into every element.
func (a F64) Fill(v float64) {
	for i := range a.data {
		a.Store(i, v)
	}
}

// Slice returns a sub-array view [lo, hi); accesses through the view are
// attributed to the parent object.
func (a F64) Slice(lo, hi int) F64 {
	return F64{t: a.t, base: a.base + uint64(lo)*8, data: a.data[lo:hi]}
}

// Raw exposes the backing slice WITHOUT tracing.  For test assertions and
// result verification only; never use it inside an instrumented kernel.
func (a F64) Raw() []float64 { return a.data }

// F32 is an instrumented float32 array (4-byte accesses): many production
// codes keep single-precision state to halve memory footprint and
// bandwidth.
type F32 struct {
	t    *Tracer
	base uint64
	data []float32
}

// Len returns the element count.
func (a F32) Len() int { return len(a.data) }

// Base returns the simulated base address.
func (a F32) Base() uint64 { return a.base }

// Load returns element i, recording a 4-byte read.
func (a F32) Load(i int) float32 {
	a.t.access(a.base+uint64(i)*4, 4, trace.Read)
	return a.data[i]
}

// Store sets element i, recording a 4-byte write.
func (a F32) Store(i int, v float32) {
	a.t.access(a.base+uint64(i)*4, 4, trace.Write)
	a.data[i] = v
}

// Add adds v to element i (read + write).
func (a F32) Add(i int, v float32) {
	a.t.access(a.base+uint64(i)*4, 4, trace.Read)
	a.t.access(a.base+uint64(i)*4, 4, trace.Write)
	a.data[i] += v
}

// Raw exposes the backing slice WITHOUT tracing (tests only).
func (a F32) Raw() []float32 { return a.data }

// HeapF32 allocates an n-element float32 array on the simulated heap.
func (t *Tracer) HeapF32(name, site string, n int) (F32, *Object) {
	obj := t.Malloc(name, site, uint64(n)*4)
	return F32{t: t, base: obj.Base, data: make([]float32, n)}, obj
}

// GlobalF32 registers an n-element float32 global array.
func (t *Tracer) GlobalF32(name string, n int) (F32, *Object) {
	obj := t.Global(name, uint64(n)*4)
	return F32{t: t, base: obj.Base, data: make([]float32, n)}, obj
}

// LocalF32 allocates an n-element float32 array in the current frame.
func (f Frame) LocalF32(n int) F32 {
	base := f.alloc(uint64(n) * 4)
	return F32{t: f.t, base: base, data: make([]float32, n)}
}

// I64 is an instrumented int64 array.
type I64 struct {
	t    *Tracer
	base uint64
	data []int64
}

// Len returns the element count.
func (a I64) Len() int { return len(a.data) }

// Base returns the simulated base address.
func (a I64) Base() uint64 { return a.base }

// Load returns element i, recording an 8-byte read.
func (a I64) Load(i int) int64 {
	a.t.access(a.base+uint64(i)*8, 8, trace.Read)
	return a.data[i]
}

// Store sets element i, recording an 8-byte write.
func (a I64) Store(i int, v int64) {
	a.t.access(a.base+uint64(i)*8, 8, trace.Write)
	a.data[i] = v
}

// Add adds v to element i (read + write).
func (a I64) Add(i int, v int64) {
	a.t.access(a.base+uint64(i)*8, 8, trace.Read)
	a.t.access(a.base+uint64(i)*8, 8, trace.Write)
	a.data[i] += v
}

// Raw exposes the backing slice WITHOUT tracing (tests only).
func (a I64) Raw() []int64 { return a.data }

// Mat is an instrumented dense row-major matrix over an F64 array.
type Mat struct {
	A    F64
	Rows int
	Cols int
}

// NewHeapMat allocates a rows×cols matrix on the simulated heap.
func (t *Tracer) NewHeapMat(name, site string, rows, cols int) (Mat, *Object) {
	a, obj := t.HeapF64(name, site, rows*cols)
	return Mat{A: a, Rows: rows, Cols: cols}, obj
}

// NewGlobalMat registers a rows×cols matrix in the global segment.
func (t *Tracer) NewGlobalMat(name string, rows, cols int) (Mat, *Object) {
	a, obj := t.GlobalF64(name, rows*cols)
	return Mat{A: a, Rows: rows, Cols: cols}, obj
}

// At returns m[i,j] (traced read).
func (m Mat) At(i, j int) float64 { return m.A.Load(i*m.Cols + j) }

// Set stores m[i,j] = v (traced write).
func (m Mat) Set(i, j int, v float64) { m.A.Store(i*m.Cols+j, v) }

// Add adds v to m[i,j] (traced read+write).
func (m Mat) Add(i, j int, v float64) { m.A.Add(i*m.Cols+j, v) }
