package checkpoint_test

import (
	"fmt"

	"nvscavenger/internal/checkpoint"
)

// Example compares checkpoint efficiency at an exascale node count.
func Example() {
	sys := checkpoint.System{
		Nodes:             1000000,
		StateBytesPerNode: 824e6,
		NodeMTBFHours:     50000,
		RestartSeconds:    10,
	}
	pfs, err := checkpoint.Evaluate(sys, checkpoint.ParallelFS())
	if err != nil {
		panic(err)
	}
	nv, err := checkpoint.Evaluate(sys, checkpoint.NodeNVRAM())
	if err != nil {
		panic(err)
	}
	fmt.Printf("system MTBF: %.0f s\n", sys.SystemMTBFSeconds())
	fmt.Printf("parallel-fs efficiency below 10%%: %v\n", pfs.Efficiency < 0.10)
	fmt.Printf("node-nvram efficiency above 85%%: %v\n", nv.Efficiency > 0.85)
	// Output:
	// system MTBF: 180 s
	// parallel-fs efficiency below 10%: true
	// node-nvram efficiency above 85%: true
}
