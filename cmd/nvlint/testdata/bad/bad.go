// Package bad is a deliberately failing fixture for nvlint's own CLI
// tests: one discarded error, nothing else.
package bad

import "errors"

func mayFail() error { return errors.New("bad") }

func use() { _ = mayFail() }

var _ = use
