// Quickstart: instrument a small computation with the NV-SCAVENGER
// substrate and inspect the three NVRAM-opportunity metrics per memory
// object.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
)

func main() {
	// A tracer observes every access the instrumented program makes.
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})

	// Pre-computing phase (iteration 0): allocate and initialize.
	// Global data: a coefficient table, built once and then only read.
	coeffs, _ := tr.GlobalF64("coefficients", 4096)
	for i := 0; i < coeffs.Len(); i++ {
		coeffs.Store(i, 1.0/float64(i+1))
	}
	// Heap data: the state vector the solver updates every step.
	state, _ := tr.HeapF64("state", "main.go:28", 4096)
	state.Fill(1.0)
	// Global data never used by the solver: a checkpoint staging area.
	tr.Global("checkpoint_buffer", 512*1024)

	// Main computation loop.
	for step := 1; step <= 10; step++ {
		tr.BeginIteration()
		frame := tr.Enter("relax")
		local := frame.LocalF64(64) // stack scratch
		for i := 0; i < 64; i++ {
			local.Store(i, float64(i))
		}
		sum := 0.0
		for i := 0; i < state.Len(); i++ {
			// Read-modify-write the state against the read-only table,
			// re-reading the stack scratch.
			v := state.Load(i)*0.99 + coeffs.Load(i%coeffs.Len())*local.Load(i%64)
			state.Store(i, v)
			sum += v
		}
		tr.Compute(uint64(4 * state.Len()))
		tr.Leave()
		tr.EndIteration()
		_ = sum
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}

	// Per-object metrics and placement advice.
	fmt.Printf("footprint: %.1f KB over %d iterations\n\n",
		float64(tr.Footprint())/1024, tr.MainLoopIterations())
	policy := core.DefaultPolicy(core.Category2)
	plan := core.Plan(tr, policy)
	fmt.Printf("%-20s %10s %12s %12s -> %s\n", "object", "size (KB)", "r/w ratio", "refs/Minstr", "placement")
	for _, adv := range plan.Advices {
		m := adv.Metrics
		fmt.Printf("%-20s %10.1f %12.2f %12.1f -> %-10s (%s)\n",
			adv.Object.Name, float64(m.SizeBytes)/1024, m.ReadWriteRatio, m.ReferenceRate,
			adv.Target, adv.Reason)
	}
	fmt.Printf("\n%.1f%% of the working set is suitable for NVRAM\n", plan.NVRAMShare*100)
}
