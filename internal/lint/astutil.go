package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcObject resolves an expression used as a call target to the
// *types.Func it denotes (package function or method), or nil.
func funcObject(p *Package, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// declName names a top-level declaration for allowlist matching:
// "Func" for functions, "Recv.Method" for methods, "-" for non-function
// declarations (package vars and constants).
func declName(d ast.Decl) string {
	fd, ok := d.(*ast.FuncDecl)
	if !ok {
		return "-"
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the receiver's type name, unwrapping pointers and
// type parameters.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// enclosingFuncs maps every node position range to the name of its
// enclosing top-level declaration by walking decls in order.  Passes use
// it through inspectDecls, which hands the declaration name down.
func inspectDecls(f *ast.File, visit func(decl ast.Decl, name string)) {
	for _, d := range f.Decls {
		visit(d, declName(d))
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether a call expression's result includes an
// error component (single error result or an error member of a tuple).
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// importedPkg finds an imported package of p by import-path suffix (e.g.
// "internal/trace"), or nil.  When p itself matches, p's package is
// returned, so passes can analyze the defining package too.
func importedPkg(p *Package, suffix string) *types.Package {
	if strings.HasSuffix(p.Pkg.Path(), suffix) {
		return p.Pkg
	}
	for _, imp := range p.Pkg.Imports() {
		if strings.HasSuffix(imp.Path(), suffix) {
			return imp
		}
	}
	return nil
}
