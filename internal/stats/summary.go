package stats

import "math"

// Summary is a single-pass running aggregate (Welford's algorithm): count,
// mean, variance, min, max and total without storing the samples.  The
// experiment runner uses it to summarize per-run wall times; it is equally
// suited to any metric stream too long to buffer.  The zero value is an
// empty Summary ready for use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
	total    float64
}

// Add folds one sample into the aggregate.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.total += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of samples.
func (s Summary) Count() int { return s.n }

// Total returns the sum of the samples.
func (s Summary) Total() float64 { return s.total }

// Mean returns the arithmetic mean (NaN for an empty Summary, matching
// the package's Mean convention).
func (s Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Min returns the smallest sample (NaN when empty).
func (s Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample (NaN when empty).
func (s Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Std returns the population standard deviation (NaN when empty).
func (s Summary) Std() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(s.m2 / float64(s.n))
}
