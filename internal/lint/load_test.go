package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestNewLoaderFindsEnclosingModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":       "module example.com/mod\n\ngo 1.22\n",
		"sub/pkg/a.go": "package pkg\n",
	})
	l, err := NewLoader(filepath.Join(root, "sub", "pkg"))
	if err != nil {
		t.Fatalf("NewLoader from nested dir: %v", err)
	}
	if l.Module != "example.com/mod" {
		t.Errorf("Module = %q, want example.com/mod", l.Module)
	}
	if l.Root != root {
		t.Errorf("Root = %q, want %q", l.Root, root)
	}
}

func TestNewLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("want no-go.mod error, got %v", err)
	}
}

func TestNewLoaderMalformedGoMod(t *testing.T) {
	root := writeModule(t, map[string]string{"go.mod": "// no module line\n"})
	if _, err := NewLoader(root); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("want missing-module-line error, got %v", err)
	}
}

func TestLoadStdlibImporterFallback(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a.go":   "package mod\n\nimport \"strings\"\n\nfunc Up(s string) string { return strings.ToUpper(s) }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root, ".")
	if err != nil {
		t.Fatalf("Load with stdlib import: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/mod" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

func TestLoadInternalImportAndModRel(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module example.com/mod\n\ngo 1.22\n",
		"internal/a/a.go": "package a\n\nconst N = 1\n",
		"internal/b/b.go": "package b\n\nimport \"example.com/mod/internal/a\"\n\nconst M = a.N + 1\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	if got := pkgs[0].ModRel(); got != "internal/a" {
		t.Errorf("ModRel = %q, want internal/a", got)
	}
	// Type identity must hold across the run: b's view of a.N is the same
	// object the direct load of a produced.
	if pkgs[0].Pkg.Scope().Lookup("N") == nil {
		t.Error("package a lost its declaration")
	}
}

func TestLoadTypecheckError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a.go":   "package mod\n\nvar X int = \"not an int\"\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(root, "."); err == nil || !strings.Contains(err.Error(), "typecheck") {
		t.Fatalf("want typecheck error, got %v", err)
	}
}

func TestLoadParseError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a.go":   "package mod\n\nfunc broken( {\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(root, "."); err == nil {
		t.Fatal("want parse error")
	}
}

func TestLoadNoGoFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module example.com/mod\n\ngo 1.22\n",
		"empty/x.md": "nothing\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(root, "./empty"); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("want no-Go-files error, got %v", err)
	}
}

func TestLoadOutsideModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a.go":   "package mod\n",
	})
	outside := writeModule(t, map[string]string{"x.go": "package x\n"})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(root, outside); err == nil || !strings.Contains(err.Error(), "outside module") {
		t.Fatalf("want outside-module error, got %v", err)
	}
}

func TestExpandSkipsTestdataAndHidden(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":               "module example.com/mod\n\ngo 1.22\n",
		"a.go":                 "package mod\n",
		"testdata/fix/f.go":    "package fix\n",
		".hidden/h.go":         "package h\n",
		"_skip/s.go":           "package s\n",
		"nested/pkg/p.go":      "package pkg\n",
		"nested/pkg/p_test.go": "package pkg\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.com/mod", "example.com/mod/nested/pkg"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Errorf("Load ./... = %v, want %v (testdata, dot and underscore dirs skipped)", paths, want)
	}
}

// TestPositionMapping pins the diagnostic coordinate system: positions
// map to module-relative slash paths with 1-based line/column.
func TestPositionMapping(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadAs(filepath.Join("testdata", "lockorder"), "nvscavenger/internal/lintfixture/loadcheck")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := NewSuite("lockorder")
	if err != nil {
		t.Fatal(err)
	}
	diags := suite.Run([]*Package{pkg})
	if len(diags) == 0 {
		t.Fatal("fixture should produce findings")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "testdata/lockorder/") || strings.Contains(d.File, "\\") {
			t.Errorf("diagnostic file %q is not module-relative slash form", d.File)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic %s has non-positive coordinates", d)
		}
	}
}

func TestSuppressedSameAndPrecedingLine(t *testing.T) {
	p := &Package{ignores: map[string]map[int][]string{
		"f.go": {10: {"determinism"}},
	}}
	if !p.suppressed("f.go", 10, "determinism") {
		t.Error("same-line suppression should apply")
	}
	if !p.suppressed("f.go", 11, "determinism") {
		t.Error("next-line finding should be covered by the preceding directive")
	}
	if p.suppressed("f.go", 12, "determinism") {
		t.Error("directive must not reach two lines down")
	}
	if p.suppressed("f.go", 10, "lockorder") {
		t.Error("suppression is per pass")
	}
}

// --- astutil coverage ---

func parseSnippet(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDeclName(t *testing.T) {
	_, f := parseSnippet(t, `package x

func Plain() {}

type T struct{}

func (t *T) Method() {}

type G[E any] struct{}

func (g *G[E]) Generic() {}

var V = 1
`)
	want := []string{"Plain", "-", "T.Method", "-", "G.Generic", "-"}
	for i, d := range f.Decls {
		if got := declName(d); got != want[i] {
			t.Errorf("declName(decl %d) = %q, want %q", i, got, want[i])
		}
	}
}

func TestRecvTypeNameUnnameable(t *testing.T) {
	if got := recvTypeName(&ast.ArrayType{}); got != "" {
		t.Errorf("recvTypeName on unnameable receiver = %q, want empty", got)
	}
}

func TestFuncObjectAndHelpers(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadAs(filepath.Join("testdata", "ctxflow"), "nvscavenger/internal/lintfixture/astutil")
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fo := funcObject(pkg, call.Fun); fo != nil {
				calls++
				if isPkgFunc(fo, "context", "Background") {
					t.Errorf("fixture does not call context.Background, matched %v", fo)
				}
			}
			return true
		})
	}
	if calls == 0 {
		t.Error("funcObject resolved no calls in the fixture")
	}
	if importedPkg(pkg, "context") == nil {
		t.Error("importedPkg should find the context import")
	}
	if importedPkg(pkg, "no/such/pkg") != nil {
		t.Error("importedPkg should miss unknown suffixes")
	}
	if !strings.HasSuffix(importedPkg(pkg, "lintfixture/astutil").Path(), "astutil") {
		t.Error("importedPkg should return the package itself on a self match")
	}
}
