package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

func newFast(t *testing.T) *Tracer {
	t.Helper()
	return New(Config{StackMode: FastStack})
}

func newSlow(t *testing.T) *Tracer {
	t.Helper()
	return New(Config{StackMode: SlowStack})
}

func TestIterationNumbering(t *testing.T) {
	tr := newFast(t)
	if tr.Iteration() != 0 {
		t.Fatalf("initial iteration = %d, want 0 (pre-compute)", tr.Iteration())
	}
	tr.BeginIteration()
	if tr.Iteration() != 1 {
		t.Fatalf("first timestep = %d, want 1", tr.Iteration())
	}
	tr.EndIteration()
	tr.BeginIteration()
	if tr.Iteration() != 2 {
		t.Fatalf("second timestep = %d, want 2", tr.Iteration())
	}
	tr.PostPhase()
	if tr.Iteration() != 0 {
		t.Fatalf("post phase iteration = %d, want 0", tr.Iteration())
	}
	if tr.MainLoopIterations() != 2 {
		t.Fatalf("MainLoopIterations = %d, want 2", tr.MainLoopIterations())
	}
}

func TestAccessAttributionBySegment(t *testing.T) {
	tr := newFast(t)
	g, _ := tr.GlobalF64("coeff", 16)
	h, hobj := tr.HeapF64("field", "app.go:1", 32)

	tr.BeginIteration()
	g.Store(0, 1.5)
	if v := g.Load(0); v != 1.5 {
		t.Fatalf("global data roundtrip = %v", v)
	}
	h.Store(3, 2.5)
	_ = h.Load(3)
	_ = h.Load(4)

	gs := tr.SegmentStats(trace.SegGlobal, 1)
	if gs.Reads != 1 || gs.Writes != 1 {
		t.Fatalf("global segment stats = %d/%d, want 1/1", gs.Reads, gs.Writes)
	}
	hs := tr.SegmentStats(trace.SegHeap, 1)
	if hs.Reads != 2 || hs.Writes != 1 {
		t.Fatalf("heap segment stats = %d/%d, want 2/1", hs.Reads, hs.Writes)
	}
	if got := hobj.Iter(1); got.Reads != 2 || got.Writes != 1 {
		t.Fatalf("heap object iter stats = %+v", got)
	}
}

func TestStackAttributionFastMode(t *testing.T) {
	tr := newFast(t)
	f := tr.Enter("kernel")
	loc := f.LocalF64(8)
	tr.BeginIteration()
	loc.Store(0, 1)
	_ = loc.Load(0)
	_ = loc.Load(1)
	tr.Leave()

	ss := tr.SegmentStats(trace.SegStack, 1)
	if ss.Reads != 2 || ss.Writes != 1 {
		t.Fatalf("stack segment stats = %d/%d, want 2/1", ss.Reads, ss.Writes)
	}
	objs := tr.StackObjects()
	if len(objs) != 1 || objs[0].Name != "stack" {
		t.Fatalf("fast mode should expose one whole-stack object, got %v", objs)
	}
	if got := objs[0].Total(); got.Reads != 2 || got.Writes != 1 {
		t.Fatalf("stack object totals = %+v", got)
	}
}

func TestComputeAndReferenceRate(t *testing.T) {
	tr := newFast(t)
	g, gobj := tr.GlobalF64("a", 4)
	tr.BeginIteration()
	g.Store(0, 1) // 1 instr
	tr.Compute(99)
	tr.BeginIteration() // finalizes iteration 1
	if got := tr.IterationInstructions(1); got != 100 {
		t.Fatalf("iteration 1 instructions = %d, want 100", got)
	}
	if rate := gobj.IterReferenceRate(1); rate != 1.0/100*1e6 {
		t.Fatalf("reference rate = %v, want 10000", rate)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionsAcrossPhases(t *testing.T) {
	tr := newFast(t)
	tr.Compute(10) // pre-compute
	tr.BeginIteration()
	tr.Compute(20)
	tr.BeginIteration()
	tr.Compute(30)
	tr.PostPhase()
	tr.Compute(5)
	if got := tr.Instructions(); got != 65 {
		t.Fatalf("total instructions = %d, want 65", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.IterationInstructions(0); got != 15 {
		t.Fatalf("phase-0 instructions = %d, want 15 (pre 10 + post 5)", got)
	}
	if got := tr.IterationInstructions(2); got != 30 {
		t.Fatalf("iteration 2 instructions = %d, want 30", got)
	}
	if got := tr.IterationInstructions(99); got != 0 {
		t.Fatalf("out-of-range iteration instructions = %d, want 0", got)
	}
}

func TestSinkReceivesAllAccesses(t *testing.T) {
	var st trace.Stats
	tr := New(Config{Sink: &st, BufferSize: 4})
	g, _ := tr.GlobalF64("x", 8)
	tr.BeginIteration()
	for i := 0; i < 8; i++ {
		g.Store(i, float64(i))
	}
	for i := 0; i < 5; i++ {
		_ = g.Load(i)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Writes != 8 || st.Reads != 5 {
		t.Fatalf("sink saw %d/%d, want 5 reads / 8 writes", st.Reads, st.Writes)
	}
}

func TestFootprintAndHighWater(t *testing.T) {
	tr := newFast(t)
	tr.Global("g", 1000)
	tr.Malloc("h", "a.go:1", 5000)
	f := tr.Enter("main")
	f.LocalF64(100) // 800 bytes
	if hw := tr.StackHighWater(); hw != 800 {
		t.Fatalf("stack high water = %d, want 800", hw)
	}
	fp := tr.Footprint()
	if fp != 1000+5000+800 {
		t.Fatalf("footprint = %d, want 6800", fp)
	}
	tr.Leave()
	// High water persists after Leave.
	if hw := tr.StackHighWater(); hw != 800 {
		t.Fatalf("high water after leave = %d, want 800", hw)
	}
}

func TestUnknownAddressCounted(t *testing.T) {
	tr := newFast(t)
	tr.access(0x99_0000_0000_0000, 8, trace.Read)
	if tr.Unknown != 1 {
		t.Fatalf("Unknown = %d, want 1", tr.Unknown)
	}
}

func TestSegmentTotalsRange(t *testing.T) {
	tr := newFast(t)
	g, _ := tr.GlobalF64("x", 4)
	for it := 0; it < 3; it++ {
		tr.BeginIteration()
		g.Store(0, 1)
		_ = g.Load(0)
	}
	tot := tr.SegmentTotals(trace.SegGlobal, 1, 3)
	if tot.Reads != 3 || tot.Writes != 3 {
		t.Fatalf("totals = %d/%d, want 3/3", tot.Reads, tot.Writes)
	}
	one := tr.SegmentTotals(trace.SegGlobal, 2, 2)
	if one.Reads != 1 || one.Writes != 1 {
		t.Fatalf("single-iteration totals = %d/%d, want 1/1", one.Reads, one.Writes)
	}
}

func TestObjectTouchedIterations(t *testing.T) {
	tr := newFast(t)
	g, gobj := tr.GlobalF64("sometimes", 4)
	h, hobj := tr.HeapF64("always", "a.go:2", 4)
	pre, preObj := tr.GlobalF64("preonly", 4)
	pre.Store(0, 1) // touched only in phase 0

	for it := 1; it <= 4; it++ {
		tr.BeginIteration()
		h.Store(0, 1)
		if it == 2 {
			g.Store(0, 1)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := hobj.TouchedIterations(); got != 4 {
		t.Fatalf("always-touched object: %d iterations, want 4", got)
	}
	if got := gobj.TouchedIterations(); got != 1 {
		t.Fatalf("sometimes-touched object: %d iterations, want 1", got)
	}
	if got := preObj.TouchedIterations(); got != 0 {
		t.Fatalf("pre-phase-only object: %d iterations, want 0", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	tr := newFast(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectReadWriteRatioSemantics(t *testing.T) {
	tr := newFast(t)
	g, gobj := tr.GlobalF64("ro", 4)
	tr.BeginIteration()
	for i := 0; i < 7; i++ {
		_ = g.Load(0)
	}
	if !gobj.ReadOnly() {
		t.Fatal("object with only reads should be read-only")
	}
	if gobj.ReadWriteRatio() != 7 {
		t.Fatalf("read-only ratio = %v, want 7 (read count)", gobj.ReadWriteRatio())
	}
	g.Store(0, 1)
	if gobj.ReadOnly() {
		t.Fatal("object is no longer read-only after a write")
	}
	if gobj.ReadWriteRatio() != 7 {
		t.Fatalf("ratio = %v, want 7", gobj.ReadWriteRatio())
	}
	if gobj.IterReadWriteRatio(1) != 7 {
		t.Fatalf("iter ratio = %v, want 7", gobj.IterReadWriteRatio(1))
	}
	if gobj.IterReadWriteRatio(5) != 0 {
		t.Fatal("missing iteration should have ratio 0")
	}
}

func TestMatHelpers(t *testing.T) {
	tr := newFast(t)
	m, obj := tr.NewHeapMat("mat", "a.go:3", 3, 4)
	tr.BeginIteration()
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Fatalf("mat roundtrip = %v", got)
	}
	m.Add(1, 2, 1)
	if got := m.At(1, 2); got != 43 {
		t.Fatalf("mat add = %v", got)
	}
	// Set(1) + At(1) + Add(2) + At(1) = 3 reads, 2 writes
	s := obj.Iter(1)
	if s.Reads != 3 || s.Writes != 2 {
		t.Fatalf("mat object stats = %d/%d, want 3/2", s.Reads, s.Writes)
	}
	gm, gobj := tr.NewGlobalMat("gmat", 2, 2)
	gm.Set(0, 0, 7)
	if gobj.Segment != trace.SegGlobal {
		t.Fatal("global matrix should be in global segment")
	}
}
