// Command nvpower is the memory power simulator front end (paper §IV).
//
// It prices main-memory traffic on DDR3, PCRAM, STTRAM and MRAM devices and
// reports per-component average power plus the Table VI normalization.  The
// traffic comes either from running a mini-application through the cache
// hierarchy, or from a previously captured binary transaction trace.
//
// Usage:
//
//	nvpower -app gtc [-scale 1.0] [-iterations 10] [-policy open]
//	nvpower -trace mem.trc [-policy closed]
//	nvpower -app gtc -dump mem.trc        # capture the filtered trace
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/cli"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/trace"

	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/mdmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

func main() { cli.Main("nvpower", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvpower")
	appName := fs.String("app", "", "application to trace (alternative to -trace): "+cli.AppList())
	traceFile := fs.String("trace", "", "binary transaction trace to replay (alternative to -app)")
	dump := fs.String("dump", "", "write the filtered transaction trace to this file")
	scale := fs.Float64("scale", 1.0, "problem scale")
	iters := fs.Int("iterations", 10, "main-loop iterations")
	policy := fs.String("policy", "open", "row policy: open or closed page")
	metricsOut := fs.String("metrics", "", "write the run's observability snapshot to this file (.json for JSON, text otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rowPolicy := dramsim.OpenPage
	switch *policy {
	case "open":
	case "closed":
		rowPolicy = dramsim.ClosedPage
	default:
		return fmt.Errorf("unknown -policy %q (open or closed)", *policy)
	}

	reg := obs.NewRegistry()
	var txs []trace.Transaction
	switch {
	case *appName != "" && *traceFile != "":
		return fmt.Errorf("-app and -trace are mutually exclusive")
	case *appName != "":
		if err := cli.ValidateApp(*appName); err != nil {
			return err
		}
		app, err := apps.New(*appName, *scale)
		if err != nil {
			return err
		}
		// With -dump the trace writer rides the pipeline as a tee'd
		// transaction sink, so the file fills in batches during the run
		// instead of from a second pass over the captured slice.
		var dumpWriter *trace.Writer
		var dumpFile *os.File
		var txSinks []trace.TxSink
		if *dump != "" {
			dumpFile, err = os.Create(*dump)
			if err != nil {
				return err
			}
			dumpWriter = trace.NewTransactionWriter(dumpFile)
			if strings.HasSuffix(*dump, ".gz") {
				dumpWriter = trace.NewCompressedTransactionWriter(dumpFile)
			}
			txSinks = append(txSinks, dumpWriter)
		}
		cacheCfg := cachesim.PaperConfig()
		stack, err := pipeline.Build(pipeline.Config{
			StackMode: memtrace.FastStack,
			Cache:     &cacheCfg,
			CaptureTx: true,
			TxSinks:   txSinks,
			Metrics:   reg,
			Labels:    []obs.Label{obs.L("app", *appName)},
		})
		if err != nil {
			return err
		}
		if err := apps.Run(app, stack.Tracer, *iters); err != nil {
			return err
		}
		if err := stack.Close(); err != nil {
			return err
		}
		if dumpWriter != nil {
			werr := dumpWriter.Close()
			cerr := dumpFile.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
		txs = stack.Transactions()
		hier := stack.Hierarchy
		hier.ExportMetrics(reg, obs.L("app", *appName))
		stack.Tracer.ExportMetrics(reg, obs.L("app", *appName))
		fmt.Fprintf(out, "%s: %d references filtered to %d memory transactions (%.2f%%)\n",
			*appName, hier.L1Stats().Accesses(), len(txs),
			float64(len(txs))/float64(hier.L1Stats().Accesses())*100)
		if dumpWriter != nil {
			fmt.Fprintf(out, "wrote %d transactions to %s\n", dumpWriter.Count(), *dump)
		}
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close() //nvlint:ignore errcontract read-only trace file; close cannot lose data
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		// Decode through a batched, counted capture stage so file replays
		// surface the same pipeline metrics as live runs.
		capture := &pipeline.Capture[trace.Transaction]{}
		stage := pipeline.Counted[trace.Transaction](reg, "replay", capture, obs.L("trace", *traceFile))
		batch := make([]trace.Transaction, 0, trace.DefaultTxBufferSize)
		for {
			t, err := r.ReadTransaction()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			batch = append(batch, t)
			if len(batch) == cap(batch) {
				if err := stage.Flush(batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := stage.Flush(batch); err != nil {
				return err
			}
		}
		txs = capture.Items
		fmt.Fprintf(out, "replaying %d transactions from %s\n", len(txs), *traceFile)
	default:
		fs.Usage()
		return fmt.Errorf("need -app or -trace")
	}
	if len(txs) == 0 {
		return fmt.Errorf("no memory transactions to simulate")
	}

	if *dump != "" && *traceFile != "" {
		// Re-dumping a replayed trace: feed the decoded transactions through
		// the same batched writer stage the live pipeline uses.
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		w := trace.NewTransactionWriter(f)
		if strings.HasSuffix(*dump, ".gz") {
			w = trace.NewCompressedTransactionWriter(f)
		}
		stage := pipeline.Counted(reg, "dump", pipeline.TxStage(w), obs.L("trace", *traceFile))
		werr := stage.Flush(txs)
		if werr == nil {
			werr = w.Close()
		}
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "wrote %d transactions to %s\n", len(txs), *dump)
	}

	reps, err := dramsim.Compare(dramsim.PaperGeometry(), rowPolicy, dramsim.Profiles(), txs)
	if err != nil {
		return err
	}
	for _, r := range reps {
		r.ExportMetrics(reg)
	}
	norm := dramsim.Normalize(reps)
	fmt.Fprintf(out, "\n%-8s %10s %10s %10s %10s %10s %12s %10s\n",
		"device", "total mW", "burst", "act/pre", "bg", "refresh", "elapsed ms", "normalized")
	for i, r := range reps {
		fmt.Fprintf(out, "%-8s %10.1f %10.1f %10.1f %10.1f %10.1f %12.3f %10.3f\n",
			r.Device, r.TotalMW, r.BurstMW, r.ActPreMW, r.BackgroundMW, r.RefreshMW,
			r.ElapsedNS/1e6, norm[i])
	}
	fmt.Fprintf(out, "\nrow policy %s; row-buffer hit ratio (DDR3 run): %.1f%%\n",
		rowPolicy, reps[0].RowHitRatio()*100)
	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, reg.Snapshot()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	return nil
}
