package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almost(got, 2.5) {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{2, 1, 2, 5}, []float64{10, 5, 20, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []CDFPoint{{1, 5}, {2, 35}, {5, 36}}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCDFErrors(t *testing.T) {
	if _, err := CDF([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := CDF([]float64{1}, []float64{-2}); err == nil {
		t.Fatal("negative weight must error")
	}
}

func TestShareAbove(t *testing.T) {
	values := []float64{5, 15, 60, 100}
	weights := []float64{10, 10, 40, 40}
	cf, wf := ShareAbove(values, weights, 10)
	if !almost(cf, 0.75) {
		t.Fatalf("count fraction = %v, want 0.75", cf)
	}
	if !almost(wf, 0.9) {
		t.Fatalf("weight fraction = %v, want 0.9", wf)
	}
	cf, wf = ShareAbove(nil, nil, 10)
	if cf != 0 || wf != 0 {
		t.Fatal("empty input should give zeros")
	}
	// Missing weights default to 1.
	cf, wf = ShareAbove([]float64{1, 20}, nil, 10)
	if !almost(cf, 0.5) || !almost(wf, 0.5) {
		t.Fatalf("unweighted = %v/%v", cf, wf)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 0.5, 1, 1.5, 3.9, 4, 100} {
		h.Observe(x)
	}
	if h.Below != 1 || h.Above != 2 {
		t.Fatalf("out of range: below=%d above=%d", h.Below, h.Above)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if !almost(h.Fraction(0), 0.25) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
	below, above := h.FractionBelowOrAbove()
	if !almost(below, 0.125) || !almost(above, 0.25) {
		t.Fatalf("oor fractions = %v/%v", below, above)
	}
}

func TestHistogramEdgeExactlyOnBoundary(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 10, 20})
	h.Observe(10)
	if h.Counts[1] != 1 || h.Counts[0] != 0 {
		t.Fatalf("boundary value in wrong bin: %v", h.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Fatal("single edge must error")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing edges must error")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1})
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction should be 0")
	}
	b, a := h.FractionBelowOrAbove()
	if b != 0 || a != 0 {
		t.Fatal("empty histogram out-of-range fractions should be 0")
	}
}

func TestNormalizedDistributionStableMetrics(t *testing.T) {
	// Three objects with perfectly stable metrics: every iteration's ratio
	// is exactly 1, landing in the [1,2) bin — the paper's ">60% in [1,2)".
	perObject := [][]float64{
		{0, 5, 5, 5},
		{0, 2, 2, 2},
		{0, 9, 9, 9},
	}
	dist := NormalizedDistribution(perObject, 3)
	for iter := 1; iter <= 3; iter++ {
		// bin index 2 is [1,2)
		if !almost(dist[iter][2], 1.0) {
			t.Fatalf("iteration %d: [1,2) share = %v, want 1", iter, dist[iter][2])
		}
	}
}

func TestNormalizedDistributionLateObject(t *testing.T) {
	// An object silent in iteration 1 normalizes against its first nonzero
	// iteration.
	perObject := [][]float64{
		{0, 0, 4, 8},
	}
	dist := NormalizedDistribution(perObject, 3)
	if !almost(dist[2][2], 1.0) { // 4/4 = 1 -> [1,2)
		t.Fatalf("iter2 = %v", dist[2])
	}
	if !almost(dist[3][3], 1.0) { // 8/4 = 2 -> [2,4)
		t.Fatalf("iter3 = %v", dist[3])
	}
}

func TestNormalizedDistributionSkipsAllZero(t *testing.T) {
	perObject := [][]float64{
		{0, 0, 0},
		{0, 1, 1},
	}
	dist := NormalizedDistribution(perObject, 2)
	if !almost(dist[1][2], 1.0) {
		t.Fatalf("all-zero object should be skipped: %v", dist[1])
	}
}

// Property: quantile of any slice lies within [min, max].
func TestQuickQuantileBounds(t *testing.T) {
	f := func(xs []float64, q float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q = math.Abs(q)
		q -= math.Floor(q)
		v := Quantile(clean, q)
		s := append([]float64(nil), clean...)
		sort.Float64s(s)
		return v >= s[0]-1e-9 && v <= s[len(s)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone and ends at the total weight.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		values := make([]float64, count)
		weights := make([]float64, count)
		total := 0.0
		for i := range values {
			values[i] = rng.NormFloat64()
			weights[i] = rng.Float64()
			total += weights[i]
		}
		pts, err := CDF(values, weights)
		if err != nil {
			return false
		}
		prevX := math.Inf(-1)
		prevY := 0.0
		for _, p := range pts {
			if p.X <= prevX || p.Y < prevY {
				return false
			}
			prevX, prevY = p.X, p.Y
		}
		return math.Abs(pts[len(pts)-1].Y-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals observation count.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(xs []float64) bool {
		h, err := NewHistogram([]float64{-10, -1, 0, 1, 10})
		if err != nil {
			return false
		}
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		return h.Total() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizedDistribution rows sum to ~1 (or 0 when nothing
// qualifies).
func TestQuickNormalizedDistributionSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		objects := rng.Intn(20) + 1
		iters := rng.Intn(6) + 1
		perObject := make([][]float64, objects)
		for o := range perObject {
			series := make([]float64, iters+1)
			for i := 1; i <= iters; i++ {
				if rng.Float64() < 0.8 {
					series[i] = rng.Float64() * 10
				}
			}
			perObject[o] = series
		}
		dist := NormalizedDistribution(perObject, iters)
		for iter := 1; iter <= iters; iter++ {
			sum := 0.0
			for _, frac := range dist[iter] {
				sum += frac
			}
			if sum != 0 && math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
