// Package apps defines the mini-application framework of the reproduction.
//
// The paper instruments four production codes — Nek5000, CAM, GTC and S3D —
// none of which can be rebuilt here (Fortran/MPI code bases with restricted
// inputs, instrumented natively with PIN).  Each is replaced by a
// single-task Go mini-app that executes the same *kinds* of numerical
// kernels through the traced-memory API, so that the statistical structure
// of the access stream (per-object read/write ratios, reference rates,
// object sizes, phase behaviour across timesteps) reproduces what the paper
// reports for the original code.  See DESIGN.md for the calibration targets
// and internal/apps/<name> for each model's construction.
//
// All apps follow the three-phase structure of §VI: a pre-computing phase
// (Setup, iteration 0), a main computation loop (Step, iterations 1..N),
// and a post-processing phase (Post, charged to iteration 0 again).
package apps

import (
	"context"
	"fmt"
	"sort"

	"nvscavenger/internal/memtrace"
)

// App is one instrumented mini-application.
type App interface {
	// Name returns the identifier used in reports ("nek5000", "cam", ...).
	Name() string
	// Description is a one-line summary for report headers.
	Description() string
	// Setup performs the pre-computing phase: allocation, input parsing,
	// initialization.  Called once with the tracer in iteration 0.
	Setup(tr *memtrace.Tracer) error
	// Step runs one timestep of the main computation loop.  iter is
	// 1-based.
	Step(tr *memtrace.Tracer, iter int) error
	// Post performs the post-processing phase (result aggregation/output).
	Post(tr *memtrace.Tracer) error
	// Check validates numerical results after a run, guarding against the
	// mini-app degenerating into a non-computation.
	Check() error
}

// Run drives an app through the paper's phase protocol for the given number
// of main-loop iterations and closes the tracer.
func Run(app App, tr *memtrace.Tracer, iterations int) error {
	return RunContext(context.Background(), app, tr, iterations)
}

// RunContext is Run with cooperative cancellation: the context is checked
// before the pre-computing phase and between main-loop iterations, so a
// cancelled sweep stops at the next timestep boundary instead of running
// the app to completion.
func RunContext(ctx context.Context, app App, tr *memtrace.Tracer, iterations int) error {
	if iterations < 1 {
		return fmt.Errorf("apps: need at least 1 iteration, got %d", iterations)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := app.Setup(tr); err != nil {
		return fmt.Errorf("apps: %s setup: %w", app.Name(), err)
	}
	for i := 1; i <= iterations; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr.BeginIteration()
		if err := app.Step(tr, i); err != nil {
			return fmt.Errorf("apps: %s step %d: %w", app.Name(), i, err)
		}
		tr.EndIteration()
	}
	tr.PostPhase()
	if err := app.Post(tr); err != nil {
		return fmt.Errorf("apps: %s post: %w", app.Name(), err)
	}
	if err := tr.Close(); err != nil {
		return fmt.Errorf("apps: %s close: %w", app.Name(), err)
	}
	return app.Check()
}

// InputDescriber is an optional App extension reporting the input problem
// definition, Table I's "Input Problem Size" column.
type InputDescriber interface {
	Input() string
}

// InputOf returns the app's input description, or a placeholder.
func InputOf(app App) string {
	if d, ok := app.(InputDescriber); ok {
		return d.Input()
	}
	return "default"
}

// Factory creates a fresh app instance.  Scale selects the problem size:
// 1.0 is the calibrated default used by the experiment harness; smaller
// values shrink footprints and run time proportionally (tests use ~0.25).
type Factory func(scale float64) App

var registry = map[string]Factory{}

// Register installs a factory under the app's canonical name.  Called from
// the app packages' init functions.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("apps: duplicate registration of %q", name)) //nvlint:ignore errcontract init-time registration bug; unreachable after package init
	}
	registry[name] = f
}

// New instantiates a registered app.
func New(name string, scale float64) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("apps: non-positive scale %v", scale)
	}
	return f(scale), nil
}

// Names lists the registered apps in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
