package experiments

import (
	"math"
	"testing"
)

// TestScaleInvariance: the calibration targets are properties of the access
// pattern's *shape*, so they must hold across problem scales — otherwise
// the reproduction would only work at the scale it was tuned at.
func TestScaleInvariance(t *testing.T) {
	small := NewSession(Options{Scale: 0.08, Iterations: 6})
	large := NewSession(Options{Scale: 0.35, Iterations: 6})

	rowsS, err := small.Table5()
	if err != nil {
		t.Fatal(err)
	}
	rowsL, err := large.Table5()
	if err != nil {
		t.Fatal(err)
	}
	byApp := func(rows []Table5Row) map[string]Table5Row {
		m := map[string]Table5Row{}
		for _, r := range rows {
			m[r.App] = r
		}
		return m
	}
	s, l := byApp(rowsS), byApp(rowsL)
	for _, app := range AppNames {
		// Ratios within 20% of each other across a 4.4x size change.
		if rel := math.Abs(s[app].SteadyRatio-l[app].SteadyRatio) / l[app].SteadyRatio; rel > 0.20 {
			t.Errorf("%s stack ratio varies %.0f%% across scales (%.2f vs %.2f)",
				app, rel*100, s[app].SteadyRatio, l[app].SteadyRatio)
		}
		// Reference shares within 6 percentage points.
		if diff := math.Abs(s[app].ReferencePct - l[app].ReferencePct); diff > 6 {
			t.Errorf("%s stack share varies %.1f points across scales (%.1f vs %.1f)",
				app, diff, s[app].ReferencePct, l[app].ReferencePct)
		}
	}
}

// TestIterationCountInvariance: running 5 vs 10 iterations must not change
// the steady-state stack metrics (only first-iteration effects differ).
func TestIterationCountInvariance(t *testing.T) {
	five := NewSession(Options{Scale: 0.1, Iterations: 5})
	ten := NewSession(Options{Scale: 0.1, Iterations: 10})
	r5, err := five.Table5()
	if err != nil {
		t.Fatal(err)
	}
	r10, err := ten.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r5 {
		a, b := r5[i], r10[i]
		if a.App != b.App {
			t.Fatalf("row order mismatch")
		}
		if rel := math.Abs(a.SteadyRatio-b.SteadyRatio) / b.SteadyRatio; rel > 0.10 {
			t.Errorf("%s steady ratio drifts with iteration count: %.2f vs %.2f",
				a.App, a.SteadyRatio, b.SteadyRatio)
		}
	}
}
