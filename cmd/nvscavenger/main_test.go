package main

import (
	"bytes"
	"strings"
	"testing"

	"os"
	"path/filepath"

	"nvscavenger/internal/core"
	"nvscavenger/internal/experiments"
)

func TestRunFastMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"gtc", "memory footprint", "stack data", "global+heap objects"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSlowModeWithPlacement(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "cam", "-scale", "0.05", "-iterations", "3",
		"-mode", "slow", "-placement", "-endurance", "-category", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"stack frames by references", "hybrid placement", "category-1", "endurance"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -app must error")
	}
	if err := run([]string{"-app", "nonesuch"}, &out); err == nil {
		t.Error("unknown app must error")
	}
	if err := run([]string{"-app", "gtc", "-mode", "weird"}, &out); err == nil {
		t.Error("unknown mode must error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRunJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2",
		"-placement", "-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := experiments.DecodeJobResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemaVersion != experiments.SchemaVersion || res.State != experiments.StateDone {
		t.Fatalf("result envelope = version %d state %q", res.SchemaVersion, res.State)
	}
	if res.Spec.Scale != 0.05 || res.Spec.Iterations != 2 || len(res.Spec.Apps) != 1 {
		t.Fatalf("result spec not echoed: %+v", res.Spec)
	}
	if res.Analysis == nil {
		t.Fatal("-json result must embed the analysis snapshot")
	}
	snap := *res.Analysis
	if snap.SchemaVersion != core.SnapshotSchemaVersion {
		t.Errorf("snapshot schema_version = %d, want %d", snap.SchemaVersion, core.SnapshotSchemaVersion)
	}
	if snap.App != "gtc" || len(snap.Objects) == 0 || snap.Placement == nil {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	if snap.Metrics == nil {
		t.Fatal("-json snapshot must embed the metrics block")
	}
	if v, ok := snap.Metrics.Counter("runner_runs_total"); !ok || v != 1 {
		t.Errorf("embedded metrics runner_runs_total = %d, %v; want 1, true", v, ok)
	}
}

func TestRunMetricsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2",
		"-metrics", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"counter runner_runs_total 1",
		"counter runner_misses_total 1",
		"memtrace_object_cache_hit_ratio{app=gtc,mode=fast}",
		"runner_run_wall_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics file missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(out.String(), "wrote metrics snapshot") {
		t.Error("missing metrics confirmation line")
	}
}
