package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRE is the registry's naming grammar: lower_snake_case starting
// with a letter, matching what the obs snapshot renderings and the golden
// metrics assertions key on.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricSite is one obs registration call.
type metricSite struct {
	name string
	kind string // "Counter", "Gauge", "Histogram"
	pkg  *Package
	pos  token.Pos
}

// metricname checks every literal metric name handed to *obs.Registry
// registration: the lower_snake_case grammar, the _total suffix on
// counters, literal-only names (a computed name cannot be checked or
// grepped), and repo-wide uniqueness — the same series name registered
// from two packages would silently merge unrelated data in a shared
// registry, and the same name registered as two different kinds panics at
// snapshot time in no deterministic order.
type metricname struct {
	sites []metricSite
}

func init() {
	registerPass("metricname", func() Pass { return &metricname{} })
}

func (*metricname) Name() string { return "metricname" }
func (*metricname) Doc() string {
	return "obs metric names are literal lower_snake_case, counters end in _total, names unique across packages"
}

func (m *metricname) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethod(p, call)
			if !ok {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				r.Report(call.Args[0].Pos(), "metricname",
					"metric name passed to Registry.%s must be a string literal", kind)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				r.Report(lit.Pos(), "metricname",
					"metric name %q does not match ^[a-z][a-z0-9_]*$", name)
			} else if kind == "Counter" && !strings.HasSuffix(name, "_total") {
				r.Report(lit.Pos(), "metricname",
					"counter name %q must end in _total", name)
			}
			m.sites = append(m.sites, metricSite{name: name, kind: kind, pkg: p, pos: lit.Pos()})
			return true
		})
	}
}

// Finish enforces cross-package uniqueness over every site seen this run.
// Re-registering the same name inside one package is the registry's
// intended register-once-reuse pattern; the same name from a second
// package (or as a second kind anywhere) is a collision.
func (m *metricname) Finish(r *Reporter) {
	first := map[string]metricSite{}
	for _, s := range m.sites {
		prev, seen := first[s.name]
		if !seen {
			first[s.name] = s
			continue
		}
		if prev.kind != s.kind {
			r.ReportIn(s.pkg, s.pos, "metricname",
				"metric %q registered as %s here but as %s at %s",
				s.name, s.kind, prev.kind, prev.pkg.Fset.Position(prev.pos))
			continue
		}
		if prev.pkg.Path != s.pkg.Path {
			r.ReportIn(s.pkg, s.pos, "metricname",
				"metric %q already registered by package %s at %s",
				s.name, prev.pkg.Path, prev.pkg.Fset.Position(prev.pos))
		}
	}
}

// registryMethod reports whether call is a registration method on
// *obs.Registry and which one.
func registryMethod(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	switch f.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return "", false
	}
	return f.Name(), true
}
