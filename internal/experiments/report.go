package experiments

import (
	"fmt"
	"io"
	"slices"
	"time"
)

// Exhibit maps a selector name to the generator that renders one table or
// figure of the paper's evaluation section onto a writer.
type Exhibit struct {
	Name string
	Gen  func(*Session, io.Writer) error
}

var objectFigures = map[string]struct {
	app string
	num int
}{
	"fig3": {"nek5000", 3},
	"fig4": {"cam", 4},
	"fig5": {"gtc", 5},
	"fig6": {"s3d", 6},
}

var varianceFigures = map[string]struct {
	app string
	num int
}{
	"fig8":  {"nek5000", 8},
	"fig9":  {"cam", 9},
	"fig10": {"s3d", 10},
	"fig11": {"gtc", 11},
}

// Exhibits returns the full registry in report order.  Both the nvreport
// CLI and the nvserved jobs API render from this single list, which is
// what keeps a served report byte-identical to the CLI's.
func Exhibits() []Exhibit {
	out := []Exhibit{
		{"table1", func(s *Session, w io.Writer) error {
			rows, err := s.Table1()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatTable1(rows))
			return err
		}},
		{"table5", func(s *Session, w io.Writer) error {
			rows, err := s.Table5()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatTable5(rows))
			return err
		}},
		{"fig2", func(s *Session, w io.Writer) error {
			recs, fig, err := s.Figure2()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatFigure2(recs, fig))
			return err
		}},
	}
	for _, key := range []string{"fig3", "fig4", "fig5", "fig6"} {
		spec := objectFigures[key]
		out = append(out, Exhibit{key, func(s *Session, w io.Writer) error {
			recs, err := s.ObjectFigure(spec.app)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatObjectFigure(spec.app, spec.num, recs))
			return err
		}})
	}
	out = append(out, Exhibit{"fig7", func(s *Session, w io.Writer) error {
		cdfs, err := s.Figure7()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, FormatFigure7(cdfs))
		return err
	}})
	for _, key := range []string{"fig8", "fig9", "fig10", "fig11"} {
		spec := varianceFigures[key]
		out = append(out, Exhibit{key, func(s *Session, w io.Writer) error {
			ratio, rate, err := s.VarianceFigure(spec.app)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatVarianceFigure(spec.app, spec.num, ratio, rate))
			return err
		}})
	}
	out = append(out,
		Exhibit{"table6", func(s *Session, w io.Writer) error {
			rows, err := s.Table6()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatTable6(rows))
			return err
		}},
		Exhibit{"fig12", func(s *Session, w io.Writer) error {
			rows, err := s.Figure12()
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w, FormatFigure12(rows)); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%s: %s\n", r.App, FormatSweepShape(r.Results)); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintln(w)
			return err
		}},
		Exhibit{"placement", func(s *Session, w io.Writer) error {
			plans, err := s.Placement()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatPlacement(plans))
			return err
		}},
		Exhibit{"placementcmp", func(s *Session, w io.Writer) error {
			rows, err := s.PlacementComparison()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatPlacementComparison(rows))
			return err
		}},
		Exhibit{"hybrid", func(s *Session, w io.Writer) error {
			pts, err := s.HybridSweep("nek5000", []int{0, 8, 32, 128, 512, 2048})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatHybridSweep("nek5000", pts))
			return err
		}},
		Exhibit{"checkpoint", func(s *Session, w io.Writer) error {
			pts, err := s.CheckpointStudy("nek5000", []int{1000, 10000, 100000, 500000, 1000000})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatCheckpointStudy("nek5000", pts))
			return err
		}},
		Exhibit{"wear", func(s *Session, w io.Writer) error {
			rows, err := s.WearStudy("gtc")
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatWearStudy("gtc", rows))
			return err
		}},
		Exhibit{"sampling", func(s *Session, w io.Writer) error {
			rows, err := s.SamplingStudy("nek5000", []int{1, 16, 64, 256})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatSamplingStudy("nek5000", rows))
			return err
		}},
		Exhibit{"profilererror", func(s *Session, w io.Writer) error {
			rows, err := s.ProfilerErrorStudy("nek5000", DefaultProfilerErrorSpecs)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatProfilerErrorStudy("nek5000", rows))
			return err
		}},
		Exhibit{"conformance", func(s *Session, w io.Writer) error {
			checks, err := s.Conformance()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, FormatConformance(checks))
			return err
		}},
	)
	return out
}

// ExhibitNames returns the selector names in report order.
func ExhibitNames() []string {
	exs := Exhibits()
	out := make([]string, len(exs))
	for i, ex := range exs {
		out[i] = ex.Name
	}
	return out
}

// knownExhibit reports whether name selects a registered exhibit.
func knownExhibit(name string) bool {
	return slices.Contains(ExhibitNames(), name)
}

// ReportConfig shapes one WriteReport invocation.
type ReportConfig struct {
	// Only restricts the report to the named exhibits; empty means all of
	// them, preceded by a Warm pass that fans every instrumented run out
	// across the worker pool before the (ordered) rendering starts.
	Only []string
	// Now, when non-nil, stamps a "generated <RFC3339>" line under the
	// header.  The report generator itself never reads the real clock —
	// the CLI injects time.Now, the daemon injects its configured clock,
	// and tests inject a fake so report bytes stay deterministic.
	Now func() time.Time
	// Tee, when non-nil, opens a secondary sink per exhibit (the CLI's
	// -outdir); each exhibit's output is written to both.  A close error
	// fails the exhibit unless its generator already failed.
	Tee func(name string) (io.WriteCloser, error)
}

// WriteReport renders the selected exhibits onto w: the header, each
// exhibit in registry order (degraded runs annotated in place when the
// session tolerates failures), and the trailing degraded-runs section.
// Identical sessions produce byte-identical reports — across jobs counts
// and across the CLI and HTTP frontends — except for the optional
// generated-timestamp line.
func (s *Session) WriteReport(w io.Writer, cfg ReportConfig) error {
	want := map[string]bool{}
	for _, name := range cfg.Only {
		if !knownExhibit(name) {
			return fmt.Errorf("unknown exhibit %q", name)
		}
		want[name] = true
	}

	if _, err := fmt.Fprintf(w, "NV-SCAVENGER evaluation reproduction (scale %.2f, %d iterations)\n",
		s.Options().Scale, s.Options().Iterations); err != nil {
		return err
	}
	if cfg.Now != nil {
		if _, err := fmt.Fprintf(w, "generated %s\n\n", cfg.Now().Format(time.RFC3339)); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	if len(want) == 0 {
		if err := s.Warm(); err != nil {
			return err
		}
	}

	for _, ex := range Exhibits() {
		if len(want) > 0 && !want[ex.Name] {
			continue
		}
		ew := w
		var tee io.WriteCloser
		if cfg.Tee != nil {
			var err error
			tee, err = cfg.Tee(ex.Name)
			if err != nil {
				return err
			}
			ew = io.MultiWriter(w, tee)
		}
		err := ex.Gen(s, ew)
		if err != nil && s.Degraded() {
			// Chaos/degraded run: an exhibit whose runs were exhausted is
			// annotated in place and the sweep continues.
			_, werr := fmt.Fprintf(ew, "%s: DEGRADED: %v\n\n", ex.Name, err)
			err = werr
		}
		if tee != nil {
			if cerr := tee.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", ex.Name, err)
		}
	}

	if s.Degraded() {
		if runErrs := s.RunErrors(); len(runErrs) > 0 {
			if _, err := fmt.Fprintln(w, "Degraded runs:"); err != nil {
				return err
			}
			for _, re := range runErrs {
				if _, err := fmt.Fprintf(w, "  %-36s %s\n", re.Key, re.Err); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
