package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
)

// ProfilerErrorStudy is the quantified-sampling harness of ROADMAP item 2:
// it runs a perfect profiler (full instrumentation) and a set of sampled
// profilers side by side on the session's engine and reports, per sampling
// configuration, the relative error of the estimator-rescaled per-object
// statistics against the true values — the PerfectProfiler-vs-
// sampled-profiler methodology of felixge/alloc-prof-sim, applied to the
// paper's per-object metrics (references, writes, per-iteration series,
// Table V stack ratio).  Where the §III-D study (SamplingStudy) shows what
// is lost, this study shows how well the estimator recovers what remains —
// the accuracy/cost axis that buys 10-100x larger app scales.

// DefaultProfilerErrorSpecs are the exhibit's sampling configurations:
// three Bernoulli rates spanning two orders of magnitude, the periodic
// gate at the middle rate (phase-lock comparison) and a byte-threshold
// configuration (heap-sampler style).
var DefaultProfilerErrorSpecs = []memtrace.SampleSpec{
	{Mode: memtrace.SampleBernoulli, Rate: 16, Seed: 42},
	{Mode: memtrace.SampleBernoulli, Rate: 64, Seed: 42},
	{Mode: memtrace.SampleBernoulli, Rate: 256, Seed: 42},
	{Mode: memtrace.SamplePeriodic, Rate: 64},
	{Mode: memtrace.SampleBytes, Rate: 1024, Seed: 42},
}

// ProfilerErrorRow quantifies one sampled profiler against the perfect one.
type ProfilerErrorRow struct {
	Spec memtrace.SampleSpec
	// ObservedRefs is the number of references the sampled tracer saw;
	// TrueRefs is the perfect profiler's count.
	ObservedRefs uint64
	TrueRefs     uint64
	// TotalObjects counts the perfect run's main-loop-active global+heap
	// objects; LostObjects of them were never observed by the sampled run
	// (no estimate exists — the §III-D loss).
	TotalObjects int
	LostObjects  int
	// MeanRefsErr / MaxRefsErr are the mean and maximum relative error of
	// the estimated per-object main-loop reference counts over the active
	// objects (a lost object contributes error 1).
	MeanRefsErr float64
	MaxRefsErr  float64
	// MeanWritesErr is the same statistic over estimated main-loop write
	// counts, restricted to objects the perfect run saw written.
	MeanWritesErr float64
	// MeanSeriesErr is the mean relative error of the estimated
	// per-iteration reference series, averaged over active iterations and
	// then over objects — the estimator's fidelity on the Figures 8-11
	// variance inputs.
	MeanSeriesErr float64
	// StackRatioErr is the relative error of the sampled Table V stack
	// ratio (absolute error when the true ratio is 0).
	StackRatioErr float64
}

// profObject is the compact per-object estimate a profiler run retains.
type profObject struct {
	refs   float64   // estimated (true, for the perfect run) main-loop refs
	writes float64   // estimated main-loop writes
	series []float64 // estimated refs per iteration (index 0 = pre/post)
}

// profRun is the engine-cached product of one profiler execution.
type profRun struct {
	observed uint64
	objects  map[string]profObject
	ratio    float64
}

// profilerRun executes one app under the given sampling spec (the zero
// spec is the perfect profiler) and reduces the tracer to the per-object
// estimates the comparison needs.  Runs are keyed by app x mode x rate x
// seed, so re-requesting a configuration is free and concurrent exhibits
// share executions.
func (s *Session) profilerRun(ctx context.Context, app string, spec memtrace.SampleSpec) (profRun, error) {
	profile := "perfect"
	if spec.Enabled() {
		profile = spec.String()
	}
	v, err := s.do(ctx, s.key(app, "profiler", profile),
		func(ctx context.Context) (any, uint64, error) {
			a, err := apps.New(app, s.opts.Scale)
			if err != nil {
				return nil, 0, err
			}
			stack, err := pipeline.Build(pipeline.Config{StackMode: memtrace.FastStack, Sample: spec})
			if err != nil {
				return nil, 0, err
			}
			tr := stack.Tracer
			if err := apps.RunContext(ctx, a, tr, s.opts.Iterations); err != nil {
				return nil, 0, err
			}
			if err := stack.Close(); err != nil {
				return nil, 0, err
			}
			est := tr.Estimator()
			res := profRun{
				observed: tr.Sampled,
				objects:  map[string]profObject{},
				ratio:    core.StackAnalysis(tr).OverallRatio,
			}
			for _, o := range tr.Objects() {
				loop := est.Loop(o)
				if loop.Refs() <= 0 {
					continue
				}
				res.objects[o.Name] = profObject{
					refs:   loop.Refs(),
					writes: loop.Writes,
					series: est.IterSeries(o),
				}
			}
			return res, tr.Sampled, nil
		})
	if err != nil {
		return profRun{}, err
	}
	return v.(profRun), nil
}

// relErr is |est-true|/true, falling back to the absolute error when the
// true value is 0 (an estimate of something absent is wrong by its own
// magnitude, not by 0).
func relErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}

// compare reduces one sampled run against the perfect run.
func compare(spec memtrace.SampleSpec, perfect, sampled profRun) ProfilerErrorRow {
	row := ProfilerErrorRow{
		Spec:         spec,
		ObservedRefs: sampled.observed,
		TrueRefs:     perfect.observed,
		TotalObjects: len(perfect.objects),
	}
	names := make([]string, 0, len(perfect.objects))
	for name := range perfect.objects {
		names = append(names, name)
	}
	sort.Strings(names)

	var refsSum, writesSum, seriesSum float64
	var writesN, seriesN int
	for _, name := range names {
		truth := perfect.objects[name]
		est, seen := sampled.objects[name]
		if !seen {
			// Lost object: the estimator has nothing to rescale.  It
			// counts as full error so the aggregate reflects the loss
			// instead of silently averaging over survivors only.
			row.LostObjects++
			refsSum++
			if row.MaxRefsErr < 1 {
				row.MaxRefsErr = 1
			}
			if truth.writes > 0 {
				writesSum++
				writesN++
			}
			seriesSum++
			seriesN++
			continue
		}
		e := relErr(est.refs, truth.refs)
		refsSum += e
		if e > row.MaxRefsErr {
			row.MaxRefsErr = e
		}
		if truth.writes > 0 {
			writesSum += relErr(est.writes, truth.writes)
			writesN++
		}
		var perIter float64
		var iters int
		for i := 1; i < len(truth.series); i++ {
			if truth.series[i] == 0 {
				continue
			}
			var got float64
			if i < len(est.series) {
				got = est.series[i]
			}
			perIter += relErr(got, truth.series[i])
			iters++
		}
		if iters > 0 {
			seriesSum += perIter / float64(iters)
			seriesN++
		}
	}
	if len(names) > 0 {
		row.MeanRefsErr = refsSum / float64(len(names))
	}
	if writesN > 0 {
		row.MeanWritesErr = writesSum / float64(writesN)
	}
	if seriesN > 0 {
		row.MeanSeriesErr = seriesSum / float64(seriesN)
	}
	row.StackRatioErr = relErr(sampled.ratio, perfect.ratio)
	return row
}

// ProfilerErrorStudy runs the perfect profiler and every sampled
// configuration on one app and returns a row per configuration, in input
// order.  The sampled runs fan out across the worker pool; output is
// byte-identical at any -jobs count and across the CLI and nvserved
// frontends (the exhibit renders from this single generator).
func (s *Session) ProfilerErrorStudy(app string, specs []memtrace.SampleSpec) ([]ProfilerErrorRow, error) {
	perfect, err := s.profilerRun(s.ctx(), app, memtrace.SampleSpec{})
	if err != nil {
		return nil, err
	}
	return runner.Collect(s.ctx(), specs, func(ctx context.Context, spec memtrace.SampleSpec) (ProfilerErrorRow, error) {
		if !spec.Enabled() {
			return compare(spec, perfect, perfect), nil
		}
		sampled, err := s.profilerRun(ctx, app, spec)
		if err != nil {
			return ProfilerErrorRow{}, err
		}
		return compare(spec, perfect, sampled), nil
	})
}

// FormatProfilerErrorStudy renders the study.
func FormatProfilerErrorStudy(app string, rows []ProfilerErrorRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profiler error study on %s (sampled vs perfect profiler, estimator-rescaled)\n", app)
	fmt.Fprintf(&b, "%-26s %12s %12s %10s %10s %10s %10s %10s\n",
		"sample spec", "observed", "true refs", "lost", "refs err", "max err", "writes err", "ratio err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %12d %12d %3d of %-3d %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			r.Spec, r.ObservedRefs, r.TrueRefs, r.LostObjects, r.TotalObjects,
			r.MeanRefsErr*100, r.MaxRefsErr*100, r.MeanWritesErr*100, r.StackRatioErr*100)
	}
	fmt.Fprintf(&b, "per-iteration series error:")
	for _, r := range rows {
		fmt.Fprintf(&b, " %s=%.1f%%", r.Spec, r.MeanSeriesErr*100)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "the estimator recovers aggregate counts at a fraction of the instrumentation\n")
	fmt.Fprintf(&b, "cost; lost objects mark where §III-D's objection still binds at each rate.\n")
	return b.String()
}
