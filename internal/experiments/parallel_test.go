package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"nvscavenger/internal/runner"
)

// reportText renders the exhibits whose runs fan out, in a fixed order, so
// two sessions can be compared byte-for-byte.
func reportText(t *testing.T, s *Session) string {
	t.Helper()
	var b strings.Builder
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatTable1(t1))
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatTable5(t5))
	cdfs, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatFigure7(cdfs))
	t6, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatTable6(t6))
	f12, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatFigure12(f12))
	plans, err := s.Placement()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatPlacement(plans))
	return b.String()
}

// TestParallelMatchesSequential: the engine's fan-out must not change a
// single byte of any exhibit — runs are deterministic and results are
// collected in input order regardless of completion order.
func TestParallelMatchesSequential(t *testing.T) {
	seq := NewSession(WithScale(0.05), WithIterations(3), WithJobs(1))
	par := NewSession(WithScale(0.05), WithIterations(3), WithJobs(8))
	if err := par.Warm(); err != nil {
		t.Fatal(err)
	}
	a, b := reportText(t, seq), reportText(t, par)
	if a != b {
		t.Fatalf("parallel report differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestSingleFlightSharesRuns: concurrent exhibit calls needing the same
// instrumented run must execute it exactly once.
func TestSingleFlightSharesRuns(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(2), WithJobs(4))
	var wg sync.WaitGroup
	runs := make([]*Run, 8)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Fast("gtc")
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(runs); i++ {
		if runs[i] != runs[0] {
			t.Fatal("concurrent Fast calls returned distinct runs")
		}
	}
	m := s.Metrics()
	if m.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", m.Misses)
	}
	if m.Hits != uint64(len(runs)-1) {
		t.Fatalf("hits = %d, want %d", m.Hits, len(runs)-1)
	}
	if len(m.Runs) != 1 || m.Runs[0].Refs == 0 {
		t.Fatalf("run metrics = %+v (want one run with observed refs)", m.Runs)
	}
}

// TestCancellationMidSweep: cancelling the session context after the first
// completed run aborts the rest of the sweep with the context's error.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := NewSession(
		WithScale(0.05), WithIterations(2), WithJobs(1),
		WithContext(ctx),
		WithProgress(func(ev runner.Event) {
			if ev.Kind == runner.EventDone {
				cancel() // first completed run kills the sweep
			}
		}),
	)
	err := s.Warm()
	if err == nil {
		t.Fatal("Warm must fail once the context is cancelled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	m := s.Metrics()
	if len(m.Runs) >= len(AppNames)+1 {
		t.Fatalf("all %d runs completed despite cancellation", len(m.Runs))
	}
}

// TestLegacyOptionsShim: the deprecated struct constructor must behave
// exactly like the functional options.
func TestLegacyOptionsShim(t *testing.T) {
	legacy := NewSession(Options{Scale: 0.5, Iterations: 4})
	if o := legacy.Options(); o.Scale != 0.5 || o.Iterations != 4 {
		t.Fatalf("legacy options = %+v", o)
	}
	zero := NewSession(Options{})
	if o := zero.Options(); o.Scale != 1.0 || o.Iterations != 10 {
		t.Fatalf("zero-value legacy options = %+v", o)
	}
	fn := NewSession(WithScale(0.5), WithIterations(4))
	if fn.Options() != legacy.Options() {
		t.Fatalf("functional %+v != legacy %+v", fn.Options(), legacy.Options())
	}
}

// TestWithApps restricts the fan-out set.
func TestWithApps(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(2), WithApps("gtc", "s3d"))
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].App != "gtc" || rows[1].App != "s3d" {
		t.Fatalf("rows = %+v", rows)
	}
	// Figure 7's fixed list intersects the configured set.
	cdfs, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 1 || cdfs["s3d"] == nil {
		t.Fatalf("figure 7 apps = %d", len(cdfs))
	}
}
