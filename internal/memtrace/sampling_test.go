package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

// rareObjectWorkload touches one hot object constantly and many cold
// objects a handful of times each — the population for which §III-D argues
// sampling is unusable.
func rareObjectWorkload(tr *Tracer) (hot F64, cold []F64) {
	hot, _ = tr.GlobalF64("hot", 64)
	for i := 0; i < 50; i++ {
		c, _ := tr.GlobalF64("cold", 8)
		cold = append(cold, c)
	}
	tr.BeginIteration()
	for k := 0; k < 10000; k++ {
		hot.Store(k%64, float64(k))
	}
	for _, c := range cold {
		c.Store(0, 1)
		_ = c.Load(0)
		c.Store(1, 2)
	}
	return hot, cold
}

func TestSamplingOffObservesEverything(t *testing.T) {
	tr := New(Config{})
	rareObjectWorkload(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Sampled == 0 {
		t.Fatal("Sampled counter must track all references when sampling is off")
	}
	missing := 0
	for _, o := range tr.Objects() {
		if o.Segment == trace.SegGlobal && o.Total().Refs() == 0 && o.Name == "cold" {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("full instrumentation missed %d cold objects", missing)
	}
}

func TestSamplingLosesRareObjects(t *testing.T) {
	tr := New(Config{Sample: SampleSpec{Mode: SamplePeriodic, Rate: 64}})
	_, cold := rareObjectWorkload(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// The hot object is still seen...
	var hotRefs uint64
	missing := 0
	for _, o := range tr.Objects() {
		if o.Name == "hot" {
			hotRefs = o.Total().Refs()
		}
		if o.Name == "cold" && o.Total().Refs() == 0 {
			missing++
		}
	}
	if hotRefs == 0 {
		t.Fatal("sampling must still observe the hot object")
	}
	// ...but a large share of the cold objects vanish from the analysis:
	// exactly the access-information loss §III-D warns causes improper
	// data placement.
	if missing < len(cold)/4 {
		t.Fatalf("only %d of %d cold objects lost under 1/64 sampling; expected substantial loss",
			missing, len(cold))
	}
}

func TestSamplingReducesObservedCount(t *testing.T) {
	full := New(Config{})
	rareObjectWorkload(full)
	sampled := New(Config{Sample: SampleSpec{Mode: SamplePeriodic, Rate: 16}})
	rareObjectWorkload(sampled)
	if sampled.Sampled*8 > full.Sampled {
		t.Fatalf("1/16 sampling observed %d of %d references", sampled.Sampled, full.Sampled)
	}
	// Instructions retire identically: sampling gates observation only.
	if full.Instructions() != sampled.Instructions() {
		t.Fatalf("instruction counts diverged: %d vs %d", full.Instructions(), sampled.Instructions())
	}
}

func TestSamplingPeriodOneIsFull(t *testing.T) {
	a := New(Config{Sample: SampleSpec{Mode: SamplePeriodic, Rate: 1}})
	rareObjectWorkload(a)
	b := New(Config{})
	rareObjectWorkload(b)
	if a.Sampled != b.Sampled {
		t.Fatal("period 1 must observe everything")
	}
}
