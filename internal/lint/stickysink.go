package lint

import (
	"go/ast"
	"go/types"
)

// stickysink enforces the buffered-pipeline failure contract from the
// trace layer: a type that wraps a trace.Sink/TxSink/PerfSink behind a
// sticky error field (trace.Buffer, trace.TxBuffer and anything shaped
// like them) must check that error before invoking the sink — once a sink
// has failed it is never called again; later batches are dropped and
// counted.  The check is structural: in every method of such a type, a
// call through the sink field must be preceded by an if-condition reading
// the error field.
type stickysink struct {
	nopFinish
}

func init() {
	registerPass("stickysink", func() Pass { return &stickysink{} })
}

func (*stickysink) Name() string { return "stickysink" }
func (*stickysink) Doc() string {
	return "sink-wrapping types with a sticky error never invoke the sink without checking the error first"
}

// stickyType describes one sink-wrapping struct.
type stickyType struct {
	sinkFields map[string]bool
	errFields  map[string]bool
}

func (s *stickysink) Check(p *Package, r *Reporter) {
	ifaces := sinkInterfaces(p)
	if len(ifaces) == 0 {
		return
	}
	wrapped := map[string]stickyType{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			w := stickyType{sinkFields: map[string]bool{}, errFields: map[string]bool{}}
			for _, field := range st.Fields.List {
				t := p.Info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				for _, name := range field.Names {
					switch {
					case isSinkType(t, ifaces):
						w.sinkFields[name.Name] = true
					case isErrorType(t):
						w.errFields[name.Name] = true
					}
				}
			}
			if len(w.sinkFields) > 0 && len(w.errFields) > 0 {
				wrapped[ts.Name.Name] = w
			}
			return true
		})
	}
	if len(wrapped) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			w, ok := wrapped[tname]
			if !ok || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recv := fd.Recv.List[0].Names[0].Name
			s.checkMethod(p, r, tname, fd, recv, w)
		}
	}
}

// checkMethod walks one method body in source order: an if-condition
// reading recv.<errField> arms the guard; a call through recv.<sinkField>
// before that is a contract violation.
func (s *stickysink) checkMethod(p *Package, r *Reporter, tname string, fd *ast.FuncDecl, recv string, w stickyType) {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IfStmt:
			if mentionsField(e.Cond, recv, w.errFields) {
				guarded = true
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok || !w.sinkFields[inner.Sel.Name] {
				return true
			}
			if id, ok := ast.Unparen(inner.X).(*ast.Ident); !ok || id.Name != recv {
				return true
			}
			if !guarded {
				r.Report(e.Pos(), "stickysink",
					"%s.%s invokes sink field %q without first checking the sticky error (a failed sink must never be called again)",
					tname, fd.Name.Name, inner.Sel.Name)
			}
		}
		return true
	})
}

// mentionsField reports whether expr reads recv.<field> for any field in
// the set.
func mentionsField(expr ast.Expr, recv string, fields map[string]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !fields[sel.Sel.Name] {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
			found = true
		}
		return !found
	})
	return found
}

// sinkInterfaces resolves the trace package's sink interfaces in the
// package's own type universe (the defining package or an import of it).
func sinkInterfaces(p *Package) []types.Type {
	tracePkg := importedPkg(p, "internal/trace")
	if tracePkg == nil {
		return nil
	}
	var out []types.Type
	for _, name := range []string{"Sink", "TxSink", "PerfSink"} {
		if obj, ok := tracePkg.Scope().Lookup(name).(*types.TypeName); ok {
			out = append(out, obj.Type())
		}
	}
	return out
}

// isSinkType reports whether t is (or aliases) one of the sink interface
// types.
func isSinkType(t types.Type, ifaces []types.Type) bool {
	for _, iface := range ifaces {
		if types.Identical(t, iface) {
			return true
		}
	}
	return false
}
