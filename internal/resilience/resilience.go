// Package resilience holds the failure-handling primitives the simulation
// pipeline composes: bounded retry with a deterministic backoff schedule, a
// count-based circuit breaker, and a panic-to-error recovery wrapper.
//
// The paper's §I motivation is the exascale *resiliency challenge* — the
// mean time between failures shrinks as the machine grows — and the
// follow-on NVM literature treats fault behaviour as a first-class axis of
// any persistent-memory study.  This package gives the rest of the tree
// one shared vocabulary for surviving injected (internal/faults) or real
// failures without giving up determinism: nothing here reads a wall clock
// or a global random source to make a decision.  Retry counts, breaker
// transitions and recovery are pure functions of the call sequence, so a
// degraded run is byte-identical at jobs=1 and jobs=N.
package resilience

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// RetryPolicy is a bounded retry schedule.  The zero value performs no
// retries (exactly one attempt), so wiring a policy through existing code
// is free until a caller opts in.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first; values
	// below 1 mean one attempt (no retry).
	Attempts int
	// Backoff is the deterministic wait schedule: retry i sleeps
	// Backoff[min(i, len(Backoff)-1)].  An empty schedule retries
	// immediately, which keeps tests and chaos runs deterministic in time.
	Backoff []time.Duration
	// Sleep overrides time.Sleep (tests).  Nil selects time.Sleep.
	Sleep func(time.Duration)
}

// MaxAttempts returns the effective attempt bound: at least 1.  Callers
// that need a context-aware loop (the run engine must not retry a
// cancelled run) iterate themselves with MaxAttempts and Wait.
func (p RetryPolicy) MaxAttempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// Wait blocks for the backoff step of retry i (0-based).  A policy with no
// schedule returns immediately.
func (p RetryPolicy) Wait(i int) {
	if len(p.Backoff) == 0 {
		return
	}
	if i >= len(p.Backoff) {
		i = len(p.Backoff) - 1
	}
	d := p.Backoff[i]
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Do runs fn up to Attempts times, waiting the backoff step between tries.
// It returns the number of retries performed (0 when the first attempt
// succeeded) and the first nil — or last non-nil — error.
func (p RetryPolicy) Do(fn func() error) (retries int, err error) {
	n := p.MaxAttempts()
	for i := 0; ; i++ {
		err = fn()
		if err == nil || i+1 >= n {
			return i, err
		}
		p.Wait(i)
	}
}

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// Closed passes calls through and counts consecutive failures.
	Closed BreakerState = iota
	// Open rejects calls until the cooldown elapses.
	Open
	// HalfOpen lets one probe call through to test the dependency.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker open (default 1).
	FailureThreshold int
	// Cooldown is the number of calls rejected while open before the next
	// call is allowed through as a half-open probe (default 1).  The
	// breaker counts calls, not wall time, so chaos runs stay reproducible
	// across worker-pool sizes.
	Cooldown int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 1
	}
	if c.Cooldown < 1 {
		c.Cooldown = 1
	}
	return c
}

// Breaker is a deterministic count-based circuit breaker:
// closed → (FailureThreshold consecutive failures) → open →
// (Cooldown rejected calls) → half-open probe → closed on success,
// back to open on failure.  It is safe for concurrent use, though each
// pipeline buffer typically owns a private breaker.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int // consecutive failures while closed
	cooled   int // calls rejected since the trip
	trips    uint64
	rejected uint64
}

// NewBreaker returns a closed Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed.  While open it counts the
// rejection; once Cooldown rejections have accumulated the next call is
// admitted as the half-open probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.cooled >= b.cfg.Cooldown {
			b.state = HalfOpen
			return true
		}
		b.cooled++
		b.rejected++
		return false
	default:
		return true
	}
}

// Success records a successful call: it closes a half-open breaker and
// clears the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == HalfOpen {
		b.state = Closed
	}
}

// Failure records a failed call: a half-open probe failure re-opens the
// breaker immediately; a closed breaker trips once FailureThreshold
// consecutive failures accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.trip()
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip must be called with the lock held.
func (b *Breaker) trip() {
	b.state = Open
	b.trips++
	b.cooled = 0
	b.fails = 0
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Rejected returns how many calls were refused while open.
func (b *Breaker) Rejected() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// PanicError is a panic converted to an error by Recover.  The recovered
// value and the goroutine stack at the panic site are preserved so chaos
// reports can show where a worker died.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the recovered value.
func (e *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", e.Value) }

// Recover runs fn, converting a panic into a *PanicError.  memtrace's
// invariant panics (double free, stack-discipline violations) stay panics
// at their site; this wrapper is how the experiment engine contains them
// to the failing run instead of letting one bad worker kill a whole sweep.
func Recover(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}
