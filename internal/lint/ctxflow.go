package lint

import (
	"bufio"
	"bytes"
	_ "embed"
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowRoots are the packages whose goroutines must have provable
// lifecycles: the run engine, the job service and the event pipeline all
// spawn workers whose leaks would silently skew exhibit timings.
var ctxflowRoots = map[string]bool{
	"runner":   true,
	"served":   true,
	"pipeline": true,
}

//go:embed ctxflow_allow.txt
var ctxflowAllowlist []byte

// ctxflow proves goroutine lifecycles in the concurrent packages: every
// `go` launch must be tied to a context.Context, a WaitGroup join, or a
// channel protocol the launcher participates in; context.Context must not
// be stored in struct fields outside the embedded allowlist; and
// unbounded loops (`for {}` and `for cond {}` without a data-driven
// bound) must consult cancellation so Drain/Close can actually stop
// them.
type ctxflow struct {
	nopFinish
	allow map[string]bool
}

func init() {
	registerPass("ctxflow", func() Pass {
		return &ctxflow{allow: parsePairAllowlist(ctxflowAllowlist)}
	})
}

// parsePairAllowlist reads "pkg-rel-path name" pairs; '#' starts a
// comment, blank lines are skipped.
func parsePairAllowlist(data []byte) map[string]bool {
	allow := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 2 {
			allow[fields[0]+" "+fields[1]] = true
		}
	}
	return allow
}

func (*ctxflow) Name() string { return "ctxflow" }
func (*ctxflow) Doc() string {
	return "goroutine launches in runner/served/pipeline are tied to a context, join, or channel protocol; contexts stay out of structs; unbounded loops consult cancellation"
}

func (*ctxflow) inScope(p *Package) bool {
	rel, ok := strings.CutPrefix(p.ModRel(), "internal/")
	if !ok {
		return false
	}
	root, _, _ := strings.Cut(rel, "/")
	return ctxflowRoots[root]
}

func (c *ctxflow) Check(p *Package, r *Reporter) {
	if !c.inScope(p) {
		return
	}
	ctxType := contextType(p)
	for _, f := range p.Files {
		c.checkStructFields(p, r, f, ctxType)
		inspectDecls(f, func(decl ast.Decl, fn string) {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					c.checkLaunch(p, r, fd, n, ctxType)
				case *ast.ForStmt:
					c.checkLoop(p, r, n, ctxType)
				}
				return true
			})
		})
	}
}

// contextType resolves the context.Context interface type if the package
// imports it (directly or transitively via the checked file set).
func contextType(p *Package) types.Type {
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == "context" {
			if obj, ok := imp.Scope().Lookup("Context").(*types.TypeName); ok {
				return obj.Type()
			}
		}
	}
	return nil
}

// checkStructFields flags context.Context stored in struct fields outside
// the allowlist: a stored context outlives the call tree it was scoped
// to, which is exactly the lifetime confusion the pass exists to prevent.
func (c *ctxflow) checkStructFields(p *Package, r *Reporter, f *ast.File, ctxType types.Type) {
	if ctxType == nil {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || !types.Identical(t, ctxType) {
				continue
			}
			for _, name := range field.Names {
				if c.allow[p.ModRel()+" "+ts.Name.Name+"."+name.Name] {
					continue
				}
				r.Report(name.Pos(), "ctxflow",
					"context.Context stored in struct field %s.%s: pass contexts as arguments, or allowlist a sanctioned lifecycle carrier in ctxflow_allow.txt",
					ts.Name.Name, name.Name)
			}
		}
		return true
	})
}

// checkLaunch verifies a `go` statement has a provable lifecycle tie.
func (c *ctxflow) checkLaunch(p *Package, r *Reporter, launcher *ast.FuncDecl, g *ast.GoStmt, ctxType types.Type) {
	body := launchedBody(p, g)
	if body == nil {
		r.Report(g.Pos(), "ctxflow",
			"goroutine body is not resolvable in this package; launch a local function so its lifecycle tie can be checked")
		return
	}
	// Tie 1: the goroutine (or its argument list) sees a context.
	if refsType(p, body, ctxType) || refsType(p, g.Call, ctxType) {
		return
	}
	// Tie 2: WaitGroup join — the body calls Done and the launcher's
	// package pairs it with Add before the launch.
	if callsWaitGroup(p, body, "Done") && callsWaitGroup(p, launcher, "Add") {
		return
	}
	// Tie 3: channel protocol — the body closes or sends on a channel and
	// the launcher receives, or the body drains a channel by range (bounded
	// by the sender's close).
	if (closesOrSendsChan(p, body) && receivesChan(p, launcher)) || rangesOverChan(p, body) {
		return
	}
	r.Report(g.Pos(), "ctxflow",
		"goroutine launch has no provable lifecycle tie: thread a context.Context, join via WaitGroup Add/Done, or use a channel the launcher closes/receives")
}

// launchedBody resolves the body of the launched function: a literal
// directly, or a same-package function/method declaration.
func launchedBody(p *Package, g *ast.GoStmt) ast.Node {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	f := funcObject(p, g.Call.Fun)
	if f == nil || f.Pkg() != p.Pkg {
		return nil
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && p.Info.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

// refsType reports whether any expression under n has the given type.
func refsType(p *Package, n ast.Node, want types.Type) bool {
	if want == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if t := p.Info.TypeOf(e); t != nil && types.Identical(t, want) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callsWaitGroup reports whether n calls the named sync.WaitGroup method.
func callsWaitGroup(p *Package, n ast.Node, method string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObject(p, call.Fun)
		if f != nil && f.Name() == method && f.Pkg() != nil && f.Pkg().Path() == "sync" {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// closesOrSendsChan reports whether n closes a channel or sends on one.
func closesOrSendsChan(p *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt:
			found = true
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// receivesChan reports whether n receives from a channel: a unary <-,
// a range over a channel, or a select with a receive clause.
func receivesChan(p *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if rangesChanExpr(p, x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rangesOverChan reports whether n contains a range over a channel.
func rangesOverChan(p *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if rs, ok := x.(*ast.RangeStmt); ok && rangesChanExpr(p, rs) {
			found = true
			return false
		}
		return true
	})
	return found
}

func rangesChanExpr(p *Package, rs *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// checkLoop flags `for {}` loops that never consult cancellation: without
// a ctx.Done/ctx.Err check, a channel receive, or a Cond.Wait, no Drain
// or Close can ever stop the loop.
func (c *ctxflow) checkLoop(p *Package, r *Reporter, loop *ast.ForStmt, ctxType types.Type) {
	if loop.Cond != nil {
		return
	}
	if consultsCancellation(p, loop.Body, ctxType) {
		return
	}
	r.Report(loop.Pos(), "ctxflow",
		"unbounded loop never consults cancellation: check ctx.Done()/ctx.Err(), receive from a channel, or break on a bound")
}

// consultsCancellation reports whether the loop body observes an external
// stop signal.
func consultsCancellation(p *Package, body ast.Node, ctxType types.Type) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if rangesChanExpr(p, x) {
				found = true
				return false
			}
		case *ast.CallExpr:
			// Delegation counts: a call handed a context.Context is presumed
			// to observe its cancellation (the callee is checked on its own).
			if ctxType != nil {
				for _, arg := range x.Args {
					if t := p.Info.TypeOf(arg); t != nil && types.Identical(t, ctxType) {
						found = true
						return false
					}
				}
			}
			f := funcObject(p, x.Fun)
			if f == nil {
				return true
			}
			switch f.Name() {
			case "Done", "Err":
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && ctxType != nil {
					if t := p.Info.TypeOf(sel.X); t != nil && types.Identical(t, ctxType) {
						found = true
						return false
					}
				}
			case "Wait":
				if f.Pkg() != nil && f.Pkg().Path() == "sync" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
