package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"nvscavenger/internal/apps"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/s3dmini"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

// perfCap captures the performance-event stream.
type perfCap struct{ events []trace.PerfEvent }

func (p *perfCap) FlushEvents(batch []trace.PerfEvent) error {
	p.events = append(p.events, batch...)
	return nil
}

// fingerprint renders every externally observable statistic of a finished
// stack — per-object counters, per-segment series, cache counters, the
// captured transaction trace and the perf stream — into one string, so
// sharded-vs-legacy equivalence is literal string equality.
func fingerprint(st *Stack, perf []trace.PerfEvent) string {
	var b bytes.Buffer
	tr := st.Tracer
	fmt.Fprintf(&b, "sampled=%d sampledOut=%d unknown=%d instrs=%d loops=%d highwater=%d footprint=%d\n",
		tr.Sampled, tr.SampledOut, tr.Unknown, tr.Instructions(), tr.MainLoopIterations(),
		tr.StackHighWater(), tr.Footprint())
	lk, ch, sc, rb := tr.RegistryStats()
	fmt.Fprintf(&b, "registry lookups=%d cacheHits=%d scanned=%d rebalances=%d\n", lk, ch, sc, rb)
	est := tr.Estimator()
	for idx, o := range tr.Objects() {
		seq, strided, random := o.PatternCounts()
		fmt.Fprintf(&b, "obj %d %v %q %q size=%d reads=%d writes=%d touched=%d iters=%d pattern=%v seq=%d strided=%d random=%d factor=%g\n",
			idx, o.Segment, o.Name, o.Site, o.Size, o.Total().Reads, o.Total().Writes,
			o.TouchedIterations(), o.Iterations(), o.AccessPattern(), seq, strided, random, est.Factor(o))
		for i := 0; i < o.Iterations(); i++ {
			s := o.Iter(i)
			if s.Reads == 0 && s.Writes == 0 && s.Instructions == 0 {
				continue
			}
			fmt.Fprintf(&b, "  iter %d reads=%d writes=%d instrs=%d\n", i, s.Reads, s.Writes, s.Instructions)
		}
	}
	for _, seg := range []trace.Segment{trace.SegUnknown, trace.SegGlobal, trace.SegHeap, trace.SegStack} {
		for i := 0; i <= tr.MainLoopIterations()+1; i++ {
			s := tr.SegmentStats(seg, i)
			if s.Reads == 0 && s.Writes == 0 {
				continue
			}
			fmt.Fprintf(&b, "seg %v iter %d %+v\n", seg, i, s)
		}
	}
	if st.Hierarchy != nil {
		fmt.Fprintf(&b, "l1 %+v\nl2 %+v\nmem reads=%d writes=%d\n",
			st.Hierarchy.L1Stats(), st.Hierarchy.L2Stats(), st.Hierarchy.MemReads, st.Hierarchy.MemWrites)
	}
	txs := st.Transactions()
	fmt.Fprintf(&b, "txs %d\n", len(txs))
	for _, tx := range txs {
		fmt.Fprintf(&b, "tx %x %v %d\n", tx.Addr, tx.Write, tx.Cycle)
	}
	fmt.Fprintf(&b, "perf %d\n", len(perf))
	for _, ev := range perf {
		fmt.Fprintf(&b, "ev %d %x %d %v\n", ev.Gap, ev.Access.Addr, ev.Access.Size, ev.Access.Op)
	}
	return b.String()
}

func metricsText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func shardTestConfig(app string, spec memtrace.SampleSpec, pc *perfCap, reg *obs.Registry) Config {
	cache := cachesim.PaperConfig()
	return Config{
		StackMode: memtrace.FastStack,
		Sample:    spec,
		Cache:     &cache,
		CaptureTx: true,
		Perf:      pc,
		Metrics:   reg,
		Labels:    []obs.Label{obs.L("app", app)},
	}
}

// legacyRun is the pre-sharding reference: one instrumented combinator-path
// stack over the full run.
func legacyRun(t *testing.T, app string, iters int, spec memtrace.SampleSpec) (string, string) {
	t.Helper()
	reg := obs.NewRegistry()
	pc := &perfCap{}
	st := MustBuild(shardTestConfig(app, spec, pc, reg))
	a, err := apps.New(app, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.Run(a, st.Tracer, iters); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return fingerprint(st, pc.events), metricsText(t, reg)
}

func shardedRun(t *testing.T, app string, iters, shards int, spec memtrace.SampleSpec) (string, string) {
	t.Helper()
	reg := obs.NewRegistry()
	pc := &perfCap{}
	ss, err := BuildSharded(shardTestConfig(app, spec, pc, reg), iters, shards)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < ss.Shards(); k++ {
		a, err := apps.New(app, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := apps.Run(a, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := ss.Merge()
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(merged, pc.events), metricsText(t, reg)
}

// TestShardedMergeMatchesLegacy is the sharding contract: for every sampling
// discipline and every shard count, the merged result of a sharded run — all
// object statistics, segment series, cache counters, the captured transaction
// trace, the perf stream AND the rendered metrics snapshot — is byte-identical
// to the single-stack instrumented run.
func TestShardedMergeMatchesLegacy(t *testing.T) {
	specs := []struct {
		name string
		spec memtrace.SampleSpec
	}{
		{"full", memtrace.SampleSpec{}},
		{"periodic", memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: 4}},
		{"bernoulli", memtrace.SampleSpec{Mode: memtrace.SampleBernoulli, Rate: 8, Seed: 7}},
		{"bytes", memtrace.SampleSpec{Mode: memtrace.SampleBytes, Rate: 512, Seed: 5}},
	}
	const iters = 5
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			wantFP, wantMetrics := legacyRun(t, "gtc", iters, tc.spec)
			for _, k := range []int{1, 2, 3, 4} {
				gotFP, gotMetrics := shardedRun(t, "gtc", iters, k, tc.spec)
				if gotFP != wantFP {
					t.Errorf("shards=%d: merged fingerprint diverges from legacy run\n%s", k, firstDiff(wantFP, gotFP))
				}
				if gotMetrics != wantMetrics {
					t.Errorf("shards=%d: metrics snapshot diverges\n%s", k, firstDiff(wantMetrics, gotMetrics))
				}
			}
		})
	}
}

// TestShardedMergeSecondApp covers a second access mix (s3d's structured
// stencil) at one shard count.
func TestShardedMergeSecondApp(t *testing.T) {
	want, _ := legacyRun(t, "s3d", 4, memtrace.SampleSpec{})
	got, _ := shardedRun(t, "s3d", 4, 3, memtrace.SampleSpec{})
	if got != want {
		t.Fatalf("s3d shards=3 diverges from legacy run\n%s", firstDiff(want, got))
	}
}

// TestShardedMergeSlowStack covers the tracer-only per-frame stack mode the
// slow tool uses: no cache stage, no transaction stream, per-routine stack
// objects.
func TestShardedMergeSlowStack(t *testing.T) {
	const iters = 5
	legacy := MustBuild(Config{StackMode: memtrace.SlowStack})
	a, err := apps.New("gtc", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.Run(a, legacy.Tracer, iters); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(legacy, nil)
	for _, k := range []int{2, 3} {
		ss, err := BuildSharded(Config{StackMode: memtrace.SlowStack}, iters, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ss.Shards(); i++ {
			a, err := apps.New("gtc", 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := apps.Run(a, ss.Stack(i).Tracer, ss.RunIterations(i)); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := ss.Merge()
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(merged, nil); got != want {
			t.Errorf("slow stack shards=%d diverges\n%s", k, firstDiff(want, got))
		}
	}
}

// firstDiff locates the first differing line of two multi-line strings.
func firstDiff(want, got string) string {
	w := bytes.Split([]byte(want), []byte("\n"))
	g := bytes.Split([]byte(got), []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(w), len(g))
}

// TestShardedPartitionSpans: the shard windows tile [1, iterations] exactly —
// contiguous, non-overlapping, within one iteration of even.
func TestShardedPartitionSpans(t *testing.T) {
	cache := cachesim.PaperConfig()
	for iters := 1; iters <= 9; iters++ {
		for shards := 1; shards <= 6; shards++ {
			ss, err := BuildSharded(Config{StackMode: memtrace.FastStack, Cache: &cache}, iters, shards)
			if err != nil {
				t.Fatal(err)
			}
			if shards <= iters && ss.Shards() != shards {
				t.Fatalf("iters=%d shards=%d: got %d shards", iters, shards, ss.Shards())
			}
			if shards > iters && ss.Shards() != iters {
				t.Fatalf("iters=%d shards=%d: want clamp to %d, got %d", iters, shards, iters, ss.Shards())
			}
			next := 1
			for k, w := range ss.windows {
				if w.Start != next {
					t.Fatalf("iters=%d shards=%d: shard %d starts at %d, want %d", iters, shards, k, w.Start, next)
				}
				span := w.End - w.Start + 1
				if span < iters/ss.Shards() || span > iters/ss.Shards()+1 {
					t.Fatalf("iters=%d shards=%d: shard %d span %d is uneven", iters, shards, k, span)
				}
				if (k == 0) != w.First || (k == ss.Shards()-1) != w.Last {
					t.Fatalf("iters=%d shards=%d: shard %d First/Last flags wrong", iters, shards, k)
				}
				next = w.End + 1
			}
			if next != iters+1 {
				t.Fatalf("iters=%d shards=%d: spans end at %d, want %d", iters, shards, next-1, iters)
			}
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedRejectsAccessTaps: a tap would observe every shard's replayed
// prefix rather than the run's stream once, so BuildSharded refuses.
func TestShardedRejectsAccessTaps(t *testing.T) {
	cache := cachesim.PaperConfig()
	_, err := BuildSharded(Config{Cache: &cache, AccessTaps: []trace.Sink{&trace.Stats{}}}, 4, 2)
	if err == nil {
		t.Fatal("BuildSharded must reject access taps")
	}
}

// TestShardedArenaReuse: the shards of one domain recycle staging slabs
// through the shared arenas — a second sharded run over the same Arenas
// allocates no new slabs.
func TestShardedArenaReuse(t *testing.T) {
	arenas := NewArenas(0)
	run := func() {
		cache := cachesim.PaperConfig()
		cfg := Config{StackMode: memtrace.FastStack, Cache: &cache, CaptureTx: true, Arenas: arenas}
		ss, err := BuildSharded(cfg, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < ss.Shards(); k++ {
			a, err := apps.New("gtc", 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := apps.Run(a, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ss.Merge(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	accessAllocs := arenas.Access.Gets() - arenas.Access.Reuses()
	txAllocs := arenas.Tx.Gets() - arenas.Tx.Reuses()
	run()
	if a := arenas.Access.Gets() - arenas.Access.Reuses(); a != accessAllocs {
		t.Errorf("second run allocated %d fresh access slabs", a-accessAllocs)
	}
	if a := arenas.Tx.Gets() - arenas.Tx.Reuses(); a != txAllocs {
		t.Errorf("second run allocated %d fresh transaction slabs", a-txAllocs)
	}
}

// outstanding reports how many slabs an arena has handed out and not yet
// gotten back: every Get either allocates or reuses a parked slab, every
// Put parks one, so Gets - Reuses - Free is the live count.
func outstanding[T any](a *trace.Arena[T]) uint64 {
	return a.Gets() - a.Reuses() - uint64(a.Free())
}

// TestShardedMergeErrorReleasesChunks pins the error-path ownership
// contract: when a TxSink fails mid-merge, every arena chunk the
// per-shard captures staged must still be handed back — nvlint's
// arenaown pass proves the same property statically (the Deliver calls
// in Merge are covered by the deferred releaseCaptures).
func TestShardedMergeErrorReleasesChunks(t *testing.T) {
	arenas := NewArenas(0)
	cache := cachesim.PaperConfig()
	sinkErr := fmt.Errorf("sink failed")
	cfg := Config{
		StackMode: memtrace.FastStack,
		Cache:     &cache,
		Arenas:    arenas,
		TxSinks: []trace.TxSink{trace.TxSinkFunc(func([]trace.Transaction) error {
			return sinkErr
		})},
	}
	ss, err := BuildSharded(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < ss.Shards(); k++ {
		a, err := apps.New("gtc", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := apps.Run(a, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.Merge(); err == nil {
		t.Fatal("Merge with a failing TxSink must return its error")
	}
	if n := outstanding(arenas.Tx); n != 0 {
		t.Errorf("failed Merge leaked %d transaction slab(s) out of the arena", n)
	}
}

// TestShardedCloseReleasesChunks pins the abort path: Close on a sharded
// stack that was never merged must hand every captured chunk back.
func TestShardedCloseReleasesChunks(t *testing.T) {
	arenas := NewArenas(0)
	cache := cachesim.PaperConfig()
	cfg := Config{StackMode: memtrace.FastStack, Cache: &cache, CaptureTx: true, Arenas: arenas}
	ss, err := BuildSharded(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < ss.Shards(); k++ {
		a, err := apps.New("gtc", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := apps.Run(a, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if n := outstanding(arenas.Tx); n != 0 {
		t.Errorf("Close leaked %d transaction slab(s) out of the arena", n)
	}
}
