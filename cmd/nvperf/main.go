// Command nvperf is the performance-sensitivity simulator front end
// (paper §V / Figure 12).
//
// It re-executes a mini-application against the trace-driven out-of-order
// core model once per memory technology, varying only the main-memory
// access latency (Table IV), and reports the normalized runtimes.
//
// Usage:
//
//	nvperf -app nek5000 [-scale 1.0] [-iterations 1] [-latencies 10,12,20,100]
package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cli"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/pipeline"

	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/mdmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

func main() { cli.Main("nvperf", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvperf")
	appName := fs.String("app", "", "application to simulate: "+cli.AppList())
	scale := fs.Float64("scale", 1.0, "problem scale")
	iters := fs.Int("iterations", 1, "main-loop iterations to simulate (the paper uses 1)")
	latList := fs.String("latencies", "10,12,20,100", "memory latencies in ns (comma separated; first is the baseline)")
	metricsOut := fs.String("metrics", "", "write the sweep's observability snapshot to this file (.json for JSON, text otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cli.RequireApp(fs, *appName); err != nil {
		return err
	}
	var lats []float64
	for _, s := range strings.Split(*latList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad latency %q: %w", s, err)
		}
		lats = append(lats, v)
	}
	if len(lats) == 0 {
		return fmt.Errorf("no latencies given")
	}

	fmt.Fprintf(out, "%s latency sweep (%d iteration(s), scale %.2f)\n", *appName, *iters, *scale)
	fmt.Fprintf(out, "%12s %14s %10s %8s %14s %14s\n",
		"latency (ns)", "cycles", "normalized", "IPC", "mem accesses", "prefetch hits")
	reg := obs.NewRegistry()
	var base float64
	for _, lat := range lats {
		app, err := apps.New(*appName, *scale)
		if err != nil {
			return err
		}
		c := cpusim.MustNew(cpusim.PaperConfig(lat))
		ls := []obs.Label{obs.L("app", *appName), obs.L("latency_ns", strconv.FormatFloat(lat, 'g', -1, 64))}
		// The core is a batched trace.PerfSink: the tracer stages events and
		// flushes references plus instruction gaps in one call per batch.
		stack, err := pipeline.Build(pipeline.Config{Perf: c, Metrics: reg, Labels: ls})
		if err != nil {
			return err
		}
		if err := apps.Run(app, stack.Tracer, *iters); err != nil {
			return err
		}
		if err := stack.Close(); err != nil {
			return err
		}
		st := c.Stats()
		if base == 0 {
			base = st.Cycles
		}
		reg.Gauge("cpusim_cycles", ls...).Set(st.Cycles)
		reg.Gauge("cpusim_normalized_runtime", ls...).Set(st.Cycles / base)
		reg.Gauge("cpusim_ipc", ls...).Set(st.IPC)
		reg.Gauge("cpusim_mem_accesses", ls...).Set(float64(st.MemAccesses))
		reg.Gauge("cpusim_prefetch_hits", ls...).Set(float64(st.PrefetchHits))
		stack.Tracer.ExportMetrics(reg, ls...)
		fmt.Fprintf(out, "%12.0f %14.0f %10.3f %8.2f %14d %14d\n",
			lat, st.Cycles, st.Cycles/base, st.IPC, st.MemAccesses, st.PrefetchHits)
	}
	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, reg.Snapshot()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	return nil
}
