// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the exhibit end to end), plus ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// The exhibit benchmarks run at a reduced problem scale so that
// `go test -bench=.` completes in minutes; `cmd/nvreport` regenerates the
// calibrated full-scale exhibits.
package bench

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/experiments"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/trace"

	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.1, Iterations: 5}
}

// mustMem builds a MemorySystem from a config the benchmark knows is valid.
func mustMem(b *testing.B, cfg dramsim.Config) *dramsim.MemorySystem {
	b.Helper()
	m, err := dramsim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// ---- exhibit benchmarks ----------------------------------------------

func BenchmarkTable1Footprints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkTable5StackAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkFigure2CamStackFrames(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		recs, fig, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 || fig.CountOver10 == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure3to6Objects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		for _, app := range experiments.AppNames {
			recs, err := s.ObjectFigure(app)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) == 0 {
				b.Fatal("no objects")
			}
		}
	}
}

func BenchmarkFigure7UsageCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		cdfs, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(cdfs) != 3 {
			b.Fatal("short figure")
		}
	}
}

func BenchmarkFigure8to11Variance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		for _, app := range experiments.AppNames {
			ratio, rate, err := s.VarianceFigure(app)
			if err != nil {
				b.Fatal(err)
			}
			if len(ratio) == 0 || len(rate) == 0 {
				b.Fatal("empty distribution")
			}
		}
	}
}

func BenchmarkTable6Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkFigure12LatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("short figure")
		}
	}
}

func BenchmarkPlacementStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		plans, err := s.Placement()
		if err != nil {
			b.Fatal(err)
		}
		if len(plans) != 4 {
			b.Fatal("short study")
		}
	}
}

// ---- ablation benchmarks ----------------------------------------------
//
// Each pair isolates one design decision from §III-D of the paper or from
// this reproduction's simulators.

// runInstrumented executes the GTC proxy under a tracer configuration and
// reports accesses/op.
func runInstrumented(b *testing.B, cfg memtrace.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		app, err := apps.New("gtc", 0.1)
		if err != nil {
			b.Fatal(err)
		}
		tr := memtrace.New(cfg)
		if err := apps.Run(app, tr, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the LRU software object cache on the attribution path.
func BenchmarkAblationObjectCacheOn(b *testing.B) {
	runInstrumented(b, memtrace.Config{ObjectCacheSize: 8})
}

func BenchmarkAblationObjectCacheOff(b *testing.B) {
	runInstrumented(b, memtrace.Config{ObjectCacheSize: -1})
}

// Ablation: fast (whole-stack) vs slow (per-frame) stack attribution.
func BenchmarkAblationStackFast(b *testing.B) {
	runInstrumented(b, memtrace.Config{StackMode: memtrace.FastStack})
}

func BenchmarkAblationStackSlow(b *testing.B) {
	runInstrumented(b, memtrace.Config{StackMode: memtrace.SlowStack})
}

// Ablation: trace staging buffer size in front of the cache simulator.
func benchBufferSize(b *testing.B, size int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		app, err := apps.New("s3d", 0.05)
		if err != nil {
			b.Fatal(err)
		}
		cacheCfg := cachesim.PaperConfig()
		st := pipeline.MustBuild(pipeline.Config{Cache: &cacheCfg, BufferSize: size})
		if err := apps.Run(app, st.Tracer, 2); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBuffer64(b *testing.B)  { benchBufferSize(b, 64) }
func BenchmarkAblationBuffer4K(b *testing.B)  { benchBufferSize(b, 4096) }
func BenchmarkAblationBuffer16K(b *testing.B) { benchBufferSize(b, 16384) }

// Ablation: open-page vs closed-page row policy in the power simulator.
func benchRowPolicy(b *testing.B, policy dramsim.RowPolicy) {
	b.Helper()
	txs := make([]trace.Transaction, 0, 100000)
	for i := 0; i < 100000; i++ {
		txs = append(txs, trace.Transaction{Addr: uint64(i%4096) * 64, Write: i%4 == 0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mustMem(b, dramsim.Config{
			Geometry: dramsim.PaperGeometry(),
			Profile:  dramsim.DDR3(),
			Policy:   policy,
		})
		for _, t := range txs {
			if err := m.Transaction(t); err != nil {
				b.Fatal(err)
			}
		}
		rep := m.Report()
		if rep.TotalMW <= 0 {
			b.Fatal("no power")
		}
	}
}

func BenchmarkAblationOpenPage(b *testing.B)   { benchRowPolicy(b, dramsim.OpenPage) }
func BenchmarkAblationClosedPage(b *testing.B) { benchRowPolicy(b, dramsim.ClosedPage) }

// Ablation: effect of cache filtering on the priced memory traffic — raw
// access trace vs post-cache transactions into the power model.
func BenchmarkAblationUnfilteredPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := apps.New("gtc", 0.05)
		if err != nil {
			b.Fatal(err)
		}
		m := mustMem(b, dramsim.PaperConfig(dramsim.DDR3()))
		sink := trace.SinkFunc(func(batch []trace.Access) error {
			for _, a := range batch {
				if err := m.Transaction(trace.Transaction{Addr: a.Addr &^ 63, Write: a.IsWrite()}); err != nil {
					return err
				}
			}
			return nil
		})
		tr := memtrace.New(memtrace.Config{Sink: sink})
		if err := apps.Run(app, tr, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFilteredPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := apps.New("gtc", 0.05)
		if err != nil {
			b.Fatal(err)
		}
		m := mustMem(b, dramsim.PaperConfig(dramsim.DDR3()))
		cacheCfg := cachesim.PaperConfig()
		st := pipeline.MustBuild(pipeline.Config{Cache: &cacheCfg, TxSinks: []trace.TxSink{m}})
		if err := apps.Run(app, st.Tracer, 2); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the stream prefetcher in the performance model.
func benchPrefetcher(b *testing.B, streams int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := cpusim.PaperConfig(100)
		cfg.PrefetchStreams = streams
		c := cpusim.MustNew(cfg)
		app, err := apps.New("nek5000", 0.1)
		if err != nil {
			b.Fatal(err)
		}
		// The core consumes the tracer's batched performance-event stream.
		tr := memtrace.New(memtrace.Config{Perf: c})
		if err := apps.Run(app, tr, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Cycles(), "cycles")
	}
}

func BenchmarkAblationPrefetcherOn(b *testing.B)  { benchPrefetcher(b, 16) }
func BenchmarkAblationPrefetcherOff(b *testing.B) { benchPrefetcher(b, 0) }

// Ablation: cache replacement policy (Table II specifies LRU).
func benchReplacement(b *testing.B, r cachesim.Replacement) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		app, err := apps.New("cam", 0.05)
		if err != nil {
			b.Fatal(err)
		}
		cfg := cachesim.PaperConfig()
		cfg.L1.Replacement = r
		cfg.L2.Replacement = r
		st := pipeline.MustBuild(pipeline.Config{Cache: &cfg})
		if err := apps.Run(app, st.Tracer, 2); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Hierarchy.L2Stats().MissRatio()*100, "L2miss%")
	}
}

func BenchmarkAblationReplacementLRU(b *testing.B)    { benchReplacement(b, cachesim.LRU) }
func BenchmarkAblationReplacementFIFO(b *testing.B)   { benchReplacement(b, cachesim.FIFO) }
func BenchmarkAblationReplacementRandom(b *testing.B) { benchReplacement(b, cachesim.RandomRepl) }

// Ablation: in-order vs FR-FCFS transaction scheduling in the memory
// controller, on an interleaved-row stream that rewards reordering.
func benchScheduling(b *testing.B, s dramsim.Scheduling) {
	b.Helper()
	txs := make([]trace.Transaction, 0, 50000)
	for i := 0; i < 50000; i++ {
		row := uint64(i%2) * (1 << 26)
		txs = append(txs, trace.Transaction{Addr: row + uint64(i/2%64)*64, Write: i%4 == 0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := dramsim.PaperConfig(dramsim.DDR3())
		cfg.Scheduling = s
		m := mustMem(b, cfg)
		for _, t := range txs {
			if err := m.Transaction(t); err != nil {
				b.Fatal(err)
			}
		}
		rep := m.Report()
		b.ReportMetric(rep.RowHitRatio()*100, "rowhit%")
	}
}

func BenchmarkAblationInOrder(b *testing.B) { benchScheduling(b, dramsim.InOrder) }
func BenchmarkAblationFRFCFS(b *testing.B)  { benchScheduling(b, dramsim.FRFCFS) }

// Ablation: sampled vs full instrumentation (§III-D rejects sampling; this
// pair quantifies the speed it would buy and pairs with the memtrace tests
// showing the object coverage it loses).
func BenchmarkAblationSamplingFull(b *testing.B) {
	runInstrumented(b, memtrace.Config{})
}

func BenchmarkAblationSampling64(b *testing.B) {
	runInstrumented(b, memtrace.Config{Sample: memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: 64}})
}
