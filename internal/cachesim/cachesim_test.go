package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

// tinyConfig is a deliberately small hierarchy so tests can force evictions:
// L1 = 2 sets x 2 ways x 64B = 256B; L2 = 4 sets x 2 ways x 64B = 512B.
func tinyConfig() Config {
	return Config{
		L1: LevelConfig{Name: "L1D", SizeBytes: 256, Ways: 2, LineSize: 64, WriteAllocate: false},
		L2: LevelConfig{Name: "L2", SizeBytes: 512, Ways: 2, LineSize: 64, WriteAllocate: true},
	}
}

type captureSink struct {
	txs []trace.Transaction
}

func (c *captureSink) Transaction(t trace.Transaction) error {
	c.txs = append(c.txs, t)
	return nil
}

func TestPaperConfigGeometry(t *testing.T) {
	cfg := PaperConfig()
	if cfg.L1.sets() != 128 {
		t.Errorf("L1 sets = %d, want 128 (32KB/4way/64B)", cfg.L1.sets())
	}
	if cfg.L2.sets() != 1024 {
		t.Errorf("L2 sets = %d, want 1024 (1MB/16way/64B)", cfg.L2.sets())
	}
	if cfg.L1.WriteAllocate {
		t.Error("paper L1 is no-write-allocate")
	}
	if !cfg.L2.WriteAllocate {
		t.Error("paper L2 is write-allocate")
	}
	if _, err := New(cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []LevelConfig{
		{Name: "zero", SizeBytes: 0, Ways: 1, LineSize: 64},
		{Name: "npo2line", SizeBytes: 1024, Ways: 2, LineSize: 48},
		{Name: "indivisible", SizeBytes: 1000, Ways: 2, LineSize: 64},
		{Name: "npo2sets", SizeBytes: 3 * 2 * 64, Ways: 2, LineSize: 64},
	}
	for _, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: expected validation error", cfg.Name)
		}
	}
	if err := (LevelConfig{Name: "ok", SizeBytes: 1024, Ways: 2, LineSize: 64}).validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMixedLineSizesRejected(t *testing.T) {
	cfg := tinyConfig()
	cfg.L2.LineSize = 128
	cfg.L2.SizeBytes = 1024
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("mixed line sizes must be rejected")
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{}, nil)
}

func TestColdMissThenHit(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	a := trace.Access{Addr: 0x1000, Size: 8, Op: trace.Read}
	h.Access(a)
	h.Access(a)
	l1 := h.L1Stats()
	if l1.Misses != 1 || l1.Hits != 1 {
		t.Fatalf("L1 = %+v, want 1 miss then 1 hit", l1)
	}
	if h.MemReads != 1 || h.MemWrites != 0 {
		t.Fatalf("memory traffic = %d/%d, want one fill read", h.MemReads, h.MemWrites)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	h.Access(trace.Access{Addr: 0x1000, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 0x1038, Size: 8, Op: trace.Read})
	if got := h.L1Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("L1 = %+v, want same-line offset to hit", got)
	}
}

func TestLineSplitAccess(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	// 8 bytes starting 4 before a line boundary touch two lines.
	h.Access(trace.Access{Addr: 0x103c, Size: 8, Op: trace.Read})
	if got := h.L1Stats(); got.Accesses() != 2 {
		t.Fatalf("L1 accesses = %d, want 2 (split reference)", got.Accesses())
	}
	if h.MemReads != 2 {
		t.Fatalf("memory reads = %d, want 2", h.MemReads)
	}
}

func TestNoWriteAllocateL1(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	w := trace.Access{Addr: 0x2000, Size: 8, Op: trace.Write}
	h.Access(w)
	// Write miss must not fill L1: a second write misses again.
	h.Access(w)
	l1 := h.L1Stats()
	if l1.Misses != 2 || l1.Hits != 0 {
		t.Fatalf("L1 = %+v, want two write misses (no-write-allocate)", l1)
	}
	// ...but L2 is write-allocate, so it filled on the first write and hits
	// on the second.
	l2 := h.L2Stats()
	if l2.Misses != 1 || l2.Hits != 1 {
		t.Fatalf("L2 = %+v, want 1 miss + 1 hit", l2)
	}
	// The L2 write-allocate fill read memory once.
	if h.MemReads != 1 {
		t.Fatalf("memory reads = %d, want 1 (allocate fill)", h.MemReads)
	}
	if h.MemWrites != 0 {
		t.Fatalf("memory writes = %d, want 0 before eviction", h.MemWrites)
	}
}

func TestWriteHitDirtiesL1(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	addr := uint64(0x3000)
	h.Access(trace.Access{Addr: addr, Size: 8, Op: trace.Read})  // fill L1
	h.Access(trace.Access{Addr: addr, Size: 8, Op: trace.Write}) // dirty it
	if got := h.L1Stats(); got.Hits != 1 {
		t.Fatalf("write after read should hit L1: %+v", got)
	}
	// Evict the line by touching two more lines mapping to the same set
	// (L1 has 2 sets / 2 ways; same set = same (addr>>6)&1).
	h.Access(trace.Access{Addr: addr + 128, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: addr + 256, Size: 8, Op: trace.Read})
	if got := h.L1Stats(); got.Writebacks != 1 {
		t.Fatalf("L1 writebacks = %d, want 1 dirty eviction", got.Writebacks)
	}
}

func TestL2DirtyEvictionReachesMemory(t *testing.T) {
	sink := &captureSink{}
	h := MustNew(tinyConfig(), PerTx(sink))
	// Dirty one L2 line via a write (no-write-allocate L1 -> L2 write).
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Write})
	// Evict it from L2: set count 4, ways 2 -> lines 0, 1024, 2048 share set 0.
	h.Access(trace.Access{Addr: 1024, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 2048, Size: 8, Op: trace.Read})
	if err := h.FlushTx(); err != nil { // push the staged batch to the sink
		t.Fatal(err)
	}
	if h.MemWrites != 1 {
		t.Fatalf("memory writes = %d, want 1 (dirty L2 eviction)", h.MemWrites)
	}
	var sawWrite bool
	for _, tx := range sink.txs {
		if tx.Write && tx.Addr == 0 {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatal("sink did not observe the writeback of line 0")
	}
}

func TestLRUReplacement(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	// L1 set 0 holds lines with (addr>>6) even... sets=2 so set = (addr>>6)&1.
	// Lines 0, 128, 256 all map to set 0 (2-way).
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})   // miss, fill
	h.Access(trace.Access{Addr: 128, Size: 8, Op: trace.Read}) // miss, fill
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})   // hit, 0 is MRU
	h.Access(trace.Access{Addr: 256, Size: 8, Op: trace.Read}) // evicts 128 (LRU)
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})   // must still hit
	l1 := h.L1Stats()
	if l1.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (line 0 must survive, LRU evicts 128)", l1.Hits)
	}
	h.Access(trace.Access{Addr: 128, Size: 8, Op: trace.Read})
	if got := h.L1Stats(); got.Hits != 2 {
		t.Fatal("line 128 should have been the LRU victim and missed now")
	}
}

func TestDrainWritesBackAllDirtyLines(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	// Dirty two distinct lines in L1 via read-then-write.
	for _, addr := range []uint64{0, 64} {
		h.Access(trace.Access{Addr: addr, Size: 8, Op: trace.Read})
		h.Access(trace.Access{Addr: addr, Size: 8, Op: trace.Write})
	}
	if h.MemWrites != 0 {
		t.Fatal("no writebacks expected before drain")
	}
	h.Drain()
	if h.MemWrites != 2 {
		t.Fatalf("drain emitted %d writes, want 2", h.MemWrites)
	}
	// Draining twice must not duplicate.
	h.Drain()
	if h.MemWrites != 2 {
		t.Fatal("second drain must be a no-op")
	}
}

func TestFlushIsTraceSink(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	batch := []trace.Access{
		{Addr: 0x100, Size: 8, Op: trace.Read},
		{Addr: 0x100, Size: 8, Op: trace.Write},
	}
	if err := h.Flush(batch); err != nil {
		t.Fatal(err)
	}
	if h.L1Stats().Accesses() != 2 {
		t.Fatal("Flush should process every access in the batch")
	}
}

func TestTransactionCycleMonotonic(t *testing.T) {
	sink := &captureSink{}
	h := MustNew(tinyConfig(), PerTx(sink))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h.Access(trace.Access{Addr: uint64(rng.Intn(1 << 14)), Size: 8, Op: trace.Op(rng.Intn(2))})
	}
	if err := h.FlushTx(); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, tx := range sink.txs {
		if tx.Cycle < prev {
			t.Fatalf("tx %d cycle %d < previous %d", i, tx.Cycle, prev)
		}
		prev = tx.Cycle
	}
	if len(sink.txs) == 0 {
		t.Fatal("expected some memory traffic")
	}
}

func TestCacheFilteringReducesTraffic(t *testing.T) {
	// A hot loop over a small working set must produce far fewer memory
	// transactions than references: the whole point of embedding the cache
	// simulator (§III).
	h := MustNew(PaperConfig(), nil)
	refs := 0
	for iter := 0; iter < 100; iter++ {
		for addr := uint64(0); addr < 16<<10; addr += 8 {
			h.Access(trace.Access{Addr: addr, Size: 8, Op: trace.Read})
			refs++
		}
	}
	mem := h.MemReads + h.MemWrites
	if mem*100 > uint64(refs) {
		t.Fatalf("memory traffic %d for %d refs: cache not filtering", mem, refs)
	}
}

// Property: hits+misses at L1 equals the number of line-accesses presented.
func TestQuickAccessAccounting(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustNew(tinyConfig(), nil)
		count := int(n%2000) + 1
		lines := 0
		for i := 0; i < count; i++ {
			a := trace.Access{
				Addr: uint64(rng.Intn(1 << 16)),
				Size: uint8(rng.Intn(64) + 1),
				Op:   trace.Op(rng.Intn(2)),
			}
			first := a.Addr &^ 63
			last := (a.End() - 1) &^ 63
			lines += int((last-first)/64) + 1
			h.Access(a)
		}
		return h.L1Stats().Accesses() == uint64(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every byte ever written is eventually written back to memory
// exactly once per dirtying episode; more weakly (and robustly): after
// Drain, the number of memory writes is bounded by the number of distinct
// dirtied lines per episode and is nonzero whenever a write occurred.
func TestQuickWritebackConservation(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustNew(tinyConfig(), nil)
		count := int(n%500) + 1
		wrote := false
		for i := 0; i < count; i++ {
			op := trace.Op(rng.Intn(2))
			if op == trace.Write {
				wrote = true
			}
			h.Access(trace.Access{Addr: uint64(rng.Intn(1 << 12)), Size: 8, Op: op})
		}
		h.Drain()
		if wrote && h.MemWrites == 0 {
			return false
		}
		if !wrote && h.MemWrites != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory read transactions are always line-aligned.
func TestQuickTransactionAlignment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		aligned := true
		sink := PerTx(TxSinkFunc(func(tx trace.Transaction) error {
			if tx.Addr%64 != 0 {
				aligned = false
			}
			return nil
		}))
		h := MustNew(tinyConfig(), sink)
		for i := 0; i < 300; i++ {
			h.Access(trace.Access{
				Addr: uint64(rng.Intn(1 << 14)),
				Size: uint8(rng.Intn(32) + 1),
				Op:   trace.Op(rng.Intn(2)),
			})
		}
		h.Drain()
		return aligned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioAndAccessors(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	if h.LineSize() != 64 {
		t.Fatalf("line size = %d", h.LineSize())
	}
	if h.Err() != nil {
		t.Fatal("fresh hierarchy should have no error")
	}
	if got := h.L1Stats().MissRatio(); got != 0 {
		t.Fatalf("idle miss ratio = %v", got)
	}
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	if got := h.L1Stats().MissRatio(); got != 0.5 {
		t.Fatalf("miss ratio = %v, want 0.5", got)
	}
}

func TestServiceLevelString(t *testing.T) {
	if ServicedL1.String() != "L1" || ServicedL2.String() != "L2" || ServicedMem.String() != "memory" {
		t.Fatal("service level strings wrong")
	}
}

func TestInvalidate(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	h.Access(trace.Access{Addr: 0x100, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 0x100, Size: 8, Op: trace.Write}) // dirty in L1
	present, dirty := h.l1.invalidate(0x100)
	if !present || !dirty {
		t.Fatalf("invalidate = %v/%v, want present+dirty", present, dirty)
	}
	if present, _ := h.l1.invalidate(0x100); present {
		t.Fatal("second invalidate must miss")
	}
	// The next access misses again.
	if lvl := h.Access(trace.Access{Addr: 0x100, Size: 8, Op: trace.Read}); lvl == ServicedL1 {
		t.Fatal("invalidated line must not hit L1")
	}
}

func TestReplacementString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || RandomRepl.String() != "random" {
		t.Fatal("replacement strings wrong")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	cfg := tinyConfig()
	cfg.L1.Replacement = FIFO
	h := MustNew(cfg, nil)
	// Fill set 0 (2 ways): lines 0 then 128; touch 0 again (recency), then
	// bring in 256.  FIFO evicts the oldest fill — line 0 — despite its
	// recent use; LRU would have evicted 128.
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 128, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	h.Access(trace.Access{Addr: 256, Size: 8, Op: trace.Read})
	hits := h.L1Stats().Hits
	h.Access(trace.Access{Addr: 128, Size: 8, Op: trace.Read})
	if h.L1Stats().Hits != hits+1 {
		t.Fatal("FIFO should have kept line 128 (second fill)")
	}
	h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read})
	if h.L1Stats().Hits != hits+1 {
		t.Fatal("FIFO should have evicted line 0 (oldest fill)")
	}
}

func TestRandomReplacementDeterministicAndServiceable(t *testing.T) {
	run := func() LevelStats {
		cfg := tinyConfig()
		cfg.L1.Replacement = RandomRepl
		h := MustNew(cfg, nil)
		for i := 0; i < 5000; i++ {
			h.Access(trace.Access{Addr: uint64(i%24) * 64, Size: 8, Op: trace.Read})
		}
		return h.L1Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("random replacement must be deterministic across runs")
	}
	if a.Hits == 0 || a.Misses == 0 {
		t.Fatalf("degenerate stats: %+v", a)
	}
}

func TestLRUBeatsFIFOOnLoopingWorkload(t *testing.T) {
	// A working set slightly over capacity with heavy reuse of a hot line:
	// LRU keeps the hot line, FIFO cycles it out.
	run := func(r Replacement) float64 {
		cfg := tinyConfig()
		cfg.L1.Replacement = r
		h := MustNew(cfg, nil)
		for i := 0; i < 30000; i++ {
			h.Access(trace.Access{Addr: 0, Size: 8, Op: trace.Read}) // hot line
			h.Access(trace.Access{Addr: uint64(i%3+1) * 128, Size: 8, Op: trace.Read})
		}
		return h.L1Stats().MissRatio()
	}
	lru, fifo := run(LRU), run(FIFO)
	if lru > fifo {
		t.Fatalf("LRU miss ratio %v should not exceed FIFO %v here", lru, fifo)
	}
}

// TestConfigValidateLineSizeMismatch locks in the cross-level invariant:
// the hierarchy assumes one shared line size, so a mismatched config must
// be rejected instead of silently producing wrong writeback addresses.
func TestConfigValidateLineSizeMismatch(t *testing.T) {
	cfg := PaperConfig()
	cfg.L2.LineSize = 128
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted mixed line sizes")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("New accepted mixed line sizes")
	}
	// Per-level geometry errors still surface through Validate.
	bad := PaperConfig()
	bad.L1.LineSize = 48 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted non-power-of-two line size")
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config must validate: %v", err)
	}
}

// TestZeroSizeAccessTerminates is the regression test for the unsigned
// underflow in Access: a zero-size access made a.End()-1 wrap around, so the
// line walk from first to last never terminated.  A zero-size access must
// touch exactly the line containing Addr and return.
func TestZeroSizeAccessTerminates(t *testing.T) {
	h := MustNew(tinyConfig(), nil)
	h.Access(trace.Access{Addr: 0x1000, Size: 0, Op: trace.Read})
	if got := h.L1Stats().Accesses(); got != 1 {
		t.Fatalf("zero-size access touched %d lines, want 1", got)
	}
	// Worst case before the fix: Addr 0 made first == 0 and last == ^uint64(0).
	h.Access(trace.Access{Addr: 0, Size: 0, Op: trace.Write})
	if got := h.L1Stats().Accesses(); got != 2 {
		t.Fatalf("zero-size access at 0 touched %d lines total, want 2", got)
	}
}

// TestTransactionsDeliveredInBatches locks in the staging behaviour: the
// hierarchy buffers outgoing transactions and hands them to the TxSink as
// batches, not one call per transaction.
func TestTransactionsDeliveredInBatches(t *testing.T) {
	var calls, txs int
	sink := trace.TxSinkFunc(func(batch []trace.Transaction) error {
		calls++
		txs += len(batch)
		return nil
	})
	h := MustNew(tinyConfig(), sink)
	for i := 0; i < 200; i++ {
		h.Access(trace.Access{Addr: uint64(i) * 64, Size: 8, Op: trace.Write})
	}
	if calls != 0 {
		t.Fatalf("sink called %d times before flush; transactions must be staged", calls)
	}
	h.Drain()
	if calls == 0 || txs == 0 {
		t.Fatal("drain must flush the staged batch to the sink")
	}
	if txs != int(h.MemReads+h.MemWrites) {
		t.Fatalf("sink saw %d transactions, hierarchy counted %d", txs, h.MemReads+h.MemWrites)
	}
}

// TestExportMetrics checks the hierarchy publishes its counters and hit
// ratios under per-level labels.
func TestExportMetrics(t *testing.T) {
	h := MustNew(PaperConfig(), nil)
	for i := 0; i < 256; i++ {
		h.Access(trace.Access{Addr: uint64(i) * 64, Size: 8, Op: trace.Read})
		h.Access(trace.Access{Addr: uint64(i) * 64, Size: 8, Op: trace.Read})
	}
	reg := obs.NewRegistry()
	h.ExportMetrics(reg, obs.L("app", "test"))
	s := reg.Snapshot()
	l1 := []obs.Label{{Key: "app", Value: "test"}, {Key: "level", Value: "L1D"}}
	hits, ok := s.Gauge("cachesim_hits", l1...)
	if !ok || hits != float64(h.L1Stats().Hits) {
		t.Fatalf("cachesim_hits{L1D} = %v (found %v), want %d", hits, ok, h.L1Stats().Hits)
	}
	ratio, ok := s.Gauge("cachesim_hit_ratio", l1...)
	if !ok || ratio != h.L1Stats().HitRatio() {
		t.Fatalf("cachesim_hit_ratio{L1D} = %v, want %v", ratio, h.L1Stats().HitRatio())
	}
	if _, ok := s.Gauge("cachesim_hit_ratio", obs.L("app", "test"), obs.L("level", "L2")); !ok {
		t.Fatal("missing L2 hit ratio")
	}
	if v, ok := s.Gauge("cachesim_mem_reads", obs.L("app", "test")); !ok || v != float64(h.MemReads) {
		t.Fatalf("cachesim_mem_reads = %v, want %d", v, h.MemReads)
	}
}
