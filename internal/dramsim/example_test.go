package dramsim_test

import (
	"fmt"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/trace"
)

// Example prices a short sequential transaction stream on DDR3 and PCRAM.
func Example() {
	var txs []trace.Transaction
	for i := 0; i < 1000; i++ {
		txs = append(txs, trace.Transaction{Addr: uint64(i) * 64, Write: i%4 == 0})
	}
	reps, err := dramsim.Compare(dramsim.PaperGeometry(), dramsim.OpenPage,
		[]dramsim.DeviceProfile{dramsim.DDR3(), dramsim.PCRAM()}, txs)
	if err != nil {
		panic(err)
	}
	norm := dramsim.Normalize(reps)
	fmt.Printf("%s row-hit ratio: %.2f\n", reps[0].Device, reps[0].RowHitRatio())
	fmt.Printf("%s refresh power: %.0f mW\n", reps[1].Device, reps[1].RefreshMW)
	fmt.Printf("PCRAM saves at least 27%%: %v\n", norm[1] <= 0.73)
	// Output:
	// DDR3 row-hit ratio: 1.00
	// PCRAM refresh power: 0 mW
	// PCRAM saves at least 27%: true
}
