package experiments

import (
	"testing"

	"nvscavenger/internal/obs"
)

// runExhibits drives a representative slice of the pipeline — fast runs,
// the slow CAM run, and the Table VI power replays — against one session.
func runExhibits(t *testing.T, jobs int) obs.Snapshot {
	t.Helper()
	s := NewSession(WithScale(0.05), WithIterations(3), WithJobs(jobs))
	if _, err := s.Table5(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Figure2(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table6(); err != nil {
		t.Fatal(err)
	}
	return s.MetricsSnapshot()
}

// TestMetricsFieldsStableAcrossJobs: the -metrics snapshot must expose the
// same series (names and labels) whether the runs execute sequentially or
// across a worker pool, and the deterministic values — everything except
// wall-clock timings — must agree exactly.
func TestMetricsFieldsStableAcrossJobs(t *testing.T) {
	seq := runExhibits(t, 1)
	par := runExhibits(t, 4)

	seqIDs, parIDs := seq.SeriesIDs(), par.SeriesIDs()
	if len(seqIDs) != len(parIDs) {
		t.Fatalf("series count differs: %d (jobs=1) vs %d (jobs=4)\nseq: %v\npar: %v",
			len(seqIDs), len(parIDs), seqIDs, parIDs)
	}
	for i := range seqIDs {
		if seqIDs[i] != parIDs[i] {
			t.Fatalf("series %d differs: %q vs %q", i, seqIDs[i], parIDs[i])
		}
	}

	// Counters are deterministic (hits/misses depend only on the request
	// multiset, not on scheduling) — except refs ordering effects don't
	// exist either; compare all counters exactly.
	for i := range seq.Counters {
		a, b := seq.Counters[i], par.Counters[i]
		if a.Value != b.Value {
			t.Errorf("counter %s: %d (jobs=1) vs %d (jobs=4)", a.Name, a.Value, b.Value)
		}
	}
	// Gauges are per-run component stats of deterministic simulations.
	for i := range seq.Gauges {
		a, b := seq.Gauges[i], par.Gauges[i]
		if a.Value != b.Value {
			t.Errorf("gauge %s%v: %g vs %g", a.Name, a.Labels, a.Value, b.Value)
		}
	}
	// Histogram counts (not sums — wall time is nondeterministic).
	for i := range seq.Histograms {
		a, b := seq.Histograms[i], par.Histograms[i]
		if a.Count != b.Count {
			t.Errorf("histogram %s%v count: %d vs %d", a.Name, a.Labels, a.Count, b.Count)
		}
	}

	// The pipeline stage counters ride the same registry; their presence and
	// exact agreement across job counts is the batch-dataflow determinism
	// check: worker scheduling must not change how many events cross each
	// stage boundary, only when.
	for _, stage := range []string{"accesses", "transactions"} {
		ls := []obs.Label{obs.L("app", "gtc"), obs.L("mode", "fast"), obs.L("stage", stage)}
		ev, ok := seq.Counter("pipeline_events_total", ls...)
		if !ok || ev == 0 {
			t.Fatalf("pipeline_events_total{stage=%s} missing or zero in jobs=1 snapshot", stage)
		}
		if batches, ok := seq.Counter("pipeline_batches_total", ls...); !ok || batches == 0 || batches > ev {
			t.Fatalf("pipeline_batches_total{stage=%s} = %d (%v) for %d events", stage, batches, ok, ev)
		}
		pv, ok := par.Counter("pipeline_events_total", ls...)
		if !ok || pv != ev {
			t.Errorf("pipeline_events_total{stage=%s}: %d (jobs=1) vs %d (jobs=4)", stage, ev, pv)
		}
	}
}

// TestSessionMetricsSnapshotContents checks the aggregated snapshot holds
// all three layers: runner counters, cachesim hit ratios, and the dramsim
// command counts of the power replays.
func TestSessionMetricsSnapshotContents(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3), WithApps("gtc"))
	if _, err := s.Table6(); err != nil {
		t.Fatal(err)
	}
	snap := s.MetricsSnapshot()
	if v, ok := snap.Counter("runner_runs_total"); !ok || v == 0 {
		t.Errorf("runner_runs_total = %d (%v), want > 0", v, ok)
	}
	if _, ok := snap.Counter("runner_misses_total"); !ok {
		t.Error("missing runner_misses_total")
	}
	if _, ok := snap.Gauge("cachesim_hit_ratio", obs.L("app", "gtc"), obs.L("mode", "fast"), obs.L("level", "L1D")); !ok {
		t.Error("missing cachesim L1 hit ratio for the fast gtc run")
	}
	if _, ok := snap.Gauge("dramsim_reads", obs.L("app", "gtc"), obs.L("device", "DDR3")); !ok {
		t.Error("missing dramsim command counts for the DDR3 replay")
	}
	if _, ok := snap.Gauge("memtrace_object_cache_hit_ratio", obs.L("app", "gtc"), obs.L("mode", "fast")); !ok {
		t.Error("missing memtrace object-cache stats")
	}
	// Resilience accounting: the staging-buffer drop gauges must be
	// published (zero on a healthy run) so chaos runs are diagnosable from
	// the same -metrics snapshot.
	if v, ok := snap.Gauge("memtrace_buffer_dropped", obs.L("app", "gtc"), obs.L("mode", "fast")); !ok || v != 0 {
		t.Errorf("memtrace_buffer_dropped = %g (%v), want present and 0 on a healthy run", v, ok)
	}
	if v, ok := snap.Gauge("cachesim_txbuffer_dropped", obs.L("app", "gtc"), obs.L("mode", "fast")); !ok || v != 0 {
		t.Errorf("cachesim_txbuffer_dropped = %g (%v), want present and 0 on a healthy run", v, ok)
	}
}

// TestWithMetricsSharedRegistry: a caller-provided registry receives the
// session's series (the CLIs pass one registry to several components).
func TestWithMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("external_total").Inc()
	s := NewSession(WithScale(0.05), WithIterations(3), WithApps("gtc"), WithMetrics(reg))
	if _, err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Counter("runner_runs_total"); !ok {
		t.Error("session did not publish into the shared registry")
	}
	if v, _ := snap.Counter("external_total"); v != 1 {
		t.Error("shared registry lost pre-existing series")
	}
	if s.MetricsRegistry() != reg {
		t.Error("MetricsRegistry must return the installed registry")
	}
}
