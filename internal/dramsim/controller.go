package dramsim

import (
	"fmt"

	"nvscavenger/internal/trace"
)

// Scheduling selects how the controller orders pending transactions.
type Scheduling uint8

const (
	// InOrder services transactions strictly in arrival order — the
	// simplest trace-replay mode.
	InOrder Scheduling = iota
	// FRFCFS is first-ready, first-come-first-served: within a reorder
	// window, transactions that hit an open row are serviced before older
	// row-miss transactions, as DRAMSim2's default scheduler does.
	FRFCFS
)

// String names the scheduling policy.
func (s Scheduling) String() string {
	if s == FRFCFS {
		return "fr-fcfs"
	}
	return "in-order"
}

// RowPolicy selects what the controller does with a row after a column
// access.
type RowPolicy uint8

const (
	// OpenPage leaves the row open; a subsequent access to the same row
	// skips activation (row-buffer hit).  DRAMSim2's default.
	OpenPage RowPolicy = iota
	// ClosedPage precharges immediately after every access; every access
	// pays activation, but the precharge is off the critical path.
	ClosedPage
)

// String names the policy.
func (p RowPolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// picoseconds per nanosecond; all controller time-keeping is integral ps.
const psPerNS = 1000

func ns2ps(ns float64) uint64 { return uint64(ns * psPerNS) }

// bank tracks the state of one bank: the open row (if any) and the earliest
// time the bank can accept the next command.
type bank struct {
	openRow int // -1 when precharged
	freeAt  uint64
}

// controller regulates the flow of transactions to the devices: address
// mapping, row policy and bank state updates (paper §IV, second module).
type controller struct {
	geom   Geometry
	prof   DeviceProfile
	policy RowPolicy
	// psPerCycle, when nonzero, honours transaction timestamps: a request
	// does not issue before Cycle * psPerCycle.
	psPerCycle float64
	banks      []bank

	busFreeAt uint64 // data bus is shared by all ranks
	now       uint64 // completion time of the most recent transaction
	lastStart uint64

	// event counts for the power model
	reads      uint64
	writes     uint64
	activates  uint64
	rowHits    uint64
	rowMisses  uint64
	outOfRange uint64
}

func newController(geom Geometry, prof DeviceProfile, policy RowPolicy) (*controller, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	banks := make([]bank, geom.TotalBanks())
	for i := range banks {
		banks[i].openRow = -1
	}
	return &controller{geom: geom, prof: prof, policy: policy, banks: banks}, nil
}

// enqueue services one transaction at full speed: it issues as early as the
// owning bank and the shared data bus allow.  Returns the completion time.
func (c *controller) enqueue(t trace.Transaction) uint64 {
	addr := t.Addr % c.geom.CapacityBytes()
	if addr != t.Addr {
		c.outOfRange++
	}
	p := c.geom.Map(addr)
	b := &c.banks[c.geom.BankIndex(p)]

	var access uint64
	if t.Write {
		access = ns2ps(c.prof.WriteLatencyNS)
		c.writes++
	} else {
		access = ns2ps(c.prof.ReadLatencyNS)
		c.reads++
	}

	// Row policy: a hit skips activation; a miss pays precharge (if a row
	// is open) plus activate.
	var rowOverhead uint64
	switch {
	case c.policy == ClosedPage:
		// Precharge after the previous access is already folded into the
		// bank's freeAt (see below); each access pays a fresh activation.
		rowOverhead = ns2ps(c.prof.TRCDNS)
		c.activates++
		c.rowMisses++
	case b.openRow == p.Row:
		c.rowHits++
	default:
		rowOverhead = ns2ps(c.prof.TRCDNS)
		if b.openRow >= 0 {
			rowOverhead += ns2ps(c.prof.TRPNS)
		}
		c.activates++
		c.rowMisses++
		b.openRow = p.Row
	}

	burst := ns2ps(c.prof.BurstNS)

	// Issue as soon as the bank is ready; additionally the data burst must
	// find the shared bus free.  In timestamped mode the request cannot
	// issue before its arrival time.
	start := b.freeAt
	if c.psPerCycle > 0 {
		if arrival := uint64(float64(t.Cycle) * c.psPerCycle); arrival > start {
			start = arrival
		}
	}
	if dataAt := start + rowOverhead + access; dataAt < c.busFreeAt {
		start += c.busFreeAt - dataAt
	}
	if start < c.lastStart {
		// The command bus serializes issue order in a trace-driven run.
		start = c.lastStart
	}
	c.lastStart = start

	done := start + rowOverhead + access + burst
	c.busFreeAt = done
	b.freeAt = done
	if c.policy == ClosedPage {
		b.freeAt += ns2ps(c.prof.TRPNS) // auto-precharge off the critical path
		b.openRow = -1
	}
	if done > c.now {
		c.now = done
	}
	return done
}

// isRowHit reports whether a transaction would hit the currently open row
// of its bank (the first-ready test of FR-FCFS).
func (c *controller) isRowHit(t trace.Transaction) bool {
	if c.policy == ClosedPage {
		return false
	}
	addr := t.Addr % c.geom.CapacityBytes()
	p := c.geom.Map(addr)
	return c.banks[c.geom.BankIndex(p)].openRow == p.Row
}

// elapsedPS returns the total simulated time.
func (c *controller) elapsedPS() uint64 { return c.now }

// stats summarizes controller activity.
type controllerStats struct {
	Reads, Writes        uint64
	Activates            uint64
	RowHits, RowMisses   uint64
	ElapsedPS            uint64
	OutOfRangeWrapAround uint64
}

func (c *controller) snapshot() controllerStats {
	return controllerStats{
		Reads: c.reads, Writes: c.writes,
		Activates: c.activates,
		RowHits:   c.rowHits, RowMisses: c.rowMisses,
		ElapsedPS:            c.elapsedPS(),
		OutOfRangeWrapAround: c.outOfRange,
	}
}

func (c *controller) String() string {
	return fmt.Sprintf("controller{%s, %s, banks=%d}", c.prof.Name, c.policy, len(c.banks))
}
