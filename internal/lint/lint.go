// Package lint is the repository's project-native static-analysis layer:
// a dependency-free analyzer framework on the standard library's go/ast,
// go/token and go/types (no x/tools), plus the project-specific passes
// that keep the reproduction's headline invariants true at the source
// level — byte-identical reports at any -jobs count, seeded fault
// schedules that replay identically, metric-name hygiene in the obs
// registry, and the error contract the tools rely on.
//
// Every paper exhibit is only as trustworthy as those invariants, and all
// of them are source-level properties: a stray time.Now in a simulator, a
// map-range feeding a report writer, or a swallowed sink error shows up as
// a flaky golden file long after the commit that caused it.  The passes
// move that detection to lint time.
//
// A diagnostic renders as "file:line:col: [pass] message".  A finding can
// be suppressed at the site with an inline comment on the same line or the
// line directly above:
//
//	//nvlint:ignore <pass> <reason>
//
// The reason is mandatory; a directive without one suppresses nothing and
// is itself reported (pass name "nvlint").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned in module-relative file
// coordinates.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// String renders the finding the way compilers do:
// "file:line:col: [pass] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Pass is one analyzer.  Check is invoked once per loaded package; Finish
// runs after every package has been checked, for passes that accumulate
// cross-package state (metric-name uniqueness).  Passes are stateful and
// single-use: NewSuite builds fresh instances for every run.
type Pass interface {
	Name() string
	Doc() string
	Check(p *Package, r *Reporter)
	Finish(r *Reporter)
}

// nopFinish is embedded by passes with no cross-package state.
type nopFinish struct{}

func (nopFinish) Finish(*Reporter) {}

// passFactories is the registry, keyed by pass name.  Registration happens
// in each pass's file init; the map is read-only afterwards.
var passFactories = map[string]func() Pass{}

func registerPass(name string, factory func() Pass) {
	if _, dup := passFactories[name]; dup {
		panic("lint: duplicate pass " + name) //nvlint:ignore errcontract registry misuse is a programmer error at init time
	}
	passFactories[name] = factory
}

// PassNames returns every registered pass name, sorted.
func PassNames() []string {
	names := make([]string, 0, len(passFactories))
	for name := range passFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PassDoc returns the one-line documentation of a registered pass.
func PassDoc(name string) string {
	f, ok := passFactories[name]
	if !ok {
		return ""
	}
	return f().Doc()
}

// Suite is one lint run's worth of pass instances.
type Suite struct {
	passes []Pass
}

// NewSuite instantiates the named passes (all registered passes when names
// is empty).  Unknown names are an error listing what exists.
func NewSuite(names ...string) (*Suite, error) {
	if len(names) == 0 {
		names = PassNames()
	}
	s := &Suite{}
	for _, name := range names {
		factory, ok := passFactories[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q (have %s)", name, strings.Join(PassNames(), ", "))
		}
		s.passes = append(s.passes, factory())
	}
	return s, nil
}

// PassStat is one pass's share of a run: total wall time across every
// package (Finish included) and how many findings it filed.
type PassStat struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
	Findings int           `json:"findings"`
}

// Run checks every package with every pass and returns the surviving
// diagnostics sorted by file, line, column and pass.  Suppressed findings
// are dropped; malformed suppression directives are reported under the
// pseudo-pass "nvlint" regardless of which passes were selected.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	diags, _ := s.RunStats(pkgs)
	return diags
}

// RunStats is Run plus per-pass wall time and finding counts, in the
// suite's pass order.
func (s *Suite) RunStats(pkgs []*Package) ([]Diagnostic, []PassStat) {
	r := &Reporter{}
	stats := make([]PassStat, len(s.passes))
	for i, pass := range s.passes {
		stats[i].Name = pass.Name()
	}
	timed := func(i int, f func()) {
		before := len(r.diags)
		start := time.Now()
		f()
		stats[i].Duration += time.Since(start)
		stats[i].Findings += len(r.diags) - before
	}
	for _, p := range pkgs {
		r.pkg = p
		for _, d := range p.badIgnores {
			r.diags = append(r.diags, d)
		}
		for i, pass := range s.passes {
			timed(i, func() { pass.Check(p, r) })
		}
	}
	r.pkg = nil
	for i, pass := range s.passes {
		timed(i, func() { pass.Finish(r) })
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
	return r.diags, stats
}

// Reporter collects diagnostics during a run and applies the package's
// inline suppressions as they are emitted.
type Reporter struct {
	pkg   *Package
	diags []Diagnostic
}

// Report files one finding at pos.  Findings matching an
// "//nvlint:ignore pass reason" directive on the same or preceding line
// are dropped.  Passes that report from Finish pass the package the
// position belongs to explicitly via ReportIn.
func (r *Reporter) Report(pos token.Pos, pass, format string, args ...any) {
	r.ReportIn(r.pkg, pos, pass, format, args...)
}

// ReportIn is Report against an explicit package (for Finish-time
// findings whose positions span packages).
func (r *Reporter) ReportIn(p *Package, pos token.Pos, pass, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := p.relFile(position.Filename)
	if p.suppressed(file, position.Line, pass) {
		return
	}
	r.diags = append(r.diags, Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Pass:    pass,
		Message: fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed "//nvlint:ignore pass reason" comment.
type ignoreDirective struct {
	pass string
	line int
}

const ignorePrefix = "//nvlint:ignore"

// scanIgnores extracts the suppression directives of one parsed file and
// reports malformed ones (missing pass or reason) as diagnostics.
func scanIgnores(fset *token.FileSet, f *ast.File, relFile func(string) string) (byLine map[int][]string, malformed []Diagnostic) {
	byLine = map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					File:    relFile(pos.Filename),
					Line:    pos.Line,
					Col:     pos.Column,
					Pass:    "nvlint",
					Message: "malformed ignore directive: want //nvlint:ignore <pass> <reason>",
				})
				continue
			}
			byLine[pos.Line] = append(byLine[pos.Line], fields[0])
		}
	}
	return byLine, malformed
}
