package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "1",
		"-latencies", "10,100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "latency sweep") || !strings.Contains(text, "normalized") {
		t.Errorf("output incomplete:\n%s", text)
	}
	if strings.Count(text, "\n") < 4 {
		t.Error("expected two sweep rows")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -app must error")
	}
	if err := run([]string{"-app", "gtc", "-latencies", "ten"}, &out); err == nil {
		t.Error("bad latency must error")
	}
	if err := run([]string{"-app", "nonesuch"}, &out); err == nil {
		t.Error("unknown app must error")
	}
}
