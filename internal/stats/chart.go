package stats

import (
	"fmt"
	"math"
	"strings"
)

// Terminal chart helpers used by the report tooling to render the paper's
// figures as text: horizontal bars for distributions and cumulative
// curves, and compact sparklines for per-iteration series.

// barRunes grade a fractional cell from empty to full.
var barRunes = []rune{' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'}

// HBar renders value/max as a fixed-width horizontal bar.  Values outside
// [0, max] are clamped; a non-positive max yields an empty bar.
func HBar(value, max float64, width int) string {
	if width <= 0 {
		return ""
	}
	if max <= 0 || value < 0 {
		value = 0
		max = 1
	}
	if value > max {
		value = max
	}
	cells := value / max * float64(width)
	full := int(cells)
	var b strings.Builder
	for i := 0; i < full && i < width; i++ {
		b.WriteRune('█')
	}
	if full < width {
		frac := cells - float64(full)
		idx := int(math.Round(frac * 8))
		b.WriteRune(barRunes[idx])
		for i := full + 1; i < width; i++ {
			b.WriteRune(' ')
		}
	}
	return b.String()
}

// BarRow renders "label |bar| value" lines for a labelled series, scaling
// every bar to the series maximum.
func BarRow(labels []string, values []float64, width int) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s |%s| %.3g\n", labelW, label, HBar(v, max, width), v)
	}
	return b.String()
}

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Sparkline renders a series as one line of block characters, scaled to
// the series range.  NaNs render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * 7.999)
		}
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
