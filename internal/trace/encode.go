package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format.
//
// The original tool considered writing raw traces to disk for offline
// processing and rejected it for the main pipeline because post-processing
// tens of gigabytes is slower than on-the-fly analysis (§III-D).  We keep the
// on-the-fly design but still provide a compact binary format so that the
// power simulator (cmd/nvpower) can be fed from a file, mirroring how
// DRAMSim2 consumes trace files.
//
// Layout:
//
//	header:  magic "NVSC" | version u8 | kind u8 | reserved u16
//	access record:      addr u64 | size u8 | op u8        (10 bytes)
//	transaction record: addr u64 | cycle u64 | write u8   (17 bytes)

const (
	traceMagic   = "NVSC"
	traceVersion = 1

	// KindAccess marks a raw access trace.
	KindAccess = 1
	// KindTransaction marks a post-cache main-memory trace.
	KindTransaction = 2
)

// ErrBadTrace reports a malformed trace header or record.
var ErrBadTrace = errors.New("trace: malformed trace stream")

func writeHeader(w io.Writer, kind uint8) error {
	var h [8]byte
	copy(h[:4], traceMagic)
	h[4] = traceVersion
	h[5] = kind
	_, err := w.Write(h[:])
	return err
}

func readHeader(r io.Reader) (kind uint8, err error) {
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, err
	}
	if string(h[:4]) != traceMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadTrace, h[:4])
	}
	if h[4] != traceVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, h[4])
	}
	return h[5], nil
}

// Writer encodes accesses to an io.Writer.  It implements Sink, so it can be
// plugged directly under a Buffer.
type Writer struct {
	bw      *bufio.Writer
	started bool
	kind    uint8
	n       uint64
	// closer, when set, finishes a compression layer on Close.
	closer io.Closer
}

// NewAccessWriter returns a Writer producing a KindAccess stream.
func NewAccessWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), kind: KindAccess}
}

// NewTransactionWriter returns a Writer producing a KindTransaction stream.
func NewTransactionWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), kind: KindTransaction}
}

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	return writeHeader(w.bw, w.kind)
}

// WriteAccess appends one access record.
func (w *Writer) WriteAccess(a Access) error {
	if w.kind != KindAccess {
		return fmt.Errorf("trace: WriteAccess on %d-kind writer", w.kind)
	}
	if err := w.start(); err != nil {
		return err
	}
	var rec [10]byte
	binary.LittleEndian.PutUint64(rec[0:8], a.Addr)
	rec[8] = a.Size
	rec[9] = uint8(a.Op)
	// Count only records the sink accepted: incrementing before the write
	// would make Count() overstate records on a failed write, showing
	// phantom records to callers comparing against reader-side totals.
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteTransaction appends one main-memory transaction record.
func (w *Writer) WriteTransaction(t Transaction) error {
	if w.kind != KindTransaction {
		return fmt.Errorf("trace: WriteTransaction on %d-kind writer", w.kind)
	}
	if err := w.start(); err != nil {
		return err
	}
	var rec [17]byte
	binary.LittleEndian.PutUint64(rec[0:8], t.Addr)
	binary.LittleEndian.PutUint64(rec[8:16], t.Cycle)
	if t.Write {
		rec[16] = 1
	}
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Flush implements Sink for access streams.
func (w *Writer) Flush(batch []Access) error {
	for _, a := range batch {
		if err := w.WriteAccess(a); err != nil {
			return err
		}
	}
	return nil
}

// FlushTx implements TxSink for transaction streams, so a file writer can
// terminate a batched transaction pipeline directly.
func (w *Writer) FlushTx(batch []Transaction) error {
	for _, t := range batch {
		if err := w.WriteTransaction(t); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffered output and finishes any compression layer.  It
// does not close the application's underlying writer.
func (w *Writer) Close() error {
	if err := w.start(); err != nil { // an empty trace still gets a header
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Reader decodes a binary trace stream.
type Reader struct {
	br   *bufio.Reader
	kind uint8
}

// NewReader wraps r and validates the stream header.  Gzip-compressed
// traces (written by the NewCompressed*Writer constructors) are detected
// and decompressed transparently.
func NewReader(r io.Reader) (*Reader, error) {
	br, err := maybeDecompress(bufio.NewReaderSize(r, 1<<16))
	if err != nil {
		return nil, err
	}
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != KindAccess && kind != KindTransaction {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadTrace, kind)
	}
	return &Reader{br: br, kind: kind}, nil
}

// Kind reports the stream kind (KindAccess or KindTransaction).
func (r *Reader) Kind() uint8 { return r.kind }

// ReadAccess returns the next access record, or io.EOF at end of stream.
func (r *Reader) ReadAccess() (Access, error) {
	if r.kind != KindAccess {
		return Access{}, fmt.Errorf("trace: ReadAccess on %d-kind reader", r.kind)
	}
	var rec [10]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Access{}, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		return Access{}, err
	}
	op := Op(rec[9])
	if op != Read && op != Write {
		return Access{}, fmt.Errorf("%w: bad op %d", ErrBadTrace, rec[9])
	}
	return Access{
		Addr: binary.LittleEndian.Uint64(rec[0:8]),
		Size: rec[8],
		Op:   op,
	}, nil
}

// ReadTransaction returns the next transaction record, or io.EOF.
func (r *Reader) ReadTransaction() (Transaction, error) {
	if r.kind != KindTransaction {
		return Transaction{}, fmt.Errorf("trace: ReadTransaction on %d-kind reader", r.kind)
	}
	var rec [17]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Transaction{}, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		return Transaction{}, err
	}
	return Transaction{
		Addr:  binary.LittleEndian.Uint64(rec[0:8]),
		Cycle: binary.LittleEndian.Uint64(rec[8:16]),
		Write: rec[16] != 0,
	}, nil
}
