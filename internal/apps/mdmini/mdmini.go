// Package mdmini is a Lennard-Jones molecular-dynamics mini-app.  It is not
// one of the paper's four applications: it exists to exercise the claim of
// §I that the observations about scientific data structures "apply broadly
// to many applications beyond our initial set".  The same NVRAM-relevant
// populations appear:
//
//   - read-only tables built at setup (the pair-potential coefficient
//     table and the per-species mass table) — NVRAM candidates;
//   - rewritten state (positions, velocities, forces) — DRAM residents;
//   - a neighbor list rebuilt every few timesteps and only read in
//     between: its per-iteration read/write ratio swings between pure-read
//     and write-heavy, the migratable pattern of §II's variance metric;
//   - post-processing-only diagnostics (the radial distribution histogram).
package mdmini

import (
	"fmt"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/apps/kernels"
	"nvscavenger/internal/memtrace"
)

func init() {
	apps.Register("minimd", func(scale float64) apps.App { return New(scale) })
}

const (
	neighbors     = 16 // neighbor slots per atom
	rebuildPeriod = 4  // timesteps between neighbor-list rebuilds
	species       = 8
)

// App is the molecular-dynamics proxy.
type App struct {
	scale float64
	atoms int

	// heap state
	pos, vel, force memtrace.F64
	neigh           memtrace.I64
	neighObj        *memtrace.Object

	// read-only tables (global)
	ljTable, mass memtrace.F64

	// post-processing-only histogram
	rdf memtrace.F64

	checksum float64
}

// New returns an MD proxy at the given scale (1.0 ~ 20k atoms).
func New(scale float64) *App {
	n := int(20000 * scale)
	if n < 128 {
		n = 128
	}
	return &App{scale: scale, atoms: n}
}

// Name implements apps.App.
func (a *App) Name() string { return "minimd" }

// Description implements apps.App.
func (a *App) Description() string {
	return "Lennard-Jones molecular dynamics (generalization mini-app, not in the paper's set)"
}

// Setup allocates state and builds the read-only tables.
func (a *App) Setup(tr *memtrace.Tracer) error {
	n := a.atoms
	rng := kernels.NewRNG(71)

	a.pos, _ = tr.HeapF64("x", "atom_vec.go:20", 3*n)
	a.vel, _ = tr.HeapF64("v", "atom_vec.go:21", 3*n)
	a.force, _ = tr.HeapF64("f", "atom_vec.go:22", 3*n)
	a.neigh, a.neighObj = tr.HeapI64("neighbor_list", "neighbor.go:55", n*neighbors)
	a.ljTable, _ = tr.GlobalF64("lj_coeff", species*species*4)
	a.mass, _ = tr.GlobalF64("mass_table", species)
	a.rdf, _ = tr.GlobalF64("rdf_hist", 4096)

	fr := tr.Enter("create_atoms")
	defer tr.Leave()
	_ = fr
	kernels.FillRandom(a.pos, rng, 0, 10)
	kernels.FillRandom(a.vel, rng, -1, 1)
	a.force.Fill(0)
	for i := 0; i < a.ljTable.Len(); i++ {
		a.ljTable.Store(i, 0.5+rng.Float64())
	}
	for s := 0; s < species; s++ {
		a.mass.Store(s, 1+float64(s)*0.1)
	}
	a.rebuildNeighbors(tr, 0)
	return nil
}

// rebuildNeighbors fills the neighbor list with a deterministic pseudo-
// random topology (a real cell-list build reads positions too).
func (a *App) rebuildNeighbors(tr *memtrace.Tracer, salt int) {
	h := uint64(salt)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	n := a.atoms
	for i := 0; i < n; i++ {
		_ = a.pos.Load(3 * i) // the builder reads each atom's position
		for k := 0; k < neighbors; k++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			a.neigh.Store(i*neighbors+k, int64(h%uint64(n)))
		}
	}
	tr.Compute(uint64(3 * n * neighbors))
}

// Step advances one velocity-Verlet timestep.
func (a *App) Step(tr *memtrace.Tracer, iter int) error {
	n := a.atoms
	sum := 0.0

	// Neighbor list: rebuilt every rebuildPeriod steps, read otherwise —
	// the migratable access pattern.
	if iter%rebuildPeriod == 1 {
		fr := tr.Enter("neighbor_build")
		a.rebuildNeighbors(tr, iter)
		tr.Leave()
		_ = fr
	}

	// Force computation: stack-resident accumulators per atom, table-driven
	// pair coefficients.
	fr := tr.Enter("force_lj")
	acc := fr.LocalF64(3)
	for i := 0; i < n; i++ {
		xi := a.pos.Load(3 * i)
		acc.Store(0, 0)
		acc.Store(1, 0)
		acc.Store(2, 0)
		for k := 0; k < neighbors; k++ {
			j := int(a.neigh.Load(i*neighbors+k)) % n
			dx := xi - a.pos.Load(3*j)
			cij := a.ljTable.Load(((i % species) * species * 4) % a.ljTable.Len())
			f := cij * dx / (1 + dx*dx)
			acc.Add(0, f)
			acc.Add(1, f*0.5)
			acc.Add(2, f*0.25)
		}
		tr.Compute(uint64(8 * neighbors))
		a.force.Store(3*i, acc.Load(0))
		a.force.Store(3*i+1, acc.Load(1))
		a.force.Store(3*i+2, acc.Load(2))
	}
	tr.Leave()
	_ = fr

	// Integrate: read force and mass, update velocity and position.
	fri := tr.Enter("integrate")
	for i := 0; i < 3*n; i++ {
		m := a.mass.Load((i / 3) % species)
		v := a.vel.Load(i) + 0.001*a.force.Load(i)/m
		a.vel.Store(i, v)
		p := a.pos.Load(i) + 0.001*v
		a.pos.Store(i, math.Mod(p+10, 10))
		sum += v
	}
	tr.Compute(uint64(8 * n))
	tr.Leave()
	_ = fri

	a.checksum = sum
	return nil
}

// Post computes the radial distribution histogram (post-processing only).
func (a *App) Post(tr *memtrace.Tracer) error {
	fr := tr.Enter("compute_rdf")
	for i := 0; i < a.rdf.Len(); i++ {
		a.rdf.Store(i, a.pos.Load((3*i)%a.pos.Len()))
	}
	tr.Compute(uint64(a.rdf.Len()))
	tr.Leave()
	_ = fr
	return nil
}

// Check validates positions stayed in the periodic box.
func (a *App) Check() error {
	if math.IsNaN(a.checksum) || math.IsInf(a.checksum, 0) {
		return fmt.Errorf("mdmini: checksum diverged")
	}
	for i, p := range a.pos.Raw() {
		if p < 0 || p > 10 || math.IsNaN(p) {
			return fmt.Errorf("mdmini: atom coordinate %d out of box: %v", i, p)
		}
	}
	return nil
}

// Input implements apps.InputDescriber (Table I's input column).
func (a *App) Input() string {
	return fmt.Sprintf("%d atoms, %d neighbor slots, rebuild every %d steps", a.atoms, neighbors, rebuildPeriod)
}
