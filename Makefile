GO ?= go

.PHONY: ci lint vet build test race race-obs race-pipeline race-sampling race-served race-shard race-journal bench bench-snapshot bench-compare chaos report

ci: lint vet build race-obs race-pipeline race-sampling race-served race-shard race-journal race bench chaos

# Project-native static analysis: the syntactic passes (determinism,
# metric naming, the error contract, the sticky-sink contract) plus the
# flow-sensitive tier (arenaown, lockorder, ctxflow), over every package.
# -stats prints per-pass wall time and finding counts; non-zero on any
# finding; suppress at the site with //nvlint:ignore <pass> <reason>.
lint:
	$(GO) run ./cmd/nvlint -stats ./...

# go vet does not walk cmd/nvlint's testdata fixtures, so also prove the
# lint tool itself builds.
vet:
	$(GO) vet ./...
	$(GO) build -o /dev/null ./cmd/nvlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The metrics registry and the run engine are the two packages whose hot
# paths are exercised concurrently; run them race-enabled twice so the
# schedule varies between runs.
race-obs:
	$(GO) test -race -count=2 ./internal/obs ./internal/runner

# The pipeline layer shares one stack across stages; run its tests
# race-enabled so combinator and Close paths stay clean under the detector.
race-pipeline:
	$(GO) test -race -count=2 ./internal/pipeline

# Sampled tracing promises byte-identical output at any -jobs count (the
# PRNG is seeded and per-tracer); run the sampling, estimator and
# profiler-error tests race-enabled twice so the worker schedule varies.
race-sampling:
	$(GO) test -race -count=2 -run 'Sampl|Estimat|ProfilerError' ./internal/memtrace ./internal/experiments

# The service layer is all about concurrency — shared run caches, the
# bounded queue, drain vs submit — so its tests run race-enabled twice to
# vary the schedule, daemon included.
race-served:
	$(GO) test -race -count=2 ./internal/served ./cmd/nvserved

# Durability gate: the write-ahead-log package race-enabled twice, then
# the seeded crash-point sweep — kill the journal at every journaled
# transition, restart from the state dir, and require byte-identical
# reports (internal/served/crash_test.go) — plus the daemon's state-dir
# restart test.
race-journal:
	$(GO) test -race -count=2 ./internal/journal
	$(GO) test -race -run 'Crash|Recovery|Journal|CleanRestart|Healthz|StateDir' ./internal/served ./cmd/nvserved

# Intra-run sharding promises byte-identical merged output at any shard
# count; run the shards-1-vs-K identity tests race-enabled twice so the
# merge and arena hand-off paths stay clean under a varying schedule.
race-shard:
	$(GO) test -race -count=2 -run 'TestSharded|TestShards' ./internal/pipeline ./internal/experiments ./internal/served

# One pass over the pipeline-throughput and instrumentation-overhead
# benchmarks: a smoke check that the batched dataflow and its Counted
# wrappers keep working, not a timing run.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline|BenchmarkAblation(ObjectCache|Buffer)' -benchtime=1x -count=1 ./internal/pipeline .

# Record the pipeline performance baseline: run the throughput and
# instrumentation-overhead benchmarks at full benchtime and write the
# parsed results to BENCH_PIPELINE.json (committed, so regressions show
# up as diffs).  Not part of ci — timing runs need a quiet machine.
bench-snapshot:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline(Throughput|InstrumentationOverhead|SampledTracing|Sharded)' -count=1 ./internal/pipeline \
		| $(GO) run ./cmd/nvbench -out BENCH_PIPELINE.json

# Compare a fresh timing run against the committed baseline: one row per
# benchmark and metric with the relative delta.  Report-only — timing
# noise on a shared machine is not a CI failure; pass a threshold by hand
# (`go run ./cmd/nvbench -compare BENCH_PIPELINE.json -threshold 20`) to
# gate.
bench-compare:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline(Throughput|InstrumentationOverhead|SampledTracing|Sharded)' -count=1 ./internal/pipeline \
		| $(GO) run ./cmd/nvbench -compare BENCH_PIPELINE.json

# Chaos gate: the fault-injection and resilience packages race-enabled,
# plus one seeded degraded sweep — it must complete (exit 0) with partial
# exhibits rather than abort.
chaos:
	$(GO) test -race -count=2 ./internal/faults ./internal/resilience
	$(GO) run ./cmd/nvreport -scale 0.05 -iterations 3 -only table1,table5 \
		-fault sink:every=3,seed=7 -progress=false >/dev/null

report:
	$(GO) run ./cmd/nvreport
