package dramsim

import (
	"testing"

	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

func TestPowerReportExportMetrics(t *testing.T) {
	m := mustNew(t, PaperConfig(DDR3()))
	for i := 0; i < 128; i++ {
		if err := m.Transaction(trace.Transaction{Addr: uint64(i) * 64, Write: i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Report()
	reg := obs.NewRegistry()
	rep.ExportMetrics(reg, obs.L("app", "gtc"))
	s := reg.Snapshot()
	ls := []obs.Label{{Key: "app", Value: "gtc"}, {Key: "device", Value: rep.Device}}
	if v, ok := s.Gauge("dramsim_reads", ls...); !ok || v != float64(rep.Reads) {
		t.Fatalf("dramsim_reads = %v (%v), want %d", v, ok, rep.Reads)
	}
	if v, ok := s.Gauge("dramsim_writes", ls...); !ok || v != float64(rep.Writes) {
		t.Fatalf("dramsim_writes = %v, want %d", v, rep.Writes)
	}
	if v, ok := s.Gauge("dramsim_row_hit_ratio", ls...); !ok || v != rep.RowHitRatio() {
		t.Fatalf("dramsim_row_hit_ratio = %v, want %v", v, rep.RowHitRatio())
	}
	if v, ok := s.Gauge("dramsim_total_mw", ls...); !ok || v != rep.TotalMW {
		t.Fatalf("dramsim_total_mw = %v, want %v", v, rep.TotalMW)
	}
}
