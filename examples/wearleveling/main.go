// Wear-leveling study: §II flags PCRAM's limited write endurance (1e8 to
// 1e9.7 cycles) as the third obstacle to placing data in NVRAM.  This
// example captures the writeback traffic of the GTC proxy's charge-density
// grid — a scatter target rewritten every timestep — and compares the
// region's lifetime under a static line mapping versus Start-Gap wear
// leveling.
//
//	go run ./examples/wearleveling
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/trace"
	"nvscavenger/internal/wear"

	_ "nvscavenger/internal/apps/gtcmini"
)

func main() {
	// Run GTC and capture the post-cache writeback stream: a Filter stage
	// keeps only writebacks, and a batched function sink collects addresses.
	app, err := apps.New("gtc", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	var writebacks []uint64
	sink := pipeline.ToTxSink(pipeline.Filter(
		func(t trace.Transaction) bool { return t.Write },
		pipeline.StageFunc[trace.Transaction](func(batch []trace.Transaction) error {
			for _, t := range batch {
				writebacks = append(writebacks, t.Addr)
			}
			return nil
		})))
	cacheCfg := cachesim.PaperConfig()
	stack := pipeline.MustBuild(pipeline.Config{Cache: &cacheCfg, TxSinks: []trace.TxSink{sink}})
	tr := stack.Tracer
	if err := apps.Run(app, tr, 10); err != nil {
		log.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		log.Fatal(err)
	}

	// Find the charge-density grid: the hottest write target.
	var grid *memtrace.Object
	for _, o := range tr.Objects() {
		if o.Name == "densityi" {
			grid = o
		}
	}
	if grid == nil {
		log.Fatal("densityi object missing")
	}
	fmt.Printf("gtc: %d writebacks total; tracking %s [%#x, +%d KB)\n\n",
		len(writebacks), grid.Name, grid.Base, grid.Size/1024)

	lines := int(grid.Size / 64)
	prof := dramsim.PCRAM()
	report := func(label string, stream []uint64, base uint64, n int) {
		fmt.Printf("--- %s (%d line writes over %d lines) ---\n", label, len(stream), n)
		for _, scheme := range []wear.Scheme{wear.Static, wear.StartGap} {
			tracker, err := wear.NewTracker(wear.Config{BaseAddr: base, Lines: n, Scheme: scheme, GapMovePeriod: 10})
			if err != nil {
				log.Fatal(err)
			}
			for _, addr := range stream {
				tracker.Write(addr)
			}
			r := tracker.Report()
			fmt.Printf("%-9s  max/line %7d  imbalance %7.2f  lifetime %.2e region-writes\n",
				scheme, r.MaxLine, r.Imbalance, tracker.LifetimeWrites(prof))
		}
		fmt.Println()
	}

	// Case 1: the measured writeback stream.  The cache hierarchy and the
	// scatter pattern already spread these writes almost uniformly, so
	// static placement wears evenly and Start-Gap adds only its small copy
	// overhead — leveling is unnecessary for this object.
	var gridWrites []uint64
	for _, addr := range writebacks {
		if addr >= grid.Base && addr < grid.Base+grid.Size {
			gridWrites = append(gridWrites, addr)
		}
	}
	report("gtc densityi writebacks (measured: uniform)", gridWrites, grid.Base, lines)

	// Case 2: a hot-spot deposition pattern — half the writes hammer a few
	// lines, as a peaked plasma density profile would.  Here Start-Gap
	// multiplies the region's lifetime by spreading the hot lines.
	h := uint64(1)
	var skewed []uint64
	for i := 0; i < 400000; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		line := h % uint64(lines)
		if i%2 == 0 {
			line = h % 8 // 50% of writes land on 8 of the lines
		}
		skewed = append(skewed, grid.Base+line*64)
	}
	report("peaked deposition profile (synthetic: skewed)", skewed, grid.Base, lines)

	fmt.Println("Start-Gap pays a small copy overhead on uniform traffic and buys")
	fmt.Println("an order of magnitude of lifetime when deposition concentrates.")
}
