package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nvscavenger/internal/core"
	"nvscavenger/internal/cpusim"
	"nvscavenger/internal/stats"
)

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Applications characteristics\n")
	fmt.Fprintf(&b, "%-10s %-52s %-58s %s\n", "App", "Input problem size", "Description", "Footprint/task")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-52s %-58s %.1f MB\n", r.App, r.Input, r.Description, r.FootprintMB)
	}
	return b.String()
}

// FormatTable5 renders Table V.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: Stack data analysis (fast tool)\n")
	fmt.Fprintf(&b, "%-10s %-22s %s\n", "App", "Read/write ratio", "Reference percentage")
	for _, r := range rows {
		ratio := fmt.Sprintf("%.2f", r.SteadyRatio)
		if r.FirstIterRatio < r.SteadyRatio*0.8 {
			ratio = fmt.Sprintf("%.2f (%.2f)", r.SteadyRatio, r.FirstIterRatio)
		}
		fmt.Fprintf(&b, "%-10s %-22s %.1f%%\n", r.App, ratio, r.ReferencePct)
	}
	return b.String()
}

// FormatFigure2 renders the CAM stack-frame analysis.
func FormatFigure2(recs []core.ObjectRecord, fig core.Figure2Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: CAM stack data, per-routine (slow tool)\n")
	fmt.Fprintf(&b, "objects with R/W > 10: %.1f%% of objects, %.1f%% of references\n",
		fig.CountOver10*100, fig.RefsOver10*100)
	fmt.Fprintf(&b, "objects with R/W > 50: %.1f%% of objects, %.1f%% of references\n",
		fig.CountOver50*100, fig.RefsOver50*100)
	sorted := append([]core.ObjectRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Refs > sorted[j].Refs })
	fmt.Fprintf(&b, "%-22s %12s %14s %12s\n", "routine", "r/w ratio", "refs/Minstr", "refs")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-22s %12.2f %14.1f %12d\n", r.Name, r.RWRatio, r.RefRate, r.Refs)
	}
	return b.String()
}

// FormatObjectFigure renders one of Figures 3-6.
func FormatObjectFigure(app string, figNum int, recs []core.ObjectRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s global and heap memory objects\n", figNum, app)
	fmt.Fprintf(&b, "%-18s %-7s %12s %14s %12s %-10s %s\n",
		"object", "segment", "r/w ratio", "refs/Minstr", "size (KB)", "pattern", "notes")
	sorted := append([]core.ObjectRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SizeBytes > sorted[j].SizeBytes })
	var roBytes, total uint64
	for _, r := range sorted {
		note := ""
		switch {
		case r.Untouched:
			note = "untouched in main loop"
		case r.ReadOnly:
			note = "read-only"
			roBytes += r.SizeBytes
		case r.RWRatio > 50:
			note = "r/w > 50"
		}
		total += r.SizeBytes
		fmt.Fprintf(&b, "%-18s %-7s %12.2f %14.1f %12.1f %-10s %s\n",
			r.Name, r.Segment.String(), r.RWRatio, r.RefRate, float64(r.SizeBytes)/1024,
			r.Pattern, note)
	}
	if total > 0 {
		fmt.Fprintf(&b, "read-only data: %.1f MB (%.1f%% of global+heap footprint)\n",
			float64(roBytes)/(1<<20), float64(roBytes)/float64(total)*100)
	}
	return b.String()
}

// FormatFigure7 renders the cumulative memory-usage distributions.
func FormatFigure7(cdfs map[string][]core.UsagePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Cumulative distribution of memory usage across time steps\n")
	names := make([]string, 0, len(cdfs))
	for n := range cdfs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := cdfs[name]
		fmt.Fprintf(&b, "%s:\n", name)
		total := pts[len(pts)-1].CumulativeMB
		for _, p := range pts {
			pct := 0.0
			if total > 0 {
				pct = p.CumulativeMB / total * 100
			}
			fmt.Fprintf(&b, "  <= %2d iterations: %8.2f MB (%5.1f%%) %s\n",
				p.Iterations, p.CumulativeMB, pct, stats.HBar(p.CumulativeMB, total, 30))
		}
	}
	return b.String()
}

// FormatVarianceFigure renders one of Figures 8-11.
func FormatVarianceFigure(app string, figNum int, ratio, rate [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s normalized metric variance across iterations\n", figNum, app)
	binLabel := func(i int) string {
		lo, hi := stats.VarianceBins[i], stats.VarianceBins[i+1]
		return fmt.Sprintf("[%.1f,%.1f)", lo, hi)
	}
	render := func(title string, dist [][]float64) {
		fmt.Fprintf(&b, "  %s (share of objects per bin):\n", title)
		fmt.Fprintf(&b, "    %-6s", "iter")
		for i := 0; i < len(stats.VarianceBins)-1; i++ {
			fmt.Fprintf(&b, " %10s", binLabel(i))
		}
		fmt.Fprintln(&b)
		for it := 1; it < len(dist); it++ {
			fmt.Fprintf(&b, "    %-6d", it)
			for _, f := range dist[it] {
				fmt.Fprintf(&b, " %10.3f", f)
			}
			fmt.Fprintln(&b)
		}
	}
	render("read/write ratio", ratio)
	render("reference rate", rate)
	fmt.Fprintf(&b, "  stable [1,2) share: ratio %.1f%%, rate %.1f%%\n",
		core.StableShare(ratio)*100, core.StableShare(rate)*100)
	return b.String()
}

// FormatTable6 renders the normalized power table.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: Normalized average power consumption\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s\n", "App", "DDR3", "PCRAM", "STTRAM", "MRAM")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.App)
		for _, n := range r.Normalized {
			fmt.Fprintf(&b, " %8.3f", n)
		}
		fmt.Fprintln(&b)
	}
	// Bars make the >=27% saving visible at a glance.
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s PCRAM %s\n", r.App, stats.HBar(r.Normalized[1], 1, 30))
	}
	return b.String()
}

// FormatFigure12 renders the latency-sensitivity sweep.
func FormatFigure12(rows []Figure12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Time simulation results (one main-loop iteration)\n")
	fmt.Fprintf(&b, "%-10s %-8s %12s %14s %10s\n", "App", "Memory", "latency (ns)", "cycles", "normalized")
	for _, row := range rows {
		maxNorm := 0.0
		for _, r := range row.Results {
			if r.Normalized > maxNorm {
				maxNorm = r.Normalized
			}
		}
		for _, r := range row.Results {
			fmt.Fprintf(&b, "%-10s %-8s %12.0f %14.0f %10.3f %s\n",
				row.App, r.Device, r.MemLatencyNS, r.Cycles, r.Normalized,
				stats.HBar(r.Normalized, maxNorm, 30))
		}
	}
	return b.String()
}

// FormatPlacement renders the placement study.
func FormatPlacement(plans map[string]core.PlacementSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid DRAM/NVRAM placement (category-2 policy)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %12s\n", "App", "NVRAM", "migratable", "DRAM", "NVRAM share")
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		p := plans[name]
		mb := func(v uint64) string { return fmt.Sprintf("%.1f MB", float64(v)/(1<<20)) }
		fmt.Fprintf(&b, "%-10s %10s %12s %10s %11.1f%%\n",
			name, mb(p.NVRAMBytes), mb(p.MigratableBytes), mb(p.DRAMBytes), p.NVRAMShare*100)
	}
	return b.String()
}

// FormatSweepShape summarizes Figure 12 the way §VII-E words it.
func FormatSweepShape(res []cpusim.SweepResult) string {
	var m12, s20, p100 float64
	for _, r := range res {
		switch r.MemLatencyNS {
		case 12:
			m12 = r.Normalized
		case 20:
			s20 = r.Normalized
		case 100:
			p100 = r.Normalized
		}
	}
	return fmt.Sprintf("+20%% latency -> %+.1f%%; 2x latency -> %+.1f%%; 10x latency -> %+.1f%%",
		(m12-1)*100, (s20-1)*100, (p100-1)*100)
}
