// Package core implements the paper's primary contribution: identifying,
// from per-object memory access patterns, the opportunities for
// byte-addressable NVRAM in a hybrid DRAM-NVRAM memory system.
//
// It combines the three metrics of §II — read/write ratio, memory object
// size, and memory reference rate — with the NVRAM taxonomy of §II to
// classify every memory object observed by the instrumentation substrate,
// drive a placement policy for a horizontal (side-by-side) hybrid memory,
// estimate the NVRAM-suitable share of the working set, and model device
// endurance under the observed write traffic.
package core

import (
	"fmt"
	"sort"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

// Category is the NVRAM taxonomy of §II.
type Category int

const (
	// Category1 devices have long latencies for both reads and writes
	// (PCRAM, Flash).  Accesses — writes above all — must be rigorously
	// managed; only rarely-accessed or overwhelmingly-read data belongs on
	// them.
	Category1 Category = 1
	// Category2 devices have long write latencies but DRAM-class reads
	// (STTRAM).  Read-intensive pages belong on them; frequently-written
	// pages do not.
	Category2 Category = 2
	// Category3 devices perform close to DRAM (RRAM); the paper leaves
	// them out of scope as immature, and so does the placement policy.
	Category3 Category = 3
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Category1:
		return "category-1 (slow read/write: PCRAM, Flash)"
	case Category2:
		return "category-2 (slow write, fast read: STTRAM)"
	case Category3:
		return "category-3 (near-DRAM: RRAM)"
	}
	return fmt.Sprintf("category-%d", int(c))
}

// Metrics are the paper's three NVRAM-opportunity metrics for one memory
// object, measured over the main computation loop.
type Metrics struct {
	// ReadWriteRatio is main-loop reads over writes (§II metric 1): higher
	// means a less write-intensive object, favoured by NVRAM.
	ReadWriteRatio float64
	// SizeBytes is the object size (§II metric 2): static power savings
	// scale with the bytes moved to NVRAM.
	SizeBytes uint64
	// ReferenceRate is main-loop references per million instructions (§II
	// metric 3): it catches objects whose high ratio still hides a large
	// absolute write stream.
	ReferenceRate float64
	// WriteRate is main-loop writes per million instructions, the §II
	// corner-case guard made explicit.
	WriteRate float64
	// ReadOnly marks objects never written during the loop.
	ReadOnly bool
	// Untouched marks objects never referenced during the loop (used only
	// in pre-computing or post-processing phases, Figure 7's population).
	Untouched bool
}

// MetricsOf extracts the metrics from an observed object.
func MetricsOf(o *memtrace.Object) Metrics {
	s := o.LoopStats()
	m := Metrics{
		ReadWriteRatio: o.LoopReadWriteRatio(),
		SizeBytes:      o.Size,
		ReferenceRate:  o.LoopReferenceRate(),
		ReadOnly:       o.LoopReadOnly(),
		Untouched:      s.Refs() == 0,
	}
	if s.Instructions > 0 {
		m.WriteRate = float64(s.Writes) / float64(s.Instructions) * 1e6
	}
	return m
}

// Target is where the advisor places an object in the hybrid system.
type Target int

const (
	// TargetDRAM keeps the object in DRAM.
	TargetDRAM Target = iota
	// TargetNVRAM places the object in NVRAM.
	TargetNVRAM
	// TargetMigratable marks objects whose access pattern varies across
	// timesteps enough that a dynamic page-placement scheme (Ramos et al.,
	// §II/§VIII) could move them phase by phase.
	TargetMigratable
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetNVRAM:
		return "NVRAM"
	case TargetMigratable:
		return "migratable"
	}
	return "DRAM"
}

// Policy holds the placement thresholds.  The defaults implement §II's
// management rules: place as much data as possible in NVRAM while keeping
// performance-critical frequent accesses — writes above all — out of it.
type Policy struct {
	// Category selects which device class the policy provisions for.
	Category Category
	// MinReadWriteRatio admits an object into NVRAM when its main-loop
	// read/write ratio is at least this high (10 for category 2; 50 for
	// category 1, which also suffers on reads).
	MinReadWriteRatio float64
	// MaxWriteRate (writes per million instructions) rejects objects whose
	// high ratio still carries a heavy absolute write stream — the §II
	// corner case that the reference-rate metric exists to catch.
	MaxWriteRate float64
	// MaxReferenceRate additionally rejects performance-critical objects
	// for category-1 devices, whose reads are slow too.  Zero disables the
	// check.  Sequentially-accessed objects are exempt: their reads stream
	// through the row buffer, so the long array-access latency is paid
	// once per row rather than once per reference.
	MaxReferenceRate float64
	// VarianceThreshold controls the migratable classification: an object
	// whose per-iteration read/write ratio spans more than this factor
	// between its minimum and maximum nonzero values is flagged for
	// dynamic placement rather than static NVRAM residency.
	VarianceThreshold float64
}

// DefaultPolicy returns the calibrated policy for a device category.
func DefaultPolicy(cat Category) Policy {
	switch cat {
	case Category1:
		return Policy{
			Category:          Category1,
			MinReadWriteRatio: 50,
			MaxWriteRate:      50,
			MaxReferenceRate:  20000,
			VarianceThreshold: 4,
		}
	default:
		return Policy{
			Category:          Category2,
			MinReadWriteRatio: 10,
			MaxWriteRate:      200,
			VarianceThreshold: 4,
		}
	}
}

// Advice is the placement decision for one object.
type Advice struct {
	Object  *memtrace.Object
	Metrics Metrics
	Target  Target
	// Reason is a short human-readable justification.
	Reason string
}

// Classify places one object under the policy.
func (p Policy) Classify(o *memtrace.Object) Advice {
	m := MetricsOf(o)
	adv := Advice{Object: o, Metrics: m}
	switch {
	case m.Untouched:
		adv.Target = TargetNVRAM
		adv.Reason = "untouched during the main loop: pure standby data"
	case m.ReadOnly:
		adv.Target = TargetNVRAM
		adv.Reason = "read-only during the main loop"
	case p.varies(o):
		adv.Target = TargetMigratable
		adv.Reason = "read/write ratio varies across timesteps: candidate for dynamic placement"
	case m.ReadWriteRatio >= p.MinReadWriteRatio &&
		m.WriteRate <= p.MaxWriteRate &&
		(p.MaxReferenceRate == 0 ||
			m.ReferenceRate <= p.MaxReferenceRate ||
			o.AccessPattern() == memtrace.PatternSequential):
		adv.Target = TargetNVRAM
		adv.Reason = fmt.Sprintf("read/write ratio %.1f with write rate %.1f/Minstr within budget",
			m.ReadWriteRatio, m.WriteRate)
	default:
		adv.Target = TargetDRAM
		adv.Reason = "write-intensive or performance-critical: keep in DRAM"
	}
	return adv
}

// varies reports whether the object's per-iteration read/write ratio spans
// more than the variance threshold across the main loop.
func (p Policy) varies(o *memtrace.Object) bool {
	if p.VarianceThreshold <= 0 {
		return false
	}
	minR, maxR := 0.0, 0.0
	seen := false
	for i := 1; i < o.Iterations(); i++ {
		s := o.Iter(i)
		if s.Refs() == 0 {
			continue
		}
		r := o.IterReadWriteRatio(i)
		if !seen {
			minR, maxR = r, r
			seen = true
			continue
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if !seen {
		return false
	}
	if minR == 0 {
		// A pure-write iteration against any read-dominated iteration is
		// the extreme variance case (e.g. a checkpoint buffer rewritten in
		// some timesteps and only read in others).
		return maxR > p.VarianceThreshold
	}
	return maxR/minR > p.VarianceThreshold
}

// PlacementSummary aggregates the advisor's output over a whole run.
type PlacementSummary struct {
	Policy Policy
	// NVRAMBytes, MigratableBytes and DRAMBytes partition the observed
	// global+heap footprint.
	NVRAMBytes, MigratableBytes, DRAMBytes uint64
	TotalBytes                             uint64
	// NVRAMShare is the NVRAM-suitable fraction of the working set — the
	// abstract's "31% and 27% of the memory working sets are suitable for
	// NVRAM" headline.
	NVRAMShare float64
	Advices    []Advice
}

// Plan classifies every global and heap object a tracer observed (stack
// placement is a separate dimension: the paper treats stack data in §VII-A
// and Figure 2 but places whole objects only for heap/global data).
func Plan(tr *memtrace.Tracer, p Policy) PlacementSummary {
	sum := PlacementSummary{Policy: p}
	seen := map[memtrace.ObjectID]struct{}{}
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegGlobal && o.Segment != trace.SegHeap {
			continue
		}
		if _, dup := seen[o.ID]; dup {
			continue
		}
		seen[o.ID] = struct{}{}
		adv := p.Classify(o)
		sum.Advices = append(sum.Advices, adv)
		sum.TotalBytes += o.Size
		switch adv.Target {
		case TargetNVRAM:
			sum.NVRAMBytes += o.Size
		case TargetMigratable:
			sum.MigratableBytes += o.Size
		default:
			sum.DRAMBytes += o.Size
		}
	}
	if sum.TotalBytes > 0 {
		sum.NVRAMShare = float64(sum.NVRAMBytes) / float64(sum.TotalBytes)
	}
	sort.Slice(sum.Advices, func(i, j int) bool {
		return sum.Advices[i].Object.Size > sum.Advices[j].Object.Size
	})
	return sum
}

// SavingEstimate ties a placement plan to the §IV power model: moving the
// NVRAM-suitable share of the footprint onto NVRAM removes that share of
// the DRAM-only background power (cell standby + refresh), since the
// paper's static-power argument is that NVRAM cells neither leak nor
// refresh while the peripheral circuitry stays the same.
type SavingEstimate struct {
	// NVRAMShare is the working-set share placed in NVRAM.
	NVRAMShare float64
	// BackgroundSavingMW is the standing power removed, assuming background
	// power scales with the capacity moved.
	BackgroundSavingMW float64
	// TotalSavingFraction is the saving relative to the all-DRAM background
	// power.
	TotalSavingFraction float64
}

// EstimateSaving computes the static-power consequence of a placement plan
// under the given device profiles.
func EstimateSaving(plan PlacementSummary, dram, nvram dramsim.DeviceProfile) SavingEstimate {
	est := SavingEstimate{NVRAMShare: plan.NVRAMShare}
	dramOnly := dram.CellStandbyMW + dram.RefreshMW
	nvramExtra := nvram.CellStandbyMW + nvram.RefreshMW // zero for real NVRAM
	est.BackgroundSavingMW = plan.NVRAMShare * (dramOnly - nvramExtra)
	if total := dram.BackgroundMW(); total > 0 {
		est.TotalSavingFraction = est.BackgroundSavingMW / total
	}
	return est
}

// EnduranceEstimate models device wear for one object placed in NVRAM.
type EnduranceEstimate struct {
	ObjectName string
	// WritesPerBytePerStep is the observed mean write density per timestep.
	WritesPerBytePerStep float64
	// LifetimeSteps is how many timesteps the device survives at that
	// density given its per-cell endurance (with ideal wear-levelling
	// across the object).
	LifetimeSteps float64
}

// Endurance estimates object lifetime on a device with the given per-cell
// write endurance over the observed main loop.
func Endurance(o *memtrace.Object, prof dramsim.DeviceProfile, iterations int) EnduranceEstimate {
	est := EnduranceEstimate{ObjectName: o.Name}
	if iterations <= 0 || o.Size == 0 {
		return est
	}
	s := o.LoopStats()
	// One recorded write touches 8 bytes on average (float64 elements).
	bytesWritten := float64(s.Writes) * 8
	est.WritesPerBytePerStep = bytesWritten / float64(o.Size) / float64(iterations)
	if est.WritesPerBytePerStep > 0 {
		est.LifetimeSteps = prof.WriteEndurance / est.WritesPerBytePerStep
	} else {
		est.LifetimeSteps = prof.WriteEndurance // never written: bounded by endurance itself
	}
	return est
}
