package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("app", "cam"), L("mode", "fast"))
	// Label order must not matter: same identity, same series.
	b := r.Counter("hits", L("mode", "fast"), L("app", "cam"))
	if a != b {
		t.Fatal("same name+labels returned distinct series")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Different labels are a different series.
	if r.Counter("hits", L("app", "gtc")) == a {
		t.Fatal("different labels must be a distinct series")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("ratio")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
	g.Set(2) // Set is idempotent re-export semantics: overwrites
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wall", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hv := snap.Histograms[0]
	// Cumulative buckets: <=1: 2 (0.5, 1), <=10: 3, <=100: 4, +Inf: 5.
	want := []uint64{2, 3, 4, 5}
	if len(hv.Buckets) != len(want) {
		t.Fatalf("bucket count = %d", len(hv.Buckets))
	}
	for i, w := range want {
		if hv.Buckets[i].Count != w {
			t.Fatalf("bucket %d = %d, want %d", i, hv.Buckets[i].Count, w)
		}
	}
	if !math.IsInf(hv.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bound = %v, want +Inf", hv.Buckets[3].UpperBound)
	}
	if hv.Mean() != 556.5/5 {
		t.Fatalf("mean = %g", hv.Mean())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total", L("k", "v")).Inc()
	r.Gauge("m").Set(1)
	ids := r.Snapshot().SeriesIDs()
	want := []string{"a_total{k=v}", "z_total", "m"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSnapshotLookupHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", L("app", "cam")).Add(7)
	r.Gauge("ratio", L("app", "cam")).Set(0.9)
	s := r.Snapshot()
	if v, ok := s.Counter("hits", L("app", "cam")); !ok || v != 7 {
		t.Fatalf("counter lookup = %d, %v", v, ok)
	}
	if _, ok := s.Counter("hits", L("app", "gtc")); ok {
		t.Fatal("absent series must not be found")
	}
	if v, ok := s.Gauge("ratio", L("app", "cam")); !ok || v != 0.9 {
		t.Fatalf("gauge lookup = %g, %v", v, ok)
	}
}

func TestWriteTextAndJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner_hits_total", L("key", "cam/fast")).Add(3)
	r.Gauge("cachesim_hit_ratio", L("level", "L1")).Set(0.97)
	r.Histogram("wall_seconds", []float64{1}).Observe(0.5)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"counter runner_hits_total{key=cam/fast} 3",
		"gauge   cachesim_hit_ratio{level=L1} 0.97",
		"hist    wall_seconds count=1 sum=0.5 mean=0.5",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Errorf("JSON must render the overflow bound as \"+Inf\":\n%s", buf.String())
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 3 {
		t.Fatalf("counters after round trip = %+v", back.Counters)
	}
	hb := back.Histograms[0].Buckets
	if !math.IsInf(hb[len(hb)-1].UpperBound, 1) {
		t.Fatalf("+Inf bound lost in round trip: %+v", hb)
	}
}

// TestConcurrentIncrementsLinearizable runs parallel increments against
// concurrent Snapshot calls; under -race this doubles as the data-race
// check for the runner workers sharing one registry.  Every intermediate
// snapshot must see a value consistent with a linearization (monotonically
// growing, never above the final total), and the final snapshot must see
// every increment.
func TestConcurrentIncrementsLinearizable(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000
	c := r.Counter("parallel_total")
	h := r.Histogram("parallel_wall", []float64{0.5})
	g := r.Gauge("parallel_gauge")

	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			v, ok := s.Counter("parallel_total")
			if !ok {
				snapErr = errMissing
				return
			}
			if v < last || v > workers*perWorker {
				snapErr = errNonMonotonic
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 0.7)
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	s := r.Snapshot()
	if v, _ := s.Counter("parallel_total"); v != workers*perWorker {
		t.Fatalf("final counter = %d, want %d", v, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %g", g.Value())
	}
	// Histogram buckets must account for every observation.
	hv := s.Histograms[0]
	if hv.Buckets[len(hv.Buckets)-1].Count != workers*perWorker {
		t.Fatalf("cumulative +Inf bucket = %d", hv.Buckets[len(hv.Buckets)-1].Count)
	}
}

var (
	errMissing      = errString("snapshot lost a registered series")
	errNonMonotonic = errString("snapshot counter not monotonic or overshot total")
)

type errString string

func (e errString) Error() string { return string(e) }
