package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

func mustOpen(t *testing.T, path string, opts Options) (*Journal, Replay) {
	t.Helper()
	j, rep, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, rep
}

func specRecord(job string) Record {
	spec := experiments.JobSpec{Exhibits: []string{"table1"}, Scale: 0.05, Iterations: 2}
	norm := spec.Normalized()
	return Record{Kind: KindSubmitted, Job: job, Spec: &norm}
}

func doneRecord(job string) Record {
	res := experiments.NewJobResult(experiments.JobSpec{}, experiments.StateDone)
	res.ID = job
	return Record{Kind: experiments.StateDone, Job: job, Result: &res}
}

func TestRoundTrip(t *testing.T) {
	path := testPath(t)
	j, rep := mustOpen(t, path, Options{})
	if len(rep.Records) != 0 || rep.Truncated != 0 || rep.CleanShutdown {
		t.Fatalf("fresh log replay = %+v, want empty", rep)
	}
	recs := []Record{specRecord("job-1"), {Kind: KindStarted, Job: "job-1"}, doneRecord("job-1")}
	if err := j.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rep2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(rep2.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(rep2.Records))
	}
	for i, rec := range rep2.Records {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
	got := rep2.Records[0]
	if got.Kind != KindSubmitted || got.Job != "job-1" || got.Spec == nil {
		t.Fatalf("submitted record = %+v, want kind/job/spec intact", got)
	}
	if got.Spec.Scale != 0.05 || got.Spec.SchemaVersion != experiments.SchemaVersion {
		t.Errorf("spec round-trip = %+v", got.Spec)
	}
	if rep2.Records[2].Result == nil || rep2.Records[2].Result.State != experiments.StateDone {
		t.Errorf("terminal record lost its result: %+v", rep2.Records[2])
	}
	if rep2.Truncated != 0 {
		t.Errorf("Truncated = %d, want 0", rep2.Truncated)
	}
	if rep2.CleanShutdown {
		t.Error("CleanShutdown = true without a drained marker")
	}
}

func TestCleanShutdownMarker(t *testing.T) {
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{})
	if err := j.Append(specRecord("job-1"), Record{Kind: KindDrained}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rep := mustOpen(t, path, Options{})
	if !rep.CleanShutdown {
		t.Fatal("CleanShutdown = false with drained as the last record")
	}
	// Any record after the marker means the next open sees a crash.
	if err := j2.Append(specRecord("job-2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3, rep3 := mustOpen(t, path, Options{})
	defer j3.Close()
	if rep3.CleanShutdown {
		t.Fatal("CleanShutdown = true after appending past the drained marker")
	}
}

func TestBatchCommitsOnce(t *testing.T) {
	reg := obs.NewRegistry()
	j, _ := mustOpen(t, testPath(t), Options{Metrics: reg})
	defer j.Close()
	if err := j.Append(specRecord("job-1"), Record{Kind: KindStarted, Job: "job-1"}, doneRecord("job-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	snap := reg.Snapshot()
	if got, _ := snap.Counter("served_journal_commits_total"); got != 1 {
		t.Errorf("commits = %d, want 1 (batched fsync)", got)
	}
	if got, _ := snap.Counter("served_journal_appends_total"); got != 3 {
		t.Errorf("appends = %d, want 3", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{})
	if err := j.Append(specRecord("job-1"), specRecord("job-2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_, size := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cases := []struct {
		name   string
		mangle func(t *testing.T)
	}{
		{"garbage tail", func(t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}},
		{"half a frame header", func(t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x20, 0x00, 0x00}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.mangle(t)
			j2, rep := mustOpen(t, path, Options{})
			if len(rep.Records) != 2 {
				t.Fatalf("replayed %d records, want both committed ones", len(rep.Records))
			}
			if rep.Truncated == 0 {
				t.Fatal("Truncated = 0, want the mangled tail dropped")
			}
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != size {
				t.Fatalf("file is %d bytes after repair, want %d", info.Size(), size)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestMidFrameTruncationDropsOnlyTail(t *testing.T) {
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{})
	if err := j.Append(specRecord("job-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_, oneRecord := j.Stats()
	if err := j.Append(specRecord("job-2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_, full := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Chop the second record mid-payload: a crash between write and fsync.
	if err := os.Truncate(path, oneRecord+(full-oneRecord)/2); err != nil {
		t.Fatal(err)
	}
	j2, rep := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(rep.Records) != 1 || rep.Records[0].Job != "job-1" {
		t.Fatalf("replay = %+v, want exactly the first committed record", rep.Records)
	}
	if rep.Truncated == 0 {
		t.Fatal("Truncated = 0, want torn second record dropped")
	}
}

func TestCorruptedPayloadTruncatesFromThere(t *testing.T) {
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{})
	if err := j.Append(specRecord("job-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_, oneRecord := j.Stats()
	if err := j.Append(specRecord("job-2"), specRecord("job-3")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one payload byte in the second record: CRC must reject it and
	// everything after it, leaving the committed prefix.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, oneRecord+headerSize+4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rep := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(rep.Records) != 1 || rep.Records[0].Job != "job-1" {
		t.Fatalf("replay = %+v, want just the intact prefix", rep.Records)
	}
	if rep.Truncated == 0 {
		t.Fatal("Truncated = 0, want corrupt frame and successors dropped")
	}
}

func TestShortWriteRepairedByRetry(t *testing.T) {
	reg := obs.NewRegistry()
	spec := faults.MustParse("writer:every=3,mode=short,seed=7")
	wrap := func(w io.Writer) io.Writer { return faults.Writer(spec, w) }
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{Metrics: reg, Wrap: wrap, Retry: resilience.RetryPolicy{Attempts: 3}})
	for i := 0; i < 9; i++ {
		if err := j.Append(specRecord("job-1")); err != nil {
			t.Fatalf("Append %d: %v (short writes must be repaired)", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, _ := reg.Snapshot().Counter("served_journal_commit_retries_total"); got == 0 {
		t.Fatal("retries = 0: the every=3 short-write fault never tripped")
	}
	_, rep := mustOpen(t, path, Options{})
	if len(rep.Records) != 9 {
		t.Fatalf("replayed %d records, want all 9 despite short writes", len(rep.Records))
	}
	if rep.Truncated != 0 {
		t.Fatalf("Truncated = %d, want 0: failed attempts must rewind before retrying", rep.Truncated)
	}
}

func TestTornWriteDetectedBySizeCheck(t *testing.T) {
	reg := obs.NewRegistry()
	spec := faults.MustParse("writer:every=2,mode=torn,seed=7")
	wrap := func(w io.Writer) io.Writer { return faults.Writer(spec, w) }
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{Metrics: reg, Wrap: wrap, Retry: resilience.RetryPolicy{Attempts: 3}})
	for i := 0; i < 6; i++ {
		if err := j.Append(specRecord("job-1")); err != nil {
			t.Fatalf("Append %d: %v (torn writes must be caught and repaired)", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, _ := reg.Snapshot().Counter("served_journal_commit_retries_total"); got == 0 {
		t.Fatal("retries = 0: the size check never caught the torn write")
	}
	_, rep := mustOpen(t, path, Options{})
	if len(rep.Records) != 6 || rep.Truncated != 0 {
		t.Fatalf("replay = %d records, %d truncated; want 6 and 0", len(rep.Records), rep.Truncated)
	}
}

func TestRetryExhaustionSurfacesError(t *testing.T) {
	spec := faults.MustParse("writer:every=1,mode=short") // every write fails
	wrap := func(w io.Writer) io.Writer { return faults.Writer(spec, w) }
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{Wrap: wrap, Retry: resilience.RetryPolicy{Attempts: 2}})
	err := j.Append(specRecord("job-1"))
	if err == nil {
		t.Fatal("Append succeeded with every write failing")
	}
	if !errors.Is(err, faults.ErrNoSpace) {
		t.Fatalf("error = %v, want the injected ErrNoSpace surfaced", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Nothing durable: the rewinds must have left an empty, valid log.
	_, rep := mustOpen(t, path, Options{})
	if len(rep.Records) != 0 || rep.Truncated != 0 {
		t.Fatalf("replay = %d records, %d truncated; want a clean empty log", len(rep.Records), rep.Truncated)
	}
}

func TestCrashPointKillsJournal(t *testing.T) {
	plan := faults.NewCrashPlan(2)
	j, _ := mustOpen(t, testPath(t), Options{Crash: plan.Crashed})
	defer j.Close()
	if err := j.Append(specRecord("job-1")); err != nil {
		t.Fatalf("Append before crash point: %v", err)
	}
	if err := j.Append(specRecord("job-2")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append at crash point = %v, want ErrCrashed", err)
	}
	// Sticky: the dead journal never writes again.
	if err := j.Append(specRecord("job-3")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append after crash = %v, want sticky ErrCrashed", err)
	}
	if err := j.Compact(nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Compact after crash = %v, want sticky ErrCrashed", err)
	}
	if err := j.Err(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Err() = %v, want ErrCrashed", err)
	}
}

func TestCompactRewritesLiveSet(t *testing.T) {
	reg := obs.NewRegistry()
	path := testPath(t)
	j, _ := mustOpen(t, path, Options{Metrics: reg})
	for i := 0; i < 30; i++ {
		if err := j.Append(specRecord("job-1"), doneRecord("job-1")); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	_, before := j.Stats()
	live := []Record{specRecord("job-9"), doneRecord("job-9")}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	records, after := j.Stats()
	if records != 2 {
		t.Fatalf("records after compact = %d, want 2", records)
	}
	if after >= before {
		t.Fatalf("size after compact = %d, want < %d", after, before)
	}
	// The journal keeps working post-rotation on the new file handle.
	if err := j.Append(specRecord("job-10")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rep := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(rep.Records) != 3 {
		t.Fatalf("replayed %d records, want 3 (2 live + 1 appended)", len(rep.Records))
	}
	wantSeq := []uint64{1, 2, 3}
	for i, rec := range rep.Records {
		if rec.Seq != wantSeq[i] {
			t.Errorf("record %d seq = %d, want %d (compaction restamps from 1)", i, rec.Seq, wantSeq[i])
		}
	}
	if rep.Records[2].Job != "job-10" {
		t.Errorf("post-compaction append lost: %+v", rep.Records[2])
	}
	if got, _ := reg.Snapshot().Counter("served_journal_compactions_total"); got != 1 {
		t.Errorf("compactions = %d, want 1", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("compaction temp file left behind: stat err = %v", err)
	}
}

func TestWrapSurvivesCompaction(t *testing.T) {
	// The injector's decision stream must keep counting across the
	// rotation, proving Wrap decorates an indirection, not the raw file.
	var calls int
	wrap := func(w io.Writer) io.Writer {
		return writerFunc(func(p []byte) (int, error) {
			calls++
			return w.Write(p)
		})
	}
	j, _ := mustOpen(t, testPath(t), Options{Wrap: wrap})
	defer j.Close()
	if err := j.Append(specRecord("job-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Compact([]Record{specRecord("job-1")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append(specRecord("job-2")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if calls != 2 {
		t.Fatalf("wrapped writer saw %d calls, want 2 (both appends, same decorator)", calls)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, _ := mustOpen(t, testPath(t), Options{})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append(specRecord("job-1")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err() after deliberate Close = %v, want nil", err)
	}
}
