package core

import (
	"encoding/json"
	"fmt"
	"io"

	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

// SnapshotSchemaVersion is the version of the snapshot JSON shape below.
// BuildSnapshot stamps it; ReadSnapshot rejects newer versions.  Bump on
// incompatible change; adding optional fields does not bump.
const SnapshotSchemaVersion = 1

// Snapshot is a serializable export of one instrumented run's analysis:
// the per-object records, segment totals and placement plan, in a stable
// JSON shape for downstream tooling (plotting, regression tracking,
// co-design loops).
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`
	// App and Iterations identify the run.
	App        string `json:"app"`
	Iterations int    `json:"iterations"`

	FootprintBytes uint64 `json:"footprint_bytes"`
	Instructions   uint64 `json:"instructions"`

	Stack    StackRow       `json:"stack"`
	Segments []SegmentTotal `json:"segments"`
	Objects  []ObjectJSON   `json:"objects"`

	Placement *PlacementJSON `json:"placement,omitempty"`

	// Metrics optionally embeds the run's observability snapshot (runner
	// counters, cache hit rates, attribution-path statistics), so the
	// instrumentation health travels with the exhibit it produced.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// SegmentTotal is one segment's main-loop totals.
type SegmentTotal struct {
	Segment string `json:"segment"`
	Reads   uint64 `json:"reads"`
	Writes  uint64 `json:"writes"`
}

// ObjectJSON is the serializable form of an ObjectRecord.
type ObjectJSON struct {
	Name         string  `json:"name"`
	Segment      string  `json:"segment"`
	SizeBytes    uint64  `json:"size_bytes"`
	RWRatio      float64 `json:"rw_ratio"`
	RefRate      float64 `json:"ref_rate_per_minstr"`
	Refs         uint64  `json:"refs"`
	ReadOnly     bool    `json:"read_only"`
	Untouched    bool    `json:"untouched"`
	TouchedIters int     `json:"touched_iterations"`
	Pattern      string  `json:"pattern"`
	// Target is filled when a placement plan was requested.
	Target string `json:"target,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// PlacementJSON summarizes the plan.
type PlacementJSON struct {
	Category        int     `json:"category"`
	NVRAMBytes      uint64  `json:"nvram_bytes"`
	MigratableBytes uint64  `json:"migratable_bytes"`
	DRAMBytes       uint64  `json:"dram_bytes"`
	NVRAMShare      float64 `json:"nvram_share"`
}

// BuildSnapshot collects the analysis of a finished run.  A nil policy
// omits placement.
func BuildSnapshot(appName string, tr *memtrace.Tracer, policy *Policy) Snapshot {
	snap := Snapshot{
		SchemaVersion:  SnapshotSchemaVersion,
		App:            appName,
		Iterations:     tr.MainLoopIterations(),
		FootprintBytes: tr.Footprint(),
		Instructions:   tr.Instructions(),
		Stack:          StackAnalysis(tr),
	}
	for _, seg := range []trace.Segment{trace.SegStack, trace.SegGlobal, trace.SegHeap} {
		tot := tr.SegmentTotals(seg, 1, tr.MainLoopIterations())
		snap.Segments = append(snap.Segments, SegmentTotal{
			Segment: seg.String(), Reads: tot.Reads, Writes: tot.Writes,
		})
	}

	var advice map[string]Advice
	if policy != nil {
		plan := Plan(tr, *policy)
		snap.Placement = &PlacementJSON{
			Category:        int(policy.Category),
			NVRAMBytes:      plan.NVRAMBytes,
			MigratableBytes: plan.MigratableBytes,
			DRAMBytes:       plan.DRAMBytes,
			NVRAMShare:      plan.NVRAMShare,
		}
		advice = make(map[string]Advice, len(plan.Advices))
		for _, adv := range plan.Advices {
			advice[fmt.Sprintf("%d", adv.Object.ID)] = adv
		}
	}

	for _, rec := range ObjectRecords(tr) {
		oj := ObjectJSON{
			Name:         rec.Name,
			Segment:      rec.Segment.String(),
			SizeBytes:    rec.SizeBytes,
			RWRatio:      rec.RWRatio,
			RefRate:      rec.RefRate,
			Refs:         rec.Refs,
			ReadOnly:     rec.ReadOnly,
			Untouched:    rec.Untouched,
			TouchedIters: rec.TouchedIters,
			Pattern:      rec.Pattern.String(),
		}
		snap.Objects = append(snap.Objects, oj)
	}
	// Join placement decisions by name (names are unique per run for
	// globals; heap signatures may repeat a name, in which case the first
	// decision stands).
	if advice != nil {
		byName := map[string]Advice{}
		for _, adv := range advice {
			if _, dup := byName[adv.Object.Name]; !dup {
				byName[adv.Object.Name] = adv
			}
		}
		for i := range snap.Objects {
			if adv, ok := byName[snap.Objects[i].Name]; ok {
				snap.Objects[i].Target = adv.Target.String()
				snap.Objects[i].Reason = adv.Reason
			}
		}
	}
	return snap
}

// WriteJSON encodes the snapshot with stable indentation.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.SchemaVersion > SnapshotSchemaVersion {
		return Snapshot{}, fmt.Errorf("core: unsupported snapshot schema_version %d (this build speaks %d)",
			s.SchemaVersion, SnapshotSchemaVersion)
	}
	return s, nil
}
