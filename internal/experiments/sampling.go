package experiments

import (
	"fmt"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
)

// SamplingRow measures what instruction sampling costs the analysis at one
// sampling period — the study behind §III-D's rejection of sampling:
// "sampling can lead to the loss of access information for many memory
// objects, which in turn causes improper data placement."
type SamplingRow struct {
	Period int
	// ObservedRefs is the number of references the sampled tool saw.
	ObservedRefs uint64
	// LostObjects counts global+heap objects that the full run observed in
	// the main loop but the sampled run missed entirely.
	LostObjects  int
	TotalObjects int
	// StackRatioError is the relative error of the sampled Table V stack
	// ratio against the full run's.
	StackRatioError float64
	// PlacementDiffs counts objects whose placement decision changed
	// versus the full run under the category-2 policy.
	PlacementDiffs int
}

// SamplingStudy runs one app at several sampling periods and quantifies the
// information loss against the full (period 1) instrumentation.
func (s *Session) SamplingStudy(app string, periods []int) ([]SamplingRow, error) {
	type runResult struct {
		tr      *memtrace.Tracer
		refs    uint64
		active  map[string]bool
		targets map[string]core.Target
		ratio   float64
	}

	runAt := func(period int) (runResult, error) {
		a, err := apps.New(app, s.opts.Scale)
		if err != nil {
			return runResult{}, err
		}
		tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack, SamplePeriod: period})
		if err := apps.Run(a, tr, s.opts.Iterations); err != nil {
			return runResult{}, err
		}
		res := runResult{
			tr:      tr,
			refs:    tr.Sampled,
			active:  map[string]bool{},
			targets: map[string]core.Target{},
			ratio:   core.StackAnalysis(tr).OverallRatio,
		}
		plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
		for _, adv := range plan.Advices {
			if adv.Object.LoopStats().Refs() > 0 {
				res.active[adv.Object.Name] = true
			}
			res.targets[adv.Object.Name] = adv.Target
		}
		return res, nil
	}

	full, err := runAt(1)
	if err != nil {
		return nil, err
	}

	out := make([]SamplingRow, 0, len(periods))
	for _, period := range periods {
		var res runResult
		if period <= 1 {
			res = full
		} else {
			res, err = runAt(period)
			if err != nil {
				return nil, err
			}
		}
		row := SamplingRow{Period: period, ObservedRefs: res.refs, TotalObjects: len(full.active)}
		for name := range full.active {
			if !res.active[name] {
				row.LostObjects++
			}
		}
		for name, target := range full.targets {
			if res.targets[name] != target {
				row.PlacementDiffs++
			}
		}
		if full.ratio > 0 {
			rel := (res.ratio - full.ratio) / full.ratio
			if rel < 0 {
				rel = -rel
			}
			row.StackRatioError = rel
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatSamplingStudy renders the study.
func FormatSamplingStudy(app string, rows []SamplingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampling study on %s (§III-D: why the tool observes every reference)\n", app)
	fmt.Fprintf(&b, "%8s %14s %18s %18s %16s\n",
		"period", "observed refs", "objects lost", "stack-ratio err", "placement diffs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14d %11d of %-4d %17.1f%% %16d\n",
			r.Period, r.ObservedRefs, r.LostObjects, r.TotalObjects,
			r.StackRatioError*100, r.PlacementDiffs)
	}
	fmt.Fprintf(&b, "aggregate ratios survive sampling, but object coverage does not: the lost\n")
	fmt.Fprintf(&b, "objects get no placement decision at all — the improper-placement risk §III-D names.\n")
	return b.String()
}
