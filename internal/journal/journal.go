// Package journal is the crash-safe write-ahead log behind the nvserved
// job manager: an append-only file of job lifecycle records (submitted,
// started, done/failed/cancelled, drained) carrying the versioned
// experiments.JobSpec/JobResult wire forms, so a restarted daemon can
// replay exactly what it had acknowledged before it died.
//
// The paper's §I resiliency argument is that exascale machines need
// cheap durable checkpoint/restart; this package applies the same
// discipline to the experiments service itself.  The design follows the
// classic WAL recipe:
//
//   - Framing: each record is length-prefixed and CRC-checksummed
//     ([4-byte LE payload length][4-byte LE CRC32-C][JSON payload]), so
//     recovery can tell a committed record from the debris of a crash.
//   - Commit: Append frames a whole batch, writes it with one write and
//     one fsync (fsync-on-commit batching), then verifies the on-disk
//     size — a torn write that lied about its length is caught at the
//     next commit, not at the next crash.
//   - Recovery: Open scans the file from the start and truncates the
//     tail at the first bad frame (short header, short payload, CRC
//     mismatch, undecodable JSON).  Committed records are never lost;
//     an uncommitted tail is dropped, which is exactly the contract the
//     manager's idempotent re-execution expects.
//   - Repair: a failed commit (short write, ErrNoSpace, torn write)
//     truncates back to the last durable offset and rewrites, under a
//     bounded resilience.RetryPolicy — transient disk faults never
//     corrupt the log, persistent ones surface as errors.
//   - Compaction: once the live set is a small fraction of the file,
//     Compact rewrites it as a snapshot into a temp file and rotates it
//     over the log with an atomic rename plus directory fsync.
//
// Nothing here reads a wall clock or random state: record sequence
// numbers are assigned by append order, so the log is a pure function
// of the manager's transition sequence.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
)

// Record kinds beyond the terminal experiments.State* values (which are
// used verbatim as kinds for terminal records).
const (
	// KindSubmitted records an accepted job and carries its spec.  A
	// submission is acknowledged to the client only after this record is
	// durable.
	KindSubmitted = "submitted"
	// KindStarted records a job moving to the running state.
	KindStarted = "started"
	// KindDrained is the clean-shutdown marker Drain appends last; its
	// absence at the log tail tells recovery a crash happened.
	KindDrained = "drained"
)

// Record is one journaled lifecycle transition.  Spec rides on
// submitted records, Result on terminal ones; both are the versioned
// wire forms of internal/experiments, so old logs replay under the same
// cross-version decoding contract as the HTTP API.
type Record struct {
	Seq    uint64                 `json:"seq"`
	Kind   string                 `json:"kind"`
	Job    string                 `json:"job,omitempty"`
	Spec   *experiments.JobSpec   `json:"spec,omitempty"`
	Result *experiments.JobResult `json:"result,omitempty"`
}

// Frame layout and bounds.
const (
	headerSize = 8
	// maxRecord bounds a frame's claimed payload length; a header
	// claiming more is corruption, not a record.
	maxRecord = 64 << 20
	// defaultAttempts is the commit retry bound when Options.Retry is
	// unset: the first try plus two repairs.
	defaultAttempts = 3
)

// crcTable is the Castagnoli polynomial, the standard choice for
// storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal errors.
var (
	// ErrClosed reports an append or compaction after Close.
	ErrClosed = errors.New("journal: closed")
	// ErrCrashed reports that the crash-point injector fired: the
	// journal is dead and nothing more reaches the disk (tests).
	ErrCrashed = errors.New("journal: crashed (crash-point injection)")
)

// Options configures Open.
type Options struct {
	// Retry bounds commit re-attempts after a transient append failure
	// (short write, disk full, torn write): the journal truncates back
	// to the last durable offset and rewrites the batch.  The zero value
	// selects 3 attempts with no backoff.
	Retry resilience.RetryPolicy
	// Metrics is the registry the served_journal_* series publish into;
	// nil gets a private registry.
	Metrics *obs.Registry
	// Wrap decorates the writer in front of the log file — the
	// disk-fault injection hook (faults.Writer with mode=short/torn).
	// Nil writes straight through.  The decorator survives compaction:
	// it wraps an indirection over the current file, not the file
	// itself, so a seeded injector's decision stream keeps counting.
	Wrap func(io.Writer) io.Writer
	// Crash, when non-nil, is consulted once per commit and once per
	// compaction: the first true kills the journal — that operation and
	// every later one fail with ErrCrashed and nothing more reaches the
	// disk, modelling a process kill at that journaled transition.
	Crash func() bool
}

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Records are the committed records in append order.
	Records []Record
	// Truncated is how many torn-tail bytes were dropped on open.
	Truncated int64
	// CleanShutdown reports whether the log ends with the drained
	// marker — the previous process stopped gracefully.
	CleanShutdown bool
}

// Journal is an open write-ahead log.  All methods are safe for
// concurrent use; each commit holds the journal for its write+fsync.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    io.Writer // opts.Wrap over the current file
	opts Options

	good    int64 // durable byte offset: everything below survived an fsync
	seq     uint64
	records int   // committed records in the file (live and superseded)
	err     error // sticky: a dead journal never writes again

	appends     *obs.Counter
	commits     *obs.Counter
	retries     *obs.Counter
	compactions *obs.Counter
	bytes       *obs.Gauge
}

// fileWriter indirects writes through the journal's current file so
// Options.Wrap decorators keep their state across compaction rotations.
type fileWriter struct{ j *Journal }

func (fw fileWriter) Write(p []byte) (int, error) { return fw.j.f.Write(p) }

// Open opens (creating if absent) the log at path, replays its
// committed records and truncates any torn tail.  The returned Replay
// is the recovery input for the caller's state machine.
func Open(path string, opts Options) (*Journal, Replay, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, Replay{}, closeOnErr(f, fmt.Errorf("journal: reading %s: %w", path, err))
	}
	recs, good := scan(data)
	truncated := int64(len(data)) - good
	if truncated > 0 {
		// Torn tail: drop the uncommitted debris so the next append
		// starts on a frame boundary.
		if err := f.Truncate(good); err != nil {
			return nil, Replay{}, closeOnErr(f, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err))
		}
		if err := f.Sync(); err != nil {
			return nil, Replay{}, closeOnErr(f, fmt.Errorf("journal: syncing truncated %s: %w", path, err))
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, Replay{}, closeOnErr(f, fmt.Errorf("journal: seeking to log end: %w", err))
	}

	j := &Journal{
		path:        path,
		f:           f,
		opts:        opts,
		good:        good,
		records:     len(recs),
		appends:     reg.Counter("served_journal_appends_total"),
		commits:     reg.Counter("served_journal_commits_total"),
		retries:     reg.Counter("served_journal_commit_retries_total"),
		compactions: reg.Counter("served_journal_compactions_total"),
		bytes:       reg.Gauge("served_journal_bytes"),
	}
	j.w = fileWriter{j}
	if opts.Wrap != nil {
		j.w = opts.Wrap(fileWriter{j})
	}
	for _, rec := range recs {
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
	}
	j.bytes.Set(float64(good))
	reg.Counter("served_journal_replayed_total").Add(uint64(len(recs)))
	reg.Counter("served_journal_truncated_bytes_total").Add(uint64(truncated))
	replay := Replay{
		Records:       recs,
		Truncated:     truncated,
		CleanShutdown: len(recs) > 0 && recs[len(recs)-1].Kind == KindDrained,
	}
	return j, replay, nil
}

// closeOnErr closes f on an Open failure path, joining a close error
// onto the primary one.
func closeOnErr(f *os.File, err error) error {
	if cerr := f.Close(); cerr != nil {
		return errors.Join(err, cerr)
	}
	return err
}

// scan walks the frames in data and returns the decoded records plus
// the offset of the first bad frame — the durable prefix boundary.
func scan(data []byte) (recs []Record, good int64) {
	off := 0
	for off+headerSize <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if length == 0 || length > maxRecord {
			break
		}
		if off+headerSize+length > len(data) {
			break // torn payload
		}
		payload := data[off+headerSize : off+headerSize+length]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += headerSize + length
	}
	return recs, int64(off)
}

// appendFrame encodes one record into buf in the on-disk framing.
func appendFrame(buf *bytes.Buffer, rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record seq %d: %w", rec.Seq, err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record seq %d is %d bytes, over the %d-byte frame bound", rec.Seq, len(payload), maxRecord)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf.Write(hdr[:])
	buf.Write(payload)
	return nil
}

// Append assigns sequence numbers to recs, frames them and commits the
// whole batch with one write and one fsync.  It returns only once the
// batch is durable (the WAL ack discipline) or the bounded retry is
// exhausted.  A batch that fails leaves the log exactly as it was:
// every attempt first truncates back to the last durable offset.
func (j *Journal) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.opts.Crash != nil && j.opts.Crash() {
		j.err = ErrCrashed
		return j.err
	}
	var buf bytes.Buffer
	for i := range recs {
		j.seq++
		recs[i].Seq = j.seq
		if err := appendFrame(&buf, recs[i]); err != nil {
			return err
		}
	}
	if err := j.commit(buf.Bytes()); err != nil {
		return err
	}
	j.records += len(recs)
	j.appends.Add(uint64(len(recs)))
	return nil
}

// commit makes the framed batch durable, repairing and retrying
// transient failures under the bounded policy.  Callers hold j.mu.
func (j *Journal) commit(p []byte) error {
	policy := j.opts.Retry
	if policy.Attempts < 1 {
		policy.Attempts = defaultAttempts
	}
	n := policy.MaxAttempts()
	var err error
	for i := 0; ; i++ {
		err = j.tryCommit(p)
		if err == nil {
			j.commits.Inc()
			j.bytes.Set(float64(j.good))
			return nil
		}
		if j.err != nil || i+1 >= n {
			// Sticky failures (a rewind that itself failed) are not
			// transient; don't burn attempts on them.
			break
		}
		j.retries.Inc()
		policy.Wait(i)
	}
	// Leave the file ending at the durable offset: the failed batch's
	// partial frame must not survive as a torn tail.
	if j.err == nil {
		if rerr := j.rewind(); rerr != nil {
			j.err = fmt.Errorf("journal: rewinding after failed append: %w", rerr)
			err = errors.Join(err, rerr)
		}
	}
	return fmt.Errorf("journal: append not durable after %d attempts: %w", n, err)
}

// tryCommit is one durable-append attempt: rewind to the last durable
// offset (a previous attempt may have left a partial frame), write the
// batch, fsync, then verify the on-disk size — a writer that silently
// dropped bytes (torn write) leaves the file short and the attempt
// counts as failed.
func (j *Journal) tryCommit(p []byte) error {
	if err := j.rewind(); err != nil {
		j.err = fmt.Errorf("journal: rewinding to durable offset %d: %w", j.good, err)
		return j.err
	}
	if _, err := j.w.Write(p); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	info, err := j.f.Stat()
	if err != nil {
		return err
	}
	if want := j.good + int64(len(p)); info.Size() != want {
		return fmt.Errorf("journal: torn write: file is %d bytes after sync, want %d", info.Size(), want)
	}
	j.good += int64(len(p))
	return nil
}

// rewind drops everything past the durable offset.  Callers hold j.mu.
func (j *Journal) rewind() error {
	if err := j.f.Truncate(j.good); err != nil {
		return err
	}
	_, err := j.f.Seek(j.good, io.SeekStart)
	return err
}

// Compact rewrites the log as the given snapshot — the minimal record
// sequence that replays to the caller's current state — into a temp
// file, rotates it over the log with an atomic rename and a directory
// fsync, and restamps sequence numbers from 1.  The old log stays
// intact until the rename, so a crash mid-compaction loses nothing.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.opts.Crash != nil && j.opts.Crash() {
		j.err = ErrCrashed
		return j.err
	}
	var buf bytes.Buffer
	seq := uint64(0)
	for i := range live {
		seq++
		live[i].Seq = seq
		if err := appendFrame(&buf, live[i]); err != nil {
			return err
		}
	}
	tmp := j.path + ".tmp"
	if err := writeSnapshot(tmp, buf.Bytes()); err != nil {
		return fmt.Errorf("journal: writing compaction snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: rotating compacted log: %w", err)
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("journal: syncing log directory: %w", err)
	}
	// The path now names the snapshot; the old handle points at the
	// unlinked inode.  Swap handles — failing here is fatal for the
	// journal (writes through the old handle would vanish).
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: reopening rotated log: %w", err)
		return j.err
	}
	if _, err := f.Seek(int64(buf.Len()), io.SeekStart); err != nil {
		j.err = errors.Join(fmt.Errorf("journal: seeking rotated log: %w", err), f.Close())
		return j.err
	}
	old := j.f
	j.f = f
	j.good = int64(buf.Len())
	j.seq = seq
	j.records = len(live)
	j.compactions.Inc()
	j.bytes.Set(float64(j.good))
	if err := old.Close(); err != nil {
		return fmt.Errorf("journal: closing rotated-out log: %w", err)
	}
	return nil
}

// writeSnapshot writes p to a fresh file at tmp and fsyncs it; the
// write error wins over a close error.
func writeSnapshot(tmp string, p []byte) (err error) {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Stats returns the committed record count and the durable size of the
// log — the compaction policy's inputs.
func (j *Journal) Stats() (records int, size int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.good
}

// Err returns the sticky error, nil while the journal is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if errors.Is(j.err, ErrClosed) {
		return nil // a deliberate close is not a failure
	}
	return j.err
}

// Close closes the log file; later operations fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if j.err == nil {
		j.err = ErrClosed
	}
	return err
}
