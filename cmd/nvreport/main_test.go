package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/obs"
)

func TestRunSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-iterations", "3", "-only", "table1,table5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Table V") {
		t.Errorf("subset output incomplete:\n%s", text)
	}
	if strings.Contains(text, "Table VI") {
		t.Error("unselected exhibit was generated")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3", "-only", "fig7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Error("figure 7 missing")
	}
}

// TestReportMatchesGolden pins the full report byte-for-byte against the
// checked-in output captured before the pipeline layer was introduced: the
// refactor must not move a single exhibit byte.  Only the timestamp line is
// stripped.  Regenerate with:
//
//	go run ./cmd/nvreport -scale 0.05 -iterations 3 -jobs 1 -progress=false
func TestReportMatchesGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3", "-jobs", "1", "-progress=false"}, &out); err != nil {
		t.Fatal(err)
	}
	stripped := stripTimestamp(out.String())
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stripped != string(golden) {
		t.Fatalf("report diverged from testdata/golden_report.txt (%d vs %d bytes)", len(stripped), len(golden))
	}
}

func stripTimestamp(text string) string {
	lines := strings.Split(text, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "generated ") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestChaosReportDeterministicAcrossJobs: a seeded -fault sweep must emit a
// byte-identical degraded report whether the runs execute sequentially or
// on a worker pool — the injector decides per run key, not per schedule.
func TestChaosReportDeterministicAcrossJobs(t *testing.T) {
	report := func(jobs string) string {
		var out bytes.Buffer
		if err := run([]string{"-scale", "0.05", "-iterations", "3", "-progress=false",
			"-only", "table1,table5,table6", "-jobs", jobs,
			"-fault", "worker:prob=0.5,seed=9"}, &out); err != nil {
			t.Fatalf("jobs=%s chaos run: %v", jobs, err)
		}
		return stripTimestamp(out.String())
	}
	seq := report("1")
	par := report("4")
	if seq != par {
		t.Fatalf("degraded report differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "Degraded runs:") {
		t.Fatalf("chaos report missing the degradation section:\n%s", seq)
	}
	if !strings.Contains(seq, "worker crash") {
		t.Fatalf("chaos report missing per-run annotations:\n%s", seq)
	}
}

// TestFaultFlagRejectsBadSpec: a malformed -fault spec must fail fast
// before any run is scheduled.
func TestFaultFlagRejectsBadSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-fault", "sink:bogus=1"}, &out); err == nil {
		t.Error("malformed -fault spec must error")
	}
}

func TestRunUnknownExhibit(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestExhibitNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range experiments.Exhibits() {
		if seen[ex.Name] {
			t.Errorf("duplicate exhibit %q", ex.Name)
		}
		seen[ex.Name] = true
	}
	if len(seen) != 22 {
		t.Errorf("exhibit count = %d, want 22", len(seen))
	}
}

// TestRunMetricsFile covers the acceptance path: `nvreport -metrics` must
// emit a snapshot containing runner run/hit/miss/error counters, cachesim
// L1/L2 hit ratios and dramsim command counts for at least one exhibit.
func TestRunMetricsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3", "-progress=false",
		"-only", "table5,table6", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"runner_runs_total",
		"runner_hits_total",
		"runner_misses_total",
		"runner_errors_total",
		`cachesim_hit_ratio{app=cam,level=L1D,mode=fast}`,
		`cachesim_hit_ratio{app=cam,level=L2,mode=fast}`,
		`dramsim_reads{app=cam,device=DDR3}`,
		`dramsim_writes{app=cam,device=DDR3}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics file missing %q:\n%s", want, text)
		}
	}
}

func TestRunMetricsJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3", "-progress=false",
		"-only", "table5", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if _, ok := snap.Counter("runner_runs_total"); !ok {
		t.Error("JSON snapshot missing runner_runs_total")
	}
}

func TestRunOutdir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3",
		"-only", "table1,table5", "-outdir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "table5.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "table6.txt")); err == nil {
		t.Fatal("unselected exhibit file must not exist")
	}
}
