package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-sensitive tier of the analyzer framework: an
// intra-procedural control-flow graph over go/ast function bodies, a
// forward dataflow solver in the reaching-definitions style (per-fact
// may-bits joined by union over a worklist), and the path query the
// "X on every path to return" checks share.  The arenaown, lockorder
// and ctxflow passes are built on it; the syntactic passes
// (determinism, metricname, errcontract, stickysink) do not need it.
//
// The graph is deliberately modest — no SSA, no interprocedural
// summaries — because every invariant the passes prove is local to one
// function body plus the package's declarations: a batch obtained here
// must be handed off here, a mutex locked here must be unlocked here.

// Block is one basic block: a maximal straight-line node sequence.
// Nodes are statements, plus the condition expressions of the branch
// constructs (so facts established inside an if-condition are seen).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.  Entry leads to
// the first block; every return, terminal panic and fall-off-the-end
// path leads to Exit.  Defers collects the function's defer statements
// in source order — deferred calls run on every exit path, panicking
// ones included, which is exactly the property the all-paths checks
// credit them for.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, gotoTargets: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = b.newBlock()
	b.link(g.Entry, b.cur)
	b.stmtList(body.List)
	b.link(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// breakTarget pairs a label ("" for the innermost construct) with the
// block control transfers to.
type breakTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g   *CFG
	cur *Block

	breaks    []breakTarget
	continues []breakTarget

	gotoTargets map[string]*Block
	gotos       []pendingGoto

	// label is the pending label of a LabeledStmt, consumed by the next
	// breakable/continuable construct it wraps.
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock switches emission to blk, linking the current block into it
// when the current block can fall through.
func (b *cfgBuilder) startBlock(blk *Block) {
	b.link(b.cur, blk)
	b.cur = blk
}

// deadBlock starts a fresh block with no predecessors — the code after
// an unconditional transfer (return, break, goto, panic).
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findBreak resolves the target of a break/continue with optional label.
func findTarget(stack []breakTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and the name break/continue
		// statements may use for the wrapped construct.
		target := b.newBlock()
		b.startBlock(target)
		b.gotoTargets[s.Label.Name] = target
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock()
		after := b.newBlock()
		elseB := after
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.link(b.cur, thenB)
		b.link(b.cur, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.link(b.cur, after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.link(b.cur, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.label
		b.label = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.link(head, after)
		}
		b.link(head, body)
		b.breaks = append(b.breaks, breakTarget{label, after})
		b.continues = append(b.continues, breakTarget{label, post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.link(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.link(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.label
		b.label = ""
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		b.add(s.X)
		b.link(head, body)
		b.link(head, after) // empty collection
		b.breaks = append(b.breaks, breakTarget{label, after})
		b.continues = append(b.continues, breakTarget{label, head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.link(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.label
		b.label = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.label
		b.label = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(label, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.label
		b.label = ""
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, breakTarget{label, after})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.link(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
		}
		if len(s.Body.List) == 0 {
			b.link(head, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.deadBlock()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.link(b.cur, findTarget(b.breaks, label))
			b.deadBlock()
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.link(b.cur, findTarget(b.continues, label))
			b.deadBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{b.cur, s.Label.Name})
			b.deadBlock()
		case token.FALLTHROUGH:
			// Handled by switchBody via clause ordering; nothing to do
			// here (the fallthrough edge is added there).
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.link(b.cur, b.g.Exit)
			b.deadBlock()
		}

	default:
		// Assignments, declarations, sends, inc/dec, go statements,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// switchBody lowers the clauses of a switch or type switch.  assign is
// the type switch's assign statement, recorded at the head for
// completeness.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, assign ast.Stmt) {
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, breakTarget{label, after})
	hasDefault := false
	blocks := make([]*Block, len(body.List))
	for i := range body.List {
		blocks[i] = b.newBlock()
	}
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.link(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.link(b.cur, blocks[i+1])
				fellThrough = true
				continue
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.link(b.cur, after)
		} else {
			b.deadBlock()
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if target, ok := b.gotoTargets[g.label]; ok {
			b.link(g.from, target)
		}
	}
}

// isPanicCall reports whether e is a direct call of the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- forward dataflow solver -------------------------------------------

// factBits is a may-set of dataflow facts: each key carries a small
// bitmask, block join is bitwise union per key — the classic reaching-
// definitions shape with the definition payload folded into the bits.
type factBits[K comparable] map[K]uint8

func (f factBits[K]) clone() factBits[K] {
	out := make(factBits[K], len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// merge unions src into f, reporting whether f changed.
func (f factBits[K]) merge(src factBits[K]) bool {
	changed := false
	for k, v := range src {
		if f[k]&v != v {
			f[k] |= v
			changed = true
		}
	}
	return changed
}

// solveForward runs transfer over the graph to fixpoint and returns the
// in-state of every block (Exit included, whose in-state is the join of
// every path's final facts).  transfer must not mutate its input.
func solveForward[K comparable](g *CFG, transfer func(b *Block, in factBits[K]) factBits[K]) map[*Block]factBits[K] {
	in := make(map[*Block]factBits[K], len(g.Blocks))
	for _, blk := range g.Blocks {
		in[blk] = factBits[K]{}
	}
	// Every block is seeded once: propagation alone would never visit a
	// block whose in-state stays empty, and its own transfer effects
	// (acquisitions, hand-offs) must still reach its successors.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(blk, in[blk])
		for _, succ := range blk.Succs {
			if in[succ].merge(out) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// --- path queries ------------------------------------------------------

// reachesExitWithout reports whether some path starting at from.Nodes
// [startIdx:] reaches the function exit without first passing a node for
// which stop returns true.  It is the engine behind the all-paths checks:
// "unlock on every path", "release on every path".
func (g *CFG) reachesExitWithout(from *Block, startIdx int, stop func(ast.Node) bool) bool {
	// Walk the tail of the starting block first; a stop node there closes
	// every path through it.
	for _, n := range from.Nodes[startIdx:] {
		if stop(n) {
			return false
		}
	}
	seen := map[*Block]bool{from: true}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if stop(n) {
				return false
			}
		}
		for _, succ := range b.Succs {
			if walk(succ) {
				return true
			}
		}
		return false
	}
	for _, succ := range from.Succs {
		if walk(succ) {
			return true
		}
	}
	return false
}

// --- def/use helpers ---------------------------------------------------

// usesObject reports whether n mentions obj (an identifier use or
// definition resolved to it), excluding occurrences inside the subtrees
// listed in skip.
func usesObject(p *Package, n ast.Node, obj types.Object, skip ...ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		for _, s := range skip {
			if x == s {
				return false
			}
		}
		if id, ok := x.(*ast.Ident); ok {
			if o := p.Info.Uses[id]; o != nil && o == obj {
				found = true
			}
			if o := p.Info.Defs[id]; o != nil && o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdent peels selectors, index and slice expressions down to the
// base identifier an lvalue or operand hangs off ("s.txCaps[i]" -> s),
// or nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
