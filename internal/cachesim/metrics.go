package cachesim

import "nvscavenger/internal/obs"

// ExportMetrics publishes the hierarchy's counters into reg under the
// given labels plus a per-level "level" label (the configured level name,
// e.g. L1D/L2).  Values are gauges set idempotently, so re-exporting after
// more traffic overwrites rather than double-counts.
func (h *Hierarchy) ExportMetrics(reg *obs.Registry, labels ...obs.Label) {
	for _, lv := range []*level{h.l1, h.l2} {
		ls := append(append([]obs.Label(nil), labels...), obs.L("level", lv.cfg.Name))
		s := lv.stats
		reg.Gauge("cachesim_hits", ls...).Set(float64(s.Hits))
		reg.Gauge("cachesim_misses", ls...).Set(float64(s.Misses))
		reg.Gauge("cachesim_evictions", ls...).Set(float64(s.Evictions))
		reg.Gauge("cachesim_writebacks", ls...).Set(float64(s.Writebacks))
		reg.Gauge("cachesim_hit_ratio", ls...).Set(s.HitRatio())
	}
	reg.Gauge("cachesim_mem_reads", labels...).Set(float64(h.MemReads))
	reg.Gauge("cachesim_mem_writes", labels...).Set(float64(h.MemWrites))
	// Staging-buffer health: transactions lost to a tripped sink, and the
	// recoverable-mode retry/trip counts.  Zero on healthy runs — their
	// presence in every snapshot is what makes silent drops visible.
	reg.Gauge("cachesim_txbuffer_dropped", labels...).Set(float64(h.TxDropped()))
	reg.Gauge("cachesim_txbuffer_retries", labels...).Set(float64(h.TxRetries()))
	reg.Gauge("cachesim_txbuffer_trips", labels...).Set(float64(h.TxTrips()))
}
