package lint

import (
	"bufio"
	"bytes"
	_ "embed"
	"go/ast"
	"go/types"
	"strings"
)

// deterministicRoots are the packages whose output must be byte-identical
// across runs and -jobs counts: the simulators, the event model, the
// dataflow, the fault schedules, the experiment session, the mini-apps and
// the run engine.  A package is in scope when the first path segment after
// "internal/" matches.
var deterministicRoots = map[string]bool{
	"cachesim":    true,
	"dramsim":     true,
	"memtrace":    true,
	"trace":       true,
	"pipeline":    true,
	"faults":      true,
	"experiments": true,
	"apps":        true,
	"runner":      true,
	"served":      true,
	"journal":     true,
}

//go:embed determinism_allow.txt
var determinismAllowlist []byte

// determinism flags wall-clock reads, global math/rand state, sleeps and
// map-iteration feeding output inside the deterministic packages.  The few
// sanctioned sites (the runner's default wall clock) live in
// determinism_allow.txt, one "pkg func offense" triple per line.
type determinism struct {
	nopFinish
	allow map[string]bool
}

func init() {
	registerPass("determinism", func() Pass {
		return &determinism{allow: parseAllowlist(determinismAllowlist)}
	})
}

// parseAllowlist reads "pkg-rel-path function offense" triples; '#' starts
// a comment, blank lines are skipped.
func parseAllowlist(data []byte) map[string]bool {
	allow := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 3 {
			allow[fields[0]+" "+fields[1]+" "+fields[2]] = true
		}
	}
	return allow
}

func (*determinism) Name() string { return "determinism" }
func (*determinism) Doc() string {
	return "no time.Now/time.Sleep/global math/rand or output-feeding map ranges in deterministic packages"
}

// inScope reports whether the package's exhibits must be deterministic.
func (*determinism) inScope(p *Package) bool {
	rel, ok := strings.CutPrefix(p.ModRel(), "internal/")
	if !ok {
		return false
	}
	root, _, _ := strings.Cut(rel, "/")
	return deterministicRoots[root]
}

func (d *determinism) Check(p *Package, r *Reporter) {
	if !d.inScope(p) {
		return
	}
	for _, f := range p.Files {
		inspectDecls(f, func(decl ast.Decl, fn string) {
			ast.Inspect(decl, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					d.checkSelector(p, r, fn, e)
				case *ast.RangeStmt:
					d.checkRange(p, r, fn, e)
				}
				return true
			})
		})
	}
}

// checkSelector flags references to time.Now, time.Sleep and the global
// math/rand state (package-level functions other than the source
// constructors; seeded *rand.Rand methods are deterministic and fine).
func (d *determinism) checkSelector(p *Package, r *Reporter, fn string, sel *ast.SelectorExpr) {
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	var offense, why string
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Now":
		offense, why = "time.Now", "wall-clock reads vary across runs"
	case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
		offense, why = "time.Sleep", "sleeping couples results to scheduling"
	case obj.Pkg().Path() == "math/rand" && obj.Name() != "New" && obj.Name() != "NewSource":
		offense, why = "math/rand."+obj.Name(), "global rand state is shared and unseeded; use a local seeded rand.New(rand.NewSource(...))"
	default:
		return
	}
	if d.allow[p.ModRel()+" "+fn+" "+offense] {
		return
	}
	r.Report(sel.Pos(), "determinism", "%s in deterministic package %s: %s", offense, p.ModRel(), why)
}

// outputMethods are the sinks a map-range must not feed directly: report
// writers, table rows and the batched trace hand-off.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Row": true, "Rowf": true,
	"Flush": true, "FlushTx": true, "FlushEvents": true,
}

// checkRange flags iteration over a map whose body writes report or trace
// output: Go map order is randomized per run, so anything emitted from
// inside the loop breaks byte-identical exhibits.
func (d *determinism) checkRange(p *Package, r *Reporter, fn string, rs *ast.RangeStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var feed ast.Node
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if feed != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObject(p, call.Fun)
		if f == nil {
			return true
		}
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint") {
			feed = call
			return false
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && outputMethods[f.Name()] {
			feed = call
			return false
		}
		return true
	})
	if feed == nil {
		return
	}
	if d.allow[p.ModRel()+" "+fn+" map-range"] {
		return
	}
	r.Report(rs.Pos(), "determinism",
		"map iteration feeds output at %s (map order is randomized; iterate sorted keys instead)",
		p.Fset.Position(feed.Pos()))
}
