// Package cli carries the scaffolding every cmd/* tool shares: the
// main-function exit protocol, flag-set construction, app-name validation
// against the registered mini-applications, JSON snapshot writing, and
// tabwriter-based report tables.  The five front ends (nvscavenger,
// nvreport, nvpower, nvperf, nvtrace) are thin run(args, out) functions on
// top of it, which keeps them unit-testable: tests call run directly with
// a bytes.Buffer and never touch os.Exit.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/obs"
)

// Main runs a tool's run function with the standard exit protocol: errors
// go to stderr prefixed with the tool name, and the process exits 1.
func Main(name string, run func(args []string, out io.Writer) error) {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// NewFlagSet returns the tools' standard flag set: ContinueOnError, so a
// bad flag surfaces as an error from run instead of killing the process.
func NewFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// AppList names the registered applications, comma separated, for flag
// usage strings and error messages.
func AppList() string {
	return strings.Join(apps.Names(), ", ")
}

// ValidateApp checks that name is a registered application.
func ValidateApp(name string) error {
	for _, n := range apps.Names() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown app %q (have %s)", name, AppList())
}

// RequireApp validates the -app flag value: empty prints the flag set's
// usage and reports which apps exist; unknown names are rejected before
// any work starts.
func RequireApp(fs *flag.FlagSet, name string) error {
	if name == "" {
		fs.Usage()
		return fmt.Errorf("missing -app (one of %s)", AppList())
	}
	return ValidateApp(name)
}

// WriteJSONFile creates path and hands the file to write (typically a
// snapshot's WriteJSON), closing it on every path; used by the tools'
// -json flags.  The write error takes precedence over the close error —
// a failed write usually makes the close fail too, and the first cause is
// the one worth reporting.
func WriteJSONFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// EncodeJSON writes v to w in the tools' standard JSON rendering:
// two-space indentation and a trailing newline, the same bytes for the
// same value on every frontend.  Both the nvserved HTTP responses and the
// CLI -json files route through it, so the versioned job/result payloads
// (experiments.JobSpec, experiments.JobResult) are byte-identical across
// transports.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encoding JSON: %w", err)
	}
	return nil
}

// EncodeCompactJSON writes v as a single JSON line with a trailing
// newline — the NDJSON record format of the nvserved event stream.
func EncodeCompactJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encoding JSON: %w", err)
	}
	return nil
}

// WriteValueJSONFile writes v to path via EncodeJSON; the -json flag
// implementation for tools whose payload is a plain value rather than a
// streaming writer.
func WriteValueJSONFile(path string, v any) error {
	return WriteJSONFile(path, func(w io.Writer) error { return EncodeJSON(w, v) })
}

// WriteMetricsFile writes an observability snapshot to path: the JSON
// rendering when the path ends in .json, the one-line-per-series text
// rendering otherwise.  All five tools' -metrics flags route through it.
func WriteMetricsFile(path string, snap obs.Snapshot) error {
	write := snap.WriteText
	if strings.HasSuffix(path, ".json") {
		write = snap.WriteJSON
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Table renders aligned report columns through a tabwriter.  Rows are
// buffered until Flush.
type Table struct {
	tw *tabwriter.Writer
}

// NewTable returns a Table writing to out with the report tools' standard
// geometry (two-space padding, left-aligned cells).
func NewTable(out io.Writer) *Table {
	return &Table{tw: tabwriter.NewWriter(out, 0, 4, 2, ' ', 0)}
}

// Row writes one row; cells are tab-separated by the writer.
func (t *Table) Row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

// Rowf writes one row from format verbs, one cell per argument after
// splitting on tabs in the expansion.
func (t *Table) Rowf(format string, args ...any) {
	fmt.Fprintf(t.tw, format+"\n", args...)
}

// Flush renders the buffered rows with final column widths.
func (t *Table) Flush() error { return t.tw.Flush() }
