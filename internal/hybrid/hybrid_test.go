package hybrid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/trace"
)

// mustNew builds a System from a config the test knows is valid.
func mustNew(t testing.TB, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinyConfig(budget int) Config {
	return Config{
		PageBytes:         4096,
		DRAMBudgetPages:   budget,
		EpochTransactions: 1000,
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	s := mustNew(t, Config{DRAMBudgetPages: 1})
	if s.cfg.PageBytes != 4096 || s.cfg.EpochTransactions != 100000 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
	if s.cfg.DRAM.Name != "DDR3" || s.cfg.NVRAM.Name != "PCRAM" {
		t.Fatalf("default profiles wrong: %s/%s", s.cfg.DRAM.Name, s.cfg.NVRAM.Name)
	}
	bad := []Config{
		{PageBytes: 1000},
		{DRAMBudgetPages: -1},
		{EpochTransactions: -5},
		{WriteWeight: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(Config{PageBytes: 3}); err == nil {
		t.Fatal("non-power-of-two page size must be rejected")
	}
}

func TestLocationString(t *testing.T) {
	if InDRAM.String() != "DRAM" || InNVRAM.String() != "NVRAM" {
		t.Fatal("location strings wrong")
	}
}

func TestPagesStartInNVRAM(t *testing.T) {
	s := mustNew(t, tinyConfig(4))
	for i := 0; i < 10; i++ {
		s.Transaction(trace.Transaction{Addr: uint64(i) * 4096})
	}
	r := s.Report()
	if r.DRAMPages != 0 || r.NVRAMPages != 10 {
		t.Fatalf("initial placement = %d DRAM / %d NVRAM, want all NVRAM", r.DRAMPages, r.NVRAMPages)
	}
	if r.DRAMServiceFraction != 0 {
		t.Fatal("no access should have been served by DRAM before the first epoch")
	}
}

func TestHotPagesPromoted(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	// Pages 0 and 1 are hot; pages 2..9 cold.
	for e := 0; e < 3; e++ {
		for i := 0; i < 1000; i++ {
			pn := uint64(i % 2)
			if i%100 == 0 {
				pn = uint64(2 + i/100%8)
			}
			s.Transaction(trace.Transaction{Addr: pn * 4096})
		}
	}
	r := s.Report()
	if r.DRAMPages != 2 {
		t.Fatalf("DRAM pages = %d, want the 2 hot pages", r.DRAMPages)
	}
	if s.pages[0].loc != InDRAM || s.pages[1].loc != InDRAM {
		t.Fatal("hot pages must be in DRAM")
	}
	if r.DRAMServiceFraction < 0.5 {
		t.Fatalf("DRAM service fraction = %v after promotion", r.DRAMServiceFraction)
	}
}

func TestWriteIntensityPrioritized(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.WriteWeight = 10
	s := mustNew(t, cfg)
	// Page 0: 400 reads. Page 1: 100 writes (score 1000 > 400).
	for e := 0; e < 2; e++ {
		for i := 0; i < 800; i++ {
			s.Transaction(trace.Transaction{Addr: 0, Write: false})
			if i%8 == 0 {
				s.Transaction(trace.Transaction{Addr: 4096, Write: true})
			}
		}
	}
	if s.pages[1].loc != InDRAM {
		t.Fatal("write-intensive page must win the DRAM slot")
	}
	if s.pages[0].loc != InNVRAM {
		t.Fatal("read-popular page loses to the write-intensive one at weight 10")
	}
}

func TestBudgetRespected(t *testing.T) {
	s := mustNew(t, tinyConfig(3))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		s.Transaction(trace.Transaction{Addr: uint64(rng.Intn(50)) * 4096, Write: rng.Intn(3) == 0})
	}
	r := s.Report()
	if r.DRAMPages > 3 {
		t.Fatalf("DRAM pages = %d exceeds budget 3", r.DRAMPages)
	}
	if r.DRAMPages+r.NVRAMPages != r.Pages {
		t.Fatal("partition does not sum")
	}
}

func TestStableWorkloadStopsMigrating(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	workload := func() {
		for i := 0; i < 1000; i++ {
			s.Transaction(trace.Transaction{Addr: uint64(i%2) * 4096})
			s.Transaction(trace.Transaction{Addr: uint64(10+i%5) * 4096})
		}
	}
	workload()
	afterFirst := s.promotions + s.demotions
	if afterFirst == 0 {
		t.Fatal("first epochs must migrate the hot pages")
	}
	for e := 0; e < 5; e++ {
		workload()
	}
	afterMany := s.promotions + s.demotions
	if afterMany != afterFirst {
		t.Fatalf("stable workload kept migrating: %d -> %d", afterFirst, afterMany)
	}
}

func TestPhaseChangeTriggersMigration(t *testing.T) {
	s := mustNew(t, tinyConfig(1))
	for i := 0; i < 2000; i++ {
		s.Transaction(trace.Transaction{Addr: 0})
	}
	if s.pages[0].loc != InDRAM {
		t.Fatal("phase 1 hot page not promoted")
	}
	// Phase 2: page 5 becomes the hot one.
	for i := 0; i < 2000; i++ {
		s.Transaction(trace.Transaction{Addr: 5 * 4096})
	}
	if s.pages[5].loc != InDRAM {
		t.Fatal("phase 2 hot page not promoted")
	}
	if s.pages[0].loc != InNVRAM {
		t.Fatal("old hot page not demoted")
	}
	r := s.Report()
	if r.Demotions == 0 {
		t.Fatal("demotion not counted")
	}
}

func TestColdPagesNeverEnterDRAM(t *testing.T) {
	cfg := tinyConfig(10)
	cfg.MinScore = 5
	s := mustNew(t, cfg)
	// 1000 pages touched once each: all below MinScore.
	for i := 0; i < 1000; i++ {
		s.Transaction(trace.Transaction{Addr: uint64(i) * 4096})
	}
	r := s.Report()
	if r.DRAMPages != 0 {
		t.Fatalf("cold pages promoted: %d", r.DRAMPages)
	}
}

func TestReportLatencyBounds(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30000; i++ {
		pn := uint64(rng.Intn(4))
		if rng.Intn(10) == 0 {
			pn = uint64(4 + rng.Intn(40))
		}
		s.Transaction(trace.Transaction{Addr: pn * 4096, Write: rng.Intn(4) == 0})
	}
	r := s.Report()
	if r.AllDRAMLatencyNS <= 0 || r.AllNVRAMLatencyNS <= r.AllDRAMLatencyNS {
		t.Fatalf("latency bounds wrong: DRAM %v NVRAM %v", r.AllDRAMLatencyNS, r.AllNVRAMLatencyNS)
	}
	if r.AvgLatencyNS < r.AllDRAMLatencyNS {
		t.Fatalf("hybrid %v cannot beat all-DRAM %v", r.AvgLatencyNS, r.AllDRAMLatencyNS)
	}
	// With the hot pages promoted, the hybrid should beat all-NVRAM.
	if r.AvgLatencyNS >= r.AllNVRAMLatencyNS {
		t.Fatalf("hybrid %v should beat all-NVRAM %v", r.AvgLatencyNS, r.AllNVRAMLatencyNS)
	}
	if r.BackgroundSaving <= 0 || r.BackgroundSaving >= 1 {
		t.Fatalf("background saving = %v", r.BackgroundSaving)
	}
	if r.BackgroundMW >= r.AllDRAMBackgroundMW {
		t.Fatal("hybrid background must undercut all-DRAM")
	}
}

func TestNVRAMWriteShareDropsWithPlacement(t *testing.T) {
	mk := func(budget int) float64 {
		s := mustNew(t, tinyConfig(budget))
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 20000; i++ {
			// Writes concentrate on pages 0-1.
			if rng.Intn(2) == 0 {
				s.Transaction(trace.Transaction{Addr: uint64(rng.Intn(2)) * 4096, Write: true})
			} else {
				s.Transaction(trace.Transaction{Addr: uint64(rng.Intn(30)) * 4096, Write: false})
			}
		}
		return s.Report().NVRAMWriteShare
	}
	withBudget, without := mk(2), mk(0)
	if without != 1 {
		t.Fatalf("zero budget must leave every write in NVRAM, got %v", without)
	}
	if withBudget > 0.2 {
		t.Fatalf("write share with budget = %v, want most writes captured by DRAM", withBudget)
	}
}

func TestCustomProfiles(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.NVRAM = dramsim.STTRAM()
	s := mustNew(t, cfg)
	for i := 0; i < 3000; i++ {
		s.Transaction(trace.Transaction{Addr: uint64(i%3) * 4096})
	}
	r := s.Report()
	// STTRAM reads match DRAM (10ns), so the all-NVRAM read-only bound
	// equals all-DRAM.
	if r.AllNVRAMLatencyNS != r.AllDRAMLatencyNS {
		t.Fatalf("read-only STTRAM bound %v != DRAM %v", r.AllNVRAMLatencyNS, r.AllDRAMLatencyNS)
	}
}

// Property: service counters always sum to the number of transactions, and
// the partition always sums to the page count.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, n uint16, budget uint8) bool {
		s := mustNew(t, tinyConfig(int(budget % 16)))
		rng := rand.New(rand.NewSource(seed))
		count := int(n%5000) + 1
		for i := 0; i < count; i++ {
			s.Transaction(trace.Transaction{
				Addr:  uint64(rng.Intn(64)) * 4096,
				Write: rng.Intn(2) == 0,
			})
		}
		r := s.Report()
		if r.DRAMReads+r.DRAMWrites+r.NVRAMReads+r.NVRAMWrites != uint64(count) {
			return false
		}
		if r.DRAMPages+r.NVRAMPages != r.Pages {
			return false
		}
		return r.DRAMPages <= int(budget%16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: average latency always lies within [allDRAM - eps, allNVRAM +
// migration overhead]; with zero migrations it is within the pure bounds.
func TestQuickLatencyWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		s := mustNew(t, tinyConfig(4))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			s.Transaction(trace.Transaction{
				Addr:  uint64(rng.Intn(32)) * 4096,
				Write: rng.Intn(3) == 0,
			})
		}
		r := s.Report()
		return r.AvgLatencyNS >= r.AllDRAMLatencyNS-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
