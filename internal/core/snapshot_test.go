package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tr := buildScenario(t, 4)
	policy := DefaultPolicy(Category2)
	snap := BuildSnapshot("scenario", tr, &policy)

	if snap.App != "scenario" || snap.Iterations != 4 {
		t.Fatalf("identity = %s/%d", snap.App, snap.Iterations)
	}
	if snap.FootprintBytes == 0 || snap.Instructions == 0 {
		t.Fatal("totals missing")
	}
	if len(snap.Segments) != 3 {
		t.Fatalf("segments = %d", len(snap.Segments))
	}
	if len(snap.Objects) != 5 {
		t.Fatalf("objects = %d", len(snap.Objects))
	}
	if snap.Placement == nil || snap.Placement.NVRAMShare <= 0 {
		t.Fatal("placement missing")
	}
	var sawTarget bool
	for _, o := range snap.Objects {
		if o.Target != "" {
			sawTarget = true
		}
		if o.Pattern == "" {
			t.Fatalf("%s: pattern missing", o.Name)
		}
	}
	if !sawTarget {
		t.Fatal("no object carries a placement target")
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rw_ratio"`) {
		t.Fatal("JSON keys missing")
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != snap.App || len(back.Objects) != len(snap.Objects) {
		t.Fatal("round trip lost data")
	}
	if back.Placement.NVRAMShare != snap.Placement.NVRAMShare {
		t.Fatal("placement lost in round trip")
	}
}

func TestSnapshotWithoutPolicy(t *testing.T) {
	tr := buildScenario(t, 2)
	snap := BuildSnapshot("scenario", tr, nil)
	if snap.Placement != nil {
		t.Fatal("nil policy must omit placement")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"placement"`) {
		t.Fatal("placement key should be omitted")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
}
