package memtrace

import "sort"

// registry resolves an effective address to the memory object containing it.
//
// This is the hot path of the instrumentation tool, so it implements both
// lookup accelerations described in §III-D of the paper:
//
//  1. The address space is divided into buckets and objects are distributed
//     into buckets by address range; only the objects in the bucket selected
//     by the reference address are scanned.  To avoid clustering memory
//     objects into very few buckets — which would degrade lookups toward
//     linear scans — the division is recomputed dynamically so that objects
//     are evenly distributed between buckets: bucket boundaries are taken
//     from the quantiles of the live objects' base addresses.
//  2. A small software cache holding the most recently used objects (LRU
//     order) is consulted before the bucket index.
type registry struct {
	objects []*Object // all objects ever registered, indexed by ObjectID

	// bucket index over live objects: bucket i covers addresses in
	// [bounds[i], bounds[i+1]); bounds[0] = 0 and the last bucket is
	// unbounded above.
	bounds    []uint64
	buckets   [][]*Object
	liveCount int
	// rebalance control
	maxPerScan  int // chain length that triggers redivision
	lastRebuild int // liveCount at the previous redivision (hysteresis)

	// LRU software cache of most recently used objects
	cache    []*Object
	cacheCap int

	// statistics for the ablation benchmarks
	Lookups    uint64
	CacheHits  uint64
	Scanned    uint64 // objects examined during bucket scans
	Rebalances uint64
}

const (
	defaultBucketCount = 1024
	defaultCacheSize   = 8
	defaultMaxPerScan  = 64
)

func newRegistry(cacheSize int) *registry {
	r := &registry{
		cacheCap:   cacheSize,
		maxPerScan: defaultMaxPerScan,
		bounds:     []uint64{0},
		buckets:    make([][]*Object, 1),
	}
	if r.cacheCap > 0 {
		r.cache = make([]*Object, 0, r.cacheCap)
	}
	return r
}

// bucketOf returns the index of the bucket covering addr.
func (r *registry) bucketOf(addr uint64) int {
	// Find the last boundary <= addr.
	i := sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] > addr })
	return i - 1
}

// newObject appends an object to the identity table and returns it.
func (r *registry) newObject(o Object) *Object {
	o.ID = ObjectID(len(r.objects))
	obj := &o
	r.objects = append(r.objects, obj)
	return obj
}

// insert places a live object into the bucket index, redividing the address
// space if its chains have grown past the scan threshold.
func (r *registry) insert(o *Object) {
	if o.Size == 0 {
		return
	}
	r.liveCount++
	longest := r.place(o)
	if longest > r.maxPerScan && r.liveCount > r.lastRebuild+r.lastRebuild/4 {
		r.rebalance()
	}
}

// place inserts o into every bucket its range overlaps and returns the
// longest chain it touched, keeping the rebalance check O(1) per insert.
func (r *registry) place(o *Object) int {
	first := r.bucketOf(o.Base)
	last := r.bucketOf(o.Base + o.Size - 1)
	longest := 0
	for b := first; b <= last; b++ {
		r.buckets[b] = append(r.buckets[b], o)
		if len(r.buckets[b]) > longest {
			longest = len(r.buckets[b])
		}
	}
	return longest
}

// remove deletes a live object from the bucket index (heap free).
func (r *registry) remove(o *Object) {
	if o.Size == 0 {
		return
	}
	first := r.bucketOf(o.Base)
	last := r.bucketOf(o.Base + o.Size - 1)
	for b := first; b <= last; b++ {
		list := r.buckets[b]
		for i, cand := range list {
			if cand == o {
				list[i] = list[len(list)-1]
				r.buckets[b] = list[:len(list)-1]
				break
			}
		}
	}
	r.liveCount--
	// Drop it from the software cache so a recycled address range cannot
	// be attributed to the dead object.
	for i, c := range r.cache {
		if c == o {
			r.cache = append(r.cache[:i], r.cache[i+1:]...)
			break
		}
	}
}

// rebalance recomputes bucket boundaries from the quantiles of the live
// objects' base addresses, so that objects spread evenly across buckets
// regardless of how the address space is populated.
func (r *registry) rebalance() {
	r.Rebalances++
	r.lastRebuild = r.liveCount

	// Collect the live objects (deduplicated across spanning buckets).
	live := make([]*Object, 0, r.liveCount)
	seen := make(map[ObjectID]struct{}, r.liveCount)
	for _, list := range r.buckets {
		for _, o := range list {
			if _, dup := seen[o.ID]; dup {
				continue
			}
			seen[o.ID] = struct{}{}
			live = append(live, o)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Base < live[j].Base })

	// Target a chain length well under the scan threshold.
	per := r.maxPerScan / 4
	if per < 1 {
		per = 1
	}
	nb := len(live)/per + 1
	if nb > 1<<18 {
		nb = 1 << 18
	}
	bounds := make([]uint64, 0, nb+1)
	bounds = append(bounds, 0)
	for i := per; i < len(live); i += per {
		b := live[i].Base
		if b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	r.bounds = bounds
	r.buckets = make([][]*Object, len(bounds))
	for _, o := range live {
		r.place(o)
	}
}

// lookup resolves addr to the live object containing it, or nil.
func (r *registry) lookup(addr uint64) *Object {
	r.Lookups++
	// 1. software cache, most recent first
	for i, o := range r.cache {
		if !o.Dead && o.Contains(addr) {
			r.CacheHits++
			if i != 0 {
				copy(r.cache[1:i+1], r.cache[:i])
				r.cache[0] = o
			}
			return o
		}
	}
	// 2. bucket index
	for _, o := range r.buckets[r.bucketOf(addr)] {
		r.Scanned++
		if !o.Dead && o.Contains(addr) {
			r.cacheInsert(o)
			return o
		}
	}
	return nil
}

func (r *registry) cacheInsert(o *Object) {
	if r.cacheCap == 0 {
		return
	}
	if len(r.cache) < r.cacheCap {
		r.cache = append(r.cache, nil)
	}
	copy(r.cache[1:], r.cache)
	r.cache[0] = o
}

// allObjects returns every object ever registered.
func (r *registry) allObjects() []*Object { return r.objects }

// object returns the object with the given ID, or nil.
func (r *registry) object(id ObjectID) *Object {
	if int(id) < len(r.objects) {
		return r.objects[id]
	}
	return nil
}
