package wear

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvscavenger/internal/dramsim"
)

// mustTracker builds a Tracker from a config the test knows is valid.
func mustTracker(t testing.TB, cfg Config) *Tracker {
	t.Helper()
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSchemeString(t *testing.T) {
	if Static.String() != "static" || StartGap.String() != "start-gap" {
		t.Fatal("scheme strings wrong")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewTracker(Config{Lines: 0}); err == nil {
		t.Fatal("zero lines must error")
	}
	if _, err := NewTracker(Config{Lines: 4, GapMovePeriod: -1}); err == nil {
		t.Fatal("negative period must error")
	}
	if _, err := NewTracker(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestStaticConcentratesWear(t *testing.T) {
	tr := mustTracker(t, Config{Lines: 64, Scheme: Static})
	// Hammer line 0.
	for i := 0; i < 10000; i++ {
		tr.Write(0)
	}
	r := tr.Report()
	if r.MaxLine != 10000 {
		t.Fatalf("max line writes = %d, want 10000", r.MaxLine)
	}
	if r.Imbalance < 60 {
		t.Fatalf("static imbalance = %v, want ~64 (all wear on one of 64 lines)", r.Imbalance)
	}
}

func TestStartGapSpreadsWear(t *testing.T) {
	tr := mustTracker(t, Config{Lines: 64, Scheme: StartGap, GapMovePeriod: 10})
	for i := 0; i < 200000; i++ {
		tr.Write(0) // same logical line forever
	}
	r := tr.Report()
	if r.GapMoves == 0 {
		t.Fatal("gap never moved")
	}
	// With rotation, the hot logical line's writes spread across physical
	// lines: imbalance far below static's 65.
	if r.Imbalance > 10 {
		t.Fatalf("start-gap imbalance = %v, want < 10", r.Imbalance)
	}
}

func TestStartGapExtendsLifetime(t *testing.T) {
	hammer := func(scheme Scheme) float64 {
		tr := mustTracker(t, Config{Lines: 128, Scheme: scheme, GapMovePeriod: 10})
		for i := 0; i < 300000; i++ {
			tr.Write(64 * uint64(i%4)) // 4 hot lines of 128
		}
		return tr.LifetimeWrites(dramsim.PCRAM())
	}
	static, sg := hammer(Static), hammer(StartGap)
	if sg < static*5 {
		t.Fatalf("start-gap lifetime %v should be >= 5x static %v", sg, static)
	}
}

func TestOutOfRangeCounted(t *testing.T) {
	tr := mustTracker(t, Config{BaseAddr: 4096, Lines: 4})
	tr.Write(0)               // below base
	tr.Write(4096 + 4*64)     // past the last line
	tr.Write(4096 + 2*64 + 8) // inside (unaligned ok)
	r := tr.Report()
	if r.OutOfRange != 2 {
		t.Fatalf("out of range = %d, want 2", r.OutOfRange)
	}
	if r.TotalLine != 1 {
		t.Fatalf("total = %d, want 1", r.TotalLine)
	}
}

func TestLifetimeUnwritten(t *testing.T) {
	tr := mustTracker(t, Config{Lines: 8})
	if got := tr.LifetimeWrites(dramsim.PCRAM()); got != dramsim.PCRAM().WriteEndurance {
		t.Fatalf("unwritten lifetime = %v", got)
	}
}

// Property: total recorded line writes equal in-range writes plus gap-copy
// writes.
func TestQuickWriteConservation(t *testing.T) {
	f := func(seed int64, n uint16, scheme bool) bool {
		sc := Static
		if scheme {
			sc = StartGap
		}
		tr := mustTracker(t, Config{Lines: 32, Scheme: sc, GapMovePeriod: 7})
		rng := rand.New(rand.NewSource(seed))
		count := uint64(n%4000) + 1
		for i := uint64(0); i < count; i++ {
			tr.Write(uint64(rng.Intn(32)) * 64)
		}
		r := tr.Report()
		return r.TotalLine == count+r.GapMoves && r.OutOfRange == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: start-gap never increases the worst-case wear versus static
// under a uniformly random workload (both are near-balanced; gap copies
// add only GapMoves/Lines extra per line on average).
func TestQuickStartGapImbalanceBounded(t *testing.T) {
	f := func(seed int64) bool {
		tr := mustTracker(t, Config{Lines: 16, Scheme: StartGap, GapMovePeriod: 5})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			tr.Write(uint64(rng.Intn(16)) * 64)
		}
		r := tr.Report()
		return r.Imbalance < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the logical->physical map is a bijection at every point in a
// start-gap run (no two logical lines share a physical line).
func TestQuickStartGapMappingBijective(t *testing.T) {
	f := func(moves uint8) bool {
		tr := mustTracker(t, Config{Lines: 12, Scheme: StartGap, GapMovePeriod: 1})
		for i := 0; i < int(moves); i++ {
			tr.Write(uint64(i%12) * 64)
		}
		seen := map[int]bool{}
		for l := 0; l < 12; l++ {
			p := tr.physical(l)
			if p == tr.gap {
				return false // nothing maps onto the gap
			}
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
