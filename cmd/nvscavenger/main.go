// Command nvscavenger runs one mini-application under the NV-SCAVENGER
// instrumentation substrate and reports per-object NVRAM opportunity
// analysis: the three metrics of the paper (read/write ratio, size,
// reference rate), stack/heap/global breakdowns, hybrid-placement advice
// and device-endurance estimates.
//
// The instrumented run is scheduled on the shared experiment engine
// (internal/runner), which reports the run's wall time and reference
// throughput and honors -timeout via context cancellation.
//
// Usage:
//
//	nvscavenger -app nek5000 [-scale 1.0] [-iterations 10] [-mode fast]
//	            [-placement] [-endurance] [-category 2] [-timeout 5m]
//	            [-json snap.json] [-metrics m.txt]
//	            [-fault access:every=50,seed=7]   # deterministic chaos run
package main

import (
	"context"
	"fmt"
	"io"
	"sort"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cli"
	"nvscavenger/internal/core"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
	"nvscavenger/internal/trace"

	_ "nvscavenger/internal/apps/cammini"
	_ "nvscavenger/internal/apps/gtcmini"
	_ "nvscavenger/internal/apps/mdmini"
	_ "nvscavenger/internal/apps/nekmini"
	_ "nvscavenger/internal/apps/s3dmini"
)

func main() { cli.Main("nvscavenger", run) }

// instrumented is the engine-cached product of one run.
type instrumented struct {
	app apps.App
	tr  *memtrace.Tracer
}

// runSharded executes the instrumented run across shards deterministic
// shards and merges them; the merged tracer is byte-identical to a -shards 1
// run.  Sharded stacks cannot drive the raw-access stats tap live, so the
// "accesses" stage counters the tap's Counted boundary would have recorded
// are published from the merged totals instead.
func runSharded(ctx context.Context, appName string, scale float64, iters, shards int, stackMode memtrace.StackMode, sample memtrace.SampleSpec, reg *obs.Registry, mode string) (any, uint64, error) {
	ss, err := pipeline.BuildSharded(pipeline.Config{
		StackMode: stackMode,
		Sample:    sample,
	}, iters, shards)
	if err != nil {
		return nil, 0, err
	}
	var app apps.App
	for k := 0; k < ss.Shards(); k++ {
		a, err := apps.New(appName, scale)
		if err != nil {
			//nvlint:ignore errcontract best-effort cleanup; the build error is reported
			_ = ss.Close()
			return nil, 0, err
		}
		if err := apps.RunContext(ctx, a, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
			//nvlint:ignore errcontract best-effort cleanup; the run error is reported
			_ = ss.Close()
			return nil, 0, err
		}
		// The last shard replays the whole run, so its app carries the full
		// post-processing state the report prints.
		app = a
	}
	stack, err := ss.Merge()
	if err != nil {
		return nil, 0, err
	}
	pipeline.PublishStageMetrics(reg, "accesses", stack.Tracer.Sampled, 0,
		obs.L("app", appName), obs.L("mode", mode))
	return instrumented{app: app, tr: stack.Tracer}, stack.Tracer.Sampled, nil
}

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvscavenger")
	appName := fs.String("app", "", "application to instrument: "+cli.AppList())
	scale := fs.Float64("scale", 1.0, "problem scale (1.0 = calibrated default)")
	iters := fs.Int("iterations", 10, "main-loop iterations to instrument")
	mode := fs.String("mode", "fast", "stack attribution mode: fast (whole stack) or slow (per frame)")
	placement := fs.Bool("placement", false, "print hybrid DRAM/NVRAM placement advice")
	endurance := fs.Bool("endurance", false, "print PCRAM endurance estimates for NVRAM-placed objects")
	category := fs.Int("category", 2, "NVRAM category for the placement policy (1 or 2)")
	topN := fs.Int("top", 25, "number of objects to print per section")
	jsonOut := fs.String("json", "", "write the full analysis snapshot as JSON to this file (embeds the metrics block)")
	metricsOut := fs.String("metrics", "", "write the run's observability snapshot to this file (.json for JSON, text otherwise)")
	timeout := fs.Duration("timeout", 0, "abort the instrumented run after this long (0 = no limit)")
	faultSpec := fs.String("fault", "", "chaos run: deterministic fault spec, e.g. access:every=50,seed=7 or worker:every=1")
	sampleSpec := fs.String("sample", "", "seeded sampled tracing, e.g. bernoulli:rate=64,seed=7 or bytes:rate=4096 (default: observe every reference)")
	shards := fs.Int("shards", 0, "split the instrumented run across this many deterministic shards (analysis byte-identical to -shards 1; incompatible with -fault)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cli.RequireApp(fs, *appName); err != nil {
		return err
	}
	if *shards > 1 && *faultSpec != "" {
		return fmt.Errorf("-shards and -fault are incompatible (fault injection targets the one live pipeline of a run)")
	}

	stackMode := memtrace.FastStack
	switch *mode {
	case "fast":
	case "slow":
		stackMode = memtrace.SlowStack
	default:
		return fmt.Errorf("unknown -mode %q (fast or slow)", *mode)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var fault faults.Spec
	if *faultSpec != "" {
		var err error
		fault, err = faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
	}

	sample, err := memtrace.ParseSampleSpec(*sampleSpec)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	eng := runner.New(runner.Config{Jobs: 1, Metrics: reg})
	key := runner.Key{App: *appName, Mode: *mode, Scale: *scale, Iterations: *iters}
	if sample.Enabled() {
		// Sampled runs are keyed apart from full runs (same contract as
		// the session-level WithSample option).
		key.Profile = "sample=" + sample.String()
	}
	fn := func(ctx context.Context) (any, uint64, error) {
		if *shards > 1 {
			return runSharded(ctx, *appName, *scale, *iters, *shards, stackMode, sample, reg, *mode)
		}
		app, err := apps.New(*appName, *scale)
		if err != nil {
			return nil, 0, err
		}
		// A stats tap terminates the access stream so the batch flow is
		// visible in the pipeline stage counters of -metrics.
		var tap trace.Sink = &trace.Stats{}
		if fault.Is(faults.TargetAccess) || fault.Is(faults.TargetSink) {
			tap = faults.Sink(fault, tap)
		}
		stack, err := pipeline.Build(pipeline.Config{
			StackMode:  stackMode,
			Sample:     sample,
			AccessTaps: []trace.Sink{tap},
			Metrics:    reg,
			Labels:     []obs.Label{obs.L("app", *appName), obs.L("mode", *mode)},
		})
		if err != nil {
			return nil, 0, err
		}
		if err := apps.RunContext(ctx, app, stack.Tracer, *iters); err != nil {
			return nil, 0, err
		}
		if err := stack.Close(); err != nil {
			return nil, 0, err
		}
		return instrumented{app: app, tr: stack.Tracer}, stack.Tracer.Sampled, nil
	}
	if fault.Is(faults.TargetWorker) {
		fn = faults.Worker(fault, key.String(), fn)
	}
	v, err := eng.Do(ctx, key, fn)
	if err != nil {
		return err
	}
	ins := v.(instrumented)
	app, tr := ins.app, ins.tr
	tr.ExportMetrics(reg, obs.L("app", *appName), obs.L("mode", *mode))

	fmt.Fprintf(out, "== %s: %s ==\n", app.Name(), app.Description())
	fmt.Fprintf(out, "scale %.2f, %d iterations, %s stack mode\n", *scale, *iters, stackMode)
	if m := eng.Metrics(); len(m.Runs) == 1 {
		r := m.Runs[0]
		fmt.Fprintf(out, "run wall time %.2fs (%.1fM references/s)\n", r.Wall.Seconds(), r.RefsPerSec()/1e6)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "memory footprint: %.1f MB (stack high water %.1f KB)\n",
		float64(tr.Footprint())/(1<<20), float64(tr.StackHighWater())/1024)
	fmt.Fprintf(out, "instructions retired: %d\n", tr.Instructions())
	if sample.Enabled() {
		total := tr.Sampled + tr.SampledOut
		pct := 0.0
		if total > 0 {
			pct = float64(tr.Sampled) / float64(total) * 100
		}
		fmt.Fprintf(out, "sampled tracing: %s — observed %d of %d references (%.2f%%)\n",
			sample, tr.Sampled, total, pct)
		est := tr.Estimator()
		type estRow struct {
			obj  *memtrace.Object
			loop memtrace.EstStats
		}
		var rows []estRow
		for _, o := range tr.Objects() {
			if s := est.Loop(o); s.Refs() > 0 {
				rows = append(rows, estRow{obj: o, loop: s})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].loop.Refs() != rows[j].loop.Refs() {
				return rows[i].loop.Refs() > rows[j].loop.Refs()
			}
			return rows[i].obj.ID < rows[j].obj.ID
		})
		fmt.Fprintf(out, "estimated true main-loop counts (top %d of %d observed objects):\n", *topN, len(rows))
		etbl := cli.NewTable(out)
		etbl.Row("object", "segment", "est reads", "est writes", "factor")
		for i, r := range rows {
			if i >= *topN {
				break
			}
			etbl.Rowf("  %s\t%s\t%.0f\t%.0f\t%.1f",
				r.obj.Name, r.obj.Segment, r.loop.Reads, r.loop.Writes, est.Factor(r.obj))
		}
		if err := etbl.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintln(out)

	// Segment summary (Table V style).
	row := core.StackAnalysis(tr)
	fmt.Fprintf(out, "stack data: r/w ratio %.2f (first iteration %.2f), %.1f%% of references\n",
		row.SteadyRatio, row.FirstIterRatio, row.ReferencePct)
	for _, seg := range []trace.Segment{trace.SegGlobal, trace.SegHeap} {
		s := tr.SegmentTotals(seg, 1, tr.MainLoopIterations())
		fmt.Fprintf(out, "%s data: %d reads, %d writes (ratio %.2f)\n",
			seg, s.Reads, s.Writes, s.ReadWriteRatio())
	}

	// Per-object analysis.
	recs := core.ObjectRecords(tr)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Refs > recs[j].Refs })
	fmt.Fprintf(out, "\nglobal+heap objects by main-loop references (top %d of %d):\n", *topN, len(recs))
	tbl := cli.NewTable(out)
	tbl.Row("object", "segment", "r/w ratio", "refs/Minstr", "size (KB)", "iters")
	for i, r := range recs {
		if i >= *topN {
			break
		}
		tbl.Rowf("%s\t%s\t%.2f\t%.1f\t%.1f\t%d",
			r.Name, r.Segment, r.RWRatio, r.RefRate, float64(r.SizeBytes)/1024, r.TouchedIters)
	}
	if err := tbl.Flush(); err != nil {
		return err
	}

	if stackMode == memtrace.SlowStack {
		frames := core.StackFrameRecords(tr)
		fig := core.SummarizeFrames(frames)
		sort.Slice(frames, func(i, j int) bool { return frames[i].Refs > frames[j].Refs })
		fmt.Fprintf(out, "\nstack frames by references (top %d of %d):\n", *topN, len(frames))
		ftbl := cli.NewTable(out)
		ftbl.Row("routine", "r/w ratio", "refs/Minstr", "frame (KB)")
		for i, r := range frames {
			if i >= *topN {
				break
			}
			ftbl.Rowf("%s\t%.2f\t%.1f\t%.1f", r.Name, r.RWRatio, r.RefRate, float64(r.SizeBytes)/1024)
		}
		if err := ftbl.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "frames with r/w > 10: %.1f%% of objects, %.1f%% of references\n",
			fig.CountOver10*100, fig.RefsOver10*100)
		fmt.Fprintf(out, "frames with r/w > 50: %.1f%% of objects, %.1f%% of references\n",
			fig.CountOver50*100, fig.RefsOver50*100)
	}

	if *placement {
		cat := core.Category2
		if *category == 1 {
			cat = core.Category1
		}
		plan := core.Plan(tr, core.DefaultPolicy(cat))
		fmt.Fprintf(out, "\nhybrid placement (%s):\n", cat)
		fmt.Fprintf(out, "NVRAM %.1f MB, migratable %.1f MB, DRAM %.1f MB -> %.1f%% of the working set suits NVRAM\n",
			float64(plan.NVRAMBytes)/(1<<20), float64(plan.MigratableBytes)/(1<<20),
			float64(plan.DRAMBytes)/(1<<20), plan.NVRAMShare*100)
		ptbl := cli.NewTable(out)
		for i, adv := range plan.Advices {
			if i >= *topN {
				break
			}
			ptbl.Rowf("  %s\t%s\t%s", adv.Object.Name, adv.Target, adv.Reason)
		}
		if err := ptbl.Flush(); err != nil {
			return err
		}

		if *endurance {
			fmt.Fprintf(out, "\nPCRAM endurance for NVRAM-placed objects:\n")
			prof := dramsim.PCRAM()
			for _, adv := range plan.Advices {
				if adv.Target != core.TargetNVRAM {
					continue
				}
				est := core.Endurance(adv.Object, prof, tr.MainLoopIterations())
				fmt.Fprintf(out, "  %-20s %10.4f writes/byte/step -> %.2e steps to wear-out\n",
					est.ObjectName, est.WritesPerBytePerStep, est.LifetimeSteps)
			}
		}
	}

	if *jsonOut != "" {
		var policyPtr *core.Policy
		if *placement {
			p := core.DefaultPolicy(core.Category(*category))
			policyPtr = &p
		}
		snap := core.BuildSnapshot(app.Name(), tr, policyPtr)
		metrics := reg.Snapshot()
		snap.Metrics = &metrics
		// The analysis travels in the versioned JobResult envelope — the
		// same wire shape the nvserved jobs API serves — so downstream
		// tooling reads one schema regardless of the frontend.
		res := experiments.NewJobResult(experiments.JobSpec{
			Scale:      *scale,
			Iterations: *iters,
			Apps:       []string{app.Name()},
			Mode:       *mode,
			Fault:      *faultSpec,
			Sample:     *sampleSpec,
			Shards:     *shards,
		}, experiments.StateDone)
		res.Analysis = &snap
		if err := cli.WriteValueJSONFile(*jsonOut, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote analysis snapshot to %s\n", *jsonOut)
	}
	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, reg.Snapshot()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	return nil
}
