// Package s3dmini is the S3D proxy: a direct numerical simulation of
// turbulent combustion (paper §VI; 60x60x60 grid).
//
// The S3D profile in §VII:
//
//   - ~63.1% of references hit the stack with a read/write ratio of ~6.04:
//     at every grid point the species state is staged into stack locals and
//     re-read repeatedly by the reaction-rate evaluation.
//   - Read-only look-up tables holding coefficients for linear
//     interpolation (the chemistry rate tables) are the read-only
//     population.
//   - Only a small slice of the footprint (~1.4%: 7.1 MB of 512 MB) is
//     untouched during the main loop — a restart/checkpoint staging buffer.
//   - Reference rates are constant across iterations: every timestep sweeps
//     the same grid with the same kernels (Figure 10).
//
// The proxy integrates nspec species with a 3-reaction toy mechanism over a
// periodic 3D grid: 7-point stencil transport for momentum and temperature,
// table-interpolated Arrhenius-like rates, and explicit species update.
package s3dmini

import (
	"fmt"
	"math"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/apps/kernels"
	"nvscavenger/internal/memtrace"
)

func init() {
	apps.Register("s3d", func(scale float64) apps.App { return New(scale) })
}

const (
	nspec     = 9 // species count of the toy mechanism
	nreact    = 3 // reactions
	tableSize = 4096
)

// App is the S3D proxy.
type App struct {
	scale  float64
	points int

	// heap allocatables (S3D is Fortran 90)
	species   []memtrace.F64 // nspec mass-fraction fields
	rhs       []memtrace.F64 // nspec right-hand sides
	u, v, w   memtrace.F64   // velocity
	temp      memtrace.F64   // temperature
	press     memtrace.F64   // pressure
	speciesOb []*memtrace.Object

	// read-only chemistry rate tables (global)
	rateTable memtrace.F64

	// restart staging buffer: untouched during the main loop
	qsave memtrace.F64

	checksum float64
}

// New returns an S3D proxy at the given scale (1.0 ~ 6 MB footprint:
// Table I's 512 MB per task divided by ~64, with the 60^3 grid scaled to
// ~32^3 points).
func New(scale float64) *App {
	n := int(32768 * scale)
	if n < 512 {
		n = 512
	}
	return &App{scale: scale, points: n}
}

// Name implements apps.App.
func (a *App) Name() string { return "s3d" }

// Description implements apps.App.
func (a *App) Description() string {
	return "direct numerical simulation of turbulent combustion (S3D proxy, 60x60x60)"
}

// Setup allocates the fields and builds the chemistry tables.
func (a *App) Setup(tr *memtrace.Tracer) error {
	n := a.points
	rng := kernels.NewRNG(53)

	a.species = make([]memtrace.F64, nspec)
	a.rhs = make([]memtrace.F64, nspec)
	a.speciesOb = make([]*memtrace.Object, nspec)
	for s := 0; s < nspec; s++ {
		a.species[s], a.speciesOb[s] = tr.HeapF64(fmt.Sprintf("yspecies_%d", s), "variables_m.f90:88", n)
		a.rhs[s], _ = tr.HeapF64(fmt.Sprintf("rhs_%d", s), "rhsf.f90:61", n)
	}
	a.u, _ = tr.HeapF64("u_vel", "variables_m.f90:90", n)
	a.v, _ = tr.HeapF64("v_vel", "variables_m.f90:91", n)
	a.w, _ = tr.HeapF64("w_vel", "variables_m.f90:92", n)
	a.temp, _ = tr.HeapF64("temp", "variables_m.f90:93", n)
	a.press, _ = tr.HeapF64("pressure", "variables_m.f90:94", n)

	a.rateTable, _ = tr.GlobalF64("rate_table", nreact*tableSize)
	a.qsave, _ = tr.GlobalF64("qsave_restart", n/4)

	fr := tr.Enter("initialize_field")
	defer tr.Leave()
	_ = fr
	for s := 0; s < nspec; s++ {
		kernels.FillRandom(a.species[s], rng, 0.01, 0.12)
		a.rhs[s].Fill(0)
	}
	kernels.FillRandom(a.u, rng, -10, 10)
	kernels.FillRandom(a.v, rng, -10, 10)
	kernels.FillRandom(a.w, rng, -10, 10)
	kernels.FillRandom(a.temp, rng, 800, 1800)
	kernels.FillRandom(a.press, rng, 0.9e5, 1.1e5)

	// Arrhenius-like rate tables over normalized temperature.
	for r := 0; r < nreact; r++ {
		aFac := 1e3 * float64(r+1)
		eAct := 4.0 + 2.0*float64(r)
		for i := 0; i < tableSize; i++ {
			tNorm := 0.5 + 1.5*float64(i)/float64(tableSize-1)
			a.rateTable.Store(r*tableSize+i, aFac*math.Exp(-eAct/tNorm)*1e-6)
		}
	}
	tr.Compute(uint64(nreact * tableSize * 8))
	kernels.FillRandom(a.qsave, rng, 0, 1)
	return nil
}

// Step advances one Runge-Kutta-like stage over the whole grid.
func (a *App) Step(tr *memtrace.Tracer, iter int) error {
	n := a.points
	// Periodic 7-point stencil strides (flattened 3D approximation).
	strideY := 32
	strideZ := 1024
	sum := 0.0

	// Momentum and temperature transport: 7-point stencils over the heap
	// fields.
	fr := tr.Enter("computeVectorGradient")
	for _, f := range []memtrace.F64{a.u, a.v, a.w} {
		for i := 0; i < n; i++ {
			c := f.Load(i)
			lap := f.Load((i+1)%n) + f.Load((i-1+n)%n) +
				f.Load((i+strideY)%n) + f.Load((i-strideY+n)%n) +
				f.Load((i+strideZ)%n) + f.Load((i-strideZ+n)%n) - 6*c
			f.Store(i, c+1e-4*lap)
		}
		tr.Compute(uint64(9 * n))
	}
	tr.Leave()
	_ = fr

	frt := tr.Enter("computeHeatFlux")
	for i := 0; i < n; i++ {
		c := a.temp.Load(i)
		lap := a.temp.Load((i+1)%n) + a.temp.Load((i-1+n)%n) +
			a.temp.Load((i+strideY)%n) + a.temp.Load((i-strideY+n)%n) +
			a.temp.Load((i+strideZ)%n) + a.temp.Load((i-strideZ+n)%n) - 6*c
		a.temp.Store(i, c+1e-4*lap)
		a.press.Store(i, a.press.Load(i)*0.99999)
	}
	tr.Compute(uint64(11 * n))
	tr.Leave()
	_ = frt

	// Chemistry: per grid point, stage the species vector into stack
	// locals, evaluate table-interpolated reaction rates that re-read the
	// staged state repeatedly, and update the species fields.
	frc := tr.Enter("reaction_rate")
	yloc := frc.LocalF64(nspec)
	wdot := frc.LocalF64(nspec)
	for i := 0; i < n; i++ {
		// Stage: heap reads, stack writes.
		for s := 0; s < nspec; s++ {
			yloc.Store(s, a.species[s].Load(i))
		}
		tNorm := a.temp.Load(i) / 1200.0
		ti := int((tNorm - 0.5) / 1.5 * float64(tableSize-1))
		if ti < 0 {
			ti = 0
		}
		if ti >= tableSize-1 {
			ti = tableSize - 2
		}
		// Rates: each species' production term reads the staged state ten
		// times (three reactions with multi-species stoichiometry) and two
		// adjacent read-only table entries per reaction pair.
		for s := 0; s < nspec; s++ {
			r0 := a.rateTable.Load(s%nreact*tableSize + ti)
			r1 := a.rateTable.Load(s%nreact*tableSize + ti + 1)
			rate := r0 + (r1-r0)*0.5
			acc := 0.0
			for k := 0; k < 10; k++ {
				acc += yloc.Load((s + k) % nspec)
			}
			wdot.Store(s, rate*acc)
			tr.Compute(16)
		}
		// Update: read the rate, advance the heap field.
		for s := 0; s < nspec; s++ {
			d := wdot.Load(s)
			a.species[s].Store(i, clamp01(a.species[s].Load(i)+1e-5*(d-0.01*yloc.Load(s))))
		}
		tr.Compute(uint64(4 * nspec))
		sum += a.temp.Load(i) * 1e-6
	}
	tr.Leave()
	_ = frc

	// Runge-Kutta register update: fold the transported state into the
	// right-hand-side carry arrays (strided: only the RK carry points).
	fri := tr.Enter("integrate_erk")
	for s := 0; s < nspec; s++ {
		f := a.rhs[s]
		for i := 0; i < n; i += 4 {
			f.Store(i, f.Load(i)*0.5+float64(iter)*1e-9)
		}
	}
	tr.Compute(uint64(nspec * n / 2))
	tr.Leave()
	_ = fri

	a.checksum = sum
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Post writes the restart file staging buffer.
func (a *App) Post(tr *memtrace.Tracer) error {
	fr := tr.Enter("write_savefile")
	for i := 0; i < a.qsave.Len(); i++ {
		a.qsave.Store(i, a.species[0].Load(i%a.species[0].Len()))
	}
	tr.Compute(uint64(a.qsave.Len()))
	tr.Leave()
	_ = fr
	return nil
}

// Check validates species fractions and temperature.
func (a *App) Check() error {
	if math.IsNaN(a.checksum) || math.IsInf(a.checksum, 0) {
		return fmt.Errorf("s3dmini: checksum diverged")
	}
	for s := 0; s < nspec; s++ {
		for i, y := range a.species[s].Raw() {
			if y < 0 || y > 1 || math.IsNaN(y) {
				return fmt.Errorf("s3dmini: species %d point %d out of range: %v", s, i, y)
			}
		}
	}
	return nil
}

// Input implements apps.InputDescriber (Table I's input column).
func (a *App) Input() string {
	return fmt.Sprintf("%d grid points, %d species, %d reactions", a.points, nspec, nreact)
}
