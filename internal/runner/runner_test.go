package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(app string) Key {
	return Key{App: app, Mode: "fast", Scale: 1, Iterations: 10}
}

func TestDoMemoizes(t *testing.T) {
	e := New(Config{Jobs: 2})
	var execs atomic.Int64
	fn := func(ctx context.Context) (any, uint64, error) {
		execs.Add(1)
		return 42, 7, nil
	}
	for i := 0; i < 3; i++ {
		v, err := e.Do(context.Background(), key("gtc"), fn)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("value = %v", v)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	m := e.Metrics()
	if m.Misses != 1 || m.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", m.Hits, m.Misses)
	}
	if len(m.Runs) != 1 || m.Runs[0].Refs != 7 {
		t.Fatalf("run records = %+v", m.Runs)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(Config{Jobs: 8})
	var execs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, uint64, error) {
		execs.Add(1)
		<-release
		return "shared", 1, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Do(context.Background(), key("cam"), fn)
		}(i)
	}
	// Let every caller reach the cache before releasing the one execution.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (single-flight)", got)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].(string) != "shared" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
}

func TestDoBoundsWorkers(t *testing.T) {
	e := New(Config{Jobs: 2})
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Do(context.Background(), key(fmt.Sprintf("app%d", i)),
				func(ctx context.Context) (any, uint64, error) {
					n := inFlight.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(5 * time.Millisecond)
					inFlight.Add(-1)
					return i, 0, nil
				})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency = %d, want <= 2", p)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	e := New(Config{Jobs: 1})
	boom := errors.New("boom")
	calls := 0
	fn := func(ctx context.Context) (any, uint64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return "ok", 1, nil
	}
	if _, err := e.Do(context.Background(), key("s3d"), fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := e.Do(context.Background(), key("s3d"), fn)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if v.(string) != "ok" {
		t.Fatalf("v = %v", v)
	}
	if m := e.Metrics(); m.Errors != 1 {
		t.Fatalf("errors = %d, want 1", m.Errors)
	}
}

func TestDoContextCancelledBeforeStart(t *testing.T) {
	e := New(Config{Jobs: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Do(ctx, key("gtc"), func(ctx context.Context) (any, uint64, error) {
		t.Error("fn must not run on a cancelled context")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoContextCancelledWhileQueued(t *testing.T) {
	e := New(Config{Jobs: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), key("hog"), func(ctx context.Context) (any, uint64, error) {
		close(started)
		<-block
		return nil, 0, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, key("queued"), func(ctx context.Context) (any, uint64, error) {
			return nil, 0, nil
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Do did not honor cancellation")
	}
	close(block)
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	e := New(Config{Jobs: 1, Progress: func(ev Event) {
		mu.Lock()
		kinds[ev.Kind]++
		mu.Unlock()
	}})
	fn := func(ctx context.Context) (any, uint64, error) { return 1, 2, nil }
	if _, err := e.Do(context.Background(), key("gtc"), fn); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), key("gtc"), fn); err != nil {
		t.Fatal(err)
	}
	if kinds[EventStart] != 1 || kinds[EventDone] != 1 || kinds[EventCached] != 1 {
		t.Fatalf("events = %v", kinds)
	}
}

func TestCollectOrderAndError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Collect(context.Background(), items, func(ctx context.Context, i int) (int, error) {
		time.Sleep(time.Duration(7-i) * time.Millisecond) // finish out of order
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	boom := errors.New("boom")
	_, err = Collect(context.Background(), items, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Second):
			return i, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root cause", err)
	}
}

func TestMetricsWallSummary(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 3; i++ {
		_, err := e.Do(context.Background(), key(fmt.Sprintf("a%d", i)),
			func(ctx context.Context) (any, uint64, error) { return i, 10, nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.TotalRefs() != 30 {
		t.Fatalf("total refs = %d", m.TotalRefs())
	}
	sum := m.WallSummary()
	if sum.Count() != 3 || sum.Total() < 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
