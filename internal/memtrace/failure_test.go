package memtrace

import (
	"errors"
	"testing"

	"nvscavenger/internal/trace"
)

// failingSink fails after a set number of batches.
type failingSink struct {
	after int
	calls int
	err   error
}

func (f *failingSink) Flush(batch []trace.Access) error {
	f.calls++
	if f.calls > f.after {
		return f.err
	}
	return nil
}

func TestSinkErrorSurfacesAtClose(t *testing.T) {
	boom := errors.New("downstream simulator died")
	sink := &failingSink{after: 1, err: boom}
	tr := New(Config{Sink: sink, BufferSize: 8})
	g, _ := tr.GlobalF64("x", 64)
	tr.BeginIteration()
	for i := 0; i < 64; i++ {
		g.Store(i, 1) // several buffer flushes
	}
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the sink error", err)
	}
	// Close is idempotent even after an error.
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestSinkErrorDoesNotCorruptAnalysis(t *testing.T) {
	sink := &failingSink{after: 0, err: errors.New("x")}
	tr := New(Config{Sink: sink, BufferSize: 4})
	g, gobj := tr.GlobalF64("x", 16)
	tr.BeginIteration()
	for i := 0; i < 16; i++ {
		g.Store(i, 1)
	}
	_ = tr.Close()
	// The attribution layer keeps working even when the trace pipeline is
	// broken: per-object statistics are complete.
	if gobj.Total().Writes != 16 {
		t.Fatalf("writes = %d, want 16 despite sink failure", gobj.Total().Writes)
	}
}

// panicApp helps confirm the tracer state guards fire even under misuse.
func TestMisuseGuards(t *testing.T) {
	tr := New(Config{StackMode: SlowStack})
	// Accessing before any iteration or frame is legal (phase 0).
	g, _ := tr.GlobalF64("pre", 8)
	g.Store(0, 1)
	// Double-close, zero-size allocations, bad frees are covered elsewhere;
	// here: Leave/Enter imbalance detection.
	tr.Enter("a")
	tr.Leave()
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Leave must panic")
		}
	}()
	tr.Leave()
}
