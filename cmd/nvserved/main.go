// Command nvserved is the experiments-as-a-service daemon: a long-running
// HTTP/JSON frontend (internal/served) over the experiment session, the
// shared single-flight run cache and the obs registry.  Clients submit
// versioned experiment specs (experiments.JobSpec) to the jobs API, follow
// per-run progress as an NDJSON event stream, and fetch reports that are
// byte-identical to the nvreport CLI's output for the same spec.
//
// Usage:
//
//	nvserved                        # listen on :8337
//	nvserved -addr 127.0.0.1:9000   # explicit listen address
//	nvserved -queue 64 -workers 4   # deeper queue, more concurrent jobs
//	nvserved -state-dir /var/lib/nvserved   # crash-safe job journal
//	nvserved -fault writer:every=100,seed=7   # chaos on the serving path
//
// A typical session:
//
//	curl -d '{"exhibits":["table5"],"scale":0.25}' localhost:8337/jobs
//	curl localhost:8337/jobs/job-1/events        # stream progress
//	curl localhost:8337/jobs/job-1/report        # fetch the report
//	curl localhost:8337/metrics                  # observability snapshot
//
// On SIGINT/SIGTERM the daemon drains: intake stops (503), in-flight jobs
// finish until -drain-timeout, stragglers are cancelled, and the final
// metrics snapshot is flushed (-metrics) before exit.
//
// With -state-dir the daemon is crash-safe: every job transition is
// committed to a write-ahead journal (<state-dir>/journal.wal) before it
// is acknowledged, and a restart replays the log — finished jobs come
// back with their reports, queued and mid-run jobs are re-enqueued and
// re-run deterministically.  Startup prints a recovery summary, and
// /healthz reports it (recovered=true after a crash restart).
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/served"
)

func main() { cli.Main("nvserved", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvserved")
	addr := fs.String("addr", ":8337", "listen address")
	queue := fs.Int("queue", 16, "job queue capacity (full queue rejects with 429)")
	workers := fs.Int("workers", 2, "concurrently running jobs")
	jobs := fs.Int("jobs", 0, "per-job run worker pool bound when the spec leaves it unset (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown drain waits before cancelling in-flight jobs")
	metricsOut := fs.String("metrics", "", "flush the final observability snapshot to this file on shutdown (.json for JSON, text otherwise)")
	stateDir := fs.String("state-dir", "", "directory for the crash-safe job journal; empty keeps jobs in memory only")
	faultSpec := fs.String("fault", "", "chaos on the serving path: writer-target fault spec, e.g. writer:every=100,seed=7")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failed jobs that trip the intake breaker (0 = disabled)")
	breakerCooldown := fs.Int("breaker-cooldown", 4, "submissions rejected while the breaker is open before a probe is allowed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := served.Config{Queue: *queue, Workers: *workers, Jobs: *jobs, StateDir: *stateDir}
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Fault = spec
	}
	if *breakerThreshold > 0 {
		cfg.Breaker = resilience.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
		}
	}
	m, _, err := served.Open(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, m, *drainTimeout, *metricsOut, out)
}

// serve runs the HTTP frontend on ln until ctx is cancelled (the signal
// handler), then drains: stop intake, finish or cancel in-flight jobs
// within drainTimeout, shut the listener down and flush metrics.
func serve(ctx context.Context, ln net.Listener, m *served.Manager, drainTimeout time.Duration, metricsOut string, out io.Writer) error {
	srv := &http.Server{Handler: served.NewServer(m)}
	fmt.Fprintf(out, "nvserved: listening on %s\n", ln.Addr())
	if rec, ok := m.RecoveryInfo(); ok {
		fmt.Fprintf(out, "nvserved: journal: %d records replayed, %d jobs restored, %d requeued (%d mid-run), %d torn bytes truncated",
			rec.Records, rec.Restored, rec.Requeued, rec.Rerun, rec.TruncatedBytes)
		if rec.Recovered {
			fmt.Fprint(out, " — recovered from unclean shutdown")
		}
		fmt.Fprintln(out)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain into.
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "nvserved: shutdown signal, draining (timeout %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := m.Drain(dctx)
	if drainErr != nil {
		fmt.Fprintf(out, "nvserved: drain cancelled in-flight jobs: %v\n", drainErr)
	}
	shutdownErr := srv.Shutdown(dctx)
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	if metricsOut != "" {
		if err := cli.WriteMetricsFile(metricsOut, m.Registry().Snapshot()); err != nil {
			return err
		}
		fmt.Fprintf(out, "nvserved: wrote metrics snapshot to %s\n", metricsOut)
	}

	done, failed, cancelled := 0, 0, 0
	for _, job := range m.Jobs() {
		switch job.State() {
		case "done":
			done++
		case "failed":
			failed++
		case "cancelled":
			cancelled++
		}
	}
	fmt.Fprintf(out, "nvserved: drained: %d jobs (%d done, %d failed, %d cancelled)\n",
		len(m.Jobs()), done, failed, cancelled)
	return shutdownErr
}
