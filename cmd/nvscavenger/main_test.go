package main

import (
	"bytes"
	"strings"
	"testing"

	"os"
	"path/filepath"

	"nvscavenger/internal/core"
)

func TestRunFastMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"gtc", "memory footprint", "stack data", "global+heap objects"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSlowModeWithPlacement(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "cam", "-scale", "0.05", "-iterations", "3",
		"-mode", "slow", "-placement", "-endurance", "-category", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"stack frames by references", "hybrid placement", "category-1", "endurance"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -app must error")
	}
	if err := run([]string{"-app", "nonesuch"}, &out); err == nil {
		t.Error("unknown app must error")
	}
	if err := run([]string{"-app", "gtc", "-mode", "weird"}, &out); err == nil {
		t.Error("unknown mode must error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRunJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2",
		"-placement", "-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := core.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.App != "gtc" || len(snap.Objects) == 0 || snap.Placement == nil {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
}
