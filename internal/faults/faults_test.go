package faults

import (
	"context"
	"errors"
	"strings"
	"testing"

	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
	"nvscavenger/internal/trace"
)

func TestParseEverySpec(t *testing.T) {
	spec, err := Parse("sink:every=50,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Target != TargetSink || spec.Every != 50 || spec.Seed != 7 || spec.Prob != 0 || spec.Mode != "" {
		t.Fatalf("spec = %+v", spec)
	}
	if !spec.Enabled() || !spec.Is(TargetSink) {
		t.Fatal("Enabled/Is must reflect the parsed target")
	}
}

func TestParseProbPanicSpec(t *testing.T) {
	spec, err := Parse("worker:prob=0.25,seed=3,mode=panic")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Target != TargetWorker || spec.Prob != 0.25 || spec.Seed != 3 || spec.Mode != ModePanic {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseDefaultsSeed(t *testing.T) {
	spec, err := Parse("access:every=10")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 {
		t.Fatalf("seed = %d, want default 1", spec.Seed)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, text := range []string{
		"",
		"sink",                      // no parameters
		"bogus:every=5",             // unknown target
		"sink:every=0",              // zero period
		"sink:prob=0",               // out-of-range probability
		"sink:prob=1.5",             // out-of-range probability
		"sink:seed=7",               // neither every nor prob
		"sink:every=5,prob=0.5",     // both
		"sink:every=5,mode=explode", // unknown mode
		"sink:every=5,magic=1",      // unknown key
		"sink:every",                // not key=value
		"sink:every=5,mode=short",   // short is writer-only
		"worker:every=5,mode=torn",  // torn is writer-only
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	for _, text := range []string{
		"sink:every=50,seed=7",
		"worker:mode=panic,prob=0.25,seed=3",
		"writer:every=3,mode=short,seed=5",
		"writer:every=3,mode=torn,seed=5",
	} {
		spec := MustParse(text)
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round trip changed the spec: %+v vs %+v", spec, again)
		}
	}
	if (Spec{}).String() != "" {
		t.Error("zero spec must render empty")
	}
}

// TestInjectorEveryNth: a count-based injector trips exactly the Nth,
// 2Nth, ... calls — nothing else.
func TestInjectorEveryNth(t *testing.T) {
	in := Spec{Target: TargetSink, Every: 3}.NewInjector()
	var trips []uint64
	for i := 0; i < 9; i++ {
		if call, trip := in.Trip(); trip {
			trips = append(trips, call)
		}
	}
	want := []uint64{3, 6, 9}
	if len(trips) != len(want) {
		t.Fatalf("trips = %v, want %v", trips, want)
	}
	for i := range want {
		if trips[i] != want[i] {
			t.Fatalf("trips = %v, want %v", trips, want)
		}
	}
}

// TestInjectorSeededProbDeterministic: two injectors with the same spec
// produce the same decision sequence; a different seed produces a
// different one.
func TestInjectorSeededProbDeterministic(t *testing.T) {
	spec := Spec{Target: TargetSink, Prob: 0.3, Seed: 42}
	a, b := spec.NewInjector(), spec.NewInjector()
	tripped := 0
	for i := 0; i < 1000; i++ {
		_, ta := a.Trip()
		_, tb := b.Trip()
		if ta != tb {
			t.Fatalf("decision %d diverged between identical injectors", i)
		}
		if ta {
			tripped++
		}
	}
	if tripped == 0 || tripped == 1000 {
		t.Fatalf("prob=0.3 tripped %d/1000 — stream looks degenerate", tripped)
	}
	reference := spec.NewInjector()
	other := Spec{Target: TargetSink, Prob: 0.3, Seed: 43}.NewInjector()
	same := true
	for i := 0; i < 1000; i++ {
		_, ta := reference.Trip()
		_, tb := other.Trip()
		if ta != tb {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestTxSinkDecorator(t *testing.T) {
	var flushed int
	next := trace.TxSinkFunc(func(batch []trace.Transaction) error { flushed += len(batch); return nil })
	sink := TxSink(Spec{Target: TargetSink, Every: 2}, next)
	batch := []trace.Transaction{{Addr: 0x40}}
	if err := sink.FlushTx(batch); err != nil {
		t.Fatalf("call 1 must pass: %v", err)
	}
	err := sink.FlushTx(batch)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2 err = %v, want ErrInjected", err)
	}
	if flushed != 1 {
		t.Fatalf("flushed = %d, want 1 (failed batch must not reach next)", flushed)
	}
}

func TestSinkAndPerfSinkDecorators(t *testing.T) {
	s := Sink(Spec{Target: TargetAccess, Every: 1}, trace.SinkFunc(func([]trace.Access) error {
		t.Fatal("every=1 must never reach the wrapped sink")
		return nil
	}))
	if err := s.Flush([]trace.Access{{Addr: 1, Size: 8}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	p := PerfSink(Spec{Target: TargetPerf, Every: 1}, trace.PerfSinkFunc(func([]trace.PerfEvent) error {
		t.Fatal("every=1 must never reach the wrapped perf sink")
		return nil
	}))
	if err := p.FlushEvents([]trace.PerfEvent{{Gap: 3}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestStageDecorator(t *testing.T) {
	var got int
	next := pipeline.StageFunc[int](func(batch []int) error { got += len(batch); return nil })
	st := Stage[int](Spec{Target: TargetSink, Every: 2}, next)
	if err := st.Flush([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush([]int{3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got != 2 {
		t.Fatalf("forwarded = %d, want 2", got)
	}
}

func TestWriterDecorator(t *testing.T) {
	var sb strings.Builder
	w := Writer(Spec{Target: TargetWriter, Every: 2}, &sb)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("lost"))
	if !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("write 2: n=%d err=%v, want 0/ErrInjected", n, err)
	}
	if sb.String() != "ok" {
		t.Fatalf("underlying writer got %q", sb.String())
	}
}

// TestWriterShortMode: a tripped short write delivers a prefix to the
// underlying writer, reports the short count, and fails with an error
// carrying both ErrInjected and ErrNoSpace; untripped calls pass through
// whole.
func TestWriterShortMode(t *testing.T) {
	var sb strings.Builder
	w := Writer(Spec{Target: TargetWriter, Every: 2, Mode: ModeShort}, &sb)
	if _, err := w.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("efgh"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write err = %v, want ErrInjected and ErrNoSpace", err)
	}
	if n != 2 {
		t.Fatalf("short write n = %d, want 2 (half the buffer)", n)
	}
	if sb.String() != "abcdef" {
		t.Fatalf("underlying writer got %q, want %q", sb.String(), "abcdef")
	}
}

// TestWriterTornMode: a tripped torn write delivers a prefix but lies
// about it — full length, nil error — so the data loss is invisible
// until someone re-reads what was written.
func TestWriterTornMode(t *testing.T) {
	var sb strings.Builder
	w := Writer(Spec{Target: TargetWriter, Every: 2, Mode: ModeTorn}, &sb)
	if _, err := w.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("efgh"))
	if err != nil || n != 4 {
		t.Fatalf("torn write reported n=%d err=%v, want full success 4/nil", n, err)
	}
	if sb.String() != "abcdef" {
		t.Fatalf("underlying writer got %q, want %q (suffix silently dropped)", sb.String(), "abcdef")
	}
}

// TestCrashPlan: the crash point is terminal — calls before it pass,
// every call from it on reports crashed — and an unarmed plan only
// counts.
func TestCrashPlan(t *testing.T) {
	plan := NewCrashPlan(3)
	want := []bool{false, false, true, true, true}
	for i, w := range want {
		if got := plan.Crashed(); got != w {
			t.Fatalf("call %d: Crashed() = %v, want %v", i+1, got, w)
		}
	}
	if plan.Calls() != 5 {
		t.Fatalf("Calls() = %d, want 5", plan.Calls())
	}
	sizing := NewCrashPlan(0)
	for i := 0; i < 4; i++ {
		if sizing.Crashed() {
			t.Fatal("unarmed plan must never crash")
		}
	}
	if sizing.Calls() != 4 {
		t.Fatalf("unarmed Calls() = %d, want 4", sizing.Calls())
	}
}

// TestWorkerDecisionIsPerKey: the worker fault is a pure function of
// (seed, key) — the same key always gets the same verdict regardless of
// invocation order, and prob=1 / prob-threshold extremes behave sanely.
func TestWorkerDecisionIsPerKey(t *testing.T) {
	ok := func(context.Context) (any, uint64, error) { return "v", 1, nil }
	spec := Spec{Target: TargetWorker, Prob: 0.5, Seed: 9}
	keys := []string{"gtc/fast", "cam/fast", "gts/slow", "flash/fast", "a", "b", "c", "d"}
	verdict := map[string]bool{}
	for _, k := range keys {
		_, _, err := Worker(spec, k, ok)(context.Background())
		verdict[k] = err != nil
	}
	// Re-wrapping must reproduce the identical verdicts (fresh decorator
	// instances, any order).
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		_, _, err := Worker(spec, k, ok)(context.Background())
		if (err != nil) != verdict[k] {
			t.Fatalf("key %q verdict changed across wrappings", k)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("key %q err = %v, want ErrInjected", k, err)
		}
	}
	var failed int
	for _, v := range verdict {
		if v {
			failed++
		}
	}
	if failed == 0 || failed == len(keys) {
		t.Fatalf("prob=0.5 failed %d/%d keys — hash looks degenerate", failed, len(keys))
	}
}

func TestWorkerEveryOneFailsAll(t *testing.T) {
	spec := Spec{Target: TargetWorker, Every: 1, Seed: 7}
	fn := Worker(spec, "any/key", func(context.Context) (any, uint64, error) { return nil, 0, nil })
	if _, _, err := fn(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("every=1 worker err = %v, want ErrInjected", err)
	}
}

func TestWorkerPanicMode(t *testing.T) {
	spec := Spec{Target: TargetWorker, Every: 1, Seed: 7, Mode: ModePanic}
	fn := Worker(spec, "k", func(context.Context) (any, uint64, error) { return nil, 0, nil })
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic mode must panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value = %v, want an ErrInjected error", v)
		}
	}()
	fn(context.Background())
}

func TestWorkerIgnoresOtherTargets(t *testing.T) {
	var fn runner.Func = func(context.Context) (any, uint64, error) { return "v", 0, nil }
	wrapped := Worker(Spec{Target: TargetSink, Every: 1}, "k", fn)
	if v, _, err := wrapped(context.Background()); err != nil || v != "v" {
		t.Fatalf("non-worker spec must leave the run untouched: v=%v err=%v", v, err)
	}
}

func TestRate(t *testing.T) {
	if r := (Spec{Every: 4}).Rate(); r != 0.25 {
		t.Errorf("every=4 rate = %g", r)
	}
	if r := (Spec{Prob: 0.1}).Rate(); r != 0.1 {
		t.Errorf("prob rate = %g", r)
	}
	if r := (Spec{}).Rate(); r != 0 {
		t.Errorf("zero-spec rate = %g", r)
	}
}
