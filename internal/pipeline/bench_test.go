package pipeline

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"

	_ "nvscavenger/internal/apps/gtcmini"
)

// txStatsSink is a concrete batch consumer doing token per-transaction work
// (classify + mix the address) so the throughput arms compare delivery
// discipline, not an empty call.  It is a named type on purpose: the fused
// pipeline hands batches to concrete consumers, and the compiler can only
// devirtualize and inline the element loop when the callee is concrete.
type txStatsSink struct{ reads, writes, mix uint64 }

func (c *txStatsSink) FlushTx(batch []trace.Transaction) error {
	for _, t := range batch {
		if t.Write {
			c.writes++
		} else {
			c.reads++
		}
		c.mix ^= t.Addr
	}
	return nil
}

// BenchmarkPipelineThroughput measures the hand-off cost at the transaction
// boundary of the fused pipeline on the cache-filtered GTC trace, captured
// once up front so the app and tracer stay out of the timed region.
//
// The headline "batched" arm is the steady-state unit of the dataflow: one op
// delivers one full arena batch (trace.DefaultTxBufferSize transactions —
// the hierarchy's staging-buffer flush) to the concrete consumer.  That is
// the per-batch cost the ISSUE's contract prices — one call per batch — and
// it must run allocation-free.  "per-transaction" delivers the same batch
// through the legacy one-interface-call-per-transaction adapter, and
// "full-trace" replays the entire captured trace per op (the pre-arena
// benchmark shape, kept for cross-snapshot trajectory).
func BenchmarkPipelineThroughput(b *testing.B) {
	app, err := apps.New("gtc", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	cacheCfg := cachesim.PaperConfig()
	st := MustBuild(Config{Cache: &cacheCfg, CaptureTx: true})
	if err := apps.Run(app, st.Tracer, 5); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	txs := st.Transactions()
	if len(txs) < trace.DefaultTxBufferSize {
		b.Fatalf("trace too short: %d transactions", len(txs))
	}
	batch := txs[:trace.DefaultTxBufferSize]

	b.Run("batched", func(b *testing.B) {
		var sink trace.TxSink = &txStatsSink{}
		b.ReportMetric(float64(len(batch)), "tx")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sink.FlushTx(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-transaction", func(b *testing.B) {
		cs := &txStatsSink{}
		sink := cachesim.PerTx(cachesim.TxSinkFunc(func(t trace.Transaction) error {
			return cs.FlushTx([]trace.Transaction{t})
		}))
		b.ReportMetric(float64(len(batch)), "tx")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sink.FlushTx(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-trace", func(b *testing.B) {
		var sink trace.TxSink = &txStatsSink{}
		b.ReportMetric(float64(len(txs)), "tx")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(txs); off += trace.DefaultTxBufferSize {
				end := min(off+trace.DefaultTxBufferSize, len(txs))
				if err := sink.FlushTx(txs[off:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPipelineSharded runs the full instrumented stack end to end at
// several shard counts.  Selective replay means shard k re-executes the
// run's prefix to reach its span, so on a single core higher shard counts
// cost replay overhead; the series exists to price that trade (on K cores
// the shards run concurrently and the replay hides behind the parallelism)
// and to keep the merge path on the benchmark snapshot.
func BenchmarkPipelineSharded(b *testing.B) {
	arenas := NewArenas(0)
	run := func(b *testing.B, shards int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cacheCfg := cachesim.PaperConfig()
			ss, err := BuildSharded(Config{
				StackMode: memtrace.FastStack,
				Cache:     &cacheCfg,
				CaptureTx: true,
				Arenas:    arenas,
			}, 4, shards)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < ss.Shards(); k++ {
				app, err := apps.New("gtc", 0.1)
				if err != nil {
					b.Fatal(err)
				}
				if err := apps.Run(app, ss.Stack(k).Tracer, ss.RunIterations(k)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ss.Merge(); err != nil {
				b.Fatal(err)
			}
		}
	}
	// The "=" in the sub-benchmark names keeps them distinct from go test's
	// -GOMAXPROCS name suffix, which snapshot parsers strip.
	b.Run("shards=1", func(b *testing.B) { run(b, 1) })
	b.Run("shards=2", func(b *testing.B) { run(b, 2) })
	b.Run("shards=4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkPipelineInstrumentationOverhead measures what the Counted stage
// wrappers cost on the same workload: metrics off versus metrics on.
func BenchmarkPipelineInstrumentationOverhead(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			app, err := apps.New("gtc", 0.1)
			if err != nil {
				b.Fatal(err)
			}
			cacheCfg := cachesim.PaperConfig()
			cfg.Cache = &cacheCfg
			cfg.CaptureTx = true
			st := MustBuild(cfg)
			if err := apps.Run(app, st.Tracer, 3); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, Config{}) })
	b.Run("on", func(b *testing.B) { run(b, Config{Metrics: obs.NewRegistry()}) })
}

// BenchmarkPipelineSampledTracing measures what sampled tracing buys at the
// pipeline level: the full-instrumentation gtc run against seeded sampled
// runs of each discipline at a common rate.  The app always executes every
// reference (instructions retire regardless), so the delta is the cost the
// observation path — attribution, cache simulation, transaction capture —
// no longer pays for sampled-out references.
func BenchmarkPipelineSampledTracing(b *testing.B) {
	run := func(b *testing.B, spec memtrace.SampleSpec) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			app, err := apps.New("gtc", 0.1)
			if err != nil {
				b.Fatal(err)
			}
			cacheCfg := cachesim.PaperConfig()
			st := MustBuild(Config{Sample: spec, Cache: &cacheCfg, CaptureTx: true})
			if err := apps.Run(app, st.Tracer, 3); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, memtrace.SampleSpec{}) })
	b.Run("period-64", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: 64})
	})
	b.Run("bernoulli-64", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SampleBernoulli, Rate: 64, Seed: 7})
	})
	b.Run("bytes-4096", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SampleBytes, Rate: 4096, Seed: 7})
	})
}
