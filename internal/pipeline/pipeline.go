// Package pipeline is the composable batch-propagating dataflow layer of
// the simulator: it assembles the instrumentation tracer, the cache
// hierarchy and the downstream consumers (trace capture, file writers, the
// power and timing simulators) into one stack whose every stage boundary
// moves events in batches.
//
// The paper's §III-D memory-buffer optimization batches the first hop only
// (instrumented references into the analysis code).  This package extends
// the same amortization to every later hop — raw accesses into the cache
// simulator, filtered main-memory transactions into the power simulator,
// performance events into the CPU timing model — so the per-event interface
// call is paid once per batch everywhere.
//
// The stage contract is generic: a Stage[T] consumes batches of T.  The
// combinators (Tee, Filter, Counted) compose stages; Build wires a full
// tracer → hierarchy → consumers stack from one declarative Config.  Legacy
// per-event consumers attach through adapters (cachesim.PerTx for
// per-transaction sinks).
package pipeline

import (
	"fmt"

	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/trace"
)

// Stage consumes batches of events.  Flush is called with a full (or final,
// possibly short) batch; the callee must not retain the slice.  trace.Sink
// is structurally a Stage[trace.Access], so existing access consumers plug
// in unchanged.
type Stage[T any] interface {
	Flush(batch []T) error
}

// StageFunc adapts a function to the Stage interface.
type StageFunc[T any] func(batch []T) error

// Flush calls f(batch).
func (f StageFunc[T]) Flush(batch []T) error { return f(batch) }

// Tee fans each batch out to every stage in order, stopping at the first
// error.  The batch slice is shared, not copied; stages must not retain or
// mutate it.
func Tee[T any](stages ...Stage[T]) Stage[T] {
	return StageFunc[T](func(batch []T) error {
		for _, s := range stages {
			if err := s.Flush(batch); err != nil {
				return err
			}
		}
		return nil
	})
}

// filter forwards only the events satisfying pred, re-batched through a
// reused scratch buffer so filtering adds no per-batch allocation.
type filter[T any] struct {
	pred    func(T) bool
	next    Stage[T]
	scratch []T
	arena   *trace.Arena[T]
}

// Filter returns a stage forwarding only events for which pred is true.
// Empty filtered batches are not forwarded.
func Filter[T any](pred func(T) bool, next Stage[T]) Stage[T] {
	return &filter[T]{pred: pred, next: next}
}

// Flush implements Stage.
func (f *filter[T]) Flush(batch []T) error {
	f.scratch = f.scratch[:0]
	for _, v := range batch {
		if f.pred(v) {
			f.scratch = append(f.scratch, v)
		}
	}
	if len(f.scratch) == 0 {
		return nil
	}
	return f.next.Flush(f.scratch)
}

// Release hands an arena-drawn scratch slab back; the filter must not be
// flushed afterwards.  No-op for lazily-grown scratch.
func (f *filter[T]) Release() {
	if f.arena != nil && f.scratch != nil {
		f.arena.Put(f.scratch)
		f.scratch = nil
	}
}

// counted instruments a stage boundary with obs counters.
type counted[T any] struct {
	next    Stage[T]
	batches *obs.Counter
	events  *obs.Counter
	errors  *obs.Counter
}

// Counted wraps next with per-stage observability: batches, events and
// errors crossing this stage boundary land in the registry as the
// pipeline_batches_total / pipeline_events_total / pipeline_errors_total
// series labelled with the stage name.  A nil registry returns next
// unchanged, so uninstrumented builds pay nothing.
func Counted[T any](reg *obs.Registry, stage string, next Stage[T], labels ...obs.Label) Stage[T] {
	if reg == nil {
		return next
	}
	ls := append(append([]obs.Label{}, labels...), obs.L("stage", stage))
	return &counted[T]{
		next:    next,
		batches: reg.Counter("pipeline_batches_total", ls...),
		events:  reg.Counter("pipeline_events_total", ls...),
		errors:  reg.Counter("pipeline_errors_total", ls...),
	}
}

// Flush implements Stage.
func (c *counted[T]) Flush(batch []T) error {
	c.batches.Inc()
	c.events.Add(uint64(len(batch)))
	if err := c.next.Flush(batch); err != nil {
		c.errors.Inc()
		return err
	}
	return nil
}

// resilient wraps a stage boundary with retry and an optional breaker.
type resilient[T any] struct {
	next      Stage[T]
	retry     resilience.RetryPolicy
	breaker   *resilience.Breaker
	retries   *obs.Counter
	dropped   *obs.Counter
	trips     *obs.Counter
	lastTrips uint64
}

// Resilient wraps next with failure handling, the robustness sibling of
// Counted: flush errors are retried per the policy, and — when a breaker
// is supplied — an exhausted flush trips the breaker and the batch is
// *dropped* instead of propagating the error upstream (graceful
// degradation: the run completes on the surviving stages).  While the
// breaker is open, batches are dropped without touching the stage; after
// its cooldown one batch probes the stage and success resumes normal
// flow.  With a nil breaker, exhausted errors propagate, so Resilient is
// then pure retry.  Retries, dropped events and breaker trips land in the
// registry as pipeline_retries_total / pipeline_dropped_events_total /
// pipeline_trips_total, stage-labelled like the Counted series.  A nil
// registry keeps the behaviour but skips the accounting.
func Resilient[T any](reg *obs.Registry, stage string, retry resilience.RetryPolicy, br *resilience.Breaker, next Stage[T], labels ...obs.Label) Stage[T] {
	if reg == nil {
		reg = obs.NewRegistry() // private: resilience without accounting
	}
	ls := append(append([]obs.Label{}, labels...), obs.L("stage", stage))
	return &resilient[T]{
		next:    next,
		retry:   retry,
		breaker: br,
		retries: reg.Counter("pipeline_retries_total", ls...),
		dropped: reg.Counter("pipeline_dropped_events_total", ls...),
		trips:   reg.Counter("pipeline_trips_total", ls...),
	}
}

// Flush implements Stage.
func (r *resilient[T]) Flush(batch []T) error {
	if r.breaker != nil && !r.breaker.Allow() {
		r.dropped.Add(uint64(len(batch)))
		return nil
	}
	n, err := r.retry.Do(func() error { return r.next.Flush(batch) })
	r.retries.Add(uint64(n))
	if err == nil {
		if r.breaker != nil {
			r.breaker.Success()
		}
		return nil
	}
	if r.breaker == nil {
		return err
	}
	r.breaker.Failure()
	if t := r.breaker.Trips(); t > r.lastTrips {
		r.trips.Add(t - r.lastTrips)
		r.lastTrips = t
	}
	r.dropped.Add(uint64(len(batch)))
	return nil
}

// Capture is a terminal stage accumulating every event in memory.
type Capture[T any] struct {
	// Items holds the captured events in arrival order.
	Items []T
}

// Flush implements Stage.
func (c *Capture[T]) Flush(batch []T) error {
	c.Items = append(c.Items, batch...)
	return nil
}

// TxStage adapts a trace.TxSink (method FlushTx) to the generic Stage
// contract so transaction consumers compose with the combinators.
func TxStage(s trace.TxSink) Stage[trace.Transaction] {
	return StageFunc[trace.Transaction](s.FlushTx)
}

// ToTxSink adapts a transaction Stage back to the trace.TxSink contract the
// cache hierarchy emits on.
func ToTxSink(s Stage[trace.Transaction]) trace.TxSink {
	return trace.TxSinkFunc(s.Flush)
}

// PerfStage adapts a trace.PerfSink (method FlushEvents) to the generic
// Stage contract.
func PerfStage(s trace.PerfSink) Stage[trace.PerfEvent] {
	return StageFunc[trace.PerfEvent](s.FlushEvents)
}

// ToPerfSink adapts a performance-event Stage back to the trace.PerfSink
// contract the tracer flushes into.
func ToPerfSink(s Stage[trace.PerfEvent]) trace.PerfSink {
	return trace.PerfSinkFunc(s.Flush)
}

// Config declares a full instrumentation stack.  Build assembles it; every
// tracer+hierarchy stack in the tree goes through here, so the event flow is
// batched and (when Metrics is set) observable at each stage boundary.
type Config struct {
	// StackMode selects whole-stack (fast) or per-frame (slow) stack
	// attribution in the tracer.
	StackMode memtrace.StackMode
	// Sample selects seeded sampled tracing in the tracer (periodic,
	// Bernoulli or byte-threshold selection; see memtrace.SampleSpec).
	// The zero value observes every reference.
	Sample memtrace.SampleSpec
	// BufferSize is the tracer's staging-buffer capacity (accesses and
	// performance events).  Zero selects trace.DefaultBufferSize.
	BufferSize int
	// Cache, when non-nil, inserts the cache-hierarchy stage: raw accesses
	// are filtered into main-memory transactions delivered to TxSinks.  Nil
	// builds a tracer-only stack (attribution without trace hand-off).
	Cache *cachesim.Config
	// CaptureTx, with Cache set, buffers the filtered transactions in
	// memory; Stack.Transactions returns them after Close.
	CaptureTx bool
	// TxSinks receive the filtered main-memory transaction batches (power
	// simulator, trace writers...).  Wrap legacy per-transaction consumers
	// with cachesim.PerTx.  Requires Cache.
	TxSinks []trace.TxSink
	// AccessTaps receive the raw access batches alongside (before) the
	// cache stage — e.g. a trace.Writer dumping the unfiltered stream.
	AccessTaps []trace.Sink
	// Perf receives the batched performance-event stream (the CPU timing
	// model).
	Perf trace.PerfSink
	// Metrics, when set, wraps each stage boundary in Counted
	// instrumentation (stages: accesses, transactions, perf).  Metrics also
	// selects the wiring: a nil registry lets Build fuse linear
	// single-consumer topologies into direct concrete calls (see Build).
	Metrics *obs.Registry
	// Labels are attached to every pipeline metric series.
	Labels []obs.Label
	// Arenas, when set, supplies every staging slab in the stack (tracer
	// access buffer, hierarchy transaction buffer) from shared batch arenas
	// instead of private allocations; Close hands the slabs back.  Sharded
	// stacks share one Arenas across their shards.
	Arenas *Arenas

	// window restricts recording to an owned slice of the iteration space;
	// only BuildSharded sets it (Config is copied by value, so callers
	// outside the package cannot).
	window *memtrace.Window
}

// Stack is an assembled dataflow: the tracer the instrumented application
// drives, plus the cache hierarchy behind it (when configured).
type Stack struct {
	// Tracer is the instrumentation entry point; pass it to apps.Run.
	Tracer *memtrace.Tracer
	// Hierarchy is the cache stage, or nil for tracer-only stacks.
	Hierarchy *cachesim.Hierarchy

	capture  *Capture[trace.Transaction]
	arenas   *Arenas
	closed   bool
	closeErr error
}

// Build assembles the stack declared by cfg.
//
// With Metrics unset, Build detects linear single-consumer topologies and
// fuses them: the tracer's staging buffer flushes straight into the concrete
// *cachesim.Hierarchy, the hierarchy's transaction buffer flushes straight
// into the one configured consumer (or the concrete capture), and the perf
// buffer flushes straight into the configured PerfSink — one devirtualized
// call per batch at every hop instead of a chain of StageFunc closures.
// Metrics-instrumented builds and fan-out topologies (several TxSinks,
// capture plus sinks, access taps next to the cache) keep the generic
// combinator wiring.
func Build(cfg Config) (*Stack, error) {
	if cfg.Cache == nil && (len(cfg.TxSinks) > 0 || cfg.CaptureTx) {
		return nil, fmt.Errorf("pipeline: transaction consumers configured without a Cache stage")
	}
	st := &Stack{arenas: cfg.Arenas}
	fused := cfg.Metrics == nil

	if cfg.Cache != nil {
		var txSink trace.TxSink
		switch {
		case len(cfg.TxSinks) == 0 && !cfg.CaptureTx:
			// Statistics-only hierarchy: no transaction stage.
		case fused && len(cfg.TxSinks) == 0:
			tc := &TxCapture{}
			st.capture = &tc.Capture
			txSink = tc
		case fused && len(cfg.TxSinks) == 1 && !cfg.CaptureTx:
			txSink = cfg.TxSinks[0]
		default:
			txStages := make([]Stage[trace.Transaction], 0, len(cfg.TxSinks)+1)
			for _, s := range cfg.TxSinks {
				txStages = append(txStages, TxStage(s))
			}
			if cfg.CaptureTx {
				tc := &TxCapture{}
				st.capture = &tc.Capture
				txStages = append(txStages, tc)
			}
			if len(txStages) == 1 {
				txSink = ToTxSink(Counted(cfg.Metrics, "transactions", txStages[0], cfg.Labels...))
			} else {
				txSink = ToTxSink(Counted(cfg.Metrics, "transactions", Tee(txStages...), cfg.Labels...))
			}
		}
		var hier *cachesim.Hierarchy
		var err error
		if cfg.Arenas != nil {
			hier, err = cachesim.NewWithArena(*cfg.Cache, txSink, cfg.Arenas.Tx)
		} else {
			hier, err = cachesim.New(*cfg.Cache, txSink)
		}
		if err != nil {
			return nil, err
		}
		st.Hierarchy = hier
	}

	var sink trace.Sink
	switch {
	case st.Hierarchy == nil && len(cfg.AccessTaps) == 0:
	case fused && st.Hierarchy != nil && len(cfg.AccessTaps) == 0:
		sink = st.Hierarchy
	case fused && st.Hierarchy == nil && len(cfg.AccessTaps) == 1:
		sink = cfg.AccessTaps[0]
	default:
		accessStages := make([]Stage[trace.Access], 0, len(cfg.AccessTaps)+1)
		if st.Hierarchy != nil {
			accessStages = append(accessStages, Stage[trace.Access](st.Hierarchy))
		}
		for _, tap := range cfg.AccessTaps {
			accessStages = append(accessStages, Stage[trace.Access](tap))
		}
		if len(accessStages) == 1 {
			sink = trace.SinkFunc(Counted(cfg.Metrics, "accesses", accessStages[0], cfg.Labels...).Flush)
		} else {
			sink = trace.SinkFunc(Counted(cfg.Metrics, "accesses", Tee(accessStages...), cfg.Labels...).Flush)
		}
	}

	var perf trace.PerfSink
	if cfg.Perf != nil {
		if fused {
			perf = cfg.Perf
		} else {
			perf = ToPerfSink(Counted(cfg.Metrics, "perf", PerfStage(cfg.Perf), cfg.Labels...))
		}
	}

	if cfg.window != nil && st.Hierarchy != nil {
		h := st.Hierarchy
		cfg.window.OnOwnership = func(owned bool) { h.SetMuted(!owned) }
		h.SetMuted(!cfg.window.First)
	}

	mcfg := memtrace.Config{
		StackMode:  cfg.StackMode,
		Sample:     cfg.Sample,
		BufferSize: cfg.BufferSize,
		Sink:       sink,
		Perf:       perf,
		Window:     cfg.window,
	}
	if cfg.Arenas != nil {
		mcfg.Arena = cfg.Arenas.Access
	}
	st.Tracer = memtrace.New(mcfg)
	return st, nil
}

// MustBuild is Build for known-good configurations.
func MustBuild(cfg Config) *Stack {
	st, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return st
}

// Transactions returns the captured main-memory trace (CaptureTx builds
// only); call after Close so end-of-run writebacks are included.
func (s *Stack) Transactions() []trace.Transaction {
	if s.capture == nil {
		return nil
	}
	return s.capture.Items
}

// Close finishes the run: it flushes the tracer's staging buffers, drains
// the cache hierarchy's resident dirty lines and pushes the final
// transaction batch downstream.  Close is idempotent — the application
// runner may already have closed the tracer — and returns the first error
// any stage reported.
func (s *Stack) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	err := s.Tracer.Close()
	if s.Hierarchy != nil {
		derr := s.Hierarchy.Drain()
		if err == nil {
			err = derr
		}
		if err == nil {
			err = s.Hierarchy.Err()
		}
	}
	if s.arenas != nil {
		s.Tracer.ReleaseBuffers()
		if s.Hierarchy != nil {
			s.Hierarchy.ReleaseBuffers()
		}
	}
	s.closeErr = err
	return err
}
