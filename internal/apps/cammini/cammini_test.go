package cammini

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/stats"
	"nvscavenger/internal/trace"
)

func runCam(t *testing.T, scale float64, iters int, mode memtrace.StackMode) (*App, *memtrace.Tracer) {
	t.Helper()
	app := New(scale)
	tr := memtrace.New(memtrace.Config{StackMode: mode})
	if err := apps.Run(app, tr, iters); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRegistered(t *testing.T) {
	a, err := apps.New("cam", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "cam" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestRoutinePopulation(t *testing.T) {
	specs := routineTable(1)
	if len(specs) != 31 {
		t.Fatalf("routines = %d, want 31", len(specs))
	}
	over10, over50 := 0, 0
	for _, s := range specs {
		if s.reads > 10 {
			over10++
		}
		if s.reads > 50 {
			over50++
		}
	}
	if over10 != 13 {
		t.Fatalf("routines with ratio > 10 = %d, want 13 (~43%%)", over10)
	}
	if over50 != 1 {
		t.Fatalf("routines with ratio > 50 = %d, want 1 (~3%%)", over50)
	}
}

// TestTableVCalibration checks CAM's stack numbers: ~76.3% stack reference
// share; read/write ratio ~20.4 in steady iterations, ~11.5 in the first.
func TestTableVCalibration(t *testing.T) {
	_, tr := runCam(t, 0.25, 10, memtrace.FastStack)
	iters := tr.MainLoopIterations()
	st := tr.SegmentTotals(trace.SegStack, 1, iters)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, iters)
	hp := tr.SegmentTotals(trace.SegHeap, 1, iters)

	total := st.Total() + gl.Total() + hp.Total()
	share := float64(st.Total()) / float64(total)
	if share < 0.70 || share > 0.82 {
		t.Errorf("stack reference share = %.3f, want ~0.763", share)
	}

	// Steady-state ratio over iterations 2..10.
	steady := tr.SegmentTotals(trace.SegStack, 2, iters)
	if r := steady.ReadWriteRatio(); r < 17 || r > 24 {
		t.Errorf("steady stack r/w ratio = %.2f, want ~20.4", r)
	}
	// First iteration is write-heavier: ~11.5.
	first := tr.SegmentStats(trace.SegStack, 1)
	if r := first.ReadWriteRatio(); r < 9 || r > 14 {
		t.Errorf("first-iteration stack r/w ratio = %.2f, want ~11.5", r)
	}
	if first.ReadWriteRatio() >= steady.ReadWriteRatio() {
		t.Error("first iteration must have a lower ratio than steady state")
	}
}

// TestFigure2Calibration reproduces the headline Figure 2 statistics: ~43%
// of stack objects with R/W > 10 drawing ~69% of stack references; ~3%
// above 50 drawing ~9%.
func TestFigure2Calibration(t *testing.T) {
	_, tr := runCam(t, 0.25, 10, memtrace.SlowStack)
	routines := tr.StackObjects()

	var ratios, weights []float64
	for _, o := range routines {
		s := o.LoopStats()
		if s.Refs() == 0 {
			continue
		}
		ratios = append(ratios, o.LoopReadWriteRatio())
		weights = append(weights, float64(s.Refs()))
	}
	if len(ratios) < 31 {
		t.Fatalf("stack objects with references = %d, want >= 31", len(ratios))
	}
	count10, refs10 := stats.ShareAbove(ratios, weights, 10)
	if count10 < 0.35 || count10 > 0.50 {
		t.Errorf("objects with ratio > 10 = %.3f, want ~0.433", count10)
	}
	if refs10 < 0.60 || refs10 > 0.78 {
		t.Errorf("references from ratio > 10 objects = %.3f, want ~0.689", refs10)
	}
	count50, refs50 := stats.ShareAbove(ratios, weights, 50)
	if count50 < 0.02 || count50 > 0.07 {
		t.Errorf("objects with ratio > 50 = %.3f, want ~0.032", count50)
	}
	if refs50 < 0.05 || refs50 > 0.13 {
		t.Errorf("references from ratio > 50 objects = %.3f, want ~0.089", refs50)
	}
}

// TestFootprintShape checks ~15.5% read-only and ~11.5% untouched-in-loop.
func TestFootprintShape(t *testing.T) {
	_, tr := runCam(t, 0.25, 10, memtrace.FastStack)
	var totalBytes, untouched, readOnly uint64
	for _, o := range tr.Objects() {
		if o.Segment == trace.SegStack {
			continue
		}
		totalBytes += o.Size
		if o.TouchedIterations() == 0 {
			untouched += o.Size
		}
		if o.LoopReadOnly() {
			readOnly += o.Size
		}
	}
	rf := float64(readOnly) / float64(totalBytes)
	if rf < 0.11 || rf > 0.23 {
		t.Errorf("read-only fraction = %.3f, want ~0.155", rf)
	}
	uf := float64(untouched) / float64(totalBytes)
	if uf < 0.08 || uf > 0.20 {
		t.Errorf("untouched fraction = %.3f, want ~0.115", uf)
	}
}

func TestHistoryBuffersPostOnly(t *testing.T) {
	_, tr := runCam(t, 0.1, 3, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Name == "hist_buf1" || o.Name == "hist_buf2" {
			if o.TouchedIterations() != 0 {
				t.Errorf("%s touched in the main loop", o.Name)
			}
			if o.Total().Writes == 0 {
				t.Errorf("%s never written in post-processing", o.Name)
			}
		}
	}
}

func TestPbufOnHeapAndLive(t *testing.T) {
	_, tr := runCam(t, 0.1, 3, memtrace.FastStack)
	heaps := tr.HeapObjects()
	if len(heaps) == 0 {
		t.Fatal("expected the pbuf heap object")
	}
	var pbuf *memtrace.Object
	for _, o := range heaps {
		if o.Name == "pbuf" {
			pbuf = o
		}
	}
	if pbuf == nil {
		t.Fatal("pbuf missing")
	}
	if pbuf.Dead {
		t.Fatal("pbuf must stay live for the whole run")
	}
	if pbuf.TouchedIterations() != 3 {
		t.Fatalf("pbuf touched %d iterations, want 3", pbuf.TouchedIterations())
	}
}

func TestLegendreTableReadOnlyInLoop(t *testing.T) {
	_, tr := runCam(t, 0.1, 3, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Name == "legendre_coef" {
			if !o.LoopReadOnly() {
				t.Fatal("legendre table must be read-only during the loop")
			}
			if o.Total().Writes == 0 {
				t.Fatal("legendre table must have been built during setup")
			}
			return
		}
	}
	t.Fatal("legendre_coef missing")
}

func TestCheckRejectsDivergence(t *testing.T) {
	app := New(0.05)
	tr := memtrace.New(memtrace.Config{})
	if err := app.Setup(tr); err != nil {
		t.Fatal(err)
	}
	app.tPhys.Store(0, 9999) // out of physical range
	if err := app.Check(); err == nil {
		t.Fatal("Check must reject unphysical temperatures")
	}
}
