package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"nvscavenger/internal/resilience"
)

// TestDoRecoversWorkerPanic: a panicking run must surface as an error on
// that run alone — the engine (and the sweep above it) keeps going.
func TestDoRecoversWorkerPanic(t *testing.T) {
	e := New(Config{Jobs: 2})
	_, err := e.Do(context.Background(), key("gtc"), func(ctx context.Context) (any, uint64, error) {
		panic("assertion failed")
	})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *resilience.PanicError", err)
	}
	if pe.Value != "assertion failed" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if v, _ := e.Registry().Snapshot().Counter("runner_panics_recovered_total"); v != 1 {
		t.Fatalf("runner_panics_recovered_total = %d, want 1", v)
	}
	// The engine survives: the next run on the same key executes cleanly.
	v, err := e.Do(context.Background(), key("gtc"), func(ctx context.Context) (any, uint64, error) {
		return "ok", 1, nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("post-panic run: v=%v err=%v", v, err)
	}
}

// TestRetryPolicyRetriesTransientFailures: with Retry{Attempts:3} a run
// failing twice then succeeding is reported as one success, with the retry
// count published.
func TestRetryPolicyRetriesTransientFailures(t *testing.T) {
	e := New(Config{Jobs: 1, Retry: resilience.RetryPolicy{Attempts: 3}})
	var calls atomic.Int64
	var events []EventKind
	e.cfg.Progress = func(ev Event) { events = append(events, ev.Kind) }
	v, err := e.Do(context.Background(), key("gtc"), func(ctx context.Context) (any, uint64, error) {
		if calls.Add(1) < 3 {
			return nil, 0, errors.New("transient")
		}
		return "recovered", 5, nil
	})
	if err != nil || v != "recovered" {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	snap := e.Registry().Snapshot()
	if r, _ := snap.Counter("runner_retries_total"); r != 2 {
		t.Fatalf("runner_retries_total = %d, want 2", r)
	}
	// One verdict per run: start, then done — transient attempts must not
	// leak error events into progress.
	if len(events) != 2 || events[0] != EventStart || events[1] != EventDone {
		t.Fatalf("events = %v, want [start done]", events)
	}
}

// TestRetryPolicyRetriesPanics: panic recovery composes with retry — a run
// that panics once then succeeds is a success.
func TestRetryPolicyRetriesPanics(t *testing.T) {
	e := New(Config{Jobs: 1, Retry: resilience.RetryPolicy{Attempts: 2}})
	var calls atomic.Int64
	v, err := e.Do(context.Background(), key("cam"), func(ctx context.Context) (any, uint64, error) {
		if calls.Add(1) == 1 {
			panic(errors.New("flaky assertion"))
		}
		return 7, 1, nil
	})
	if err != nil || v.(int) != 7 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	snap := e.Registry().Snapshot()
	if p, _ := snap.Counter("runner_panics_recovered_total"); p != 1 {
		t.Fatalf("runner_panics_recovered_total = %d, want 1", p)
	}
	if r, _ := snap.Counter("runner_retries_total"); r != 1 {
		t.Fatalf("runner_retries_total = %d, want 1", r)
	}
}

// TestRetryPolicyDoesNotRetryCancellation: a cancelled run is not
// transient; retrying it would just burn attempts against a dead context.
func TestRetryPolicyDoesNotRetryCancellation(t *testing.T) {
	e := New(Config{Jobs: 1, Retry: resilience.RetryPolicy{Attempts: 5}})
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := e.Do(ctx, key("gts"), func(ctx context.Context) (any, uint64, error) {
		calls.Add(1)
		cancel()
		return nil, 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancellation)", calls.Load())
	}
	if r, _ := e.Registry().Snapshot().Counter("runner_retries_total"); r != 0 {
		t.Fatalf("runner_retries_total = %d, want 0", r)
	}
}

// TestRetryExhaustionReportsLastError: all attempts failing yields the
// final error and one EventError.
func TestRetryExhaustionReportsLastError(t *testing.T) {
	e := New(Config{Jobs: 1, Retry: resilience.RetryPolicy{Attempts: 3}})
	boom := errors.New("persistent")
	var calls atomic.Int64
	_, err := e.Do(context.Background(), key("flash"), func(ctx context.Context) (any, uint64, error) {
		calls.Add(1)
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the persistent failure", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if r, _ := e.Registry().Snapshot().Counter("runner_retries_total"); r != 2 {
		t.Fatalf("runner_retries_total = %d, want 2", r)
	}
}

// TestCollectJoinsSiblingErrors is the regression test for the lost-error
// bug: item "a" fails first and cancels the context; item "b" then fails
// for its *own* reason.  Both failures must be visible in the returned
// error — before the fix, b's error was silently discarded.
func TestCollectJoinsSiblingErrors(t *testing.T) {
	errA := errors.New("failure A")
	errB := errors.New("failure B")
	bReady := make(chan struct{})
	_, err := Collect(context.Background(), []string{"a", "b"}, func(ctx context.Context, item string) (int, error) {
		if item == "a" {
			<-bReady // b is running and will observe the cancellation
			return 0, errA
		}
		close(bReady)
		<-ctx.Done() // woken by a's failure...
		return 0, errB // ...but fails with its own error, not ctx.Err()
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want it to include %v", err, errA)
	}
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want it to include the sibling failure %v", err, errB)
	}
}

// TestCollectSingleErrorKeepsIdentity: with exactly one real failure the
// error comes back unwrapped (not needlessly joined).
func TestCollectSingleErrorKeepsIdentity(t *testing.T) {
	boom := errors.New("boom")
	_, err := Collect(context.Background(), []int{0, 1, 2}, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if err != boom {
		t.Fatalf("err = %#v, want the identical error value", err)
	}
}

// TestCollectParentCancellation: when every failure is a cancellation (the
// parent context died), Collect still reports it.
func TestCollectParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Collect(ctx, []int{0, 1}, func(ctx context.Context, i int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCollectPartialKeepsSurvivors: no sibling cancellation — one failed
// item leaves every other result intact, with errors reported per index.
func TestCollectPartialKeepsSurvivors(t *testing.T) {
	boom := errors.New("boom")
	out, errs := CollectPartial(context.Background(), []int{0, 1, 2, 3}, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i * 10, nil
	})
	if len(out) != 4 || len(errs) != 4 {
		t.Fatalf("lengths = %d/%d", len(out), len(errs))
	}
	for i, want := range []int{0, 10, 0, 30} {
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	for i, wantErr := range []error{nil, nil, boom, nil} {
		if !errors.Is(errs[i], wantErr) {
			t.Errorf("errs[%d] = %v, want %v", i, errs[i], wantErr)
		}
	}
}
