package core_test

import (
	"fmt"

	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
)

// Example classifies a small object population for a category-2 (STTRAM)
// hybrid memory.
func Example() {
	tr := memtrace.New(memtrace.Config{})
	table, _ := tr.GlobalF64("lookup_table", 1024)
	field, _ := tr.GlobalF64("field", 1024)
	tr.Global("restart_buffer", 64*1024)
	table.Fill(1)

	for step := 1; step <= 3; step++ {
		tr.BeginIteration()
		for i := 0; i < 1024; i++ {
			field.Store(i, field.Load(i)+table.Load(i))
		}
		tr.Compute(20000)
	}
	if err := tr.Close(); err != nil {
		panic(err)
	}

	plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
	for _, adv := range plan.Advices {
		fmt.Printf("%-14s -> %s\n", adv.Object.Name, adv.Target)
	}
	fmt.Printf("NVRAM share: %.0f%%\n", plan.NVRAMShare*100)
	// Output:
	// restart_buffer -> NVRAM
	// lookup_table   -> NVRAM
	// field          -> DRAM
	// NVRAM share: 90%
}
