package stats

import (
	"math"
	"testing"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Total() != 0 {
		t.Fatalf("empty summary: count %d total %v", s.Count(), s.Total())
	}
	for name, v := range map[string]float64{
		"mean": s.Mean(), "min": s.Min(), "max": s.Max(), "std": s.Std(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
}

func TestSummaryMatchesBatchStats(t *testing.T) {
	xs := []float64{4, 2, 7, 1, 9, 3.5, 2, 8}
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	if s.Count() != len(xs) {
		t.Fatalf("count = %d", s.Count())
	}
	if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	var total, m2 float64
	for _, x := range xs {
		total += x
	}
	mean := total / float64(len(xs))
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	if math.Abs(s.Total()-total) > 1e-12 {
		t.Errorf("total = %v, want %v", s.Total(), total)
	}
	if want := math.Sqrt(m2 / float64(len(xs))); math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std(), want)
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(5)
	if s.Mean() != 5 || s.Min() != 5 || s.Max() != 5 || s.Std() != 0 {
		t.Fatalf("single-sample summary: mean %v min %v max %v std %v",
			s.Mean(), s.Min(), s.Max(), s.Std())
	}
}
