// Package fixture proves the suppression directive: a well-formed
// //nvlint:ignore with a reason silences the finding on the same or next
// line; a directive without a reason is malformed — it suppresses nothing
// and is itself reported.
package fixture

import "time"

// Sanctioned carries a proper suppression.
func Sanctioned() time.Time {
	//nvlint:ignore determinism fixture demonstrates a sanctioned site
	return time.Now()
}

// Unsanctioned's directive has no reason, so the finding survives.
func Unsanctioned() time.Time {
	//nvlint:ignore determinism
	return time.Now()
}
