package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
)

// SchemaVersion is the version of the jobs-API JSON contract: the JobSpec
// and JobResult shapes below, shared verbatim by the nvserved HTTP API and
// the CLI tools' -json outputs.  A decoder rejects payloads claiming a
// newer version than it speaks; version 0 (the field absent) is read as
// the current version so hand-written specs stay terse, and every older
// version is accepted (the contract only grows optional fields within a
// major shape).
//
// Bump it when a field changes meaning or is removed; adding optional
// fields is compatible and does not bump.
//
// Version history:
//
//	1: initial jobs-API contract (PR 6).
//	2: adds the optional "sample" spec (seeded sampled tracing,
//	   mode:rate=N[,seed=S]).  Version-1 payloads decode unchanged.
//	3: adds the optional "shards" count (deterministic intra-run
//	   sharding; the merged result is byte-identical to shards=1).
//	   Version-1 and -2 payloads decode unchanged.
const SchemaVersion = 3

// Job lifecycle states, the vocabulary of JobResult.State.  A job moves
// queued → running → one of the three terminal states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobSpec is the serializable request for one experiment job — the single
// parameter shape understood by the nvserved jobs API, the report
// generator and the analysis tools.  The zero value of every field selects
// the calibrated default, so `{"exhibits":["table5"]}` is a complete spec.
//
// JSON schema (version 3):
//
//	{
//	  "schema_version": 3,          // optional; 0 means "current"
//	  "scale": 0.25,                // problem scale, default 1.0
//	  "iterations": 10,             // main-loop iterations, default 10
//	  "apps": ["gtc", "cam"],       // app subset, default all registered
//	  "mode": "fast",               // analysis-tool stack mode (fast|slow)
//	  "exhibits": ["table5"],       // exhibit subset, default all
//	  "jobs": 4,                    // worker-pool bound, 0 = GOMAXPROCS
//	  "fault": "sink:every=50,seed=7", // chaos spec, default none
//	  "retries": 2,                 // per-run retry attempts
//	  "sample": "bernoulli:rate=64,seed=7", // sampled tracing, default off (v2)
//	  "shards": 4                   // intra-run sharding, default 1 (v3)
//	}
type JobSpec struct {
	SchemaVersion int      `json:"schema_version"`
	Scale         float64  `json:"scale,omitempty"`
	Iterations    int      `json:"iterations,omitempty"`
	Apps          []string `json:"apps,omitempty"`
	Mode          string   `json:"mode,omitempty"`
	Exhibits      []string `json:"exhibits,omitempty"`
	Jobs          int      `json:"jobs,omitempty"`
	Fault         string   `json:"fault,omitempty"`
	Retries       int      `json:"retries,omitempty"`
	// Sample is a memtrace sample spec ("mode:rate=N[,seed=S]") switching
	// every instrumented run of the job to seeded sampled tracing.  Empty
	// (the default) observes every reference.  Schema version 2.
	Sample string `json:"sample,omitempty"`
	// Shards splits every instrumented run's iteration space across this
	// many per-shard stacks, merged deterministically (see WithShards); the
	// results are byte-identical to an unsharded run.  0 or 1 keep the
	// single-stack path.  Incompatible with "fault".  Schema version 3.
	Shards int `json:"shards,omitempty"`
}

// Normalized returns the spec with defaults made explicit: the schema
// version stamped, scale 1.0 and the 10-iteration collection window filled
// in.  Results echo the normalized spec so a stored JobResult is
// self-describing.
func (s JobSpec) Normalized() JobSpec {
	s.SchemaVersion = SchemaVersion
	if s.Scale <= 0 {
		s.Scale = 1.0
	}
	if s.Iterations <= 0 {
		s.Iterations = 10
	}
	// Canonicalize the sample spec (fixed parameter order, "off" elided)
	// so equal configurations serialize and key identically.
	if spec, err := memtrace.ParseSampleSpec(s.Sample); err == nil {
		if spec.Enabled() {
			s.Sample = spec.String()
		} else {
			s.Sample = ""
		}
	}
	// shards=1 is the single-stack default; canonicalize it away so equal
	// configurations serialize and key identically.
	if s.Shards == 1 {
		s.Shards = 0
	}
	return s
}

// Validate checks the spec against this build's schema: a speakable
// version, positive scale/iterations, registered app names, known exhibit
// names, a parsable fault spec and a known stack mode.
func (s JobSpec) Validate() error {
	if s.SchemaVersion < 0 || s.SchemaVersion > SchemaVersion {
		return fmt.Errorf("experiments: unsupported schema_version %d (this build speaks %d)",
			s.SchemaVersion, SchemaVersion)
	}
	if s.Scale < 0 {
		return fmt.Errorf("experiments: scale %g must be positive", s.Scale)
	}
	if s.Iterations < 0 {
		return fmt.Errorf("experiments: iterations %d must be positive", s.Iterations)
	}
	registered := apps.Names()
	for _, name := range s.Apps {
		if !slices.Contains(registered, name) {
			return fmt.Errorf("experiments: unknown app %q (have %s)", name, strings.Join(registered, ", "))
		}
	}
	for _, name := range s.Exhibits {
		if !knownExhibit(name) {
			return fmt.Errorf("experiments: unknown exhibit %q", name)
		}
	}
	switch s.Mode {
	case "", "fast", "slow":
	default:
		return fmt.Errorf("experiments: unknown mode %q (fast or slow)", s.Mode)
	}
	if s.Fault != "" {
		if _, err := faults.Parse(s.Fault); err != nil {
			return err
		}
	}
	if s.Sample != "" {
		if _, err := memtrace.ParseSampleSpec(s.Sample); err != nil {
			return err
		}
	}
	if s.Retries < 0 {
		return fmt.Errorf("experiments: retries %d must be non-negative", s.Retries)
	}
	if s.Shards < 0 {
		return fmt.Errorf("experiments: shards %d must be non-negative", s.Shards)
	}
	if s.Shards > 1 && s.Fault != "" {
		return fmt.Errorf("experiments: shards and fault are incompatible (fault injection targets the one live pipeline of a run)")
	}
	return nil
}

// SessionOptions translates the spec into the Session option list: the
// exact options the nvreport CLI would assemble from equivalent flags, so
// a job submitted over HTTP configures an identical session.
func (s JobSpec) SessionOptions() ([]Option, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	opts := []Option{
		WithScale(n.Scale),
		WithIterations(n.Iterations),
		WithJobs(n.Jobs),
	}
	if len(n.Apps) > 0 {
		opts = append(opts, WithApps(n.Apps...))
	}
	if n.Fault != "" {
		spec, err := faults.Parse(n.Fault)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithFaults(spec))
	}
	if n.Retries > 1 {
		opts = append(opts, WithRetry(n.Retries))
	}
	if n.Sample != "" {
		spec, err := memtrace.ParseSampleSpec(n.Sample)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithSample(spec))
	}
	if n.Shards > 1 {
		opts = append(opts, WithShards(n.Shards))
	}
	return opts, nil
}

// RunCacheKey partitions specs into groups that may safely exchange
// memoized runs.  The runner key already carries app, mode, scale and
// iterations, so the only spec field that changes what an identically
// keyed run *produces* is the fault injection; healthy jobs all share one
// partition.  The nvserved daemon keys its shared single-flight caches on
// this.
func (s JobSpec) RunCacheKey() string {
	if s.Fault == "" {
		return "healthy"
	}
	if spec, err := faults.Parse(s.Fault); err == nil {
		return spec.String() // canonical parameter order
	}
	return s.Fault
}

// SessionKey is the canonical identity of the session-shaping fields: two
// specs with equal keys configure interchangeable sessions (only the
// exhibit selection may differ).  Used for logging and job-list grouping.
func (s JobSpec) SessionKey() string {
	n := s.Normalized()
	key := "scale=" + strconv.FormatFloat(n.Scale, 'g', -1, 64) +
		",iterations=" + strconv.Itoa(n.Iterations) +
		",apps=" + strings.Join(n.Apps, "+") +
		",jobs=" + strconv.Itoa(n.Jobs) +
		",fault=" + n.RunCacheKey() +
		",retries=" + strconv.Itoa(n.Retries)
	if n.Sample != "" {
		key += ",sample=" + n.Sample
	}
	if n.Shards > 1 {
		key += ",shards=" + strconv.Itoa(n.Shards)
	}
	return key
}

// JobResult is the serializable outcome of one experiment job: the
// response shape of the nvserved jobs API and the envelope of the CLI
// tools' -json outputs.  Which payload fields are set depends on the job:
// report jobs fill Report, single-app analysis jobs fill Analysis, chaos
// jobs annotate RunErrors, failed jobs carry Error.
type JobResult struct {
	SchemaVersion int `json:"schema_version"`
	// ID is the daemon-assigned job identifier (empty for CLI outputs).
	ID string `json:"id,omitempty"`
	// State is one of the State* lifecycle constants.
	State string `json:"state,omitempty"`
	// Spec echoes the normalized spec the job ran with.
	Spec JobSpec `json:"spec"`
	// Report is the rendered exhibit report (report jobs, terminal states).
	Report string `json:"report,omitempty"`
	// Analysis is the per-object analysis snapshot (nvscavenger -json).
	Analysis *core.Snapshot `json:"analysis,omitempty"`
	// RunErrors annotates failed runs of a degraded sweep.
	RunErrors []RunError `json:"run_errors,omitempty"`
	// Error is the job-level failure message (state "failed").
	Error string `json:"error,omitempty"`
	// Metrics optionally embeds an observability snapshot.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// NewJobResult returns a result stamped with the current schema version
// and the normalized spec.
func NewJobResult(spec JobSpec, state string) JobResult {
	return JobResult{SchemaVersion: SchemaVersion, State: state, Spec: spec.Normalized()}
}

// DecodeJobSpec reads one JSON spec and validates it against this build's
// schema.  Unknown fields are rejected so a typo'd parameter fails loudly
// instead of silently running the default experiment.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("experiments: decoding job spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// DecodeJobResult reads one JSON result, rejecting payloads from a newer
// schema than this build speaks.
func DecodeJobResult(r io.Reader) (JobResult, error) {
	var res JobResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return JobResult{}, fmt.Errorf("experiments: decoding job result: %w", err)
	}
	if res.SchemaVersion > SchemaVersion {
		return JobResult{}, fmt.Errorf("experiments: unsupported schema_version %d (this build speaks %d)",
			res.SchemaVersion, SchemaVersion)
	}
	return res, nil
}
