package trace

import (
	"bytes"
	"errors"
	"testing"
)

// failingSink fails every Write after the first failAt bytes.
type failingSink struct {
	written int
	failAt  int
}

var errSinkFull = errors.New("sink full")

func (s *failingSink) Write(p []byte) (int, error) {
	if s.written+len(p) > s.failAt {
		return 0, errSinkFull
	}
	s.written += len(p)
	return len(p), nil
}

// TestWriterCountOnFailedAccessWrite locks in the accounting fix: Count()
// must report only records the buffered writer accepted, so a caller
// comparing Count() against reader-side totals never sees phantom records.
// The Writer buffers 64 KiB, so the sink error surfaces once the buffer
// spills; from then on every WriteAccess must fail without incrementing.
func TestWriterCountOnFailedAccessWrite(t *testing.T) {
	w := NewAccessWriter(&failingSink{failAt: 0})
	a := Access{Addr: 0x1000, Size: 8, Op: Read}

	var ok uint64
	var sawErr bool
	// 10-byte records over a 64 KiB buffer: the error appears within
	// ~6554 writes; write enough to cross it several times over.
	for i := 0; i < 20000; i++ {
		err := w.WriteAccess(a)
		if err == nil {
			ok++
			if sawErr {
				t.Fatal("write succeeded after sink failure")
			}
			continue
		}
		sawErr = true
		if !errors.Is(err, errSinkFull) {
			t.Fatalf("unexpected error: %v", err)
		}
		if got := w.Count(); got != ok {
			t.Fatalf("Count() = %d after failed write, want %d (successful writes only)", got, ok)
		}
	}
	if !sawErr {
		t.Fatal("sink error never surfaced; test is not exercising the failure path")
	}
	if got := w.Count(); got != ok {
		t.Fatalf("final Count() = %d, want %d", got, ok)
	}
}

// TestWriterCountOnFailedTransactionWrite covers the transaction variant.
func TestWriterCountOnFailedTransactionWrite(t *testing.T) {
	w := NewTransactionWriter(&failingSink{failAt: 0})
	tx := Transaction{Addr: 0x2000, Cycle: 7, Write: true}

	var ok uint64
	var sawErr bool
	for i := 0; i < 12000; i++ {
		if err := w.WriteTransaction(tx); err == nil {
			ok++
			if sawErr {
				t.Fatal("write succeeded after sink failure")
			}
		} else {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("sink error never surfaced")
	}
	if got := w.Count(); got != ok {
		t.Fatalf("Count() = %d, want %d", got, ok)
	}
}

// TestWriterCountMatchesReader: on a healthy sink, Count() must equal what
// a reader decodes back — the invariant the bugfix restores for the
// failure path.
func TestWriterCountMatchesReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.WriteAccess(Access{Addr: uint64(i), Size: 4, Op: Read}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	for {
		if _, err := r.ReadAccess(); err != nil {
			break
		}
		n++
	}
	if w.Count() != n {
		t.Fatalf("Count() = %d, reader saw %d", w.Count(), n)
	}
}
