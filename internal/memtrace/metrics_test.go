package memtrace

import (
	"testing"

	"nvscavenger/internal/obs"
)

func TestTracerExportMetrics(t *testing.T) {
	tr := newFast(t)
	g, _ := tr.GlobalF64("coeff", 64)
	tr.BeginIteration()
	for i := 0; i < 64; i++ {
		g.Store(i%8, float64(i))
		_ = g.Load(i % 8)
	}
	tr.PostPhase()

	reg := obs.NewRegistry()
	tr.ExportMetrics(reg, obs.L("app", "unit"), obs.L("mode", "fast"))
	s := reg.Snapshot()
	ls := []obs.Label{{Key: "app", Value: "unit"}, {Key: "mode", Value: "fast"}}

	lookups, cacheHits, _, _ := tr.RegistryStats()
	if v, ok := s.Gauge("memtrace_lookups", ls...); !ok || v != float64(lookups) {
		t.Fatalf("memtrace_lookups = %v (%v), want %d", v, ok, lookups)
	}
	if v, ok := s.Gauge("memtrace_object_cache_hits", ls...); !ok || v != float64(cacheHits) {
		t.Fatalf("memtrace_object_cache_hits = %v, want %d", v, cacheHits)
	}
	ratio, ok := s.Gauge("memtrace_object_cache_hit_ratio", ls...)
	if !ok || ratio <= 0 || ratio > 1 {
		t.Fatalf("memtrace_object_cache_hit_ratio = %v (%v), want in (0,1]", ratio, ok)
	}
	if v, ok := s.Gauge("memtrace_sampled_refs", ls...); !ok || v != float64(tr.Sampled) {
		t.Fatalf("memtrace_sampled_refs = %v, want %d", v, tr.Sampled)
	}
	if v, ok := s.Gauge("memtrace_footprint_bytes", ls...); !ok || v != float64(tr.Footprint()) {
		t.Fatalf("memtrace_footprint_bytes = %v, want %d", v, tr.Footprint())
	}

	// Re-export after more traffic must overwrite, not double-count.
	tr.ExportMetrics(reg, obs.L("app", "unit"), obs.L("mode", "fast"))
	s2 := reg.Snapshot()
	if v, _ := s2.Gauge("memtrace_lookups", ls...); v != float64(lookups) {
		t.Fatalf("re-export changed memtrace_lookups to %v, want %d", v, lookups)
	}
}
