package pipeline

import "nvscavenger/internal/trace"

// Arenas bundles the batch arenas one pipeline domain shares: every staging
// slab, capture chunk and filter scratch of the stacks built against it is
// drawn from (and returned to) these three pools, so repeated and sharded
// runs recycle a fixed set of slabs instead of allocating per stack.
type Arenas struct {
	// Access holds raw-access batches (tracer staging buffers, filter
	// scratch on the access path).
	Access *trace.Arena[trace.Access]
	// Tx holds main-memory transaction batches (hierarchy staging buffers,
	// sharded transaction captures).
	Tx *trace.Arena[trace.Transaction]
	// Perf holds performance-event batches (sharded perf captures).
	Perf *trace.Arena[trace.PerfEvent]
}

// NewArenas returns a bundle sized for stacks using the given access
// buffer size (zero selects trace.DefaultBufferSize); transaction batches
// use trace.DefaultTxBufferSize, matching the hierarchy's staging buffer.
func NewArenas(bufferSize int) *Arenas {
	if bufferSize <= 0 {
		bufferSize = trace.DefaultBufferSize
	}
	return &Arenas{
		Access: trace.NewArena[trace.Access](bufferSize),
		Tx:     trace.NewArena[trace.Transaction](trace.DefaultTxBufferSize),
		Perf:   trace.NewArena[trace.PerfEvent](bufferSize),
	}
}

// TxCapture is Capture with the concrete trace.TxSink contract on top, so a
// fused stack's transaction buffer flushes straight into it without an
// adapter closure.
type TxCapture struct {
	Capture[trace.Transaction]
}

// FlushTx implements trace.TxSink.
func (c *TxCapture) FlushTx(batch []trace.Transaction) error { return c.Flush(batch) }

// ChunkCapture is a terminal stage accumulating a stream into fixed-size
// chunks granted by an arena: capturing costs a bounded copy per batch, no
// growth reallocation ever, and Release hands every chunk back for the next
// run (or the next shard) to reuse.  The batch slice is copied, never
// retained.
type ChunkCapture[T any] struct {
	arena  *trace.Arena[T]
	chunks [][]T
	n      int // fill of the last chunk
}

// NewChunkCapture returns an empty capture drawing chunks from a.
func NewChunkCapture[T any](a *trace.Arena[T]) *ChunkCapture[T] {
	return &ChunkCapture[T]{arena: a}
}

// Flush implements Stage.
func (c *ChunkCapture[T]) Flush(batch []T) error {
	for len(batch) > 0 {
		if len(c.chunks) == 0 || c.n == c.arena.BatchSize() {
			c.chunks = append(c.chunks, c.arena.Get())
			c.n = 0
		}
		last := c.chunks[len(c.chunks)-1]
		copied := copy(last[c.n:], batch)
		c.n += copied
		batch = batch[copied:]
	}
	return nil
}

// Len returns the number of captured events.
func (c *ChunkCapture[T]) Len() int {
	if len(c.chunks) == 0 {
		return 0
	}
	return (len(c.chunks)-1)*c.arena.BatchSize() + c.n
}

// Deliver replays the captured stream, in order, as chunk-sized batches.
// The callee must not retain the slices (they return to the arena).
func (c *ChunkCapture[T]) Deliver(consume func(batch []T) error) error {
	for i, ch := range c.chunks {
		end := c.arena.BatchSize()
		if i == len(c.chunks)-1 {
			end = c.n
		}
		if end == 0 {
			continue
		}
		if err := consume(ch[:end]); err != nil {
			return err
		}
	}
	return nil
}

// Release hands every chunk back to the arena and resets the capture.
func (c *ChunkCapture[T]) Release() {
	for i := range c.chunks {
		c.arena.Put(c.chunks[i])
		c.chunks[i] = nil
	}
	c.chunks = c.chunks[:0]
	c.n = 0
}

// TxChunkCapture is ChunkCapture with the concrete trace.TxSink contract, so
// a sharded stack's transaction buffer flushes into it without an adapter.
type TxChunkCapture struct {
	ChunkCapture[trace.Transaction]
}

// NewTxChunkCapture returns an empty transaction capture drawing from a.
func NewTxChunkCapture(a *trace.Arena[trace.Transaction]) *TxChunkCapture {
	return &TxChunkCapture{ChunkCapture[trace.Transaction]{arena: a}}
}

// FlushTx implements trace.TxSink.
func (c *TxChunkCapture) FlushTx(batch []trace.Transaction) error { return c.Flush(batch) }

// PerfChunkCapture is ChunkCapture with the concrete trace.PerfSink
// contract for the performance-event stream of a sharded stack.
type PerfChunkCapture struct {
	ChunkCapture[trace.PerfEvent]
}

// NewPerfChunkCapture returns an empty perf capture drawing from a.
func NewPerfChunkCapture(a *trace.Arena[trace.PerfEvent]) *PerfChunkCapture {
	return &PerfChunkCapture{ChunkCapture[trace.PerfEvent]{arena: a}}
}

// FlushEvents implements trace.PerfSink.
func (c *PerfChunkCapture) FlushEvents(batch []trace.PerfEvent) error { return c.Flush(batch) }

// FilterWithArena is Filter with the re-batching scratch preallocated from a
// shared arena instead of grown lazily, so the first batches through the
// stage allocate nothing.  The returned stage satisfies
// interface{ Release() } for handing the scratch back when the stage is
// retired.
func FilterWithArena[T any](pred func(T) bool, next Stage[T], a *trace.Arena[T]) Stage[T] {
	return &filter[T]{pred: pred, next: next, scratch: a.Get()[:0], arena: a}
}
