package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

func TestGlobalRegistration(t *testing.T) {
	tr := newFast(t)
	g := tr.Global("grid_lon", 4096)
	if g.Segment != trace.SegGlobal {
		t.Fatalf("segment = %v", g.Segment)
	}
	if g.Size != 4096 {
		t.Fatalf("size = %d", g.Size)
	}
	h := tr.Global("grid_lat", 4096)
	if h.Base < g.Base+g.Size {
		t.Fatal("globals overlap")
	}
}

func TestZeroSizeGlobalPanics(t *testing.T) {
	tr := newFast(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size global must panic")
		}
	}()
	tr.Global("z", 0)
}

func TestCommonBlockMergeTwoWay(t *testing.T) {
	// Two program units view one common block under different names with
	// overlapping partitions; the tool merges them into one object whose
	// range is the union and whose name combines the symbols (§III-C).
	tr := newFast(t)
	a := tr.GlobalAt("comm_a", globalBase+0x10000, 1024)
	b := tr.GlobalAt("comm_b", globalBase+0x10000+512, 1024)
	if a != b {
		t.Fatal("overlapping globals must merge into one object")
	}
	if a.Base != globalBase+0x10000 || a.Size != 1536 {
		t.Fatalf("merged range = [%#x,+%d), want union of the two", a.Base, a.Size)
	}
	if a.Name != "comm_a+comm_b" {
		t.Fatalf("merged name = %q", a.Name)
	}
	if n := len(tr.GlobalObjects()); n != 1 {
		t.Fatalf("global object count = %d, want 1", n)
	}
}

func TestCommonBlockMergeThreeWayWithStats(t *testing.T) {
	tr := newFast(t)
	tr.BeginIteration()
	a := tr.GlobalAt("u1", globalBase+0x20000, 256)
	tr.access(a.Base, 8, trace.Write)
	c := tr.GlobalAt("u3", globalBase+0x20000+512, 256)
	tr.access(c.Base, 8, trace.Read)
	// u2 bridges u1 and u3: all three merge.
	m := tr.GlobalAt("u2", globalBase+0x20000+128, 512)
	if m.Size != 768 {
		t.Fatalf("merged size = %d, want 768", m.Size)
	}
	if got := m.Total(); got.Reads != 1 || got.Writes != 1 {
		t.Fatalf("merged stats = %+v, want accumulated 1/1", got)
	}
	if got := m.Iter(1); got.Reads != 1 || got.Writes != 1 {
		t.Fatalf("merged per-iteration stats = %+v", got)
	}
	if n := len(tr.GlobalObjects()); n != 1 {
		t.Fatalf("global object count = %d, want 1", n)
	}
	// The merged object is found by address anywhere in the union.
	tr.access(globalBase+0x20000+700, 8, trace.Read)
	if m.Total().Reads != 2 {
		t.Fatal("access in merged tail not attributed")
	}
}

func TestDisjointGlobalsDoNotMerge(t *testing.T) {
	tr := newFast(t)
	a := tr.GlobalAt("left", globalBase+0x30000, 256)
	b := tr.GlobalAt("right", globalBase+0x30000+256, 256) // adjacent, not overlapping
	if a == b {
		t.Fatal("adjacent globals must stay distinct")
	}
	if n := len(tr.GlobalObjects()); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestMergedNameDeduplicates(t *testing.T) {
	tr := newFast(t)
	tr.GlobalAt("cb", globalBase+0x40000, 128)
	m := tr.GlobalAt("cb", globalBase+0x40000+64, 128)
	if m.Name != "cb" {
		t.Fatalf("same-name merge should not duplicate: %q", m.Name)
	}
}

func TestGlobalCollidingWithHeapPanics(t *testing.T) {
	tr := newFast(t)
	defer func() {
		if recover() == nil {
			t.Fatal("global inside heap segment must panic")
		}
	}()
	tr.GlobalAt("bad", heapBase+16, 64)
}

func TestGlobalAccessAfterMergeAttribution(t *testing.T) {
	tr := newFast(t)
	g1, _ := tr.GlobalF64("block", 64)
	tr.BeginIteration()
	g1.Store(0, 1)
	// Register an alias over the same storage mid-run.
	merged := tr.GlobalAt("alias", g1.Base(), 64*8)
	g1.Store(1, 2)
	if merged.Total().Writes != 2 {
		t.Fatalf("merged writes = %d, want 2 (pre-merge + post-merge)", merged.Total().Writes)
	}
	if merged.Name != "alias+block" {
		t.Fatalf("merged name = %q", merged.Name)
	}
}
