package kernels

import (
	"math"

	"nvscavenger/internal/memtrace"
)

// Additional numerical building blocks for instrumented applications:
// a radix-2 FFT (spectral transforms are the backbone of CAM-class
// dynamical cores) and sparse matrix-vector products (the unstructured-
// mesh workhorse).  Both compute on traced arrays so custom apps built on
// them inherit full instrumentation.

// FFTRadix2 performs an in-place decimation-in-time FFT on interleaved
// complex data (re[0], im[0], re[1], im[1], ...).  The length in complex
// points (data.Len()/2) must be a power of two.  inverse selects the
// inverse transform (including the 1/n scaling).
func FFTRadix2(tr *memtrace.Tracer, data memtrace.F64, inverse bool) {
	n := data.Len() / 2
	if n < 2 || n&(n-1) != 0 {
		panic("kernels: FFT length must be a power of two >= 2") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}

	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re1, im1 := data.Load(2*i), data.Load(2*i+1)
			re2, im2 := data.Load(2*j), data.Load(2*j+1)
			data.Store(2*i, re2)
			data.Store(2*i+1, im2)
			data.Store(2*j, re1)
			data.Store(2*j+1, im1)
		}
	}
	tr.Compute(uint64(2 * n))

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				aRe, aIm := data.Load(2*i), data.Load(2*i+1)
				bRe, bIm := data.Load(2*j), data.Load(2*j+1)
				tRe := bRe*curRe - bIm*curIm
				tIm := bRe*curIm + bIm*curRe
				data.Store(2*i, aRe+tRe)
				data.Store(2*i+1, aIm+tIm)
				data.Store(2*j, aRe-tRe)
				data.Store(2*j+1, aIm-tIm)
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
			tr.Compute(uint64(14 * half))
		}
	}
	if inverse {
		inv := 1.0 / float64(n)
		for i := 0; i < 2*n; i++ {
			data.Store(i, data.Load(i)*inv)
		}
		tr.Compute(uint64(2 * n))
	}
}

// CSR is a compressed-sparse-row matrix over traced storage: RowPtr has
// rows+1 entries, ColIdx/Vals hold the nonzeros.
type CSR struct {
	Rows   int
	RowPtr memtrace.I64
	ColIdx memtrace.I64
	Vals   memtrace.F64
}

// NewHeapCSR allocates CSR storage on the simulated heap for the given
// nonzero count.
func NewHeapCSR(tr *memtrace.Tracer, site string, rows, nnz int) CSR {
	rowPtr, _ := tr.HeapI64("csr_rowptr", site+":rowptr", rows+1)
	colIdx, _ := tr.HeapI64("csr_colidx", site+":colidx", nnz)
	vals, _ := tr.HeapF64("csr_vals", site+":vals", nnz)
	return CSR{Rows: rows, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
}

// SpMV computes y = A x.  Reads follow the classic CSR pattern: the index
// structures stream sequentially while x is gathered at column positions —
// exactly the mixed pattern the paper's locality discussion cares about.
func SpMV(tr *memtrace.Tracer, a CSR, x, y memtrace.F64) {
	for r := 0; r < a.Rows; r++ {
		lo := int(a.RowPtr.Load(r))
		hi := int(a.RowPtr.Load(r + 1))
		sum := 0.0
		for k := lo; k < hi; k++ {
			c := int(a.ColIdx.Load(k))
			sum += a.Vals.Load(k) * x.Load(c)
		}
		y.Store(r, sum)
		tr.Compute(uint64(2*(hi-lo) + 2))
	}
}
