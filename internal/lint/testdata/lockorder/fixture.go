// Package fixture exercises the lock-order contract: nested acquisitions
// must follow the declared hierarchy and every Lock must be released on
// all paths.
package fixture

import (
	"errors"
	"sync"
)

//nvlint:lockorder Registry.mu > entry.mu

var errBusy = errors.New("busy")

type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

type entry struct {
	mu sync.Mutex
	n  int
}

// Total is fine: the nesting follows the declared order and both locks
// are released on every path.
func (r *Registry) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, e := range r.entries {
		e.mu.Lock()
		total += e.n
		e.mu.Unlock()
	}
	return total
}

// Flip is fine: branch-dependent unlocks still cover every path.
func (r *Registry) Flip(x bool) {
	r.mu.Lock()
	if x {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
}

// steal reverses the declared order (and with Total's forward edge the
// observed graph now has a cycle).
func (e *entry) steal(r *Registry) {
	e.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	e.mu.Unlock()
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// undeclared nests two locks with no declared order.
func undeclared() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// Grab leaks the lock on the failure path.
func (r *Registry) Grab(fail bool) error {
	r.mu.Lock()
	if fail {
		return errBusy
	}
	r.mu.Unlock()
	return nil
}

// relock acquires a lock it may already hold.
func (r *Registry) relock() {
	r.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	r.mu.Unlock()
}

//nvlint:lockorder mu

var (
	_ = (*Registry).Total
	_ = (*Registry).Flip
	_ = (*entry).steal
	_ = undeclared
	_ = (*Registry).Grab
	_ = (*Registry).relock
)
