// Package fixture exercises goroutine-lifecycle ties: every launch must
// be bound to a context, a join, or a channel protocol, contexts stay
// out of structs, and unbounded loops must consult cancellation.
package fixture

import (
	"context"
	"sync"
)

// watch is fine: the goroutine's lifetime is the context's.
func watch(ctx context.Context, f func()) {
	go func() {
		<-ctx.Done()
		f()
	}()
}

// fanOut is fine: every worker joins through the WaitGroup.
func fanOut(fs []func()) {
	var wg sync.WaitGroup
	for _, f := range fs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// signal is fine: the body closes a channel the launcher receives from.
func signal(f func()) {
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	<-done
}

// drain is fine: ranging over the channel bounds the goroutine by the
// sender's close.
func drain(ch chan int, f func(int)) {
	go func() {
		for v := range ch {
			f(v)
		}
	}()
}

// pump is fine: the unbounded loop checks cancellation every turn.
func pump(ctx context.Context, f func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		f()
	}
}

// leakGoroutine is fire-and-forget: nothing ever stops or joins it.
func leakGoroutine(f func()) {
	go func() {
		f()
	}()
}

// launchOpaque hides the body behind a function value, so no tie can be
// proven.
func launchOpaque(f func()) {
	go f()
}

// carrier stores a context outside the allowlist.
type carrier struct {
	ctx context.Context
}

// spin never consults cancellation, so no Drain or Close can stop it.
func spin(n *int) {
	for {
		*n++
	}
}

var (
	_ = watch
	_ = fanOut
	_ = signal
	_ = drain
	_ = pump
	_ = leakGoroutine
	_ = launchOpaque
	_ = carrier{}
	_ = spin
)
