package mdmini

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func runMD(t *testing.T, scale float64, iters int) (*App, *memtrace.Tracer) {
	t.Helper()
	app := New(scale)
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})
	if err := apps.Run(app, tr, iters); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRegistered(t *testing.T) {
	a, err := apps.New("minimd", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "minimd" {
		t.Fatalf("name = %q", a.Name())
	}
}

func objByName(t *testing.T, tr *memtrace.Tracer, name string) *memtrace.Object {
	t.Helper()
	for _, o := range tr.Objects() {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("object %q missing", name)
	return nil
}

// TestGeneralObservationsHold: the paper's cross-application populations
// appear in an application outside its evaluation set.
func TestGeneralObservationsHold(t *testing.T) {
	_, tr := runMD(t, 0.1, 8)

	// Read-only tables built at setup.
	lj := objByName(t, tr, "lj_coeff")
	if !lj.LoopReadOnly() {
		t.Error("lj_coeff must be read-only during the loop")
	}
	mass := objByName(t, tr, "mass_table")
	if !mass.LoopReadOnly() {
		t.Error("mass_table must be read-only during the loop")
	}

	// Rewritten state.
	force := objByName(t, tr, "f")
	if force.LoopReadWriteRatio() > 3 {
		t.Errorf("force ratio = %v, want write-heavy", force.LoopReadWriteRatio())
	}

	// Post-processing-only diagnostics.
	rdf := objByName(t, tr, "rdf_hist")
	if rdf.TouchedIterations() != 0 {
		t.Error("rdf_hist must be untouched in the main loop")
	}

	// The neighbor list's ratio swings with the rebuild period.
	neigh := objByName(t, tr, "neighbor_list")
	rebuilt := neigh.IterReadWriteRatio(1) // rebuild iteration: writes heavy
	readPhase := neigh.IterReadWriteRatio(2)
	if readPhase < rebuilt*4 {
		t.Errorf("neighbor list ratio should swing: rebuild %v vs read phase %v", rebuilt, readPhase)
	}
}

func TestPlacementAdvice(t *testing.T) {
	_, tr := runMD(t, 0.1, 8)
	plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
	byName := map[string]core.Advice{}
	for _, adv := range plan.Advices {
		byName[adv.Object.Name] = adv
	}
	if got := byName["lj_coeff"].Target; got != core.TargetNVRAM {
		t.Errorf("lj_coeff -> %v, want NVRAM", got)
	}
	if got := byName["rdf_hist"].Target; got != core.TargetNVRAM {
		t.Errorf("rdf_hist -> %v, want NVRAM (untouched)", got)
	}
	if got := byName["x"].Target; got == core.TargetNVRAM {
		t.Error("positions must not be placed in NVRAM")
	}
	if got := byName["neighbor_list"].Target; got != core.TargetMigratable {
		t.Errorf("neighbor_list -> %v, want migratable (ratio swings across timesteps)", got)
	}
}

func TestStackShareModerate(t *testing.T) {
	_, tr := runMD(t, 0.1, 5)
	st := tr.SegmentTotals(trace.SegStack, 1, 5)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, 5)
	hp := tr.SegmentTotals(trace.SegHeap, 1, 5)
	share := float64(st.Total()) / float64(st.Total()+gl.Total()+hp.Total())
	if share < 0.2 || share > 0.8 {
		t.Errorf("stack share = %v, want moderate", share)
	}
}

func TestDeterminismAndCheck(t *testing.T) {
	a1, _ := runMD(t, 0.05, 4)
	a2, _ := runMD(t, 0.05, 4)
	if a1.checksum != a2.checksum {
		t.Fatal("runs must be deterministic")
	}
	if err := a1.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumScaleClamped(t *testing.T) {
	if New(1e-9).atoms < 128 {
		t.Fatal("atom count must be clamped")
	}
}
