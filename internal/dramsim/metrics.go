package dramsim

import "nvscavenger/internal/obs"

// ExportMetrics publishes the report's command counts and power figures
// into reg under the given labels plus a "device" label, so one registry
// can hold a whole Table VI comparison (DDR3/PCRAM/STTRAM/MRAM side by
// side).  Gauges are set idempotently; re-exporting the same report is a
// no-op.
func (r PowerReport) ExportMetrics(reg *obs.Registry, labels ...obs.Label) {
	ls := append(append([]obs.Label(nil), labels...), obs.L("device", r.Device))
	reg.Gauge("dramsim_reads", ls...).Set(float64(r.Reads))
	reg.Gauge("dramsim_writes", ls...).Set(float64(r.Writes))
	reg.Gauge("dramsim_activates", ls...).Set(float64(r.Activates))
	reg.Gauge("dramsim_row_hits", ls...).Set(float64(r.RowHits))
	reg.Gauge("dramsim_row_misses", ls...).Set(float64(r.RowMisses))
	reg.Gauge("dramsim_row_hit_ratio", ls...).Set(r.RowHitRatio())
	reg.Gauge("dramsim_total_mw", ls...).Set(r.TotalMW)
	reg.Gauge("dramsim_bandwidth_gbs", ls...).Set(r.BandwidthGBs)
	reg.Gauge("dramsim_bus_utilization", ls...).Set(r.BusUtilization)
}
