package wear_test

import (
	"fmt"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/wear"
)

// Example hammers one line of a region and compares lifetimes under static
// placement and Start-Gap wear leveling.
func Example() {
	lifetime := func(scheme wear.Scheme) float64 {
		tr, err := wear.NewTracker(wear.Config{Lines: 64, Scheme: scheme, GapMovePeriod: 10})
		if err != nil {
			panic(err)
		}
		for i := 0; i < 100000; i++ {
			tr.Write(0) // always the same logical line
		}
		return tr.LifetimeWrites(dramsim.PCRAM())
	}
	static := lifetime(wear.Static)
	startGap := lifetime(wear.StartGap)
	fmt.Printf("start-gap extends lifetime by >5x: %v\n", startGap > 5*static)
	// Output:
	// start-gap extends lifetime by >5x: true
}
