package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: nvscavenger/internal/pipeline
cpu: AMD EPYC 7B13
BenchmarkPipelineThroughput/batched-8         	      37	  31415926 ns/op	    524288 tx
BenchmarkPipelineThroughput/per-transaction-8 	      12	  99999999 ns/op	    524288 tx
BenchmarkPipelineInstrumentationOverhead/off-8	       5	 200000000 ns/op
BenchmarkPipelineInstrumentationOverhead/on-8 	       5	 210000000 ns/op
PASS
ok  	nvscavenger/internal/pipeline	6.283s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != snapshotSchemaVersion {
		t.Errorf("schema_version = %d", snap.SchemaVersion)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU != "AMD EPYC 7B13" {
		t.Errorf("environment = %q/%q/%q", snap.Goos, snap.Goarch, snap.CPU)
	}
	if len(snap.Packages) != 1 || snap.Packages[0] != "nvscavenger/internal/pipeline" {
		t.Errorf("packages = %v", snap.Packages)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "PipelineThroughput/batched" || b.Procs != 8 || b.Iterations != 37 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 31415926 || b.Metrics["tx"] != 524288 {
		t.Errorf("first benchmark metrics = %v", b.Metrics)
	}
	if got := snap.Benchmarks[2].Metrics; len(got) != 1 || got["ns/op"] != 200000000 {
		t.Errorf("overhead/off metrics = %v", got)
	}
}

func TestParseRejectsFailAndGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 3 1 ns/op\nFAIL\n")); err == nil {
		t.Error("FAIL line must abort the parse")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 many 1 ns/op\n")); err == nil {
		t.Error("non-numeric iteration count must error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 3 fast ns/op\n")); err == nil {
		t.Error("non-numeric metric value must error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 3 1\n")); err == nil {
		t.Error("odd field count must error")
	}
}

// TestParseNoProcsSuffix: under GOMAXPROCS=1 go test emits no -N suffix.
func TestParseNoProcsSuffix(t *testing.T) {
	snap, err := Parse(strings.NewReader("BenchmarkSolo 100 12 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b := snap.Benchmarks[0]; b.Name != "Solo" || b.Procs != 1 {
		t.Errorf("benchmark = %+v", b)
	}
}

func TestRunWritesSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run([]string{"-in", in, "-out", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	// The raw bench text is echoed so the tool is pipeline-transparent.
	if stdout.String() != sampleBench {
		t.Errorf("stdout did not echo the input:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != snapshotSchemaVersion || len(snap.Benchmarks) != 4 {
		t.Errorf("snapshot = version %d, %d benchmarks", snap.SchemaVersion, len(snap.Benchmarks))
	}
}

// compareBaseline is sampleBench's parse with shifted timings, saved as a
// baseline file by the compare tests.
const compareBaselineJSON = `{
  "schema_version": 1,
  "benchmarks": [
    {"name": "PipelineThroughput/batched", "procs": 8, "iterations": 10,
     "metrics": {"ns/op": 62831852, "tx": 524288, "allocs/op": 0}},
    {"name": "PipelineThroughput/per-transaction", "procs": 8, "iterations": 10,
     "metrics": {"ns/op": 99999999, "tx": 524288}},
    {"name": "PipelineRetired/old", "procs": 8, "iterations": 1,
     "metrics": {"ns/op": 1}}
  ]
}`

func writeCompareFixtures(t *testing.T) (benchTxt, baseline string) {
	t.Helper()
	dir := t.TempDir()
	benchTxt = filepath.Join(dir, "bench.txt")
	baseline = filepath.Join(dir, "base.json")
	if err := os.WriteFile(benchTxt, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, []byte(compareBaselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return benchTxt, baseline
}

// TestCompareReportsDeltas: every shared metric gets a delta row, one-sided
// benchmarks are listed as new/removed, and report-only mode never fails.
func TestCompareReportsDeltas(t *testing.T) {
	benchTxt, baseline := writeCompareFixtures(t)
	var out bytes.Buffer
	if err := run([]string{"-in", benchTxt, "-compare", baseline}, &out); err != nil {
		t.Fatalf("report-only compare failed: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"PipelineThroughput/batched",
		"ns/op",
		"-50.0%", // 62831852 -> 31415926
		"+0.0%",  // per-transaction unchanged
		"(new)",  // InstrumentationOverhead absent from the baseline
		"(removed)",
		"PipelineRetired/old",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	// allocs/op exists only in the baseline for batched: not a shared
	// metric, so no row (and no false regression).
	if strings.Contains(got, "allocs/op") {
		t.Errorf("unshared metric leaked into the diff:\n%s", got)
	}
}

// TestCompareThresholdGates: a regression beyond the threshold fails, a
// speedup never does.
func TestCompareThresholdGates(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	baseline := filepath.Join(dir, "base.json")
	// Fresh run is 2x slower than the recorded baseline and allocates.
	if err := os.WriteFile(benchTxt, []byte("BenchmarkSlow-8 5 200 ns/op 3 allocs/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, []byte(`{"schema_version":1,"benchmarks":[
		{"name":"Slow","procs":8,"iterations":5,"metrics":{"ns/op":100,"allocs/op":0}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-in", benchTxt, "-compare", baseline, "-threshold", "10"}, &out)
	if err == nil {
		t.Fatal("2x ns/op regression plus alloc growth must fail a 10% threshold")
	}
	if !strings.Contains(err.Error(), "ns/op") || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("gate error does not name both regressions: %v", err)
	}
	if err := run([]string{"-in", benchTxt, "-compare", baseline}, &out); err != nil {
		t.Errorf("threshold 0 must stay report-only: %v", err)
	}
	// Swap roles: the fresh run is the faster one.
	if err := os.WriteFile(baseline, []byte(`{"schema_version":1,"benchmarks":[
		{"name":"Slow","procs":8,"iterations":5,"metrics":{"ns/op":400,"allocs/op":3}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", benchTxt, "-compare", baseline, "-threshold", "10"}, &out); err != nil {
		t.Errorf("speedup must pass the gate: %v", err)
	}
}

// TestCompareRejectsBadBaseline: future schemas and -out/-compare together
// are refused.
func TestCompareRejectsBadBaseline(t *testing.T) {
	benchTxt, baseline := writeCompareFixtures(t)
	if err := os.WriteFile(baseline, []byte(`{"schema_version":99,"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", benchTxt, "-compare", baseline}, &out); err == nil {
		t.Error("future-schema baseline must be rejected")
	}
	if err := run([]string{"-in", benchTxt, "-compare", baseline, "-out", "x.json"}, &out); err == nil {
		t.Error("-out with -compare must be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", empty}, &out); err == nil {
		t.Error("input without benchmark lines must error")
	}
	if err := run([]string{"-in", filepath.Join(dir, "missing.txt")}, &out); err == nil {
		t.Error("missing input file must error")
	}
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}
