package memtrace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvscavenger/internal/trace"
)

func TestRegistryLookupBasics(t *testing.T) {
	r := newRegistry(4)
	o := r.newObject(Object{Name: "a", Base: 1000, Size: 100})
	r.insert(o)
	if got := r.lookup(1000); got != o {
		t.Fatal("first byte not found")
	}
	if got := r.lookup(1099); got != o {
		t.Fatal("last byte not found")
	}
	if got := r.lookup(1100); got != nil {
		t.Fatal("one-past-end must not match")
	}
	if got := r.lookup(999); got != nil {
		t.Fatal("byte before base must not match")
	}
}

func TestRegistryCacheHit(t *testing.T) {
	r := newRegistry(4)
	o := r.newObject(Object{Name: "a", Base: 1000, Size: 100})
	r.insert(o)
	r.lookup(1000)
	hitsBefore := r.CacheHits
	r.lookup(1050)
	if r.CacheHits != hitsBefore+1 {
		t.Fatal("second lookup should hit the software cache")
	}
}

func TestRegistryCacheDisabled(t *testing.T) {
	r := newRegistry(0)
	o := r.newObject(Object{Name: "a", Base: 1000, Size: 100})
	r.insert(o)
	r.lookup(1000)
	r.lookup(1000)
	if r.CacheHits != 0 {
		t.Fatal("disabled cache must never hit")
	}
}

func TestRegistryCacheLRUOrder(t *testing.T) {
	r := newRegistry(2)
	a := r.newObject(Object{Name: "a", Base: 0x1000, Size: 16})
	b := r.newObject(Object{Name: "b", Base: 0x2000, Size: 16})
	c := r.newObject(Object{Name: "c", Base: 0x3000, Size: 16})
	for _, o := range []*Object{a, b, c} {
		r.insert(o)
	}
	r.lookup(0x1000) // cache: [a]
	r.lookup(0x2000) // cache: [b a]
	r.lookup(0x3000) // cache: [c b], a evicted
	hits := r.CacheHits
	r.lookup(0x2000) // hit
	if r.CacheHits != hits+1 {
		t.Fatal("b should still be cached")
	}
	hits = r.CacheHits
	r.lookup(0x1000) // miss: a was evicted
	if r.CacheHits != hits {
		t.Fatal("a should have been evicted from the 2-entry cache")
	}
}

func TestRegistryRemove(t *testing.T) {
	r := newRegistry(4)
	o := r.newObject(Object{Name: "a", Base: 1000, Size: 100})
	r.insert(o)
	r.lookup(1000) // prime the cache
	r.remove(o)
	if got := r.lookup(1000); got != nil {
		t.Fatal("removed object must not resolve (including via cache)")
	}
}

func TestRegistryDeadObjectSkipped(t *testing.T) {
	r := newRegistry(4)
	o := r.newObject(Object{Name: "a", Base: 1000, Size: 100})
	r.insert(o)
	o.Dead = true
	if got := r.lookup(1050); got != nil {
		t.Fatal("dead object must not resolve")
	}
}

func TestRegistryObjectSpanningBuckets(t *testing.T) {
	r := newRegistry(4)
	// Force a wide covered range so buckets are coarse, then insert one
	// object spanning multiple buckets.
	far := r.newObject(Object{Name: "far", Base: 1 << 30, Size: 16})
	r.insert(far)
	span := r.newObject(Object{Name: "span", Base: 4096, Size: 1 << 22})
	r.insert(span)
	for _, addr := range []uint64{4096, 4096 + 1<<21, 4096 + 1<<22 - 1} {
		if got := r.lookup(addr); got != span {
			t.Fatalf("addr %#x not resolved to spanning object", addr)
		}
	}
}

func TestRegistryGrowsCoveredRange(t *testing.T) {
	r := newRegistry(4)
	lo := r.newObject(Object{Name: "lo", Base: 100, Size: 10})
	r.insert(lo)
	hi := r.newObject(Object{Name: "hi", Base: 1 << 40, Size: 10})
	r.insert(hi)
	if got := r.lookup(105); got != lo {
		t.Fatal("low object lost after range growth")
	}
	if got := r.lookup(1<<40 + 5); got != hi {
		t.Fatal("high object not found")
	}
}

func TestRegistryRebalanceOnClustering(t *testing.T) {
	r := newRegistry(0)
	// Insert a far object to make the covered range enormous, so that all
	// subsequent clustered objects land in one bucket initially.
	far := r.newObject(Object{Name: "far", Base: 1 << 44, Size: 16})
	r.insert(far)
	base := uint64(1 << 20)
	n := defaultBucketCount // enough to trip the live-count gate
	objs := make([]*Object, n)
	for i := 0; i < n; i++ {
		o := r.newObject(Object{Base: base + uint64(i)*32, Size: 32})
		objs[i] = o
		r.insert(o)
	}
	if r.Rebalances == 0 {
		t.Fatal("clustered inserts should have triggered rebalancing")
	}
	// Every object still resolves after rebalancing.
	for i, o := range objs {
		if got := r.lookup(o.Base + 16); got != o {
			t.Fatalf("object %d lost after rebalance", i)
		}
	}
}

// Property: for random non-overlapping objects, lookup resolves every
// interior address to its object and gaps to nil.
func TestQuickRegistryResolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRegistry(8)
		count := int(n%40) + 1
		type placed struct {
			o *Object
		}
		var objs []placed
		base := uint64(4096)
		for i := 0; i < count; i++ {
			size := uint64(rng.Intn(4096) + 1)
			gap := uint64(rng.Intn(8192) + 1)
			o := r.newObject(Object{Base: base, Size: size, Segment: trace.SegHeap})
			r.insert(o)
			objs = append(objs, placed{o})
			base += size + gap
		}
		for _, p := range objs {
			inner := p.o.Base + uint64(rng.Intn(int(p.o.Size)))
			if r.lookup(inner) != p.o {
				return false
			}
			if r.lookup(p.o.Base+p.o.Size) == p.o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: removal makes exactly the removed object unresolvable.
func TestQuickRegistryRemoval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRegistry(8)
		var objs []*Object
		base := uint64(1 << 16)
		for i := 0; i < 20; i++ {
			o := r.newObject(Object{Base: base, Size: 64})
			r.insert(o)
			objs = append(objs, o)
			base += 128
		}
		victim := objs[rng.Intn(len(objs))]
		r.remove(victim)
		for _, o := range objs {
			got := r.lookup(o.Base + 8)
			if o == victim && got != nil {
				return false
			}
			if o != victim && got != o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
