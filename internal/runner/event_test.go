package runner

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventSequenceAndWire drives an engine under a stepped fake clock and
// checks the streamable event contract: strictly increasing sequence
// numbers, timestamps from the injected clock, and a stable JSON wire form
// that round-trips through EventRecord.
func TestEventSequenceAndWire(t *testing.T) {
	const step = 250 * time.Millisecond
	var mu sync.Mutex
	var events []Event
	e := New(Config{
		Jobs:     1,
		Progress: func(ev Event) { mu.Lock(); events = append(events, ev); mu.Unlock() },
	}, WithClock(steppedClock(step)))

	fn := func(ctx context.Context) (any, uint64, error) { return "v", 42, nil }
	for _, app := range []string{"gtc", "s3d"} {
		if _, err := e.Do(context.Background(), key(app), fn); err != nil {
			t.Fatal(err)
		}
	}
	// Same key again: served from the cache, still stamped and sequenced.
	if _, err := e.Do(context.Background(), key("gtc"), fn); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	// start+done per executed run, then one cached event.
	kinds := []EventKind{EventStart, EventDone, EventStart, EventDone, EventCached}
	if len(events) != len(kinds) {
		t.Fatalf("event count = %d, want %d (%v)", len(events), len(kinds), events)
	}
	for i, ev := range events {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, kinds[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	// The stepped clock pairs each run's start/done reads one step apart.
	if got := events[1].Time.Sub(events[0].Time); got != step {
		t.Errorf("done-start gap = %v, want %v", got, step)
	}
	if events[1].Wall != step {
		t.Errorf("done wall = %v, want %v", events[1].Wall, step)
	}

	data, err := json.Marshal(events[1])
	if err != nil {
		t.Fatal(err)
	}
	var rec EventRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "done" || rec.Key != "gtc/fast" || rec.Seq != 2 {
		t.Errorf("wire record = %+v, want kind=done key=gtc/fast seq=2", rec)
	}
	if rec.WallSeconds != step.Seconds() || rec.Refs != 42 {
		t.Errorf("wire record wall/refs = %v/%d, want %v/42", rec.WallSeconds, rec.Refs, step.Seconds())
	}
	if !rec.Time.Equal(events[1].Time) {
		t.Errorf("wire time = %v, want %v", rec.Time, events[1].Time)
	}
}

// TestEventErrorWire pins the failure wire form: error events carry the
// message, done-only fields stay empty.
func TestEventErrorWire(t *testing.T) {
	ev := Event{Kind: EventError, Key: key("cam"), Seq: 7, Err: context.DeadlineExceeded}
	var rec EventRecord
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "error" || rec.Error != context.DeadlineExceeded.Error() {
		t.Errorf("error wire record = %+v", rec)
	}
	if rec.Refs != 0 || rec.WallSeconds != 0 {
		t.Errorf("error record carries done-only fields: %+v", rec)
	}
}

// TestSharedCacheSingleFlightAcrossEngines: two engines wired to one Cache
// — the nvserved topology, one engine per submitted job — must deduplicate
// concurrent requests for the same key down to a single execution, with the
// joining engine reporting a hit.
func TestSharedCacheSingleFlightAcrossEngines(t *testing.T) {
	cache := NewCache()
	a := New(Config{Jobs: 2, Cache: cache})
	b := New(Config{Jobs: 2, Cache: cache})

	var executions atomic.Int32
	gate := make(chan struct{})
	fn := func(ctx context.Context) (any, uint64, error) {
		<-gate
		executions.Add(1)
		return "shared", 1, nil
	}

	var wg sync.WaitGroup
	results := make([]any, 2)
	errs := make([]error, 2)
	for i, eng := range []*Engine{a, b} {
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			results[i], errs[i] = eng.Do(context.Background(), key("gtc"), fn)
		}(i, eng)
	}
	// Let both engines reach the cache before the run is allowed to finish;
	// exactly one of them must own the entry.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if results[i] != "shared" {
			t.Fatalf("engine %d result = %v", i, results[i])
		}
	}
	if executions.Load() != 1 {
		t.Fatalf("executions = %d, want 1 (single-flight across engines)", executions.Load())
	}
	am, bm := a.Metrics(), b.Metrics()
	if am.Misses+bm.Misses != 1 {
		t.Errorf("misses across engines = %d, want 1", am.Misses+bm.Misses)
	}
	if am.Hits+bm.Hits != 1 {
		t.Errorf("hits across engines = %d, want 1", am.Hits+bm.Hits)
	}
	if cache.Len() != 1 {
		t.Errorf("cache len = %d, want 1", cache.Len())
	}

	// A later engine on the same cache is served without executing.
	c := New(Config{Jobs: 1, Cache: cache})
	v, err := c.Do(context.Background(), key("gtc"),
		func(ctx context.Context) (any, uint64, error) {
			t.Error("third engine re-executed a cached run")
			return nil, 0, nil
		})
	if err != nil || v != "shared" {
		t.Fatalf("third engine: v=%v err=%v", v, err)
	}
}
