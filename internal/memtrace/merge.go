package memtrace

import "nvscavenger/internal/trace"

// objectKey identifies an object across the per-shard tracers of one sharded
// run.  ObjectIDs are not stable across shards — a truncated shard reaches
// its post-processing phase early and may register heap signatures in a
// different order — but (segment, name, site) is unique within a tracer and
// identical for the same application object in every shard.
type objectKey struct {
	seg  trace.Segment
	name string
	site string
}

// MergeShards folds the per-shard tracers of a sharded run into the last
// shard's tracer and returns it.  Every shard replayed the same program, so
// the last shard (the one whose Window has Last set) already holds the exact
// structural state of a full run: object index, address ranges, pattern
// chains, registry statistics, iteration instruction counts, stack high
// water.  What it is missing are the counters recorded by the other shards'
// owned spans — per-object and per-segment reference counts, touched
// iterations, unknown/sampled tallies — which this merge sums in.  Ownership
// of the iteration space is disjoint, so the sums reproduce the full run's
// counters exactly; per-iteration Instructions denominators are restamped
// from the last shard's retired-instruction series afterwards.  All tracers
// must be closed first.  The caller must not reuse the donor shards.
func MergeShards(shards []*Tracer) *Tracer {
	base := shards[len(shards)-1]
	if len(shards) == 1 {
		restampInstructions(base)
		return base
	}

	byKey := map[objectKey]*Object{}
	for _, o := range base.reg.allObjects() {
		byKey[objectKey{o.Segment, o.Name, o.Site}] = o
	}

	for _, s := range shards[:len(shards)-1] {
		for _, o := range s.reg.allObjects() {
			if o.total.Refs() == 0 {
				continue
			}
			b := byKey[objectKey{o.Segment, o.Name, o.Site}]
			if b == nil {
				// Every object with owned references was registered during
				// the deterministic replay prefix the base shard shares, so
				// a missing key would mean the replays diverged.
				panic("memtrace: sharded replay diverged: object " + o.Name + " unknown to the merge base") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
			}
			for len(b.perIter) < len(o.perIter) {
				b.perIter = append(b.perIter, IterStats{})
			}
			for i := range o.perIter {
				b.perIter[i].Reads += o.perIter[i].Reads
				b.perIter[i].Writes += o.perIter[i].Writes
			}
			b.total.Reads += o.total.Reads
			b.total.Writes += o.total.Writes
			b.touched += o.touched
			if s.sampleBytes != nil && base.sampleBytes != nil {
				base.sampleBytes[b.ID] += s.sampleBytes[o.ID]
			}
		}
		// Segments form a fixed four-element universe; iterating them
		// explicitly keeps the merge order deterministic.
		for _, seg := range []trace.Segment{trace.SegUnknown, trace.SegGlobal, trace.SegHeap, trace.SegStack} {
			donor := s.segIter[seg]
			if len(donor) == 0 {
				continue
			}
			stats := base.segIter[seg]
			for len(stats) < len(donor) {
				stats = append(stats, trace.Stats{})
			}
			for i := range donor {
				stats[i].Reads += donor[i].Reads
				stats[i].Writes += donor[i].Writes
				stats[i].BytesRead += donor[i].BytesRead
				stats[i].BytesWrite += donor[i].BytesWrite
			}
			base.segIter[seg] = stats
		}
		base.Unknown += s.Unknown
		base.Sampled += s.Sampled
		base.SampledOut += s.SampledOut
	}

	restampInstructions(base)
	return base
}

// restampInstructions re-establishes the finishIterationAccounting invariant
// on the merged counters: every per-iteration slot with references carries
// that iteration's retired-instruction count, every untouched slot carries
// zero.  The base tracer replayed the whole program, so its iterInstrs series
// equals the full run's.
func restampInstructions(t *Tracer) {
	for _, o := range t.reg.allObjects() {
		for i := range o.perIter {
			s := &o.perIter[i]
			if s.Refs() > 0 && i < len(t.iterInstrs) {
				s.Instructions = t.iterInstrs[i]
			} else {
				s.Instructions = 0
			}
		}
	}
}
