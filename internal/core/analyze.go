package core

import (
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/stats"
	"nvscavenger/internal/trace"
)

// StackRow is one application's row of Table V: the whole-stack read/write
// ratio and the share of all references that hit the stack.
type StackRow struct {
	// SteadyRatio is the stack read/write ratio over iterations 2..N (the
	// paper reports CAM's steady 20.39 separately from its first-iteration
	// 11.46).
	SteadyRatio float64
	// FirstIterRatio is the ratio in iteration 1 alone.
	FirstIterRatio float64
	// OverallRatio covers the whole main loop.
	OverallRatio float64
	// ReferencePct is stack references / all references over the loop.
	ReferencePct float64
}

// StackAnalysis computes the Table V row from a fast-mode run.
func StackAnalysis(tr *memtrace.Tracer) StackRow {
	n := tr.MainLoopIterations()
	st := tr.SegmentTotals(trace.SegStack, 1, n)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, n)
	hp := tr.SegmentTotals(trace.SegHeap, 1, n)
	row := StackRow{OverallRatio: st.ReadWriteRatio()}
	if total := st.Total() + gl.Total() + hp.Total(); total > 0 {
		row.ReferencePct = float64(st.Total()) / float64(total) * 100
	}
	first := tr.SegmentStats(trace.SegStack, 1)
	row.FirstIterRatio = first.ReadWriteRatio()
	if n >= 2 {
		steady := tr.SegmentTotals(trace.SegStack, 2, n)
		row.SteadyRatio = steady.ReadWriteRatio()
	} else {
		row.SteadyRatio = row.FirstIterRatio
	}
	return row
}

// ObjectRecord is one point of the per-object scatter plots (Figures 2-6):
// the three metrics plus classification flags.
type ObjectRecord struct {
	Name      string
	Segment   trace.Segment
	SizeBytes uint64
	// RWRatio and RefRate are main-loop values (see Metrics).
	RWRatio float64
	RefRate float64
	// Refs is the absolute main-loop reference count (the weight used for
	// Figure 2's "share of references" statistics).
	Refs      uint64
	ReadOnly  bool
	Untouched bool
	// TouchedIters counts distinct main-loop iterations with references.
	TouchedIters int
	AllocIter    int
	// Pattern is the dominant spatial access pattern (sequential objects
	// stream through row buffers and tolerate slow NVRAM best).
	Pattern memtrace.Pattern
}

func recordOf(o *memtrace.Object) ObjectRecord {
	m := MetricsOf(o)
	return ObjectRecord{
		Name:         o.Name,
		Segment:      o.Segment,
		SizeBytes:    o.Size,
		RWRatio:      m.ReadWriteRatio,
		RefRate:      m.ReferenceRate,
		Refs:         o.LoopStats().Refs(),
		ReadOnly:     m.ReadOnly,
		Untouched:    m.Untouched,
		TouchedIters: o.TouchedIterations(),
		AllocIter:    o.AllocIter,
		Pattern:      o.AccessPattern(),
	}
}

// ObjectRecords returns the global and heap object records (Figures 3-6).
// Dead short-term heap objects are included: they carry their accumulated
// statistics under their program-context identity.
func ObjectRecords(tr *memtrace.Tracer) []ObjectRecord {
	var out []ObjectRecord
	seen := map[memtrace.ObjectID]struct{}{}
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegGlobal && o.Segment != trace.SegHeap {
			continue
		}
		if _, dup := seen[o.ID]; dup {
			continue
		}
		seen[o.ID] = struct{}{}
		out = append(out, recordOf(o))
	}
	return out
}

// StackFrameRecords returns the per-routine stack records from a slow-mode
// run (Figure 2).
func StackFrameRecords(tr *memtrace.Tracer) []ObjectRecord {
	var out []ObjectRecord
	for _, o := range tr.StackObjects() {
		if o.LoopStats().Refs() == 0 {
			continue
		}
		out = append(out, recordOf(o))
	}
	return out
}

// Figure2Stats summarizes the per-frame population the way §VII-A does.
type Figure2Stats struct {
	// Share of stack objects with R/W > 10 and > 50, and the share of
	// stack references they draw.
	CountOver10, RefsOver10 float64
	CountOver50, RefsOver50 float64
}

// SummarizeFrames computes the Figure 2 headline statistics.
func SummarizeFrames(records []ObjectRecord) Figure2Stats {
	var ratios, weights []float64
	for _, r := range records {
		ratios = append(ratios, r.RWRatio)
		weights = append(weights, float64(r.Refs))
	}
	var out Figure2Stats
	out.CountOver10, out.RefsOver10 = stats.ShareAbove(ratios, weights, 10)
	out.CountOver50, out.RefsOver50 = stats.ShareAbove(ratios, weights, 50)
	return out
}

// UsagePoint is one step of Figure 7's cumulative distribution: UsedInMB
// megabytes of memory objects are referenced in at most Iterations
// main-loop iterations (0 = only in the pre/post phases).
type UsagePoint struct {
	Iterations   int
	CumulativeMB float64
}

// UsageCDF computes Figure 7 for one run.  Short-term heap objects —
// allocated and freed within the main loop — are excluded, as the paper
// excludes them: their cumulative size is not a real NVRAM opportunity.
// Long-term heap objects (allocated during pre-computing) and globals are
// included.
func UsageCDF(tr *memtrace.Tracer) []UsagePoint {
	iters := tr.MainLoopIterations()
	byCount := make([]uint64, iters+1)
	seen := map[memtrace.ObjectID]struct{}{}
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegGlobal && o.Segment != trace.SegHeap {
			continue
		}
		if _, dup := seen[o.ID]; dup {
			continue
		}
		seen[o.ID] = struct{}{}
		if o.Segment == trace.SegHeap && o.Dead && o.AllocIter > 0 {
			continue // short-term heap object
		}
		t := o.TouchedIterations()
		if t > iters {
			t = iters
		}
		byCount[t] += o.Size
	}
	out := make([]UsagePoint, 0, iters+1)
	var cum uint64
	for i := 0; i <= iters; i++ {
		cum += byCount[i]
		out = append(out, UsagePoint{Iterations: i, CumulativeMB: float64(cum) / (1 << 20)})
	}
	return out
}

// VarianceMetric selects which per-iteration metric Figures 8-11 normalize.
type VarianceMetric int

const (
	// VarianceRWRatio tracks the per-iteration read/write ratio.
	VarianceRWRatio VarianceMetric = iota
	// VarianceRefRate tracks the per-iteration reference rate.
	VarianceRefRate
)

// VarianceDistribution computes the Figures 8-11 presentation: for each
// main-loop iteration, the distribution (over objects) of the selected
// metric normalized by its first-iteration value, bucketed into
// stats.VarianceBins.  Row i (1-based) holds the bin shares for iteration
// i; bin index 2 is the paper's headline [1,2) bucket.
func VarianceDistribution(tr *memtrace.Tracer, metric VarianceMetric) [][]float64 {
	iters := tr.MainLoopIterations()
	var perObject [][]float64
	seen := map[memtrace.ObjectID]struct{}{}
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegGlobal && o.Segment != trace.SegHeap {
			continue
		}
		if _, dup := seen[o.ID]; dup {
			continue
		}
		seen[o.ID] = struct{}{}
		if o.LoopStats().Refs() == 0 {
			continue
		}
		series := make([]float64, iters+1)
		for i := 1; i <= iters; i++ {
			switch metric {
			case VarianceRefRate:
				series[i] = o.IterReferenceRate(i)
			default:
				series[i] = o.IterReadWriteRatio(i)
			}
		}
		perObject = append(perObject, series)
	}
	return stats.NormalizedDistribution(perObject, iters)
}

// StableShare returns, for a variance distribution, the mean share of
// objects in the [1,2) bin across iterations 1..N — the paper's "more than
// 60% of memory objects stay within [1,2)".
func StableShare(dist [][]float64) float64 {
	if len(dist) <= 1 {
		return 0
	}
	sum, n := 0.0, 0
	for i := 1; i < len(dist); i++ {
		if len(dist[i]) > 2 {
			sum += dist[i][2]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
