package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

var updateJobSpecGolden = flag.Bool("update", false, "rewrite testdata/jobspec_normalized.golden")

// TestDecodeJobSpecCrossVersion pins the cross-version decoding contract
// journal replay depends on: specs written at schema versions 1, 2 and 3
// all decode and normalize to the same spec, byte-for-byte against the
// committed golden — so a WAL of old records keeps replaying after
// future schema bumps.
func TestDecodeJobSpecCrossVersion(t *testing.T) {
	var first []byte
	for _, version := range []int{1, 2, 3} {
		name := fmt.Sprintf("testdata/jobspec_v%d.json", version)
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		spec, err := DecodeJobSpec(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s did not decode: %v", name, err)
		}
		if spec.SchemaVersion != version {
			t.Errorf("%s claims schema_version %d, want %d", name, spec.SchemaVersion, version)
		}
		norm := spec.Normalized()
		if err := norm.Validate(); err != nil {
			t.Fatalf("%s normalized spec invalid: %v", name, err)
		}
		got, err := json.MarshalIndent(norm, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Errorf("v%d normalized spec diverges from v1's:\n%s", version, got)
		}
	}
	golden := "testdata/jobspec_normalized.golden"
	if *updateJobSpecGolden {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("normalized spec drifted from golden:\ngot:\n%swant:\n%s", first, want)
	}
}

func TestJobSpecNormalizeValidateRoundTrip(t *testing.T) {
	spec := JobSpec{Scale: 0.25, Iterations: 5, Apps: []string{"cam"}, Exhibits: []string{"table5"}}
	norm := spec.Normalized()
	if norm.SchemaVersion != SchemaVersion {
		t.Errorf("Normalized schema_version = %d", norm.SchemaVersion)
	}
	if err := norm.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	// Zero values normalize to the calibrated defaults.
	def := JobSpec{}.Normalized()
	if def.Scale != 1.0 || def.Iterations != 10 {
		t.Errorf("defaults = scale %v, iterations %d", def.Scale, def.Iterations)
	}

	decoded, err := DecodeJobSpec(strings.NewReader(
		`{"schema_version":1,"scale":0.25,"iterations":5,"apps":["cam"],"exhibits":["table5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Scale != spec.Scale || decoded.Apps[0] != "cam" {
		t.Errorf("decoded = %+v", decoded)
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"bogus_field":1}`)); err == nil {
		t.Error("unknown field must be rejected")
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"schema_version":99}`)); err == nil {
		t.Error("future schema version must be rejected")
	}
}

func TestJobSpecRunCacheKeyPartitions(t *testing.T) {
	healthy := JobSpec{}
	if healthy.RunCacheKey() != "healthy" {
		t.Errorf("no-fault key = %q", healthy.RunCacheKey())
	}
	a := JobSpec{Fault: "sink:every=3,seed=7"}
	b := JobSpec{Fault: "sink:seed=7,every=3"}
	if a.RunCacheKey() != b.RunCacheKey() {
		t.Errorf("equivalent fault spellings partition differently: %q vs %q",
			a.RunCacheKey(), b.RunCacheKey())
	}
	if a.RunCacheKey() == healthy.RunCacheKey() {
		t.Error("faulted spec shares the healthy partition")
	}
}
