package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/served"
)

// TestServeEndToEnd drives the daemon the way a client would: submit a
// sweep job over HTTP, stream its progress events, fetch the finished
// report, then shut down via context cancellation (the signal path) and
// check the drain summary and flushed metrics.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := served.NewManager(served.Config{Workers: 1})
	ctx, stop := context.WithCancel(context.Background())
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.txt")

	var out bytes.Buffer
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ctx, ln, m, time.Minute, metricsPath, &out) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"exhibits":["table1","table5"],"scale":0.05,"iterations":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || res.State != experiments.StateQueued {
		t.Fatalf("submit: status %d, state %q", resp.StatusCode, res.State)
	}

	// Stream progress until the job completes: the stream must carry at
	// least one start and one done event.
	resp, err = http.Get(base + "/jobs/" + res.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	starts, dones := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case "start":
			starts++
		case "done":
			dones++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if starts == 0 || dones == 0 {
		t.Fatalf("event stream: %d starts, %d dones", starts, dones)
	}

	resp, err = http.Get(base + "/jobs/" + res.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d: %s", resp.StatusCode, report)
	}
	text := string(report)
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Table V") {
		t.Errorf("served report incomplete:\n%s", text)
	}

	// Signal-path shutdown: drain and exit clean.
	stop()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("serve did not shut down")
	}
	log := out.String()
	if !strings.Contains(log, "listening on") || !strings.Contains(log, "drained: 1 jobs (1 done, 0 failed, 0 cancelled)") {
		t.Errorf("daemon log unexpected:\n%s", log)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics not flushed on shutdown: %v", err)
	}
	for _, want := range []string{"served_jobs_submitted_total", "runner_runs_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("flushed metrics missing %s", want)
		}
	}
}

// TestRunFlagValidation: bad flags and fault specs fail before listening.
func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fault", "writer:bogus=1", "-addr", "127.0.0.1:0"}, &out); err == nil {
		t.Error("malformed -fault spec must error")
	}
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}
