package core

import (
	"strings"
	"testing"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

// buildScenario constructs a tracer with a controlled object population:
//   - "readonly": written in setup, read every iteration;
//   - "hot_write": written heavily every iteration;
//   - "high_ratio": many reads per write, modest write rate;
//   - "untouched": allocated, never referenced in the loop;
//   - "varying": read-dominated in odd iterations, write-dominated in even.
func buildScenario(t *testing.T, iters int) *memtrace.Tracer {
	t.Helper()
	tr := memtrace.New(memtrace.Config{})
	ro, _ := tr.GlobalF64("readonly", 1024)
	hw, _ := tr.GlobalF64("hot_write", 2048)
	hr, _ := tr.HeapF64("high_ratio", "x.go:1", 512)
	tr.Global("untouched", 4096*8)
	vy, _ := tr.GlobalF64("varying", 256)
	ro.Fill(1)

	for it := 1; it <= iters; it++ {
		tr.BeginIteration()
		for i := 0; i < ro.Len(); i++ {
			_ = ro.Load(i)
		}
		for i := 0; i < hw.Len(); i++ {
			hw.Store(i, float64(i))
		}
		for r := 0; r < 60; r++ {
			for i := 0; i < hr.Len(); i += 8 {
				_ = hr.Load(i)
			}
		}
		hr.Store(0, 1)
		if it%2 == 1 {
			for i := 0; i < vy.Len(); i++ {
				_ = vy.Load(i)
			}
			vy.Store(0, 1)
		} else {
			for i := 0; i < vy.Len(); i++ {
				vy.Store(i, 1)
			}
		}
		tr.Compute(10000)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func objByName(t *testing.T, tr *memtrace.Tracer, name string) *memtrace.Object {
	t.Helper()
	for _, o := range tr.Objects() {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("object %q missing", name)
	return nil
}

func TestCategoryString(t *testing.T) {
	for _, c := range []Category{Category1, Category2, Category3} {
		if c.String() == "" || !strings.Contains(c.String(), "category") {
			t.Errorf("category %d string = %q", c, c)
		}
	}
}

func TestTargetString(t *testing.T) {
	if TargetDRAM.String() != "DRAM" || TargetNVRAM.String() != "NVRAM" || TargetMigratable.String() != "migratable" {
		t.Fatal("target strings wrong")
	}
}

func TestMetricsOf(t *testing.T) {
	tr := buildScenario(t, 4)
	ro := MetricsOf(objByName(t, tr, "readonly"))
	if !ro.ReadOnly || ro.Untouched {
		t.Errorf("readonly metrics = %+v", ro)
	}
	un := MetricsOf(objByName(t, tr, "untouched"))
	if !un.Untouched {
		t.Errorf("untouched metrics = %+v", un)
	}
	hw := MetricsOf(objByName(t, tr, "hot_write"))
	if hw.ReadWriteRatio != 0 || hw.WriteRate <= 0 {
		t.Errorf("hot_write metrics = %+v", hw)
	}
	hr := MetricsOf(objByName(t, tr, "high_ratio"))
	if hr.ReadWriteRatio < 50 {
		t.Errorf("high_ratio ratio = %v, want >= 50", hr.ReadWriteRatio)
	}
}

func TestClassification(t *testing.T) {
	tr := buildScenario(t, 4)
	p := DefaultPolicy(Category2)
	cases := map[string]Target{
		"readonly":   TargetNVRAM,
		"untouched":  TargetNVRAM,
		"hot_write":  TargetDRAM,
		"high_ratio": TargetNVRAM,
		"varying":    TargetMigratable,
	}
	for name, want := range cases {
		adv := p.Classify(objByName(t, tr, name))
		if adv.Target != want {
			t.Errorf("%s -> %v (%s), want %v", name, adv.Target, adv.Reason, want)
		}
		if adv.Reason == "" {
			t.Errorf("%s: empty reason", name)
		}
	}
}

func TestCategory1StricterThanCategory2(t *testing.T) {
	tr := memtrace.New(memtrace.Config{})
	a, _ := tr.GlobalF64("ratio20", 128)
	tr.BeginIteration()
	for r := 0; r < 20; r++ {
		for i := 0; i < a.Len(); i++ {
			_ = a.Load(i)
		}
	}
	a.Store(0, 1)
	for i := 0; i < a.Len(); i++ {
		a.Store(i, 1) // bump writes so ratio lands near 20
	}
	tr.Compute(1000000)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	o := objByName(t, tr, "ratio20")
	if DefaultPolicy(Category2).Classify(o).Target != TargetNVRAM {
		t.Fatalf("ratio-20 object should fit category 2 (ratio=%v)", o.LoopReadWriteRatio())
	}
	if DefaultPolicy(Category1).Classify(o).Target == TargetNVRAM {
		t.Fatal("ratio-20 object must not fit category 1 (threshold 50)")
	}
}

func TestCategory1SequentialExemption(t *testing.T) {
	// Two objects with identical (high) reference rates and ratios above
	// the category-1 threshold; one walked sequentially, one randomly.
	// Only the sequential one may enter category-1 NVRAM when the
	// reference-rate guard trips.
	tr := memtrace.New(memtrace.Config{})
	seq, _ := tr.GlobalF64("seq", 1024)
	rnd, _ := tr.GlobalF64("rnd", 1024)
	tr.BeginIteration()
	for pass := 0; pass < 60; pass++ {
		for i := 0; i < 1024; i++ {
			_ = seq.Load(i)
		}
		h := uint64(pass + 1)
		for i := 0; i < 1024; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			_ = rnd.Load(int(h % 1024))
		}
	}
	seq.Store(0, 1)
	rnd.Store(0, 1)
	tr.Compute(1000) // tiny compute: reference rates far above the cap
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	p := DefaultPolicy(Category1)
	seqObj, rndObj := objByName(t, tr, "seq"), objByName(t, tr, "rnd")
	if MetricsOf(seqObj).ReferenceRate <= p.MaxReferenceRate {
		t.Skip("workload too small to exceed the reference-rate cap")
	}
	if got := p.Classify(seqObj).Target; got != TargetNVRAM {
		t.Errorf("sequential object -> %v, want NVRAM (row-buffer streaming exemption)", got)
	}
	if got := p.Classify(rndObj).Target; got == TargetNVRAM {
		t.Errorf("random object must not enter category-1 NVRAM at this rate")
	}
}

func TestPlanPartitionsFootprint(t *testing.T) {
	tr := buildScenario(t, 4)
	sum := Plan(tr, DefaultPolicy(Category2))
	if sum.TotalBytes == 0 {
		t.Fatal("empty plan")
	}
	if got := sum.NVRAMBytes + sum.MigratableBytes + sum.DRAMBytes; got != sum.TotalBytes {
		t.Fatalf("partition %d != total %d", got, sum.TotalBytes)
	}
	if sum.NVRAMShare <= 0 || sum.NVRAMShare > 1 {
		t.Fatalf("NVRAM share = %v", sum.NVRAMShare)
	}
	// untouched (32 KB) + readonly (8 KB) + high_ratio (4 KB) vs
	// hot_write (16 KB) + varying (2 KB).
	wantShare := float64(32768+8192+4096) / float64(32768+8192+4096+16384+2048)
	if diff := sum.NVRAMShare - wantShare; diff > 0.01 || diff < -0.01 {
		t.Fatalf("NVRAM share = %v, want %v", sum.NVRAMShare, wantShare)
	}
	// Advices sorted by size descending.
	for i := 1; i < len(sum.Advices); i++ {
		if sum.Advices[i].Object.Size > sum.Advices[i-1].Object.Size {
			t.Fatal("advices not sorted by size")
		}
	}
}

func TestEndurance(t *testing.T) {
	tr := buildScenario(t, 4)
	hw := objByName(t, tr, "hot_write")
	est := Endurance(hw, dramsim.PCRAM(), 4)
	if est.WritesPerBytePerStep <= 0 {
		t.Fatalf("hot_write must show write density: %+v", est)
	}
	// 2048 writes x 8 bytes per step over 16384 bytes = 1 write/byte/step.
	if est.WritesPerBytePerStep < 0.9 || est.WritesPerBytePerStep > 1.1 {
		t.Fatalf("write density = %v, want ~1", est.WritesPerBytePerStep)
	}
	if est.LifetimeSteps < 4e9 || est.LifetimeSteps > 6e9 {
		t.Fatalf("PCRAM lifetime = %v steps, want ~5e9", est.LifetimeSteps)
	}
	ro := Endurance(objByName(t, tr, "readonly"), dramsim.PCRAM(), 4)
	if ro.LifetimeSteps != dramsim.PCRAM().WriteEndurance {
		t.Fatal("unwritten object lifetime should equal raw endurance")
	}
	zero := Endurance(hw, dramsim.PCRAM(), 0)
	if zero.LifetimeSteps != 0 || zero.WritesPerBytePerStep != 0 {
		t.Fatal("zero iterations must give zero estimate")
	}
}

func TestStackAnalysis(t *testing.T) {
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})
	g, _ := tr.GlobalF64("g", 64)
	for it := 1; it <= 3; it++ {
		tr.BeginIteration()
		f := tr.Enter("k")
		l := f.LocalF64(16)
		writes := 1
		if it == 1 {
			writes = 4 // write-heavy first iteration
		}
		for w := 0; w < writes; w++ {
			for i := 0; i < 16; i++ {
				l.Store(i, 1)
			}
		}
		for r := 0; r < 8; r++ {
			for i := 0; i < 16; i++ {
				_ = l.Load(i)
			}
		}
		tr.Leave()
		g.Store(0, 1)
		tr.Compute(100)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	row := StackAnalysis(tr)
	if row.FirstIterRatio >= row.SteadyRatio {
		t.Fatalf("first-iter ratio %v should be below steady %v", row.FirstIterRatio, row.SteadyRatio)
	}
	if row.SteadyRatio != 8 {
		t.Fatalf("steady ratio = %v, want 8", row.SteadyRatio)
	}
	if row.ReferencePct < 95 {
		t.Fatalf("reference pct = %v, want ~99", row.ReferencePct)
	}
	if row.OverallRatio <= 0 {
		t.Fatal("overall ratio must be positive")
	}
}

func TestObjectRecords(t *testing.T) {
	tr := buildScenario(t, 4)
	recs := ObjectRecords(tr)
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	byName := map[string]ObjectRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if !byName["readonly"].ReadOnly {
		t.Error("readonly record flag missing")
	}
	if !byName["untouched"].Untouched {
		t.Error("untouched record flag missing")
	}
	if byName["high_ratio"].Segment != trace.SegHeap {
		t.Error("high_ratio should be heap")
	}
	if byName["hot_write"].TouchedIters != 4 {
		t.Errorf("hot_write touched = %d, want 4", byName["hot_write"].TouchedIters)
	}
}

func TestUsageCDF(t *testing.T) {
	tr := buildScenario(t, 4)
	pts := UsageCDF(tr)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5 (iterations 0..4)", len(pts))
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].CumulativeMB < pts[i-1].CumulativeMB {
			t.Fatal("usage CDF must be monotone")
		}
	}
	// The untouched object (32 KB) is the x=0 mass.
	if pts[0].CumulativeMB < 0.031_05 || pts[0].CumulativeMB > 0.0313 {
		t.Fatalf("x=0 mass = %v MB, want ~0.03125 (the untouched 32 KB)", pts[0].CumulativeMB)
	}
	total := pts[len(pts)-1].CumulativeMB
	want := float64(8192+16384+4096+32768+2048) / (1 << 20)
	if diff := total - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total = %v MB, want %v", total, want)
	}
}

func TestUsageCDFExcludesShortTermHeap(t *testing.T) {
	tr := memtrace.New(memtrace.Config{})
	tr.BeginIteration()
	_, obj := tr.HeapF64("shortterm", "a.go:1", 1024)
	tr.Free(obj)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	pts := UsageCDF(tr)
	if pts[len(pts)-1].CumulativeMB != 0 {
		t.Fatal("short-term heap objects must be excluded from Figure 7")
	}
}

func TestVarianceDistribution(t *testing.T) {
	tr := buildScenario(t, 4)
	dist := VarianceDistribution(tr, VarianceRWRatio)
	if len(dist) != 5 {
		t.Fatalf("distribution rows = %d, want 5", len(dist))
	}
	for iter := 1; iter <= 4; iter++ {
		sum := 0.0
		for _, f := range dist[iter] {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("iteration %d distribution sums to %v", iter, sum)
		}
	}
	// Stable objects dominate: readonly, hot_write, high_ratio all have
	// constant per-iteration metrics -> [1,2) bin.
	if share := StableShare(dist); share < 0.6 {
		t.Fatalf("stable share = %v, want > 0.6", share)
	}
	rate := VarianceDistribution(tr, VarianceRefRate)
	if share := StableShare(rate); share < 0.6 {
		t.Fatalf("rate stable share = %v, want > 0.6", share)
	}
}

func TestStackFrameRecordsAndFigure2(t *testing.T) {
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.SlowStack})
	for it := 1; it <= 2; it++ {
		tr.BeginIteration()
		for r, reads := range []int{5, 20, 60} {
			f := tr.Enter([]string{"low", "mid", "high"}[r])
			l := f.LocalF64(32)
			for i := 0; i < 32; i++ {
				l.Store(i, 1)
			}
			for k := 0; k < reads; k++ {
				for i := 0; i < 32; i++ {
					_ = l.Load(i)
				}
			}
			tr.Leave()
		}
		tr.Compute(1000)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs := StackFrameRecords(tr)
	if len(recs) != 3 {
		t.Fatalf("frame records = %d, want 3", len(recs))
	}
	fig := SummarizeFrames(recs)
	if fig.CountOver10 < 0.6 || fig.CountOver10 > 0.7 {
		t.Fatalf("count over 10 = %v, want 2/3", fig.CountOver10)
	}
	if fig.CountOver50 < 0.3 || fig.CountOver50 > 0.36 {
		t.Fatalf("count over 50 = %v, want 1/3", fig.CountOver50)
	}
	if fig.RefsOver50 <= 0 || fig.RefsOver50 >= fig.RefsOver10 {
		t.Fatalf("refs shares inconsistent: %+v", fig)
	}
}

func TestStableShareEmpty(t *testing.T) {
	if StableShare(nil) != 0 {
		t.Fatal("empty distribution should give 0")
	}
	if StableShare([][]float64{nil}) != 0 {
		t.Fatal("no-iteration distribution should give 0")
	}
}

func TestEstimateSaving(t *testing.T) {
	tr := buildScenario(t, 4)
	plan := Plan(tr, DefaultPolicy(Category2))
	est := EstimateSaving(plan, dramsim.DDR3(), dramsim.PCRAM())
	if est.NVRAMShare != plan.NVRAMShare {
		t.Fatal("share not propagated")
	}
	if est.BackgroundSavingMW <= 0 {
		t.Fatalf("saving = %v, want positive", est.BackgroundSavingMW)
	}
	want := plan.NVRAMShare * (dramsim.DDR3().CellStandbyMW + dramsim.DDR3().RefreshMW)
	if diff := est.BackgroundSavingMW - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("saving = %v, want %v", est.BackgroundSavingMW, want)
	}
	if est.TotalSavingFraction <= 0 || est.TotalSavingFraction >= 1 {
		t.Fatalf("fraction = %v", est.TotalSavingFraction)
	}
	// Placing everything in NVRAM cannot save more than the DRAM-only
	// background share.
	full := PlacementSummary{NVRAMShare: 1}
	cap := EstimateSaving(full, dramsim.DDR3(), dramsim.PCRAM())
	if est.TotalSavingFraction > cap.TotalSavingFraction {
		t.Fatal("partial placement cannot beat full placement")
	}
}
