package experiments

import (
	"context"
	"fmt"
	"strings"

	"nvscavenger/internal/core"
	"nvscavenger/internal/hybrid"
)

// PlacementComparison contrasts the two placement granularities the paper's
// discussion spans: the object-level static placement its characterization
// enables (§II's metrics applied per data structure) against the page-level
// hardware-driven dynamic placement of Ramos et al. (§VIII), evaluated on
// the same application run with the same DRAM capacity.
type PlacementComparison struct {
	App string

	// Object-granularity (core.Plan, category-2 policy).
	ObjectNVRAMShare float64 // bytes placed in NVRAM / footprint
	// ObjectNVRAMWriteShare is the fraction of main-loop writes that land
	// on NVRAM-placed objects — the write exposure the §II policy accepts.
	ObjectNVRAMWriteShare float64

	// Page-granularity (hybrid.System with the DRAM budget matched to the
	// object plan's DRAM bytes).
	DRAMBudgetPages     int
	PageNVRAMShare      float64 // NVRAM pages / pages
	PageNVRAMWriteShare float64 // post-cache writes landing in NVRAM
	PageMigrations      uint64
}

// PlacementComparison runs the study for every app, fanning the per-app
// runs and page-granularity replays out across the worker pool.
func (s *Session) PlacementComparison() ([]PlacementComparison, error) {
	return collectApps(s, s.appNames(), func(ctx context.Context, name string) (PlacementComparison, error) {
		run, err := s.fast(ctx, name)
		if err != nil {
			return PlacementComparison{}, err
		}
		plan := core.Plan(run.Tracer, core.DefaultPolicy(core.Category2))

		cmp := PlacementComparison{
			App:                   name,
			ObjectNVRAMShare:      plan.NVRAMShare,
			ObjectNVRAMWriteShare: objectWriteExposure(plan),
		}

		// Page-granularity run over the same cache-filtered traffic, with
		// the same DRAM capacity the object plan consumed.
		budget := int((plan.DRAMBytes + plan.MigratableBytes + 4095) / 4096)
		cmp.DRAMBudgetPages = budget
		// Size the monitoring epoch to the trace so short runs still see
		// several rebalancing opportunities.
		epoch := len(run.Transactions) / 10
		if epoch < 5000 {
			epoch = 5000
		}
		sys, err := hybrid.New(hybrid.Config{
			DRAMBudgetPages:   budget,
			EpochTransactions: epoch,
		})
		if err != nil {
			return PlacementComparison{}, err
		}
		for _, tx := range run.Transactions {
			if err := sys.Transaction(tx); err != nil {
				return PlacementComparison{}, err
			}
		}
		rep := sys.Report()
		if rep.Pages > 0 {
			cmp.PageNVRAMShare = float64(rep.NVRAMPages) / float64(rep.Pages)
		}
		cmp.PageNVRAMWriteShare = rep.NVRAMWriteShare
		cmp.PageMigrations = rep.Promotions + rep.Demotions
		return cmp, nil
	})
}

// FormatPlacementComparison renders the study.
func FormatPlacementComparison(rows []PlacementComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement granularity: object-level static (this paper) vs page-level dynamic (Ramos et al.)\n")
	fmt.Fprintf(&b, "%-10s | %14s %14s | %12s %14s %14s %10s\n",
		"App", "obj NVRAM %", "obj NV write %", "DRAM pages", "page NVRAM %", "page NV write %", "migrations")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %13.1f%% %13.1f%% | %12d %13.1f%% %13.1f%% %10d\n",
			r.App, r.ObjectNVRAMShare*100, r.ObjectNVRAMWriteShare*100,
			r.DRAMBudgetPages, r.PageNVRAMShare*100, r.PageNVRAMWriteShare*100, r.PageMigrations)
	}
	fmt.Fprintf(&b, "object-level placement uses application knowledge (untouched/read-only structures) and\n")
	fmt.Fprintf(&b, "exposes almost no writes to NVRAM; page-level placement discovers hot pages online but\n")
	fmt.Fprintf(&b, "pays migrations and leaves cold-page writes in NVRAM.\n")
	return b.String()
}

// objectWriteExposure computes the fraction of main-loop writes that a
// placement plan sends to NVRAM-resident objects.
func objectWriteExposure(plan core.PlacementSummary) float64 {
	var nvWrites, allWrites uint64
	for _, adv := range plan.Advices {
		w := adv.Object.LoopStats().Writes
		allWrites += w
		if adv.Target == core.TargetNVRAM {
			nvWrites += w
		}
	}
	if allWrites == 0 {
		return 0
	}
	return float64(nvWrites) / float64(allWrites)
}
