package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package handed to the passes: the parsed
// files, the go/types universe they were checked in, and the parsed
// suppression directives.
type Package struct {
	// Path is the import path the package was checked under.
	Path string
	// Module is the module path of the loader that produced the package.
	Module string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	root       string
	ignores    map[string]map[int][]string // rel file -> line -> suppressed passes
	badIgnores []Diagnostic
}

// relFile maps an absolute file name into module-relative, slash-separated
// form — the coordinate system diagnostics and golden files use.
func (p *Package) relFile(abs string) string {
	rel, err := filepath.Rel(p.root, abs)
	if err != nil {
		return abs
	}
	return filepath.ToSlash(rel)
}

// suppressed reports whether pass findings on line of file are covered by
// an ignore directive on the same or the directly preceding line.
func (p *Package) suppressed(file string, line int, pass string) bool {
	lines := p.ignores[file]
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == pass {
				return true
			}
		}
	}
	return false
}

// ModRel returns the package path relative to the module (e.g.
// "internal/trace"), the key the determinism scope and allowlist use.
func (p *Package) ModRel() string {
	return strings.TrimPrefix(strings.TrimPrefix(p.Path, p.Module), "/")
}

// Loader discovers, parses and type-checks the module's packages using
// only the standard library: module-internal imports resolve through the
// loader itself (each package is checked exactly once, so type identity is
// consistent across the whole run), everything else falls back to the
// go/importer source importer, which finds the standard library under
// GOROOT without consulting the network or a build cache.
type Loader struct {
	Root   string // module root directory (holds go.mod)
	Module string // module path from go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer is not an ImporterFrom")
	}
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load expands the package patterns relative to cwd ("./...", "dir/...",
// or a single directory) and returns the matched packages, parsed and
// type-checked, sorted by import path.
func (l *Loader) Load(cwd string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		expanded, err := l.expand(cwd, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Module)
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadAs parses and checks the Go files of one directory under an explicit
// import path.  The lint tests use it to check testdata fixtures — which
// live outside the buildable tree — as if they were packages of the
// module, including fixture paths that opt into scoped passes.
func (l *Loader) LoadAs(dir, path string) (*Package, error) {
	return l.load(path, dir)
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(cwd, pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "..."); ok {
		recursive = true
		pat = strings.TrimSuffix(rest, "/")
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(cwd, base)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// load parses and type-checks the package at dir under path, memoized.
// Test files are excluded: every pass's contract ("outside tests") is the
// non-test build of each package.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{
		Path:    path,
		Module:  l.Module,
		Dir:     dir,
		Fset:    l.fset,
		root:    l.Root,
		ignores: map[string]map[int][]string{},
	}
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
		byLine, malformed := scanIgnores(l.fset, f, p.relFile)
		p.ignores[p.relFile(l.fset.Position(f.Pos()).Filename)] = byLine
		p.badIgnores = append(p.badIgnores, malformed...)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	p.Pkg, err = conf.Check(path, l.fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := strings.CutPrefix(path, l.Module+"/"); ok || path == l.Module {
		dir := l.Root
		if ok {
			dir = filepath.Join(l.Root, filepath.FromSlash(rel))
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
