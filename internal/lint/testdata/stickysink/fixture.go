// Package fixture exercises the stickysink contract.
package fixture

import "nvscavenger/internal/trace"

// guarded honours the contract: the sticky error is checked before the
// sink is invoked.
type guarded struct {
	sink trace.Sink
	err  error
}

func (g *guarded) flush(batch []trace.Access) {
	if g.err != nil {
		return
	}
	if err := g.sink.Flush(batch); err != nil {
		g.err = err
	}
}

// unguarded violates it: the sink is re-invoked even after an error has
// tripped sticky.
type unguarded struct {
	sink trace.TxSink
	err  error
}

func (u *unguarded) flush(batch []trace.Transaction) {
	if err := u.sink.FlushTx(batch); err != nil {
		u.err = err
	}
}

var _ = (*guarded).flush
var _ = (*unguarded).flush
