package kernels

import (
	"math"
	"testing"

	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func TestFFTKnownTransform(t *testing.T) {
	tr := newTracer()
	// Impulse at 0: FFT is all ones.
	data, _ := tr.GlobalF64("sig", 16) // 8 complex points
	data.Store(0, 1)
	FFTRadix2(tr, data, false)
	for i := 0; i < 8; i++ {
		if math.Abs(data.Raw()[2*i]-1) > 1e-12 || math.Abs(data.Raw()[2*i+1]) > 1e-12 {
			t.Fatalf("bin %d = (%v, %v), want (1, 0)", i, data.Raw()[2*i], data.Raw()[2*i+1])
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	tr := newTracer()
	n := 32
	data, _ := tr.GlobalF64("sig", 2*n)
	for i := 0; i < n; i++ {
		data.Store(2*i, math.Cos(2*math.Pi*3*float64(i)/float64(n)))
	}
	FFTRadix2(tr, data, false)
	// Energy concentrates in bins 3 and n-3.
	for i := 0; i < n; i++ {
		mag := math.Hypot(data.Raw()[2*i], data.Raw()[2*i+1])
		if i == 3 || i == n-3 {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d magnitude = %v, want %v", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want 0", i, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	tr := newTracer()
	n := 64
	data, _ := tr.GlobalF64("sig", 2*n)
	rng := NewRNG(5)
	orig := make([]float64, 2*n)
	for i := range orig {
		orig[i] = rng.Float64() - 0.5
		data.Store(i, orig[i])
	}
	FFTRadix2(tr, data, false)
	FFTRadix2(tr, data, true)
	for i := range orig {
		if math.Abs(data.Raw()[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, data.Raw()[i], orig[i])
		}
	}
}

func TestFFTRejectsBadLength(t *testing.T) {
	tr := newTracer()
	data, _ := tr.GlobalF64("sig", 12) // 6 complex points: not a power of 2
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length must panic")
		}
	}()
	FFTRadix2(tr, data, false)
}

func TestSpMVIdentity(t *testing.T) {
	tr := newTracer()
	n := 8
	a := NewHeapCSR(tr, "test.go", n, n)
	for i := 0; i <= n; i++ {
		a.RowPtr.Store(i, int64(i))
	}
	for i := 0; i < n; i++ {
		a.ColIdx.Store(i, int64(i))
		a.Vals.Store(i, 1)
	}
	x, _ := tr.GlobalF64("x", n)
	y, _ := tr.GlobalF64("y", n)
	for i := 0; i < n; i++ {
		x.Store(i, float64(i)+1)
	}
	SpMV(tr, a, x, y)
	for i := 0; i < n; i++ {
		if y.Raw()[i] != float64(i)+1 {
			t.Fatalf("y[%d] = %v", i, y.Raw()[i])
		}
	}
}

func TestSpMVTridiagonal(t *testing.T) {
	tr := newTracer()
	n := 16
	nnz := 3*n - 2
	a := NewHeapCSR(tr, "test.go", n, nnz)
	// -1 / 2 / -1 Poisson matrix; x = ones; y interior = 0, ends = 1.
	k := 0
	for r := 0; r < n; r++ {
		a.RowPtr.Store(r, int64(k))
		if r > 0 {
			a.ColIdx.Store(k, int64(r-1))
			a.Vals.Store(k, -1)
			k++
		}
		a.ColIdx.Store(k, int64(r))
		a.Vals.Store(k, 2)
		k++
		if r < n-1 {
			a.ColIdx.Store(k, int64(r+1))
			a.Vals.Store(k, -1)
			k++
		}
	}
	a.RowPtr.Store(n, int64(k))
	x, _ := tr.GlobalF64("x", n)
	y, _ := tr.GlobalF64("y", n)
	x.Fill(1)
	SpMV(tr, a, x, y)
	for i := 0; i < n; i++ {
		want := 0.0
		if i == 0 || i == n-1 {
			want = 1
		}
		if math.Abs(y.Raw()[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y.Raw()[i], want)
		}
	}
}

func TestSpMVAccessPattern(t *testing.T) {
	// The CSR index structures stream sequentially; x is gathered.
	tr := memtrace.New(memtrace.Config{})
	n := 256
	a := NewHeapCSR(tr, "pat.go", n, n)
	h := uint64(7)
	for i := 0; i <= n; i++ {
		a.RowPtr.Store(i, int64(i))
	}
	for i := 0; i < n; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		a.ColIdx.Store(i, int64(h%uint64(n)))
		a.Vals.Store(i, 1)
	}
	x, _ := tr.GlobalF64("x", n)
	y, _ := tr.GlobalF64("y", n)
	// Initialize x without tracing so the pattern classifier sees only the
	// gather reads the kernel itself performs.
	for i := range x.Raw() {
		x.Raw()[i] = 1
	}
	tr.BeginIteration()
	SpMV(tr, a, x, y)
	var vals, xs *memtrace.Object
	for _, o := range tr.Objects() {
		switch o.Name {
		case "csr_vals":
			vals = o
		case "x":
			xs = o
		}
	}
	if vals.AccessPattern() != memtrace.PatternSequential {
		t.Errorf("csr_vals pattern = %v, want sequential", vals.AccessPattern())
	}
	if xs.AccessPattern() != memtrace.PatternRandom {
		t.Errorf("x pattern = %v, want random (gather)", xs.AccessPattern())
	}
	_ = trace.SegHeap
}
