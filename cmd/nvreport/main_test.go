package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-iterations", "3", "-only", "table1,table5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Table V") {
		t.Errorf("subset output incomplete:\n%s", text)
	}
	if strings.Contains(text, "Table VI") {
		t.Error("unselected exhibit was generated")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3", "-only", "fig7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Error("figure 7 missing")
	}
}

func TestRunUnknownExhibit(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestExhibitNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range exhibits() {
		if seen[ex.name] {
			t.Errorf("duplicate exhibit %q", ex.name)
		}
		seen[ex.name] = true
	}
	if len(seen) != 21 {
		t.Errorf("exhibit count = %d, want 21", len(seen))
	}
}

func TestRunOutdir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-iterations", "3",
		"-only", "table1,table5", "-outdir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "table5.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "table6.txt")); err == nil {
		t.Fatal("unselected exhibit file must not exist")
	}
}
