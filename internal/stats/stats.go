// Package stats provides the small statistical machinery the analysis layer
// uses to present results the way the paper's figures do: cumulative
// distributions of memory usage across timesteps (Figure 7), distributions
// of normalized per-iteration metrics (Figures 8-11), and threshold-bucketed
// shares (Figure 2's "x% of objects have read/write ratio larger than R").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.  It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDFPoint is one step of an empirical cumulative distribution.
type CDFPoint struct {
	X float64 // value
	Y float64 // cumulative mass at or below X
}

// CDF computes the empirical cumulative distribution of weighted values:
// point (x, y) means "values totalling y weight are <= x".  Inputs need not
// be sorted.  Weights must be non-negative.
func CDF(values, weights []float64) ([]CDFPoint, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("stats: %d values but %d weights", len(values), len(weights))
	}
	type pair struct{ v, w float64 }
	ps := make([]pair, 0, len(values))
	for i := range values {
		if weights[i] < 0 {
			return nil, fmt.Errorf("stats: negative weight %v", weights[i])
		}
		ps = append(ps, pair{values[i], weights[i]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	out := make([]CDFPoint, 0, len(ps))
	cum := 0.0
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].v == ps[i].v {
			cum += ps[j].w
			j++
		}
		out = append(out, CDFPoint{X: ps[i].v, Y: cum})
		i = j
	}
	return out, nil
}

// ShareAbove returns, for weighted observations, the fraction of the
// observation count and the fraction of the total weight whose value
// exceeds the threshold.  This is Figure 2's presentation: "43.3% of stack
// objects have read/write ratios larger than 10; accesses to them account
// for 68.9% of references".
func ShareAbove(values, weights []float64, threshold float64) (countFrac, weightFrac float64) {
	if len(values) == 0 {
		return 0, 0
	}
	var n, w, totalW float64
	for i, v := range values {
		wt := 1.0
		if i < len(weights) {
			wt = weights[i]
		}
		totalW += wt
		if v > threshold {
			n++
			w += wt
		}
	}
	countFrac = n / float64(len(values))
	if totalW > 0 {
		weightFrac = w / totalW
	}
	return countFrac, weightFrac
}

// Histogram buckets observations into fixed bins for the variance figures.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	Edges  []float64
	Counts []uint64
	// Below and Above count observations outside the edge range.
	Below, Above uint64
}

// NewHistogram builds an empty histogram over the given bin edges, which
// must be strictly increasing and at least two.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges not strictly increasing at %d", i)
		}
	}
	return &Histogram{Edges: append([]float64(nil), edges...), Counts: make([]uint64, len(edges)-1)}, nil
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	if x < h.Edges[0] {
		h.Below++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Above++
		return
	}
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first edge >= x; the bin index is one less,
	// except when x equals an edge exactly.
	if i < len(h.Edges) && h.Edges[i] == x {
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Total returns all observations including out-of-range ones.
func (h *Histogram) Total() uint64 {
	t := h.Below + h.Above
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(t)
}

// FractionBelowOrAbove returns the out-of-range shares.
func (h *Histogram) FractionBelowOrAbove() (below, above float64) {
	t := h.Total()
	if t == 0 {
		return 0, 0
	}
	return float64(h.Below) / float64(t), float64(h.Above) / float64(t)
}

// VarianceBins are the normalized-metric bins used by Figures 8-11: each
// object's per-iteration metric is divided by its iteration-1 value and the
// distribution of these ratios is shown per iteration.  The paper's headline
// is the share in [1, 2).
var VarianceBins = []float64{0, 0.5, 1, 2, 4, 8, math.Inf(1)}

// NormalizedDistribution maps per-iteration metric values (indexed by
// iteration, 1-based values[iter]) to the share of objects whose normalized
// metric falls into each VarianceBins bin for that iteration.
//
// perObject[o][i] is object o's metric at main-loop iteration i (i>=1,
// index 0 unused).  Objects whose iteration-1 metric is zero are normalized
// against the first nonzero iteration, mirroring the paper's handling of
// late-appearing objects; objects that never have a nonzero metric are
// skipped.
func NormalizedDistribution(perObject [][]float64, iterations int) [][]float64 {
	out := make([][]float64, iterations+1)
	for iter := 1; iter <= iterations; iter++ {
		counts := make([]float64, len(VarianceBins)-1)
		total := 0.0
		for _, series := range perObject {
			if iter >= len(series) {
				continue
			}
			base := 0.0
			for i := 1; i < len(series); i++ {
				if series[i] != 0 {
					base = series[i]
					break
				}
			}
			if base == 0 {
				continue
			}
			ratio := series[iter] / base
			total++
			for b := 0; b < len(VarianceBins)-1; b++ {
				if ratio >= VarianceBins[b] && ratio < VarianceBins[b+1] {
					counts[b]++
					break
				}
			}
		}
		if total > 0 {
			for b := range counts {
				counts[b] /= total
			}
		}
		out[iter] = counts
	}
	return out
}
