package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func baseSystem() System {
	return System{
		Nodes:             10000,
		StateBytesPerNode: 800e6, // Nek5000's Table I footprint
		NodeMTBFHours:     50000, // ~5.7 years per node
		RestartSeconds:    10,
	}
}

func TestTargetValidation(t *testing.T) {
	if err := ParallelFS().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NodeNVRAM().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Target{
		{Name: "none"},
		{Name: "both", AggregateBandwidth: 1, PerNodeBandwidth: 1},
		{Name: "neglat", PerNodeBandwidth: 1, WriteLatency: -1},
	}
	for _, tgt := range bad {
		if tgt.Validate() == nil {
			t.Errorf("%s: invalid target accepted", tgt.Name)
		}
	}
}

func TestSystemValidation(t *testing.T) {
	if err := baseSystem().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*System){
		func(s *System) { s.Nodes = 0 },
		func(s *System) { s.StateBytesPerNode = 0 },
		func(s *System) { s.NodeMTBFHours = 0 },
		func(s *System) { s.RestartSeconds = -1 },
	}
	for i, m := range mutations {
		s := baseSystem()
		m(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: invalid system accepted", i)
		}
	}
}

func TestSystemMTBFScalesInversely(t *testing.T) {
	s := baseSystem()
	m1 := s.SystemMTBFSeconds()
	s.Nodes *= 10
	m10 := s.SystemMTBFSeconds()
	if math.Abs(m1/m10-10) > 1e-9 {
		t.Fatalf("MTBF should shrink 10x with 10x nodes: %v vs %v", m1, m10)
	}
}

func TestCheckpointTimeShape(t *testing.T) {
	s := baseSystem()
	// Shared target: checkpoint time grows with node count.
	pfs := ParallelFS()
	d1 := CheckpointSeconds(s, pfs)
	s2 := s
	s2.Nodes *= 4
	d4 := CheckpointSeconds(s2, pfs)
	if d4 <= d1 {
		t.Fatalf("shared-target checkpoint must grow with nodes: %v -> %v", d1, d4)
	}
	// Node-local target: checkpoint time independent of node count.
	nv := NodeNVRAM()
	n1 := CheckpointSeconds(s, nv)
	n4 := CheckpointSeconds(s2, nv)
	if n1 != n4 {
		t.Fatalf("node-local checkpoint must not depend on node count: %v vs %v", n1, n4)
	}
	// NVRAM is much faster at this scale.
	if n1*10 > d1 {
		t.Fatalf("NVRAM checkpoint %v should be far below PFS %v", n1, d1)
	}
}

func TestYoungInterval(t *testing.T) {
	if got := YoungInterval(100, 50000); math.Abs(got-math.Sqrt(2*100*50000)) > 1e-9 {
		t.Fatalf("Young = %v", got)
	}
	if YoungInterval(0, 100) != 0 || YoungInterval(100, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestDalyReducesToYoungForSmallDelta(t *testing.T) {
	delta, mtbf := 1.0, 1e7
	young := YoungInterval(delta, mtbf)
	daly := DalyInterval(delta, mtbf)
	if math.Abs(daly-young)/young > 0.01 {
		t.Fatalf("Daly %v should approach Young %v for tiny delta", daly, young)
	}
}

func TestDalySaturatesWhenCheckpointDominates(t *testing.T) {
	if got := DalyInterval(1000, 400); got != 400 {
		t.Fatalf("delta > 2*MTBF should return MTBF, got %v", got)
	}
	if DalyInterval(0, 100) != 0 {
		t.Fatal("zero delta should give 0")
	}
}

func TestEvaluateEfficiencyBounds(t *testing.T) {
	s := baseSystem()
	for _, tgt := range []Target{ParallelFS(), NodeNVRAM()} {
		r, err := Evaluate(s, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Efficiency <= 0 || r.Efficiency >= 1 {
			t.Fatalf("%s efficiency = %v, want in (0,1)", tgt.Name, r.Efficiency)
		}
		if r.IntervalSeconds <= 0 || r.DeltaSeconds <= 0 {
			t.Fatalf("%s degenerate result %+v", tgt.Name, r)
		}
	}
}

func TestEvaluateRejectsBadInputs(t *testing.T) {
	if _, err := Evaluate(System{}, NodeNVRAM()); err == nil {
		t.Fatal("bad system must error")
	}
	if _, err := Evaluate(baseSystem(), Target{Name: "x"}); err == nil {
		t.Fatal("bad target must error")
	}
}

// TestExascaleCrossover is the paper's §I argument: at exascale node
// counts, filesystem checkpointing efficiency collapses while node-local
// NVRAM stays high.
func TestExascaleCrossover(t *testing.T) {
	base := baseSystem()
	pts, err := Sweep(base, []int{1000, 10000, 100000, 1000000},
		[]Target{ParallelFS(), NodeNVRAM()})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		pfs, nv := pt.Results[0], pt.Results[1]
		if nv.Efficiency < pfs.Efficiency {
			t.Errorf("%d nodes: NVRAM efficiency %v below PFS %v",
				pt.Nodes, nv.Efficiency, pfs.Efficiency)
		}
	}
	// The petascale machine is fine either way...
	if pts[0].Results[0].Efficiency < 0.9 {
		t.Errorf("petascale PFS efficiency = %v, want > 0.9", pts[0].Results[0].Efficiency)
	}
	// ...but at exascale node counts, PFS efficiency collapses while NVRAM
	// remains usable.
	exa := pts[len(pts)-1]
	if exa.Results[0].Efficiency > 0.5 {
		t.Errorf("exascale PFS efficiency = %v, expected collapse", exa.Results[0].Efficiency)
	}
	if exa.Results[1].Efficiency < 0.8 {
		t.Errorf("exascale NVRAM efficiency = %v, want > 0.8", exa.Results[1].Efficiency)
	}
	// PFS efficiency is monotone non-increasing with machine size.
	for i := 1; i < len(pts); i++ {
		if pts[i].Results[0].Efficiency > pts[i-1].Results[0].Efficiency+1e-12 {
			t.Errorf("PFS efficiency increased with machine size at %d nodes", pts[i].Nodes)
		}
	}
}

// Property: efficiency is always in [0, 1) and decreases (weakly) as the
// checkpoint volume grows.
func TestQuickEfficiencyMonotoneInVolume(t *testing.T) {
	f := func(volGB uint16, nodes uint16) bool {
		s := baseSystem()
		s.Nodes = int(nodes%65000) + 10
		s.StateBytesPerNode = (float64(volGB%512) + 0.1) * 1e9
		r1, err := Evaluate(s, ParallelFS())
		if err != nil {
			return false
		}
		s.StateBytesPerNode *= 2
		r2, err := Evaluate(s, ParallelFS())
		if err != nil {
			return false
		}
		inRange := r1.Efficiency >= 0 && r1.Efficiency < 1
		return inRange && r2.Efficiency <= r1.Efficiency+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Daly's interval never exceeds the system MTBF by more than the
// saturation rule allows, and is positive whenever delta is.
func TestQuickDalyBounds(t *testing.T) {
	f := func(d, m uint32) bool {
		delta := float64(d%100000) + 0.001
		mtbf := float64(m%10000000) + 0.001
		tau := DalyInterval(delta, mtbf)
		return tau > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
