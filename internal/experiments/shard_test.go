package experiments

import (
	"bytes"
	"testing"

	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
)

// shardReport renders a report and captures the session's metrics snapshot
// for one option set.
func shardReport(t *testing.T, only []string, opts ...Option) (string, obs.Snapshot) {
	t.Helper()
	base := []Option{WithScale(0.05), WithIterations(4)}
	s := NewSession(append(base, opts...)...)
	var b bytes.Buffer
	if err := s.WriteReport(&b, ReportConfig{Only: only}); err != nil {
		t.Fatal(err)
	}
	return b.String(), s.MetricsSnapshot()
}

// sameDeterministicMetrics asserts two snapshots expose the same series and
// agree on every deterministic value (counters and gauges; histograms hold
// wall-clock timings, so only their identity is compared).
func sameDeterministicMetrics(t *testing.T, label string, want, got obs.Snapshot) {
	t.Helper()
	wantIDs, gotIDs := want.SeriesIDs(), got.SeriesIDs()
	if len(wantIDs) != len(gotIDs) {
		t.Errorf("%s: series count differs: %d vs %d", label, len(wantIDs), len(gotIDs))
		return
	}
	for i := range wantIDs {
		if wantIDs[i] != gotIDs[i] {
			t.Errorf("%s: series %d differs: %q vs %q", label, i, wantIDs[i], gotIDs[i])
			return
		}
	}
	for i := range want.Counters {
		a, b := want.Counters[i], got.Counters[i]
		if a.Value != b.Value {
			t.Errorf("%s: counter %s%v: %d vs %d", label, a.Name, a.Labels, a.Value, b.Value)
		}
	}
	for i := range want.Gauges {
		a, b := want.Gauges[i], got.Gauges[i]
		if a.Value != b.Value {
			t.Errorf("%s: gauge %s%v: %g vs %g", label, a.Name, a.Labels, a.Value, b.Value)
		}
	}
}

// TestShardedSessionByteIdentical is the session-level sharding contract:
// the full default report AND every deterministic metric of a sharded
// session are byte-identical to the unsharded session, at any shard count
// and any jobs count.
func TestShardedSessionByteIdentical(t *testing.T) {
	want, wantSnap := shardReport(t, nil)
	for _, tc := range []struct {
		label string
		opts  []Option
	}{
		{"shards=3", []Option{WithShards(3)}},
		{"shards=2,jobs=4", []Option{WithShards(2), WithJobs(4)}},
	} {
		got, gotSnap := shardReport(t, nil, tc.opts...)
		if got != want {
			t.Errorf("%s: report bytes diverge from unsharded session", tc.label)
		}
		sameDeterministicMetrics(t, tc.label, wantSnap, gotSnap)
	}
}

// TestShardedSessionComposesWithSampling: sharding preserves the sampled
// products too — the per-shard samplers replay the same seeded decision
// stream, so a sampled sharded report equals the sampled unsharded one.
func TestShardedSessionComposesWithSampling(t *testing.T) {
	only := []string{"table5", "fig7", "placement"}
	sample := WithSample(memtrace.SampleSpec{Mode: memtrace.SampleBernoulli, Rate: 8, Seed: 7})
	want, _ := shardReport(t, only, sample)
	got, _ := shardReport(t, only, sample, WithShards(3))
	if got != want {
		t.Error("sampled sharded report diverges from sampled unsharded report")
	}
}

// TestShardsIgnoredUnderFaults: JobSpec.Validate rejects the combination,
// and a session armed directly stays on the single-stack path rather than
// multiplying the injected fault across replayed shards.
func TestShardsIgnoredUnderFaults(t *testing.T) {
	spec := JobSpec{Shards: 2, Fault: "sink:every=50,seed=7"}
	if err := spec.Validate(); err == nil {
		t.Error("JobSpec must reject shards combined with fault")
	}
	if err := (JobSpec{Shards: 2}).Validate(); err != nil {
		t.Errorf("shards alone must validate: %v", err)
	}
}
