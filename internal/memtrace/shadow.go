package memtrace

import (
	"fmt"

	"nvscavenger/internal/trace"
)

// StackMode selects how stack references are attributed (paper §III-A).
type StackMode uint8

const (
	// FastStack records reads/writes against the program stack as a whole:
	// a reference is a stack reference when its address lies between the
	// current stack pointer and the maximum stack pointer observed.  This is
	// the light-weight mode used for Table V.
	FastStack StackMode = iota
	// SlowStack additionally maintains a shadow call stack and attributes
	// every stack reference to the routine whose frame contains it, walking
	// the call stack from the top; references below a routine's own frame
	// are attributed to the frame underneath (the routine that actually
	// allocated the data).  This mode produces Figure 2.
	SlowStack
)

// String names the mode.
func (m StackMode) String() string {
	if m == SlowStack {
		return "slow"
	}
	return "fast"
}

// stackBase is the simulated address of the bottom (highest address) of the
// program stack; the stack grows downward from here.
const stackBase uint64 = 0x7fff_ffff_0000

// stackAlign is the frame alignment in bytes.
const stackAlign = 16

// frame is one shadow-stack entry.
type frame struct {
	name string  // routine name (heap-signature component in both modes)
	obj  *Object // the routine's aggregated stack-frame object (slow mode)
	base uint64  // address of the frame's high end (sp at routine entry)
	lo   uint64  // current low end; decreases as locals are allocated
}

// Frame is a handle on the current routine's stack frame.  Locals carved
// from it are addressed within the simulated stack so that every reference
// to them is classified and attributed as stack data.
type Frame struct {
	t     *Tracer
	depth int // index into t.frames; guards against use after Leave
}

// Enter pushes a shadow-stack frame for the named routine and returns a
// handle used to allocate routine-local data.  Pair with Leave.
func (t *Tracer) Enter(name string) Frame {
	var obj *Object
	if t.cfg.StackMode == SlowStack {
		obj = t.routines[name]
		if obj == nil {
			obj = t.reg.newObject(Object{
				Name:      name,
				Segment:   trace.SegStack,
				AllocIter: t.iter,
			})
			t.routines[name] = obj
			t.routineOrder = append(t.routineOrder, obj)
		}
	}
	t.frames = append(t.frames, frame{name: name, obj: obj, base: t.sp, lo: t.sp})
	return Frame{t: t, depth: len(t.frames) - 1}
}

// Leave pops the most recent shadow-stack frame, releasing its locals.
func (t *Tracer) Leave() {
	if len(t.frames) == 0 {
		panic("memtrace: Leave without matching Enter") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	f := t.frames[len(t.frames)-1]
	if f.obj != nil {
		// Track the largest frame this routine ever had; that is the
		// object's reported size (its stack data footprint).
		if sz := f.base - f.lo; sz > f.obj.Size {
			f.obj.Size = sz
		}
	}
	t.sp = f.base
	t.frames = t.frames[:len(t.frames)-1]
}

// Depth returns the current shadow-stack depth.
func (t *Tracer) Depth() int { return len(t.frames) }

// alloc carves n bytes from the current frame and returns the base address.
func (f Frame) alloc(n uint64) uint64 {
	t := f.t
	if f.depth != len(t.frames)-1 {
		panic("memtrace: Local on a frame that is not the top of the stack") //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	n = (n + stackAlign - 1) &^ uint64(stackAlign-1)
	fr := &t.frames[f.depth]
	fr.lo -= n
	t.sp = fr.lo
	if t.sp < t.minSP {
		t.minSP = t.sp
	}
	if t.sp <= t.stackLimit {
		panic(fmt.Sprintf("memtrace: simulated stack overflow (sp=%#x)", t.sp)) //nvlint:ignore errcontract invariant assertion; runner.Recover absorbs it per run
	}
	return fr.lo
}

// LocalF64 allocates an n-element float64 array in the current frame.
func (f Frame) LocalF64(n int) F64 {
	base := f.alloc(uint64(n) * 8)
	return F64{t: f.t, base: base, data: make([]float64, n)}
}

// LocalI64 allocates an n-element int64 array in the current frame.
func (f Frame) LocalI64(n int) I64 {
	base := f.alloc(uint64(n) * 8)
	return I64{t: f.t, base: base, data: make([]int64, n)}
}

// attributeStack resolves a stack address to an object.
//
// Fast mode returns the whole-stack object.  Slow mode walks the shadow call
// stack from the top and returns the routine object of the first frame whose
// range contains the address; an address below the top frame's low mark (an
// argument-build or red-zone access) is attributed to the top frame.
func (t *Tracer) attributeStack(addr uint64) *Object {
	if t.cfg.StackMode == FastStack {
		return t.stackObj
	}
	n := len(t.frames)
	if n == 0 {
		return nil
	}
	top := &t.frames[n-1]
	if addr < top.lo {
		return top.obj
	}
	for i := n - 1; i >= 0; i-- {
		f := &t.frames[i]
		if addr >= f.lo && addr < f.base {
			return f.obj
		}
	}
	// Between the last frame's base and stackBase: attribute to the
	// outermost routine (its caller context).
	return t.frames[0].obj
}

// redZone is how far below the stack pointer an access may land and still be
// classified as a stack reference (the x86-64 ABI red zone: leaf code may use
// 128 bytes below SP without moving it).
const redZone = 128

// isStackAddr implements the fast-mode classification test: the address lies
// between the current stack pointer (minus the red zone) and the maximum
// stack pointer value the program has had (the stack grows downward, so the
// maximum SP is the base).
func (t *Tracer) isStackAddr(addr uint64) bool {
	return addr >= t.sp-redZone && addr < t.maxSP
}
