// Package served turns the batch experiment workflow into a service: a
// job manager that accepts versioned experiment specs
// (experiments.JobSpec), queues them with backpressure, runs each on its
// own experiment session over a shared single-flight run cache, streams
// per-run progress events, and retains the finished results
// (experiments.JobResult) for retrieval.  Server (server.go) is the
// HTTP/JSON frontend over the manager; cmd/nvserved is the daemon.
//
// The design keeps the determinism contract of the batch tools: a job's
// report is rendered by the same exhibit registry and generator the
// nvreport CLI uses (experiments.Exhibits, Session.WriteReport), so a
// served report is byte-identical to the CLI's for the same spec — the
// only divergence is the optional generated-timestamp line, stamped from
// the manager's injectable clock.
//
// Lifecycle: Submit validates the spec and enqueues a *Job in state
// "queued"; a worker moves it to "running" and then exactly one of
// "done", "failed" or "cancelled".  The queue is bounded — a full queue
// rejects with ErrQueueFull (HTTP 429) instead of holding clients — and
// Drain stops intake, lets in-flight jobs finish until the deadline, then
// cancels the stragglers.
package served

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/journal"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
	"nvscavenger/internal/runner"
)

// Submission and lifecycle errors.  The HTTP layer maps them onto status
// codes (ErrQueueFull → 429, ErrDraining/ErrOverloaded → 503,
// ErrNotFound → 404).
var (
	// ErrQueueFull rejects a submission when the bounded queue is full.
	ErrQueueFull = errors.New("served: job queue full")
	// ErrDraining rejects a submission once Drain has begun.
	ErrDraining = errors.New("served: draining, not accepting jobs")
	// ErrOverloaded rejects a submission while the failure breaker is open.
	ErrOverloaded = errors.New("served: breaker open after consecutive job failures")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("served: no such job")
)

// Config configures a Manager.
type Config struct {
	// Queue bounds the number of jobs waiting to run; a full queue
	// rejects submissions with ErrQueueFull.  Default 16.
	Queue int
	// Workers bounds the number of concurrently running jobs.  Default 2:
	// each job already fans its runs out across the session worker pool,
	// so a small job-level bound keeps the machine subscribed without
	// oversubscribing it.
	Workers int
	// Jobs bounds each job session's run worker pool (0 = GOMAXPROCS).
	// A job spec's own jobs field, when set, takes precedence.
	Jobs int
	// Clock is the manager's wall clock: job wall metrics and the report
	// generated-timestamp line read it.  Nil selects time.Now; tests
	// inject a fixed clock for byte-identical reports.
	Clock func() time.Time
	// Metrics is the registry the manager, its sessions and their engines
	// publish into — the /metrics endpoint serves its snapshot.  Nil gets
	// a private registry.
	Metrics *obs.Registry
	// Fault optionally arms writer-target fault injection on the HTTP
	// response bodies (the serving-path chaos hook); other targets are
	// carried per job via the spec's fault field instead.
	Fault faults.Spec
	// Breaker, when non-zero, arms a count-based circuit breaker over job
	// outcomes: FailureThreshold consecutive failed jobs trip it open and
	// submissions are rejected with ErrOverloaded for Cooldown calls.
	// The zero value disables the breaker.
	Breaker resilience.BreakerConfig
	// StateDir, when set and the manager is constructed with Open, arms
	// the crash-safe write-ahead journal: every job lifecycle transition
	// is logged to StateDir/journal.wal before it is acknowledged, and
	// Open replays the log on startup.  Empty means no durability.
	StateDir string

	// journalWrap and journalCrash are the crash-harness hooks (tests):
	// they thread straight into journal.Options as the disk-fault writer
	// decorator and the crash-point injector.
	journalWrap  func(io.Writer) io.Writer
	journalCrash func() bool
}

// Recovery summarizes what Open replayed from the journal: the healthz
// payload operators read to see that a crash happened and what came back.
type Recovery struct {
	// Records is how many committed journal records were replayed.
	Records int `json:"records"`
	// Restored counts terminal jobs that came back with their results.
	Restored int `json:"restored"`
	// Requeued counts non-terminal jobs re-enqueued in submission order.
	Requeued int `json:"requeued"`
	// Rerun is the subset of Requeued that were mid-run at the crash;
	// deterministic re-execution makes rerunning them byte-identical.
	Rerun int `json:"rerun"`
	// TruncatedBytes is the torn tail dropped by the journal on open.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// CleanShutdown reports the previous process drained gracefully.
	CleanShutdown bool `json:"clean_shutdown"`
	// Recovered means the journal held state from a process that did NOT
	// shut down cleanly — the restart recovered from a crash.
	Recovered bool `json:"recovered"`
}

// Manager owns the job queue, the worker pool and the finished-job store.
// All methods are safe for concurrent use.
type Manager struct {
	cfg Config
	now func() time.Time
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter
	finished  *obs.Counter
	depth     *obs.Gauge
	running   *obs.Gauge
	wall      *obs.Histogram

	breaker *resilience.Breaker

	// jmu serializes journal access and orders it against intake: Submit
	// and Drain hold it across their state flips, so the journal's record
	// order always matches the queue's.  Lock hierarchy: jmu → mu →
	// Job.mu; never the reverse.
	//
	//nvlint:lockorder jmu > mu
	jmu           sync.Mutex
	journal       *journal.Journal
	journalErrors *obs.Counter
	recovery      Recovery
	hasRecovery   bool

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queue    chan *Job
	draining bool
	caches   map[string]*runner.Cache

	workers sync.WaitGroup

	// beforeRun, when set (tests), runs after a job enters the running
	// state and before its session executes — the hook backpressure and
	// cancellation tests use to hold a worker at a known point.
	beforeRun func(*Job)
}

// NewManager starts an in-memory manager and its worker pool; jobs do
// not survive a restart.  Use Open with Config.StateDir for durability.
func NewManager(cfg Config) *Manager {
	m := newManager(cfg)
	m.queue = make(chan *Job, m.cfg.Queue)
	m.startWorkers()
	return m
}

// Open starts a crash-safe manager: it opens (creating if needed) the
// write-ahead journal under cfg.StateDir, replays it — terminal jobs
// restore with their results, queued jobs requeue in original submission
// order, jobs caught mid-run are re-enqueued for deterministic re-runs —
// and only then starts the worker pool.  The returned Recovery is also
// retained for /healthz.  An empty StateDir degrades to NewManager.
func Open(cfg Config) (*Manager, Recovery, error) {
	if cfg.StateDir == "" {
		return NewManager(cfg), Recovery{}, nil
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("served: creating state dir: %w", err)
	}
	j, rep, err := journal.Open(filepath.Join(cfg.StateDir, "journal.wal"), journal.Options{
		Metrics: cfg.Metrics,
		Wrap:    cfg.journalWrap,
		Crash:   cfg.journalCrash,
	})
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("served: opening journal: %w", err)
	}
	m := newManager(cfg)
	m.journal = j
	rec := m.restore(rep)
	m.recovery = rec
	m.hasRecovery = true
	m.startWorkers()
	return m, rec, nil
}

// newManager builds the manager core: config defaults, registry and
// counters, but no queue and no workers — NewManager and Open finish the
// job (Open must restore journaled jobs into the queue first).
func newManager(cfg Config) *Manager {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		cfg:           cfg,
		now:           time.Now,
		reg:           reg,
		submitted:     reg.Counter("served_jobs_submitted_total"),
		rejected:      reg.Counter("served_jobs_rejected_total"),
		finished:      reg.Counter("served_jobs_finished_total"),
		journalErrors: reg.Counter("served_journal_append_errors_total"),
		depth:         reg.Gauge("served_queue_depth"),
		running:       reg.Gauge("served_jobs_running"),
		wall:          reg.Histogram("served_job_wall_seconds", obs.SecondsBuckets),
		jobs:          map[string]*Job{},
		caches:        map[string]*runner.Cache{},
	}
	if cfg.Clock != nil {
		m.now = cfg.Clock
	}
	if cfg.Breaker != (resilience.BreakerConfig{}) {
		m.breaker = resilience.NewBreaker(cfg.Breaker)
	}
	return m
}

func (m *Manager) startWorkers() {
	for i := 0; i < m.cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
}

// replayedJob is one job's folded journal history: the last state wins,
// terminal records carry the stored result.
type replayedJob struct {
	spec   experiments.JobSpec
	state  string
	result *experiments.JobResult
}

// restore folds the replayed journal into live manager state.  Workers
// are not running yet, so no locks are needed.
func (m *Manager) restore(rep journal.Replay) Recovery {
	byID := map[string]*replayedJob{}
	var order []string
	for _, rec := range rep.Records {
		switch rec.Kind {
		case journal.KindSubmitted:
			if rec.Job == "" || rec.Spec == nil || byID[rec.Job] != nil {
				continue // malformed or duplicate; replay is best-effort
			}
			byID[rec.Job] = &replayedJob{spec: *rec.Spec, state: experiments.StateQueued}
			order = append(order, rec.Job)
		case journal.KindStarted:
			if rj := byID[rec.Job]; rj != nil && !terminal(rj.state) {
				rj.state = experiments.StateRunning
			}
		case experiments.StateDone, experiments.StateFailed, experiments.StateCancelled:
			if rj := byID[rec.Job]; rj != nil {
				rj.state = rec.Kind
				rj.result = rec.Result
			}
		}
	}

	pending := 0
	for _, rj := range byID {
		if !terminal(rj.state) {
			pending++
		}
	}
	// The queue must hold every requeued job even if the configured bound
	// shrank across the restart: recovery never drops an acknowledged job.
	queueCap := m.cfg.Queue
	if pending > queueCap {
		queueCap = pending
	}
	m.queue = make(chan *Job, queueCap)

	rec := Recovery{
		Records:        len(rep.Records),
		TruncatedBytes: rep.Truncated,
		CleanShutdown:  rep.CleanShutdown,
		Recovered:      len(rep.Records) > 0 && !rep.CleanShutdown,
	}
	for _, id := range order {
		rj := byID[id]
		ctx, cancel := context.WithCancel(context.Background())
		job := &Job{id: id, spec: rj.spec, ctx: ctx, cancel: cancel}
		job.cond = sync.NewCond(&job.mu)
		if terminal(rj.state) {
			res := experiments.NewJobResult(rj.spec, rj.state)
			res.ID = id
			if rj.result != nil {
				res = *rj.result
			}
			job.state = rj.state
			job.result = res
			cancel()
			rec.Restored++
		} else {
			job.state = experiments.StateQueued
			m.queue <- job
			rec.Requeued++
			if rj.state == experiments.StateRunning {
				rec.Rerun++
			}
		}
		m.jobs[id] = job
		m.order = append(m.order, id)
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n > m.nextID {
			m.nextID = n
		}
	}
	m.depth.Set(float64(len(m.queue)))
	return rec
}

// RecoveryInfo returns what Open replayed; ok is false for a manager
// built with NewManager (no journal).
func (m *Manager) RecoveryInfo() (Recovery, bool) {
	return m.recovery, m.hasRecovery
}

// jlog appends lifecycle records to the journal, if one is armed.
// Transition logging after submission is best-effort: a failed append is
// counted (served_journal_append_errors_total) but does not kill the job
// — recovery re-runs anything whose terminal record is missing, and
// deterministic re-execution makes that safe.
func (m *Manager) jlog(recs ...journal.Record) {
	if m.journal == nil {
		return
	}
	m.jmu.Lock()
	defer m.jmu.Unlock()
	if err := m.journal.Append(recs...); err != nil {
		m.journalErrors.Inc()
	}
}

// Compaction policy: rewrite the log once it holds a meaningful number
// of records and most of them are superseded by later transitions.
const (
	compactMinRecords = 64
	compactFactor     = 4
)

// maybeCompact rotates the journal down to the live record set when the
// log has grown well past it.
func (m *Manager) maybeCompact() {
	if m.journal == nil {
		return
	}
	m.jmu.Lock()
	defer m.jmu.Unlock()
	records, _ := m.journal.Stats()
	if records < compactMinRecords {
		return
	}
	live := m.snapshotRecords()
	if records <= compactFactor*len(live) {
		return
	}
	if err := m.journal.Compact(live); err != nil {
		m.journalErrors.Inc()
	}
}

// snapshotRecords renders the manager's current state as the minimal
// record sequence that replays to it: submitted for every job, plus
// started for running jobs and the terminal record for finished ones.
// Callers hold jmu; mu and Job.mu are taken below it per the hierarchy.
func (m *Manager) snapshotRecords() []journal.Record {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	recs := make([]journal.Record, 0, 2*len(jobs))
	for _, job := range jobs {
		spec := job.spec
		recs = append(recs, journal.Record{Kind: journal.KindSubmitted, Job: job.id, Spec: &spec})
		job.mu.Lock()
		state := job.state
		res := job.result
		job.mu.Unlock()
		switch {
		case terminal(state):
			recs = append(recs, journal.Record{Kind: state, Job: job.id, Result: &res})
		case state == experiments.StateRunning:
			recs = append(recs, journal.Record{Kind: journal.KindStarted, Job: job.id})
		}
	}
	return recs
}

// Registry returns the registry the manager publishes into.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Submit validates spec and enqueues a job for it.  It returns the queued
// job, or ErrDraining / ErrOverloaded / ErrQueueFull / a validation error.
// With a journal armed, the submission is acknowledged only after its
// record is durable: a crash after Submit returns can never lose the job.
func (m *Manager) Submit(spec experiments.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m.breaker != nil && !m.breaker.Allow() {
		m.rejected.Inc()
		return nil, ErrOverloaded
	}
	// jmu is held across the whole admission so the journal's submitted
	// order matches the queue's, and so draining cannot flip (Drain takes
	// jmu) between the capacity check and the enqueue.
	m.jmu.Lock()
	defer m.jmu.Unlock()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.rejected.Inc()
		return nil, ErrDraining
	}
	if len(m.queue) == cap(m.queue) {
		m.mu.Unlock()
		m.rejected.Inc()
		return nil, ErrQueueFull
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		id:     fmt.Sprintf("job-%d", m.nextID),
		spec:   spec.Normalized(),
		state:  experiments.StateQueued,
		ctx:    ctx,
		cancel: cancel,
	}
	job.cond = sync.NewCond(&job.mu)
	m.mu.Unlock()

	if m.journal != nil {
		// Durable-ack: the write-ahead record commits (one fsync) before
		// the job exists anywhere the client can observe it.
		jspec := job.spec
		if err := m.journal.Append(journal.Record{Kind: journal.KindSubmitted, Job: job.id, Spec: &jspec}); err != nil {
			m.journalErrors.Inc()
			cancel()
			m.mu.Lock()
			m.nextID--
			m.mu.Unlock()
			m.rejected.Inc()
			return nil, fmt.Errorf("served: journaling submission: %w", err)
		}
	}

	m.mu.Lock()
	// Guaranteed room: jmu serializes admissions, capacity was checked
	// above, and workers only ever drain the queue.
	m.queue <- job
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.submitted.Inc()
	m.depth.Set(float64(len(m.queue)))
	m.mu.Unlock()
	return job, nil
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return job, nil
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation of the job: a queued job turns terminal
// immediately; a running job's context is cancelled and its worker
// records the terminal state; a terminal job is left untouched.
func (m *Manager) Cancel(id string) error {
	job, err := m.Get(id)
	if err != nil {
		return err
	}
	job.mu.Lock()
	state := job.state
	if state == experiments.StateQueued {
		res := experiments.NewJobResult(job.spec, experiments.StateCancelled)
		res.ID = job.id
		res.Error = context.Canceled.Error()
		job.finishLocked(experiments.StateCancelled, res)
		job.mu.Unlock()
		m.finished.Inc()
		m.reg.Counter("served_job_states_total", obs.L("state", experiments.StateCancelled)).Inc()
		job.cancel()
		m.jlog(journal.Record{Kind: experiments.StateCancelled, Job: job.id, Result: &res})
		m.maybeCompact()
		return nil
	}
	job.mu.Unlock()
	// Running: the worker observes ctx and finishes the job as cancelled.
	// Terminal: cancelling the context is a no-op.
	job.cancel()
	return nil
}

// Drain stops intake and shuts the worker pool down gracefully: queued and
// running jobs keep going until ctx expires, at which point every job
// still alive is cancelled.  It returns ctx.Err() if the deadline forced
// cancellations, nil if everything finished on its own.  After Drain
// returns no job is running and Submit permanently rejects.
func (m *Manager) Drain(ctx context.Context) error {
	// jmu first: Submit holds it across its admission, so once we flip
	// draining under it no admission can be mid-flight against the
	// closing queue.  It is released before waiting — workers still need
	// it to journal their terminal records.
	m.jmu.Lock()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.jmu.Unlock()
		return errors.New("served: drain already in progress")
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()
	m.jmu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		// Deadline: cancel everything still alive.  Workers drain the
		// remaining queue — each cancelled job turns terminal on its
		// first context check — so the pool still exits cleanly.
		err = ctx.Err()
		for _, job := range m.Jobs() {
			job.cancel()
		}
		<-idle
	}
	m.depth.Set(0)
	if m.journal != nil {
		// Clean-shutdown marker: its presence at the log tail tells the
		// next Open this was a drain, not a crash.
		m.jmu.Lock()
		if aerr := m.journal.Append(journal.Record{Kind: journal.KindDrained}); aerr != nil {
			m.journalErrors.Inc()
		}
		if cerr := m.journal.Close(); cerr != nil {
			m.journalErrors.Inc()
		}
		m.jmu.Unlock()
	}
	return err
}

// cacheFor returns the shared single-flight run cache for one cache
// partition (experiments.JobSpec.RunCacheKey): healthy jobs all share one
// set of memoized runs, chaos jobs share per fault spec.
func (m *Manager) cacheFor(partition string) *runner.Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[partition]
	if !ok {
		c = runner.NewCache()
		m.caches[partition] = c
	}
	return c
}

// worker runs queued jobs until the queue closes (Drain).
func (m *Manager) worker() {
	defer m.workers.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob moves one job through running to its terminal state.
func (m *Manager) runJob(job *Job) {
	m.depth.Set(float64(len(m.queue)))
	job.mu.Lock()
	if job.state != experiments.StateQueued {
		// Cancelled while queued; already terminal.
		job.mu.Unlock()
		return
	}
	job.state = experiments.StateRunning
	job.mu.Unlock()
	m.jlog(journal.Record{Kind: journal.KindStarted, Job: job.id})
	if m.beforeRun != nil {
		m.beforeRun(job)
	}

	m.running.Add(1)
	start := m.now()
	state, res := m.execute(job)
	m.wall.Observe(m.now().Sub(start).Seconds())
	m.running.Add(-1)
	m.finished.Inc()
	m.reg.Counter("served_job_states_total", obs.L("state", state)).Inc()

	job.mu.Lock()
	job.finishLocked(state, res)
	job.mu.Unlock()
	job.cancel()
	m.jlog(journal.Record{Kind: state, Job: job.id, Result: &res})
	m.maybeCompact()

	if m.breaker != nil {
		if state == experiments.StateFailed {
			m.breaker.Failure()
		} else {
			m.breaker.Success()
		}
	}
}

// execute runs the job's experiment session and renders its report.
func (m *Manager) execute(job *Job) (string, experiments.JobResult) {
	res := experiments.NewJobResult(job.spec, experiments.StateFailed)
	res.ID = job.id
	opts, err := job.spec.SessionOptions()
	if err != nil {
		res.Error = err.Error()
		return experiments.StateFailed, res
	}
	if job.spec.Jobs == 0 && m.cfg.Jobs > 0 {
		opts = append(opts, experiments.WithJobs(m.cfg.Jobs))
	}
	opts = append(opts,
		experiments.WithContext(job.ctx),
		experiments.WithProgress(job.record),
		experiments.WithMetrics(m.reg),
		experiments.WithRunCache(m.cacheFor(job.spec.RunCacheKey())),
		experiments.WithClock(m.now),
	)
	sess := experiments.NewSession(opts...)
	var buf bytes.Buffer
	err = sess.WriteReport(&buf, experiments.ReportConfig{
		Only: job.spec.Exhibits,
		Now:  m.now,
	})
	res.RunErrors = sess.RunErrors()
	switch {
	case job.ctx.Err() != nil:
		res.Error = job.ctx.Err().Error()
		res.State = experiments.StateCancelled
	case err != nil:
		res.Error = err.Error()
		res.State = experiments.StateFailed
	default:
		res.Report = buf.String()
		res.State = experiments.StateDone
	}
	return res.State, res
}

// Job is one submitted experiment: its spec, lifecycle state, buffered
// progress events and (once terminal) its result.  All methods are safe
// for concurrent use.
type Job struct {
	id     string
	spec   experiments.JobSpec
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	events []runner.EventRecord
	result experiments.JobResult
}

// ID returns the manager-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the normalized spec the job was submitted with.
func (j *Job) Spec() experiments.JobSpec { return j.spec }

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether state is one of the three end states.
func terminal(state string) bool {
	switch state {
	case experiments.StateDone, experiments.StateFailed, experiments.StateCancelled:
		return true
	}
	return false
}

// Result returns the job's result so far: for a terminal job the full
// stored result, for a live job a status-only result (ID, state, spec).
func (j *Job) Result() experiments.JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return j.result
	}
	res := experiments.NewJobResult(j.spec, j.state)
	res.ID = j.id
	return res
}

// record buffers one progress event and wakes the streams waiting on it.
// It is the session's progress callback, called from worker goroutines.
func (j *Job) record(ev runner.Event) {
	j.mu.Lock()
	j.events = append(j.events, ev.Record())
	j.mu.Unlock()
	j.cond.Broadcast()
}

// finishLocked stores the terminal state and wakes all waiters; callers
// hold j.mu.
func (j *Job) finishLocked(state string, res experiments.JobResult) {
	j.state = state
	j.result = res
	j.cond.Broadcast()
}

// Events returns the progress events buffered after offset from (the
// stream position of a follower) and whether the job is terminal.
func (j *Job) Events(from int) ([]runner.EventRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	return append([]runner.EventRecord(nil), j.events[from:]...), terminal(j.state)
}

// Next blocks until the job has events past from, turns terminal, or ctx
// expires; it returns the new events and the terminal flag.  A follower
// streams the job by calling Next in a loop until done is true and the
// returned batch is empty.
func (j *Job) Next(ctx context.Context, from int) (events []runner.EventRecord, done bool, err error) {
	stop := context.AfterFunc(ctx, func() { j.cond.Broadcast() })
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, terminal(j.state), ctx.Err()
		}
		if from < len(j.events) {
			return append([]runner.EventRecord(nil), j.events[from:]...), terminal(j.state), nil
		}
		if terminal(j.state) {
			return nil, true, nil
		}
		j.cond.Wait()
	}
}

// Wait blocks until the job is terminal or ctx expires, returning the
// final result.
func (j *Job) Wait(ctx context.Context) (experiments.JobResult, error) {
	stop := context.AfterFunc(ctx, func() { j.cond.Broadcast() })
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !terminal(j.state) {
		if err := ctx.Err(); err != nil {
			return experiments.JobResult{}, err
		}
		j.cond.Wait()
	}
	return j.result, nil
}
